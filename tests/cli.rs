//! End-to-end tests of the `cvliw` command-line binary: every subcommand,
//! exit codes, and error reporting.

use std::path::Path;
use std::process::{Command, Output};

fn cvliw(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cvliw"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

const FIR: &str = "examples/loops/fir.loop";

#[test]
fn sample_loops_exist() {
    for f in ["fir.loop", "stencil.loop", "recurrence.loop"] {
        assert!(
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("examples/loops")
                .join(f)
                .exists(),
            "missing sample {f}"
        );
    }
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = cvliw(&["help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("USAGE"));
    assert!(text.contains("schedule"));
}

#[test]
fn no_arguments_prints_usage_with_exit_2() {
    let out = cvliw(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stdout(&out).contains("USAGE"));
}

#[test]
fn schedule_reports_and_verifies() {
    let out = cvliw(&["schedule", FIR, "--machine", "4c1b2l64r"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("MII"));
    assert!(text.contains("schedule verified OK"), "{text}");
    assert!(
        text.contains("lockstep simulation (8 iterations) OK"),
        "{text}"
    );
}

#[test]
fn schedule_accepts_every_mode() {
    for mode in ["baseline", "replicate", "sched-len", "zero-bus"] {
        let out = cvliw(&["schedule", FIR, "--machine", "4c1b2l64r", "--mode", mode]);
        assert!(out.status.success(), "mode {mode}: {}", stderr(&out));
    }
}

#[test]
fn schedule_on_unified_machine_has_no_copies() {
    let out = cvliw(&["schedule", FIR, "--machine", "unified"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("0 scheduled on buses"));
}

#[test]
fn expand_emits_pipelined_code() {
    let out = cvliw(&["expand", FIR, "--machine", "4c1b2l64r", "--iterations", "3"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("static code"), "{text}");
    assert!(text.contains("fill"), "{text}");
    assert!(text.contains("#0"), "iteration tags missing: {text}");
    assert!(text.contains("prologue"), "{text}");
}

#[test]
fn compare_lists_all_four_modes() {
    let out = cvliw(&["compare", FIR, "--machine", "4c2b4l64r"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    for mode in ["baseline", "replicate", "sched-len", "zero-bus"] {
        assert!(text.contains(mode), "missing {mode} in:\n{text}");
    }
}

#[test]
fn mii_prints_decomposition() {
    let out = cvliw(&[
        "mii",
        "examples/loops/recurrence.loop",
        "--machine",
        "4c1b2l64r",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("ResMII"));
    // The fdiv recurrence dominates: RecMII = 18 + 3 (fdiv + fadd).
    assert!(text.contains("21"), "{text}");
}

#[test]
fn machines_lists_paper_and_topology_grids() {
    let out = cvliw(&["machines"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    // Every paper machine and every topology machine, with its parsed
    // interconnect and capacity-derived numbers.
    for spec in [
        "2c1b2l64r",
        "4c4b4l64r",
        "4c-ring1l64r",
        "4c-ring2l64r",
        "4c-xbar1l64r",
    ] {
        assert!(text.contains(spec), "missing {spec} in:\n{text}");
    }
    assert!(text.contains("shared bus"), "{text}");
    assert!(text.contains("ring"), "{text}");
    assert!(text.contains("crossbar"), "{text}");
    assert!(text.contains("links"), "{text}");
}

#[test]
fn schedule_accepts_topology_machines() {
    for spec in ["4c-ring1l64r", "4c-xbar1l64r"] {
        let out = cvliw(&["schedule", FIR, "--machine", spec]);
        assert!(out.status.success(), "{spec}: {}", stderr(&out));
        let text = stdout(&out);
        assert!(text.contains("schedule verified OK"), "{spec}: {text}");
        assert!(
            text.contains("lockstep simulation (8 iterations) OK"),
            "{spec}: {text}"
        );
    }
}

#[test]
fn suite_restricted_to_a_topology_machine_runs() {
    let out = cvliw(&[
        "suite",
        "--machine",
        "4c-xbar1l64r",
        "--mode",
        "baseline",
        "--max-loops",
        "1",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("tomcatv"));
}

#[test]
fn print_emits_reparseable_text() {
    let out = cvliw(&["print", FIR]);
    assert!(out.status.success());
    let text = stdout(&out);
    let l = cvliw::ir::parse_loop(&text).expect("canonical form parses");
    assert_eq!(l.name, "fir");
    assert_eq!(l.ddg.node_count(), 8);
}

#[test]
fn dot_emits_graphviz() {
    let out = cvliw(&["dot", FIR]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.starts_with("// loop fir"));
    assert!(text.contains("digraph"));
}

#[test]
fn suite_runs_capped() {
    let out = cvliw(&["suite", "--machine", "4c1b2l64r", "--max-loops", "2"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("tomcatv"));
    assert!(text.contains("TOTAL"));
}

const SMALL_SUITE: &[&str] = &[
    "suite",
    "--machine",
    "2c1b2l64r",
    "--mode",
    "baseline",
    "--max-loops",
    "1",
];

fn small_suite_with<'a>(extra: &'a [&'a str]) -> Vec<&'a str> {
    SMALL_SUITE.iter().chain(extra).copied().collect()
}

#[test]
fn suite_emits_csv_and_json_to_stdout() {
    let csv = cvliw(&small_suite_with(&["--format", "csv"]));
    assert!(csv.status.success(), "{}", stderr(&csv));
    let text = stdout(&csv);
    assert!(text.starts_with("spec,mode,program"), "{text}");
    assert!(text.contains("2c1b2l64r,baseline,tomcatv"), "{text}");

    let json = cvliw(&small_suite_with(&["--format", "json"]));
    assert!(json.status.success(), "{}", stderr(&json));
    let text = stdout(&json);
    assert!(text.starts_with('{'), "{text}");
    assert!(text.contains("\"cells\""), "{text}");
}

#[test]
fn suite_md_writes_to_the_given_path() {
    let dir = std::env::temp_dir().join("cvliw-suite-md-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("book.md");
    let out = cvliw(&small_suite_with(&[
        "--format",
        "md",
        "--out",
        path.to_str().unwrap(),
    ]));
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stderr(&out).contains("wrote"), "{}", stderr(&out));
    let book = std::fs::read_to_string(&path).unwrap();
    assert!(book.starts_with("# Results book"), "{book}");
    assert!(book.contains("Reduced grid"), "{book}");
}

#[test]
fn suite_out_dash_forces_stdout() {
    let out = cvliw(&small_suite_with(&["--format", "md", "--out", "-"]));
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).starts_with("# Results book"));
}

#[test]
fn suite_worker_count_does_not_change_output() {
    let one = cvliw(&small_suite_with(&["--format", "csv", "--jobs", "1"]));
    let four = cvliw(&small_suite_with(&["--format", "csv", "--jobs", "4"]));
    assert!(one.status.success() && four.status.success());
    assert_eq!(stdout(&one), stdout(&four));
}

#[test]
fn suite_rejects_unknown_format() {
    let out = cvliw(&small_suite_with(&["--format", "yaml"]));
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("unknown format"), "{}", stderr(&out));
}

#[test]
fn loop_selector_picks_one_loop() {
    let out = cvliw(&["print", FIR, "--loop", "fir"]);
    assert!(out.status.success());
    let missing = cvliw(&["print", FIR, "--loop", "nope"]);
    assert_eq!(missing.status.code(), Some(1));
    assert!(stderr(&missing).contains("no loop named"));
}

#[test]
fn block_schedules_acyclic_regions() {
    let out = cvliw(&[
        "block",
        "examples/loops/block.loop",
        "--machine",
        "4c1b2l64r",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("length"), "{text}");
    assert!(
        text.contains("c0@") || text.contains("c1@"),
        "placements missing: {text}"
    );
    // Loop-carried inputs are rejected with a clear message.
    let bad = cvliw(&["block", FIR, "--machine", "4c1b2l64r"]);
    assert_eq!(bad.status.code(), Some(1));
    assert!(stderr(&bad).contains("loop-carried"), "{}", stderr(&bad));
}

#[test]
fn heterogeneous_machine_specs_work() {
    let out = cvliw(&["schedule", FIR, "--machine", "het:0.3.1+3.0.2:1b2l64r"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("2 clusters"));
}

#[test]
fn bad_machine_spec_fails_with_exit_1() {
    let out = cvliw(&["schedule", FIR, "--machine", "notaspec"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("machine spec"));
}

#[test]
fn missing_file_fails_with_io_error() {
    let out = cvliw(&["schedule", "does/not/exist.loop", "--machine", "4c1b2l64r"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("cannot read"));
}

#[test]
fn unknown_command_and_options_exit_2_family() {
    let out = cvliw(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("unknown command"));

    let out = cvliw(&["schedule", FIR, "--bogus", "1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown option"));
}

#[test]
fn unknown_mode_is_rejected() {
    let out = cvliw(&["schedule", FIR, "--machine", "4c1b2l64r", "--mode", "yolo"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("unknown mode"));
}

#[test]
fn zero_and_overflow_counts_are_usage_errors() {
    // Zero is never a usable worker/loop/seed count; the old code path
    // accepted `--jobs 0` and hung the thread pool.
    for args in [
        &["suite", "--jobs", "0"][..],
        &["suite", "--max-loops", "0"],
        &["suite", "--refine-seeds", "0"],
        &["serve", "--jobs", "0"],
        &["bench", "--runs", "0"],
    ] {
        let out = cvliw(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {}", stderr(&out));
        assert!(
            stderr(&out).contains("must be at least 1"),
            "{args:?}: {}",
            stderr(&out)
        );
    }
    // Overflowing and garbage values are diagnosed, not wrapped.
    for val in ["99999999999999999999999", "three", "-2"] {
        let out = cvliw(&["suite", "--jobs", val]);
        assert_eq!(out.status.code(), Some(2), "{val}: {}", stderr(&out));
        assert!(
            stderr(&out).contains("cannot parse"),
            "{val}: {}",
            stderr(&out)
        );
    }
}

#[test]
fn suite_and_bench_reject_serve_only_options() {
    let out = cvliw(&small_suite_with(&["--serve"]));
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("--serve"), "{}", stderr(&out));

    let out = cvliw(&small_suite_with(&["--socket", "/tmp/x.sock"]));
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));

    let out = cvliw(&["bench", "--socket", "/tmp/x.sock"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));

    // The fault-tolerance knobs are daemon-only too.
    for (opt, val) in [
        ("--deadline-ms", "100"),
        ("--sessions", "2"),
        ("--max-inflight", "8"),
    ] {
        let out = cvliw(&small_suite_with(&[opt, val]));
        assert_eq!(out.status.code(), Some(2), "{opt}: {}", stderr(&out));
        let out = cvliw(&["bench", opt, val]);
        assert_eq!(out.status.code(), Some(2), "{opt}: {}", stderr(&out));
    }
}

#[test]
fn serve_sessions_requires_a_socket() {
    let out = cvliw(&["serve", "--sessions", "2"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("--socket"), "{}", stderr(&out));
}

#[test]
fn serve_rejects_per_request_options() {
    // Machine, mode and seeds travel on each request line, not the
    // command line; passing them to `serve` is a misunderstanding worth
    // a pointed diagnostic.
    let out = cvliw(&["serve", "--machine", "4c1b2l64r"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("not a `cvliw serve` option"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn serve_answers_a_piped_jsonl_session() {
    use std::io::Write as _;
    use std::process::Stdio;

    let mut child = Command::new(env!("CARGO_BIN_EXE_cvliw"))
        .args(["serve", "--jobs", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon starts");
    let req = concat!(
        r#"{"id": 1, "loop": "loop t {\n  i: iadd i@1\n  x: load i\n  y: fmul x\n  s: store y\n}", "machine": "4c1b2l64r", "mode": "replicate"}"#,
        "\n",
        r#"{"id": 2, "loop": "loop t {\n  i: iadd i@1\n  x: load i\n  y: fmul x\n  s: store y\n}", "machine": "4c1b2l64r", "mode": "replicate"}"#,
        "\n",
        "this is not json\n",
        r#"{"id": 4, "op": "stats"}"#,
        "\n",
    );
    child
        .stdin
        .take()
        .unwrap()
        .write_all(req.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    let lines: Vec<String> = stdout(&out).lines().map(String::from).collect();
    assert_eq!(lines.len(), 4, "{lines:?}");
    assert!(
        lines[0].starts_with("{\"id\":1,\"ok\":{\"mii\":"),
        "{}",
        lines[0]
    );
    // The duplicate is answered byte-identically (id aside).
    assert_eq!(
        lines[0].trim_start_matches("{\"id\":1,"),
        lines[1].trim_start_matches("{\"id\":2,")
    );
    assert!(
        lines[2].starts_with("{\"id\":null,\"error\":{\"kind\":\"json\""),
        "{}",
        lines[2]
    );
    assert!(lines[3].contains("\"requests\":4"), "{}", lines[3]);
    // EOF ends the session with a one-line accounting summary on stderr.
    assert!(stderr(&out).contains("serve:"), "{}", stderr(&out));
}

#[test]
fn serve_accepts_the_fault_tolerance_knobs() {
    use std::io::Write as _;
    use std::process::Stdio;

    // A generous deadline and in-flight bound: both armed, neither
    // tripped — requests answer normally and the stats op reports the
    // fault counters at zero.
    let mut child = Command::new(env!("CARGO_BIN_EXE_cvliw"))
        .args([
            "serve",
            "--jobs",
            "2",
            "--deadline-ms",
            "10000",
            "--max-inflight",
            "8",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon starts");
    let req = concat!(
        r#"{"id": 1, "loop": "loop t {\n  i: iadd i@1\n  x: load i\n  y: fmul x\n  s: store y\n}", "machine": "4c1b2l64r", "mode": "replicate"}"#,
        "\n",
        r#"{"id": 2, "op": "stats"}"#,
        "\n",
    );
    child
        .stdin
        .take()
        .unwrap()
        .write_all(req.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    let lines: Vec<String> = stdout(&out).lines().map(String::from).collect();
    assert_eq!(lines.len(), 2, "{lines:?}");
    assert!(lines[0].starts_with("{\"id\":1,\"ok\":"), "{}", lines[0]);
    assert!(lines[1].contains("\"shed\":0"), "{}", lines[1]);
    assert!(lines[1].contains("\"deadlines\":0"), "{}", lines[1]);
    assert!(lines[1].contains("\"panics\":0"), "{}", lines[1]);
}

#[test]
fn parse_errors_carry_positions() {
    let dir = std::env::temp_dir().join("cvliw-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.loop");
    std::fs::write(&bad, "loop l {\n x: frobnicate y\n}\n").unwrap();
    let out = cvliw(&["schedule", bad.to_str().unwrap(), "--machine", "4c1b2l64r"]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("2:5"), "position missing: {err}");
    assert!(err.contains("frobnicate"), "{err}");
}

/// Spawns the stdin daemon with `args`, pipes `input`, returns output.
fn serve_piped(args: &[&str], input: &str) -> Output {
    use std::io::Write as _;
    use std::process::Stdio;

    let mut child = Command::new(env!("CARGO_BIN_EXE_cvliw"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon starts");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    child.wait_with_output().unwrap()
}

const COMPILE_REQ: &str = concat!(
    r#"{"id": 1, "loop": "loop t {\n  i: iadd i@1\n  x: load i\n  y: fmul x\n  s: store y\n}", "machine": "4c1b2l64r", "mode": "replicate"}"#,
    "\n",
);

#[test]
fn serve_cache_zero_is_disabled_mode_not_an_error() {
    // `--cache-entries 0` / `--cache-mb 0` now mean "run without a
    // result cache" — an explicit measurement/debugging mode. The
    // exchange is interactive (one request per batch) so the repeat
    // cannot be coalesced away: it must be a genuine second miss.
    use std::io::{BufRead as _, BufReader, Write as _};
    use std::process::Stdio;

    for knob in ["--cache-entries", "--cache-mb"] {
        let mut child = Command::new(env!("CARGO_BIN_EXE_cvliw"))
            .args(["serve", "--jobs", "1", knob, "0"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("daemon starts");
        let mut stdin = child.stdin.take().unwrap();
        let mut reader = BufReader::new(child.stdout.take().unwrap());
        let mut exchange = |req: &str| -> String {
            stdin.write_all(req.as_bytes()).unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line
        };
        assert!(exchange(COMPILE_REQ).contains("\"ok\""), "{knob}");
        assert!(exchange(COMPILE_REQ).contains("\"ok\""), "{knob}");
        let stats = exchange("{\"id\": 3, \"op\": \"stats\"}\n");
        drop(stdin);
        let out = child.wait_with_output().unwrap();
        assert!(out.status.success(), "{knob}: {}", stderr(&out));
        assert!(
            stderr(&out).contains("result cache disabled"),
            "{knob}: {}",
            stderr(&out)
        );
        // The repeat is *not* a hit, and nothing was stored: there is
        // no cache to hit.
        assert!(stats.contains("\"hits\":0"), "{knob}: {stats}");
        assert!(stats.contains("\"misses\":2"), "{knob}: {stats}");
        assert!(stats.contains("\"cache_entries\":0"), "{knob}: {stats}");
    }
}

#[test]
fn cache_path_with_a_disabled_cache_is_a_usage_error() {
    let dir = std::env::temp_dir().join(format!("cvliw-cli-conflict-{}", std::process::id()));
    let out = cvliw(&[
        "serve",
        "--cache-entries",
        "0",
        "--cache-path",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("contradicts"), "{}", stderr(&out));
    assert!(!dir.exists(), "a refused configuration must create nothing");

    // --snapshot-every is meaningless without --cache-path.
    let out = cvliw(&["serve", "--snapshot-every", "16"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("only meaningful with --cache-path"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn serve_persists_across_restarts_and_cache_verify_audits_the_directory() {
    let dir = std::env::temp_dir().join(format!("cvliw-cli-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().unwrap();

    // Life 1: one compile, then EOF (which books a final snapshot).
    let out = serve_piped(
        &["serve", "--jobs", "1", "--cache-path", dir_s],
        COMPILE_REQ,
    );
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("final snapshot: 1 entries"),
        "{}",
        stderr(&out)
    );

    // Life 2: the same request is a cache hit served from disk.
    let req = format!("{COMPILE_REQ}{{\"id\": 2, \"op\": \"stats\"}}\n");
    let out = serve_piped(&["serve", "--jobs", "1", "--cache-path", dir_s], &req);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("1 entries restored"),
        "{}",
        stderr(&out)
    );
    let lines: Vec<String> = stdout(&out).lines().map(String::from).collect();
    assert!(
        lines[0].starts_with("{\"id\":1,\"ok\":{\"mii\":"),
        "{}",
        lines[0]
    );
    assert!(lines[1].contains("\"hits\":1"), "{}", lines[1]);

    // A clean directory verifies with exit 0.
    let out = cvliw(&["cache", "verify", dir_s]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("clean"), "{}", stdout(&out));

    // Flip one payload byte: verify must fail with a located diagnostic.
    let snap = dir.join("snapshot.bin");
    let mut bytes = std::fs::read(&snap).unwrap();
    let at = bytes.len() - 4;
    bytes[at] ^= 0x01;
    std::fs::write(&snap, &bytes).unwrap();
    let out = cvliw(&["cache", "verify", dir_s]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert!(stdout(&out).contains("at byte"), "{}", stdout(&out));
    assert!(
        stderr(&out).contains("failed verification"),
        "{}",
        stderr(&out)
    );

    // The daemon recovers anyway: corrupt snapshot frames are
    // quarantined and the journal (or a recompile) fills the gap.
    let out = serve_piped(
        &["serve", "--jobs", "1", "--cache-path", dir_s],
        COMPILE_REQ,
    );
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stderr(&out).contains("quarantined"), "{}", stderr(&out));
    assert!(
        stdout(&out).starts_with("{\"id\":1,\"ok\":{\"mii\":"),
        "{}",
        stdout(&out)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_and_client_usage_errors() {
    // `cache` knows exactly one action.
    let out = cvliw(&["cache", "audit", "/nonexistent"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("verify <dir>"), "{}", stderr(&out));

    // `client` needs a socket to talk to.
    let out = cvliw(&["client"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("missing required option --socket"),
        "{}",
        stderr(&out)
    );

    // Bench/suite knobs stay rejected on `client`.
    let out = cvliw(&["client", "--socket", "/tmp/x.sock", "--runs", "3"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("not a `cvliw client` option"),
        "{}",
        stderr(&out)
    );

    // An absent directory is a clean cold start, not an error.
    let out = cvliw(&["cache", "verify", "/nonexistent-cvliw-cache"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("absent"), "{}", stdout(&out));
}
