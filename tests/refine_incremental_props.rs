//! Differential properties of incremental partition refinement.
//!
//! The production refinement path earns its speed from three layers that
//! all skip work: lazy lexicographic rejection (most candidates are
//! discarded from a partial score), incremental ASAP maintenance (the
//! survivors are scored by updating only the affected cone of the
//! pseudo-schedule fixpoint) and the `(op, dest-cluster)` move-result
//! cache (rejected moves re-examined in later passes and later IIs hit a
//! version-checked cache). None of that may be observable: on random
//! loops across every interconnect topology variant, the production path
//! must produce the **identical accepted-move sequence and final
//! partition** as a naive oracle that re-scores every candidate with a
//! full from-scratch pseudo-schedule.
//!
//! The II sweep mirrors the driver's Figure-2 climb — each II refines the
//! previous II's result, with one `RefineScratch` and one `RefineCache`
//! carried across the whole chain, exactly as
//! `cvliw_replicate::CompileContext` does — so cache entries filled at
//! one II are re-validated at the next.

use cvliw::machine::MachineConfig;
use cvliw::partition::{
    partition_loop_with, refine_existing_oracle, refine_existing_trace, RefineCache, RefineMove,
    RefineScratch,
};
use cvliw::sched::LoopAnalysis;
use cvliw::workloads::{generate_loop, GeneratorParams};
use proptest::prelude::*;

/// Every interconnect fabric the machine model supports, on the cluster
/// counts the suite exercises: the paper's shared buses (2- and
/// 4-cluster, narrow and wide) plus the PR 5 topology appendix's
/// point-to-point rings (both latencies) and crossbar.
const TOPOLOGY_VARIANTS: [&str; 6] = [
    "2c1b2l64r",
    "4c1b2l64r",
    "4c4b4l64r",
    "4c-ring1l64r",
    "4c-ring2l64r",
    "4c-xbar1l64r",
];

/// IIs swept above the MII — enough for the cache to see re-validation
/// across IIs without making the (slow, full-rescoring) oracle the
/// dominant cost of the test suite.
const II_STEPS: u32 = 3;

fn arb_params() -> impl Strategy<Value = GeneratorParams> {
    (
        (1usize..=5, 1usize..=4),
        0.0f64..0.6,
        0.0f64..1.0,
        0.0f64..0.3,
    )
        .prop_map(
            |((chains, depth), coupling, shared_addr, recurrence)| GeneratorParams {
                chains: (chains, chains + 2),
                depth: (depth, depth + 2),
                coupling,
                shared_addr,
                recurrence,
                ..GeneratorParams::medium()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Production refinement (lazy rejection + incremental ASAP + move
    /// cache, state carried across the II climb) versus the full-recompute
    /// oracle, move for move.
    #[test]
    fn incremental_refinement_matches_full_recompute_oracle(
        seed in 0u64..10_000,
        params in arb_params(),
    ) {
        let ddg = generate_loop(seed, &params).expect("generator is total").ddg;
        for spec in TOPOLOGY_VARIANTS {
            let machine = MachineConfig::from_spec(spec).expect("preset parses");
            let analysis = LoopAnalysis::new(&ddg, &machine);
            let mii = analysis.mii();
            let mut part = partition_loop_with(&ddg, &machine, mii, &analysis);

            // One scratch and one cache across the whole climb, like the
            // driver's per-(loop, machine) compile scratch.
            let mut scratch = RefineScratch::default();
            let mut cache = RefineCache::default();
            for ii in mii..mii + II_STEPS {
                let (oracle_part, oracle_moves) =
                    refine_existing_oracle(&ddg, &machine, ii, part.clone(), &analysis);
                let mut trace: Vec<RefineMove> = Vec::new();
                let refined = refine_existing_trace(
                    &ddg,
                    &machine,
                    ii,
                    part.clone(),
                    &analysis,
                    &mut scratch,
                    Some(&mut cache),
                    &mut trace,
                );
                prop_assert_eq!(
                    &trace, &oracle_moves,
                    "{} at ii {}: accepted-move sequences diverged", spec, ii
                );
                prop_assert_eq!(
                    &refined, &oracle_part,
                    "{} at ii {}: refined partitions diverged", spec, ii
                );
                part = refined;
            }
        }
    }

    /// The cache layer alone must also be invisible when entries go stale
    /// the hard way: running the *same* climb uncached must retrace the
    /// cached run exactly (the unit tests in `refine.rs` cover single
    /// calls; this pins the cross-II chain on generated loops).
    #[test]
    fn cached_climb_retraces_uncached_climb(
        seed in 0u64..10_000,
        params in arb_params(),
    ) {
        let ddg = generate_loop(seed, &params).expect("generator is total").ddg;
        for spec in TOPOLOGY_VARIANTS {
            let machine = MachineConfig::from_spec(spec).expect("preset parses");
            let analysis = LoopAnalysis::new(&ddg, &machine);
            let mii = analysis.mii();
            let seed_part = partition_loop_with(&ddg, &machine, mii, &analysis);

            let mut scratch = RefineScratch::default();
            let mut cache = RefineCache::default();
            let mut cached_part = seed_part.clone();
            let mut uncached_part = seed_part;
            for ii in mii..mii + II_STEPS {
                let mut cached_trace: Vec<RefineMove> = Vec::new();
                cached_part = refine_existing_trace(
                    &ddg,
                    &machine,
                    ii,
                    cached_part.clone(),
                    &analysis,
                    &mut scratch,
                    Some(&mut cache),
                    &mut cached_trace,
                );
                let mut uncached_trace: Vec<RefineMove> = Vec::new();
                uncached_part = refine_existing_trace(
                    &ddg,
                    &machine,
                    ii,
                    uncached_part.clone(),
                    &analysis,
                    &mut scratch,
                    None,
                    &mut uncached_trace,
                );
                prop_assert_eq!(
                    &cached_trace, &uncached_trace,
                    "{} at ii {}: cache changed the move sequence", spec, ii
                );
                prop_assert_eq!(&cached_part, &uncached_part);
            }
        }
    }
}
