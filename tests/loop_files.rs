//! Every sample `.loop` file under `examples/loops/` must parse, round-trip
//! through the printer, and compile + verify + simulate on the paper's
//! machines. This keeps the shipped samples honest as the IR evolves.

use std::fs;
use std::path::PathBuf;

use cvliw::ir::{parse_module, print_loop, same_structure};
use cvliw::machine::MachineConfig;
use cvliw::replicate::{compile_loop, CompileOptions};
use cvliw::sim::simulate;

fn sample_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/loops");
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("examples/loops exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "loop"))
        .collect();
    files.sort();
    assert!(files.len() >= 3, "expected at least three sample loops");
    files
}

#[test]
fn samples_parse_and_round_trip() {
    for path in sample_files() {
        let text = fs::read_to_string(&path).expect("readable");
        let module = parse_module(&text)
            .unwrap_or_else(|e| panic!("{} failed to parse: {e}", path.display()));
        for l in module.loops() {
            let printed = print_loop(&l.name, &l.ddg);
            let back = cvliw::ir::parse_loop(&printed)
                .unwrap_or_else(|e| panic!("{} reprint failed: {e}", path.display()));
            assert!(
                same_structure(&l.ddg, &back.ddg),
                "{}: loop {} does not round-trip",
                path.display(),
                l.name
            );
        }
    }
}

#[test]
fn samples_compile_on_every_paper_machine() {
    let machines: Vec<MachineConfig> = cvliw::machine::paper_specs()
        .iter()
        .map(|s| MachineConfig::from_spec(s).expect("valid spec"))
        .collect();
    for path in sample_files() {
        let text = fs::read_to_string(&path).expect("readable");
        let module = parse_module(&text).expect("parses");
        for l in module.loops() {
            for machine in &machines {
                for opts in [CompileOptions::baseline(), CompileOptions::replicate()] {
                    let out = compile_loop(&l.ddg, machine, &opts).unwrap_or_else(|e| {
                        panic!("{}: {} on {}: {e}", path.display(), l.name, machine.spec())
                    });
                    out.schedule.verify(&l.ddg, machine).unwrap_or_else(|e| {
                        panic!("{}: {} on {}: {e}", path.display(), l.name, machine.spec())
                    });
                    simulate(&l.ddg, machine, &out.schedule, 5).unwrap_or_else(|e| {
                        panic!("{}: {} on {}: {e}", path.display(), l.name, machine.spec())
                    });
                }
            }
        }
    }
}

#[test]
fn fir_sample_benefits_from_replication() {
    let text = fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/loops/fir.loop"),
    )
    .unwrap();
    let l = cvliw::ir::parse_loop(&text).unwrap();
    let machine = MachineConfig::from_spec("4c1b2l64r").unwrap();
    let base = compile_loop(&l.ddg, &machine, &CompileOptions::baseline()).unwrap();
    let repl = compile_loop(&l.ddg, &machine, &CompileOptions::replicate()).unwrap();
    assert!(
        repl.stats.final_coms < base.stats.final_coms,
        "the FIR sample exists to show replication removing communications \
         ({} vs {})",
        repl.stats.final_coms,
        base.stats.final_coms
    );
}

#[test]
fn recurrence_sample_is_latency_bound() {
    // The div recurrence controls the II; replication must be a no-op.
    let text = fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/loops/recurrence.loop"),
    )
    .unwrap();
    let l = cvliw::ir::parse_loop(&text).unwrap();
    let machine = MachineConfig::from_spec("4c1b2l64r").unwrap();
    let out = compile_loop(&l.ddg, &machine, &CompileOptions::replicate()).unwrap();
    assert_eq!(
        out.stats.mii, 21,
        "fdiv (18) + fadd (3) around a distance-1 cycle"
    );
    assert_eq!(
        out.stats.replication.added_instances(),
        0,
        "nothing is bus-bound"
    );
}
