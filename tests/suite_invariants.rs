//! Invariants over the synthetic SPECfp95-like suite: every loop of every
//! program must compile into a verifiable schedule whose statistics are
//! internally consistent, on a 2- and a 4-cluster machine.

use cvliw::prelude::*;
use cvliw::sim::simulate;
use cvliw::workloads::suite_subset;

/// Loops per program in these tests; the full 678-loop sweep runs in the
/// bench harness (`cargo bench`).
const LOOPS_PER_PROGRAM: usize = 3;

fn check_config(spec: &str) {
    let machine = MachineConfig::from_spec(spec).unwrap();
    for program in suite_subset(LOOPS_PER_PROGRAM) {
        for l in &program.loops {
            let base = compile_loop(&l.ddg, &machine, &CompileOptions::baseline())
                .unwrap_or_else(|e| panic!("{} baseline on {spec}: {e}", l.name));
            let repl = compile_loop(&l.ddg, &machine, &CompileOptions::replicate())
                .unwrap_or_else(|e| panic!("{} replicate on {spec}: {e}", l.name));

            for (mode, out) in [("baseline", &base), ("replicate", &repl)] {
                out.schedule
                    .verify(&l.ddg, &machine)
                    .unwrap_or_else(|e| panic!("{} {mode} on {spec}: {e}", l.name));
                let s = &out.stats;
                assert!(s.ii >= s.mii, "{}: II below MII", l.name);
                assert_eq!(s.causes.total(), s.ii - s.mii, "{}: cause tally", l.name);
                assert!(
                    s.final_coms <= machine.coms_capacity_per_ii(s.ii),
                    "{}: bus oversubscribed",
                    l.name
                );
                assert_eq!(
                    s.instances_per_iter,
                    s.ops_per_iter + s.replication.added_instances()
                        - s.replication.removed_instances,
                    "{}: instance accounting",
                    l.name
                );
            }

            // Replication must not lose: same or lower II; and at the same
            // II (identical deterministic partition path) it cannot end
            // with more communications.
            assert!(
                repl.stats.ii <= base.stats.ii,
                "{}: replication raised II",
                l.name
            );
            if repl.stats.ii == base.stats.ii {
                assert!(
                    repl.stats.final_coms <= base.stats.final_coms,
                    "{}: replication added communications at the same II",
                    l.name
                );
            }
        }
    }
}

#[test]
fn four_cluster_one_bus_invariants() {
    check_config("4c1b2l64r");
}

#[test]
fn two_cluster_invariants() {
    check_config("2c1b2l64r");
}

#[test]
fn four_cluster_wide_bus_invariants() {
    check_config("4c4b4l64r");
}

#[test]
fn replicated_schedules_stay_functionally_correct() {
    let machine = MachineConfig::from_spec("4c1b2l64r").unwrap();
    for program in suite_subset(2) {
        for l in &program.loops {
            let out = compile_loop(&l.ddg, &machine, &CompileOptions::replicate()).unwrap();
            let iters = u64::from(out.schedule.stage_count()) + 3;
            let report = simulate(&l.ddg, &machine, &out.schedule, iters)
                .unwrap_or_else(|e| panic!("{}: {e}", l.name));
            assert_eq!(
                report.instructions_executed,
                u64::from(out.schedule.op_count()) * iters
            );
            assert!(report.texec_formula >= report.makespan);
            assert!(report.texec_formula - report.makespan < u64::from(out.stats.ii));
        }
    }
}

#[test]
fn suite_is_deterministic_across_processes() {
    // Two builds of the same subset agree on structure and profile.
    let a = suite_subset(2);
    let b = suite_subset(2);
    for (pa, pb) in a.iter().zip(&b) {
        assert_eq!(pa.name, pb.name);
        for (la, lb) in pa.loops.iter().zip(&pb.loops) {
            assert_eq!(la.ddg.node_count(), lb.ddg.node_count());
            assert_eq!(la.ddg.edge_count(), lb.ddg.edge_count());
            assert_eq!(la.profile, lb.profile);
        }
    }
}
