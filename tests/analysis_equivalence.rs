//! Equivalence property test for the II-invariant analysis cache and the
//! dense-arena scheduler: the cached entry points (`compile_loop_ctx` with
//! one `CompileContext` shared across all five modes, `compile_loop_with`,
//! `schedule_with_analysis`) must produce **bit-identical** results — same
//! instances, copies, length and II — to the self-contained `compile_loop`
//! / `schedule_with` paths, across generated loops × machines × modes.
//!
//! This is the determinism contract of the perf work: caching and the
//! arena are observationally pure, and `docs/RESULTS.md` plus the golden
//! emitter files stay byte-identical because every cell compiles to the
//! same statistics no matter which entry point ran it.

use cvliw::machine::{FuCounts, LatencyTable, MachineConfig};
use cvliw::prelude::*;
use cvliw::replicate::{compile_loop_ctx, compile_loop_with, CompileContext};
use cvliw::sched::{
    schedule_with, schedule_with_analysis, Assignment, LoopAnalysis, OrderStrategy, ScheduleRequest,
};
use cvliw::workloads::{generate_loop, GeneratorParams};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = GeneratorParams> {
    (
        (1usize..=6, 1usize..=5),
        0.0f64..0.6,
        0.0f64..1.0,
        0.0f64..0.3,
    )
        .prop_map(
            |((chains, depth), coupling, shared_addr, recurrence)| GeneratorParams {
                chains: (chains, chains + 2),
                depth: (depth, depth + 2),
                coupling,
                shared_addr,
                recurrence,
                ..GeneratorParams::medium()
            },
        )
}

fn arb_machine() -> impl Strategy<Value = MachineConfig> {
    (
        prop_oneof![Just(1u8), Just(2u8), Just(4u8)],
        1u8..=4,
        1u32..=4,
        prop_oneof![Just(32u32), Just(64u32), Just(128u32)],
    )
        .prop_map(|(clusters, buses, bus_lat, regs)| {
            let per = 4 / clusters;
            MachineConfig::new(
                clusters,
                buses,
                bus_lat,
                regs,
                FuCounts {
                    int: per,
                    fp: per,
                    mem: per,
                },
                LatencyTable::PAPER,
            )
            .expect("valid machine")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// One shared `CompileContext` across all five modes versus a fresh
    /// self-contained `compile_loop` per mode: identical schedules,
    /// assignments, statistics — and identical errors when no II fits.
    #[test]
    fn cached_context_is_bit_identical_across_all_modes(
        seed in 0u64..10_000,
        params in arb_params(),
        machine in arb_machine(),
    ) {
        let ddg = generate_loop(seed, &params).expect("generator is total").ddg;
        let ctx = CompileContext::new(&ddg, &machine);
        let analysis = LoopAnalysis::new(&ddg, &machine);

        for mode in Mode::ALL {
            let opts = CompileOptions { mode, max_ii: None };
            let fresh = compile_loop(&ddg, &machine, &opts);
            let shared = compile_loop_ctx(&ddg, &machine, &opts, &ctx);
            let with_analysis = compile_loop_with(&ddg, &machine, &opts, &analysis);
            match (&fresh, &shared, &with_analysis) {
                (Ok(a), Ok(b), Ok(c)) => {
                    prop_assert_eq!(&a.schedule, &b.schedule, "mode {}", mode.name());
                    prop_assert_eq!(&a.schedule, &c.schedule, "mode {}", mode.name());
                    prop_assert_eq!(&a.assignment, &b.assignment);
                    prop_assert_eq!(&a.assignment, &c.assignment);
                    prop_assert_eq!(a.stats, b.stats);
                    prop_assert_eq!(a.stats, c.stats);
                    // The shared fields the suite aggregates, spelled out.
                    prop_assert_eq!(a.stats.ii, b.stats.ii);
                    prop_assert_eq!(a.schedule.length(), b.schedule.length());
                    prop_assert_eq!(a.schedule.op_count(), b.schedule.op_count());
                    prop_assert_eq!(a.schedule.copy_count(), b.schedule.copy_count());
                    a.schedule.verify(&ddg, &machine).expect("schedule verifies");
                }
                (Err(a), Err(b), Err(c)) => {
                    prop_assert_eq!(a, b);
                    prop_assert_eq!(a, c);
                }
                _ => prop_assert!(
                    false,
                    "cached and uncached paths disagree on success for mode {}",
                    mode.name()
                ),
            }
        }
    }

    /// Scratch reuse is observationally pure: compiling through one
    /// `CompileContext` — whose `CompileScratch` stays dirty across modes
    /// and repeated compilations — must equal a fresh-state `compile_loop`
    /// per call: same II, same schedule, same statistics. "Dirty" here
    /// covers every piece of incremental refinement state this crate
    /// maintains: the `RefineScratch` with its incremental-ASAP engine
    /// (per-candidate edge-latency overrides, cone worklists, undo logs),
    /// the `(op, dest-cluster)` move-result `RefineCache` shared by the
    /// whole II-climb chain, and the reused base-state communication
    /// counts of the multilevel walk. An arbitrary capped pre-compile
    /// first abandons the II climb at an arbitrary prefix — possibly as
    /// an error — so the comparison passes start from a genuinely
    /// arbitrary dirty state, not just a completed one. The second pass
    /// through every mode then exercises reuse of buffers left behind by
    /// a *different* mode's attempt loop (including the failure-driven
    /// II-skip state), and the driver's debug assertions re-verify every
    /// skipped attempt along the way.
    ///
    /// The scratch itself arrives *recycled from a different loop*, the
    /// way the suite's loop-granular worker pool hands it around: a donor
    /// loop is compiled first and its `CompileScratch` — dense `PlanArena`,
    /// engine buffers, refinement caches, all sized and filled for the
    /// donor's graph — is recovered with `into_scratch` and threaded into
    /// this loop's context via `new_with_scratch`. Equality with the
    /// fresh-state path proves `reset_for_new_loop` invalidates everything
    /// graph-specific (notably the move-result `RefineCache`, which two
    /// same-sized graphs could otherwise alias) while the fingerprint
    /// guards re-prime the rest.
    #[test]
    fn scratch_reuse_equals_fresh_state_compilation(
        seed in 0u64..10_000,
        params in arb_params(),
        machine in arb_machine(),
        cap_bump in 0u32..3,
    ) {
        let ddg = generate_loop(seed, &params).expect("generator is total").ddg;

        // Dirty the scratch on a *different* loop first — different node
        // count, different partitions, a populated plan arena — before it
        // ever sees this test's graph.
        let donor = generate_loop(seed ^ 0x9e37_79b9, &params)
            .expect("generator is total")
            .ddg;
        let donor_ctx = CompileContext::new(&donor, &machine);
        let donor_opts = CompileOptions { mode: Mode::Replicate, max_ii: None };
        let _ = compile_loop_ctx(&donor, &machine, &donor_opts, &donor_ctx);
        let ctx = CompileContext::new_with_scratch(&ddg, &machine, donor_ctx.into_scratch());

        // Dirty every incremental structure with a prior compile that may
        // abort partway: the refinement chain, the move cache and the
        // incremental-ASAP scratch are left at whatever prefix the capped
        // climb reached.
        let capped = CompileOptions {
            mode: Mode::Replicate,
            max_ii: Some(ctx.analysis().mii() + cap_bump),
        };
        let _ = compile_loop_ctx(&ddg, &machine, &capped, &ctx);

        for pass in 0..2 {
            for mode in Mode::ALL {
                let opts = CompileOptions { mode, max_ii: None };
                let fresh = compile_loop(&ddg, &machine, &opts);
                let reused = compile_loop_ctx(&ddg, &machine, &opts, &ctx);
                match (&fresh, &reused) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(
                            a.stats.ii, b.stats.ii,
                            "pass {} mode {}", pass, mode.name()
                        );
                        prop_assert_eq!(&a.schedule, &b.schedule);
                        prop_assert_eq!(&a.assignment, &b.assignment);
                        prop_assert_eq!(a.stats, b.stats);
                    }
                    (Err(a), Err(b)) => prop_assert_eq!(a, b),
                    _ => prop_assert!(
                        false,
                        "dirty-scratch and fresh-state compilation disagree on \
                         success for mode {} (pass {})",
                        mode.name(),
                        pass
                    ),
                }
            }
        }
    }

    /// Best-of-N seed racing is deterministic at the context level: two
    /// independently constructed seeded contexts — each racing its
    /// perturbed refinements on its own scoped threads — must agree
    /// bit-for-bit across every mode, because the winner is selected by
    /// `(score, seed-index)`, never by thread completion order.
    #[test]
    fn seed_racing_context_is_deterministic(
        seed in 0u64..10_000,
        params in arb_params(),
        machine in arb_machine(),
    ) {
        let ddg = generate_loop(seed, &params).expect("generator is total").ddg;
        let a = CompileContext::new(&ddg, &machine).with_refine_seeds(4);
        let b = CompileContext::new(&ddg, &machine).with_refine_seeds(4);
        for mode in Mode::ALL {
            let opts = CompileOptions { mode, max_ii: None };
            let ra = compile_loop_ctx(&ddg, &machine, &opts, &a);
            let rb = compile_loop_ctx(&ddg, &machine, &opts, &b);
            match (&ra, &rb) {
                (Ok(x), Ok(y)) => {
                    prop_assert_eq!(&x.schedule, &y.schedule, "mode {}", mode.name());
                    prop_assert_eq!(&x.assignment, &y.assignment);
                    prop_assert_eq!(x.stats, y.stats);
                }
                (Err(x), Err(y)) => prop_assert_eq!(x, y),
                _ => prop_assert!(
                    false,
                    "raced contexts disagree on success for mode {}",
                    mode.name()
                ),
            }
        }
    }

    /// The cached analysis feeds the scheduler the same orders the one-shot
    /// APIs compute, so `schedule_with_analysis` equals `schedule_with` for
    /// both strategies on a plain partition-derived assignment.
    #[test]
    fn scheduler_arena_matches_for_both_strategies(
        seed in 0u64..10_000,
        params in arb_params(),
        machine in arb_machine(),
        ii_bump in 0u32..4,
    ) {
        let ddg = generate_loop(seed, &params).expect("generator is total").ddg;
        let analysis = LoopAnalysis::new(&ddg, &machine);
        let partition = cvliw::partition::partition_loop(&ddg, &machine, analysis.mii());
        let assignment: Assignment = partition.to_assignment();
        let request = ScheduleRequest {
            ddg: &ddg,
            machine: &machine,
            assignment: &assignment,
            ii: analysis.mii() + ii_bump,
            zero_bus_dep_latency: false,
        };
        for strategy in [OrderStrategy::Swing, OrderStrategy::Topological] {
            let fresh = schedule_with(&request, strategy);
            let cached = schedule_with_analysis(&request, strategy, &analysis);
            match (fresh, cached) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(false, "disagreement: {a:?} vs {b:?}"),
            }
        }
    }
}
