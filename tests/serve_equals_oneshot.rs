//! The differential layer pinning `cvliw serve`: for arbitrary request
//! streams, the daemon's responses must be **byte-identical** to what a
//! one-shot compilation of each request would render — under one worker
//! or four, on a cold cache or a warm one, with duplicates coalesced or
//! served from cache.
//!
//! The oracle is deliberately naive: a fresh `CompileContext` per
//! request, no cache, no sharding, no memo. Anything the server's fast
//! paths change about the bytes — a stale cache entry, a fingerprint
//! collision mishandled, scratch state leaking between compiles on a
//! pooled context, nondeterministic worker routing — shows up here as a
//! diff on a shrunken request stream.

use cvliw::machine::{paper_specs, MachineConfig};
use cvliw::replicate::{compile_stats_ctx, CompileContext, CompileOptions, Mode};
use cvliw::serve::testutil::request_line;
use cvliw::serve::{
    render_compile_error_body, render_ok_body, render_response, Server, ServerConfig,
};
use cvliw::workloads::{generate_loop, GeneratorParams};
use proptest::prelude::*;

/// One request: indices into the generated-loop pool and the paper
/// machine/mode tables, plus a seed count. Duplicates arise naturally
/// from the small index spaces.
#[derive(Clone, Debug)]
struct Req {
    loop_idx: usize,
    spec_idx: usize,
    mode_idx: usize,
    seeds: u32,
}

fn arb_stream() -> impl Strategy<Value = (Vec<u64>, Vec<Req>)> {
    let pool = prop::collection::vec(0u64..5000, 2..=4);
    let req = (0usize..4, 0usize..6, 0usize..5, 1u32..3).prop_map(
        |(loop_idx, spec_idx, mode_idx, seeds)| Req {
            loop_idx,
            spec_idx,
            mode_idx,
            seeds,
        },
    );
    (pool, prop::collection::vec(req, 1..=12))
}

/// Renders exactly what a one-shot compile of this request would say,
/// with a context built fresh for this single request.
fn oneshot_response(id: u64, src: &str, spec: &str, mode: Mode, seeds: u32) -> String {
    let ddg = cvliw::ir::parse_loop(src)
        .expect("printed loop reparses")
        .ddg;
    let machine = MachineConfig::from_extended_spec(spec).expect("paper spec");
    let ctx = CompileContext::new(&ddg, &machine).with_refine_seeds(seeds);
    let opts = CompileOptions { mode, max_ii: None };
    let mut body = String::new();
    match compile_stats_ctx(&ddg, &machine, &opts, &ctx) {
        Ok(stats) => render_ok_body(&stats, &mut body),
        Err(e) => render_compile_error_body(&e, &mut body),
    }
    let mut out = String::new();
    render_response(Some(id), &body, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn server_responses_match_oneshot_compilation(
        input in arb_stream(),
    ) {
        let (pool_seeds, stream) = input;
        let params = GeneratorParams::medium();
        let pool: Vec<String> = pool_seeds
            .iter()
            .map(|&s| {
                let l = generate_loop(s, &params).expect("generator is total");
                cvliw::ir::print_loop("gen", &l.ddg)
            })
            .collect();
        let specs = paper_specs();
        let modes = Mode::ALL;

        let mut expected = String::new();
        let mut lines = Vec::with_capacity(stream.len());
        for (i, r) in stream.iter().enumerate() {
            let id = i as u64;
            let src = &pool[r.loop_idx % pool.len()];
            let spec = specs[r.spec_idx];
            let mode = modes[r.mode_idx];
            lines.push(request_line(id, src, spec, mode.name(), r.seeds));
            expected.push_str(&oneshot_response(id, src, spec, mode, r.seeds));
        }

        // Cold, one worker.
        let mut s1 = Server::new(ServerConfig { jobs: 1, ..ServerConfig::default() });
        let mut out1 = String::new();
        s1.process_batch(&lines, &mut out1);
        prop_assert_eq!(&out1, &expected, "jobs=1 cold diverged from one-shot");

        // Cold, four workers: sharding must not change a byte.
        let mut s4 = Server::new(ServerConfig { jobs: 4, ..ServerConfig::default() });
        let mut out4 = String::new();
        s4.process_batch(&lines, &mut out4);
        prop_assert_eq!(&out4, &expected, "jobs=4 cold diverged from one-shot");

        // Warm replay on the same server: every response now comes from
        // the cache (or a pooled, already-used context) and must still
        // match the fresh-context oracle.
        let mut warm = String::new();
        s4.process_batch(&lines, &mut warm);
        prop_assert_eq!(&warm, &expected, "warm replay diverged from one-shot");
        // Cold duplicates coalesce; on the warm replay every line hits.
        prop_assert_eq!(s4.stats().hits, stream.len() as u64);
    }
}
