//! Qualitative paper shapes on reduced workloads: who wins, in which
//! direction, and where the effects vanish. The full-scale numbers live in
//! the bench harness and `EXPERIMENTS.md`; these tests pin the directions
//! so a regression cannot silently flip a conclusion.

use cvliw::prelude::*;
use cvliw::sim::IpcAccumulator;

const LOOPS: usize = 4;

fn program_ipc(name: &str, machine: &MachineConfig, opts: &CompileOptions) -> f64 {
    let program = cvliw::workloads::program(name).expect("known program");
    let mut acc = IpcAccumulator::new();
    for l in program.loops.iter().take(LOOPS) {
        let out = compile_loop(&l.ddg, machine, opts).expect("suite loops compile");
        acc.add_loop(
            l.profile.visits,
            l.profile.iterations,
            out.stats.ops_per_iter,
            out.stats.ii,
            out.stats.stage_count,
        );
    }
    acc.ipc()
}

/// Figure 7's headline: the communication-bound programs gain a lot from
/// replication on the 4-cluster, 1-bus machine; mgrid gains almost nothing.
#[test]
fn comm_bound_programs_gain_mgrid_does_not() {
    let machine = MachineConfig::from_spec("4c1b2l64r").unwrap();
    let speedup = |name: &str| {
        program_ipc(name, &machine, &CompileOptions::replicate())
            / program_ipc(name, &machine, &CompileOptions::baseline())
    };
    let su2cor = speedup("su2cor");
    let mgrid = speedup("mgrid");
    assert!(su2cor > 1.10, "su2cor should gain notably, got {su2cor:.3}");
    assert!(
        mgrid < su2cor,
        "mgrid ({mgrid:.3}) must gain less than su2cor ({su2cor:.3})"
    );
    assert!(mgrid < 1.10, "mgrid barely gains, got {mgrid:.3}");
}

/// Figure 8: mgrid's clustered IPC stays near the unified machine's.
#[test]
fn mgrid_clustered_is_close_to_unified() {
    let unified = program_ipc(
        "mgrid",
        &MachineConfig::unified(256),
        &CompileOptions::baseline(),
    );
    for spec in ["2c1b2l64r", "4c1b2l64r", "4c2b2l64r"] {
        let machine = MachineConfig::from_spec(spec).unwrap();
        let clustered = program_ipc("mgrid", &machine, &CompileOptions::baseline());
        assert!(
            clustered > 0.85 * unified,
            "{spec}: mgrid IPC {clustered:.2} far below unified {unified:.2}"
        );
    }
}

/// Figure 9's discussion: applu's short trip counts mute the IPC effect of
/// replication relative to a long-trip-count program with similar coupling.
#[test]
fn applu_gains_less_than_long_trip_programs() {
    let machine = MachineConfig::from_spec("4c1b2l64r").unwrap();
    let speedup = |name: &str| {
        program_ipc(name, &machine, &CompileOptions::replicate())
            / program_ipc(name, &machine, &CompileOptions::baseline())
    };
    let applu = speedup("applu");
    let swim = speedup("swim");
    assert!(
        applu < swim,
        "applu ({applu:.3}) must gain less than swim ({swim:.3}): trip count ~4"
    );
}

/// Figure 1's direction: when the baseline scheduler raises the II beyond
/// the MII on a communication-heavy program, the bus is the main culprit.
#[test]
fn bus_dominates_ii_increases() {
    let machine = MachineConfig::from_spec("4c1b2l64r").unwrap();
    let program = cvliw::workloads::program("su2cor").unwrap();
    let mut bus = 0u64;
    let mut other = 0u64;
    for l in program.loops.iter().take(8) {
        let out = compile_loop(&l.ddg, &machine, &CompileOptions::baseline()).unwrap();
        bus += u64::from(out.stats.causes.bus);
        other += u64::from(
            out.stats.causes.recurrence + out.stats.causes.registers + out.stats.causes.resources,
        );
    }
    assert!(bus > 0, "su2cor loops must be communication-bound");
    assert!(
        bus >= other,
        "bus ({bus}) should dominate other causes ({other})"
    );
}

/// §6's related-work ordering: the restricted value-cloning technique of
/// Kuras et al. [17] sits between the baseline and full subgraph
/// replication on a communication-bound program.
#[test]
fn value_cloning_sits_between_baseline_and_replication() {
    let machine = MachineConfig::from_spec("4c1b2l64r").unwrap();
    let ipc = |opts: &CompileOptions| program_ipc("su2cor", &machine, opts);
    let base = ipc(&CompileOptions::baseline());
    let clone = ipc(&CompileOptions::value_clone());
    let repl = ipc(&CompileOptions::replicate());
    assert!(
        base <= clone * 1.001,
        "cloning must not lose to baseline: {base:.3} vs {clone:.3}"
    );
    assert!(
        clone <= repl * 1.001,
        "full replication must not lose to cloning: {clone:.3} vs {repl:.3}"
    );
}

/// §4's cost claim: replication adds only a small fraction of extra
/// instructions.
#[test]
fn replication_overhead_is_small() {
    let machine = MachineConfig::from_spec("4c1b2l64r").unwrap();
    let mut original = 0u64;
    let mut added = 0u64;
    for program in cvliw::workloads::suite_subset(3) {
        for l in &program.loops {
            let out = compile_loop(&l.ddg, &machine, &CompileOptions::replicate()).unwrap();
            let w = l.profile.total_iterations();
            original += w * u64::from(out.stats.ops_per_iter);
            let net: u32 = out.stats.replication.net_added_by_class().iter().sum();
            added += w * u64::from(net);
        }
    }
    let overhead = added as f64 / original as f64;
    assert!(
        overhead < 0.15,
        "added-instruction overhead too large: {overhead:.3}"
    );
}
