//! §2.1 extension: the whole pipeline (partition → replicate → schedule →
//! verify → simulate) on machines whose clusters have *different*
//! functional-unit mixes.

use cvliw::machine::{FuCounts, LatencyTable, MachineConfig};
use cvliw::prelude::*;
use cvliw::replicate::compile_loop;
use cvliw::replicate::CompileOptions;

/// An fp-compute cluster plus an int/mem "address engine" cluster.
fn fp_int_machine(buses: u8) -> MachineConfig {
    MachineConfig::heterogeneous(
        vec![
            FuCounts {
                int: 0,
                fp: 3,
                mem: 1,
            },
            FuCounts {
                int: 3,
                fp: 0,
                mem: 2,
            },
        ],
        buses,
        2,
        64,
        LatencyTable::PAPER,
    )
    .expect("valid heterogeneous machine")
}

/// A loop with clearly separated int (address) and fp (compute) work.
fn mixed_loop() -> Ddg {
    let mut b = Ddg::builder();
    let iv = b.add_labeled(OpKind::IntAdd, "iv");
    b.data_dist(iv, iv, 1);
    let a0 = b.add_labeled(OpKind::IntAdd, "a0");
    let a1 = b.add_labeled(OpKind::IntAdd, "a1");
    b.data(iv, a0).data(iv, a1);
    let x = b.add_labeled(OpKind::Load, "x");
    let y = b.add_labeled(OpKind::Load, "y");
    b.data(a0, x).data(a1, y);
    let m = b.add_labeled(OpKind::FpMul, "m");
    let s = b.add_labeled(OpKind::FpAdd, "s");
    b.data(x, m).data(y, m).data(m, s).data_dist(s, s, 1); // s accumulates
    let st = b.add_labeled(OpKind::Store, "st");
    b.data(s, st).data(a0, st);
    b.build().unwrap()
}

#[test]
fn heterogeneous_machine_compiles_and_verifies() {
    let ddg = mixed_loop();
    let machine = fp_int_machine(1);
    let out = compile_loop(&ddg, &machine, &CompileOptions::replicate()).expect("compiles");
    out.schedule.verify(&ddg, &machine).expect("schedule legal");
}

#[test]
fn zero_capacity_clusters_never_receive_ops() {
    let ddg = mixed_loop();
    let machine = fp_int_machine(1);
    let out = compile_loop(&ddg, &machine, &CompileOptions::replicate()).unwrap();
    for ((n, c), _) in out.schedule.instances() {
        let class = ddg.kind(n).class();
        assert!(
            machine.fu_count_in(c, class) > 0,
            "{} (class {class:?}) landed in cluster {c} which has no such units",
            ddg.display_label(n)
        );
    }
}

#[test]
fn fp_work_lands_in_the_fp_cluster() {
    let ddg = mixed_loop();
    let machine = fp_int_machine(1);
    let out = compile_loop(&ddg, &machine, &CompileOptions::baseline()).unwrap();
    for n in ddg.node_ids() {
        if ddg.kind(n).is_fp() {
            assert_eq!(
                out.assignment.home(n),
                0,
                "fp op {} must live in cluster 0",
                ddg.display_label(n)
            );
        }
    }
}

#[test]
fn heterogeneous_simulation_matches_reference() {
    let ddg = mixed_loop();
    let machine = fp_int_machine(1);
    let out = compile_loop(&ddg, &machine, &CompileOptions::replicate()).unwrap();
    cvliw::sim::simulate(&ddg, &machine, &out.schedule, 12).expect("lockstep execution agrees");
}

#[test]
fn baseline_needs_communication_replication_can_remove_it() {
    // The int address values are consumed by loads in the mem-rich cluster
    // *and* by the store; with one bus the partition communicates. The
    // cloneable induction chain is exactly what replication (or value
    // cloning) removes — but int replicas can only go where int units
    // exist, so capacity constraints stay honest.
    let ddg = mixed_loop();
    let machine = fp_int_machine(1);
    let base = compile_loop(&ddg, &machine, &CompileOptions::baseline()).unwrap();
    let repl = compile_loop(&ddg, &machine, &CompileOptions::replicate()).unwrap();
    assert!(
        repl.stats.ii <= base.stats.ii,
        "replication never hurts the II"
    );
    assert!(repl.stats.final_coms <= base.stats.final_coms);
}

#[test]
fn replication_respects_per_cluster_capacity() {
    let ddg = mixed_loop();
    let machine = fp_int_machine(1);
    let out = compile_loop(&ddg, &machine, &CompileOptions::replicate()).unwrap();
    // No int instance may exist in cluster 0 (0 int units), no fp in 1.
    for n in ddg.node_ids() {
        let inst = out.assignment.instances(n);
        match ddg.kind(n).class() {
            OpClass::Int => assert!(!inst.contains(0)),
            OpClass::Fp => assert!(!inst.contains(1)),
            OpClass::Mem => {}
        }
    }
}

#[test]
fn three_way_heterogeneous_machine_works() {
    // fp cluster, int cluster, mem cluster — extreme specialization.
    let machine = MachineConfig::heterogeneous(
        vec![
            FuCounts {
                int: 0,
                fp: 4,
                mem: 0,
            },
            FuCounts {
                int: 4,
                fp: 0,
                mem: 0,
            },
            FuCounts {
                int: 0,
                fp: 0,
                mem: 4,
            },
        ],
        2,
        2,
        64,
        LatencyTable::PAPER,
    )
    .unwrap();
    let ddg = mixed_loop();
    let out = compile_loop(&ddg, &machine, &CompileOptions::replicate()).expect("compiles");
    out.schedule.verify(&ddg, &machine).unwrap();
    // Every value chain crosses clusters here, so communication is heavy;
    // the II must grow well beyond a homogeneous machine's.
    assert!(
        out.stats.final_coms > 0,
        "fully specialized clusters must communicate"
    );
}
