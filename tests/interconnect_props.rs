//! Property-based pinning of the interconnect refactor.
//!
//! PR 5 lifted the shared-bus arithmetic that used to live inline in ten
//! files (`bus_coms = ⌊II/bus_lat⌋·nof_buses` and its inverse, §3 of the
//! paper) into the [`cvliw::machine::Interconnect`] abstraction. These
//! properties pin the new methods against the **old closed forms written
//! out literally**, on random shared-bus machines — the observational
//! purity argument for every downstream consumer — and check the
//! capacity/inverse contract on the new point-to-point fabrics.

use cvliw::machine::{FuCounts, Interconnect, LatencyTable, MachineConfig, PtpShape};
use proptest::prelude::*;

fn arb_shared_bus() -> impl Strategy<Value = MachineConfig> {
    (
        prop_oneof![Just(1u8), Just(2u8), Just(4u8)],
        0u8..=4,
        1u32..=5,
        any::<bool>(),
    )
        .prop_map(|(clusters, buses, bus_lat, pipelined)| {
            let per = 4 / clusters;
            let m = MachineConfig::new(
                clusters,
                buses,
                bus_lat,
                64,
                FuCounts {
                    int: per,
                    fp: per,
                    mem: per,
                },
                LatencyTable::PAPER,
            )
            .expect("valid machine");
            if pipelined {
                m.with_pipelined_buses()
            } else {
                m
            }
        })
}

fn arb_ptp() -> impl Strategy<Value = MachineConfig> {
    (
        prop_oneof![Just(2u8), Just(4u8)],
        prop_oneof![Just(PtpShape::Ring), Just(PtpShape::Crossbar)],
        1u32..=4,
    )
        .prop_map(|(clusters, shape, hop_latency)| {
            let per = 4 / clusters;
            MachineConfig::clustered(
                vec![
                    FuCounts {
                        int: per,
                        fp: per,
                        mem: per,
                    };
                    clusters as usize
                ],
                Interconnect::PointToPoint { shape, hop_latency },
                64,
                LatencyTable::PAPER,
            )
            .expect("valid machine")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The new capacity/inverse/latency methods reproduce the seed tree's
    /// shared-bus arithmetic bit for bit.
    #[test]
    fn shared_bus_arithmetic_matches_the_old_closed_forms(
        m in arb_shared_bus(),
        ii in 1u32..=40,
        ncoms in 0u32..=40,
    ) {
        // Old `bus_occupancy`: 1 when pipelined, the bus latency otherwise.
        let old_occ = if m.pipelined_buses() { 1 } else { m.bus_latency() };
        prop_assert_eq!(m.bus_occupancy(), old_occ);

        // Old `bus_coms_per_ii`: floor(II/occ)·buses, 0 without buses.
        let old_capacity = if m.buses() == 0 {
            0
        } else {
            (ii / old_occ) * u32::from(m.buses())
        };
        prop_assert_eq!(m.coms_capacity_per_ii(ii), old_capacity);

        // Old `min_ii_for_coms`: occ·ceil(n/buses), None when impossible.
        let old_min_ii = if ncoms == 0 {
            Some(0)
        } else if m.buses() == 0 {
            None
        } else {
            Some(old_occ * ncoms.div_ceil(u32::from(m.buses())))
        };
        prop_assert_eq!(m.min_ii_for_coms(ncoms), old_min_ii);

        // The driver's PR 4 skip bound was `min_ii_for_coms(n).unwrap_or(MAX)`.
        prop_assert_eq!(
            m.closed_form_min_ii_for_coms(ncoms),
            old_min_ii.unwrap_or(u32::MAX)
        );

        // Every pair pays the flat bus latency; links are the buses.
        prop_assert_eq!(m.links(), u32::from(m.buses()));
        prop_assert_eq!(m.uniform_transfer_latency(), Some(m.bus_latency()));
        prop_assert_eq!(m.max_transfer_latency(), m.bus_latency());
        for s in m.cluster_ids() {
            for d in m.cluster_ids() {
                if s != d {
                    prop_assert_eq!(m.transfer_latency(s, d), m.bus_latency());
                    prop_assert_eq!(m.link_occupancy(s, d), old_occ);
                }
            }
        }
    }

    /// On point-to-point fabrics: capacity is monotone in the II,
    /// `min_ii_for_coms` is its exact inverse, the skip bound disarms, and
    /// per-pair latency scales with hop distance symmetrically.
    #[test]
    fn point_to_point_capacity_inverse_holds(
        m in arb_ptp(),
        ncoms in 0u32..=60,
    ) {
        for ii in 1u32..=30 {
            prop_assert!(m.coms_capacity_per_ii(ii) <= m.coms_capacity_per_ii(ii + 1));
        }
        let ii = m.min_ii_for_coms(ncoms).expect("links exist");
        prop_assert!(ncoms == 0 || m.coms_capacity_per_ii(ii) >= ncoms);
        if ii > 0 {
            prop_assert!(m.coms_capacity_per_ii(ii - 1) < ncoms);
        }
        prop_assert_eq!(m.closed_form_min_ii_for_coms(ncoms), 0, "skip must disarm");

        let hop = m.bus_latency();
        for s in m.cluster_ids() {
            for d in m.cluster_ids() {
                if s == d {
                    continue;
                }
                let lat = m.transfer_latency(s, d);
                prop_assert_eq!(lat, m.transfer_latency(d, s), "symmetric");
                prop_assert!(lat >= hop && lat <= m.max_transfer_latency());
                prop_assert_eq!(m.link_occupancy(s, d), lat, "links are unpipelined");
            }
        }
    }

    /// The whole pipeline on topology machines: every mode compiles a
    /// random coupled loop into a verifying schedule whose communications
    /// respect the aggregate capacity.
    #[test]
    fn topology_machines_compile_random_loops(
        seed in 0u64..400,
        m in arb_ptp(),
    ) {
        use cvliw::prelude::*;
        use cvliw::workloads::{generate_loop, GeneratorParams};
        let generated = generate_loop(seed, &GeneratorParams::medium()).expect("generator is total");
        let out = compile_loop(&generated.ddg, &m, &CompileOptions::replicate())
            .expect("topology machines compile");
        out.schedule.verify(&generated.ddg, &m).expect("schedule verifies");
        prop_assert!(out.stats.final_coms <= m.coms_capacity_per_ii(out.stats.ii));
    }
}
