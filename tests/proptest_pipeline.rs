//! Property-based testing of the whole pipeline: random loop bodies and
//! random clustered machines, compiled with replication, must always yield
//! verifiable, functionally correct schedules with consistent statistics.

use cvliw::prelude::*;
use cvliw::sim::simulate;
use cvliw::workloads::{generate_loop, GeneratorParams};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = GeneratorParams> {
    (
        (1usize..=6, 1usize..=5),
        0.0f64..0.6,
        0.0f64..1.0,
        0.0f64..0.3,
        0.0f64..1.0,
    )
        .prop_map(
            |((chains, depth), coupling, shared_addr, recurrence, store)| GeneratorParams {
                chains: (chains, chains + 2),
                depth: (depth, depth + 2),
                coupling,
                shared_addr,
                recurrence,
                store,
                ..GeneratorParams::medium()
            },
        )
}

fn arb_machine() -> impl Strategy<Value = MachineConfig> {
    (
        prop_oneof![Just(1u8), Just(2u8), Just(4u8)],
        1u8..=4,
        1u32..=4,
        prop_oneof![Just(32u32), Just(64u32), Just(128u32)],
    )
        .prop_map(|(clusters, buses, bus_lat, regs)| {
            let per = 4 / clusters;
            MachineConfig::new(
                clusters,
                buses,
                bus_lat,
                regs,
                cvliw::machine::FuCounts {
                    int: per,
                    fp: per,
                    mem: per,
                },
                cvliw::machine::LatencyTable::PAPER,
            )
            .expect("valid machine")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn replication_pipeline_is_sound(
        seed in 0u64..10_000,
        params in arb_params(),
        machine in arb_machine(),
    ) {
        let generated = generate_loop(seed, &params).expect("generator is total");
        let ddg = generated.ddg;

        let out = compile_loop(&ddg, &machine, &CompileOptions::replicate())
            .expect("every generated loop compiles");
        // Schedule legality: resources, latencies, value routing, registers.
        out.schedule.verify(&ddg, &machine).expect("schedule verifies");

        // Statistics consistency.
        let s = &out.stats;
        prop_assert!(s.ii >= s.mii);
        prop_assert_eq!(s.causes.total(), s.ii - s.mii);
        prop_assert!(s.final_coms <= machine.coms_capacity_per_ii(s.ii));
        prop_assert_eq!(
            s.instances_per_iter,
            s.ops_per_iter + s.replication.added_instances()
                - s.replication.removed_instances
        );

        // Functional equivalence across a few pipeline fills.
        let iters = u64::from(out.schedule.stage_count()) + 2;
        let report = simulate(&ddg, &machine, &out.schedule, iters)
            .expect("replicated code computes reference values on time");
        prop_assert!(report.makespan <= report.texec_formula);
    }

    #[test]
    fn replication_dominates_baseline(
        seed in 0u64..10_000,
        coupling in 0.0f64..0.6,
    ) {
        let params = GeneratorParams { coupling, ..GeneratorParams::medium() };
        let ddg = generate_loop(seed, &params).expect("generator is total").ddg;
        let machine = MachineConfig::from_spec("4c1b2l64r").expect("spec parses");
        let base = compile_loop(&ddg, &machine, &CompileOptions::baseline())
            .expect("baseline compiles");
        let repl = compile_loop(&ddg, &machine, &CompileOptions::replicate())
            .expect("replication compiles");
        prop_assert!(repl.stats.ii <= base.stats.ii);
        // Communication counts only compare at the same II: a lower II has
        // less bus bandwidth but fewer cycles, and replication may leave
        // more copies there while still being faster overall.
        if repl.stats.ii == base.stats.ii {
            prop_assert!(repl.stats.final_coms <= base.stats.final_coms);
        }
    }

    #[test]
    fn stores_are_never_replicated(
        seed in 0u64..10_000,
    ) {
        let params = GeneratorParams { coupling: 0.5, ..GeneratorParams::medium() };
        let ddg = generate_loop(seed, &params).expect("generator is total").ddg;
        let machine = MachineConfig::from_spec("4c1b2l64r").expect("spec parses");
        let out = compile_loop(&ddg, &machine, &CompileOptions::replicate())
            .expect("compiles");
        for n in ddg.node_ids() {
            if ddg.kind(n) == OpKind::Store {
                prop_assert_eq!(out.assignment.instances(n).len(), 1);
            } else {
                prop_assert!(!out.assignment.instances(n).is_empty());
            }
        }
    }
}
