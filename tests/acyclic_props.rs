//! Property tests for the §6 acyclic scheduler: dependences, functional-unit
//! capacity and bus occupancy hold on arbitrary DAGs and partitions, and
//! critical-path replication never makes a block slower.

use cvliw::machine::MachineConfig;
use cvliw::prelude::*;
use cvliw::replicate::{replicate_for_acyclic_length, schedule_acyclic, AcyclicSchedule};
use cvliw::sched::Assignment;
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = OpKind> {
    prop::sample::select(OpKind::ALL.to_vec())
}

/// Random DAGs: only forward, distance-0 edges.
fn arb_dag() -> impl Strategy<Value = Ddg> {
    let nodes = prop::collection::vec(arb_kind(), 1..12);
    nodes
        .prop_flat_map(|kinds| {
            let n = kinds.len();
            let edges = prop::collection::vec((0..n, 0..n, prop::bool::ANY), 0..(2 * n));
            (Just(kinds), edges)
        })
        .prop_map(|(kinds, edges)| {
            let mut b = Ddg::builder();
            let ids: Vec<_> = kinds.iter().map(|&k| b.add_node(k)).collect();
            for (src, dst, mem) in edges {
                if src >= dst {
                    continue;
                }
                let kind = if mem || !kinds[src].produces_value() {
                    DepKind::Mem
                } else {
                    DepKind::Data
                };
                b.edge(ids[src], ids[dst], kind, 0);
            }
            b.build().expect("valid by construction")
        })
}

fn arb_machine() -> impl Strategy<Value = MachineConfig> {
    prop::sample::select(vec!["2c1b2l64r", "4c1b2l64r", "4c2b4l64r"])
        .prop_map(|s| MachineConfig::from_spec(s).expect("valid"))
}

/// Random single-instance assignment for `n` nodes over `clusters`.
fn random_partition(n: usize, clusters: u8, seed: u64) -> Assignment {
    let mut state = seed | 1;
    let v: Vec<u8> = (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % u64::from(clusters)) as u8
        })
        .collect();
    Assignment::from_partition(&v)
}

/// Checks every schedule invariant reachable through the public API.
fn check_schedule(
    ddg: &Ddg,
    machine: &MachineConfig,
    assignment: &Assignment,
    s: &AcyclicSchedule,
) -> Result<(), TestCaseError> {
    let mut fu: std::collections::BTreeMap<(u8, usize, u32), u32> = Default::default();
    for n in ddg.node_ids() {
        for c in assignment.instances(n).iter() {
            let t = s.instance_cycle(n, c).expect("every instance is scheduled");
            // FU capacity.
            let class = ddg.kind(n).class();
            let k = fu.entry((c, class.index(), t)).or_insert(0);
            *k += 1;
            prop_assert!(
                *k <= u32::from(machine.fu_count_in(c, class)),
                "cluster {c} class {class} oversubscribed at cycle {t}"
            );
            // Dependences.
            for e in ddg.in_edges(n) {
                if e.is_data() {
                    let arrival = if assignment.instances(e.src).contains(c) {
                        s.instance_cycle(e.src, c).expect("scheduled")
                            + machine.latency(ddg.kind(e.src))
                    } else {
                        let (tc, _) = s
                            .copy_of(e.src)
                            .expect("cross-cluster value must be copied");
                        tc + machine.bus_latency()
                    };
                    prop_assert!(
                        arrival <= t,
                        "{} arrives at {arrival} but {} issues at {t} in cluster {c}",
                        e.src,
                        e.dst
                    );
                } else {
                    for cu in assignment.instances(e.src).iter() {
                        let done = s.instance_cycle(e.src, cu).expect("scheduled")
                            + machine.latency(ddg.kind(e.src));
                        prop_assert!(done <= t, "memory ordering violated");
                    }
                }
            }
        }
    }
    // Bus occupancy: copies on one bus never overlap.
    let mut copies: Vec<(u8, u32)> = ddg
        .node_ids()
        .filter_map(|n| s.copy_of(n).map(|(t, b)| (b, t)))
        .collect();
    copies.sort_unstable();
    for w in copies.windows(2) {
        if w[0].0 == w[1].0 {
            prop_assert!(
                w[0].1 + machine.bus_latency() <= w[1].1,
                "bus {} transfers overlap at {} and {}",
                w[0].0,
                w[0].1,
                w[1].1
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn acyclic_schedules_satisfy_all_constraints(
        ddg in arb_dag(),
        machine in arb_machine(),
        seed in any::<u64>(),
    ) {
        let asg = random_partition(ddg.node_count(), machine.clusters(), seed);
        let s = schedule_acyclic(&ddg, &machine, &asg).expect("DAGs always schedule");
        check_schedule(&ddg, &machine, &asg, &s)?;
        prop_assert_eq!(s.op_count(), asg.instance_count());
    }

    #[test]
    fn replication_never_lengthens_a_block(
        ddg in arb_dag(),
        machine in arb_machine(),
        seed in any::<u64>(),
    ) {
        let asg = random_partition(ddg.node_count(), machine.clusters(), seed);
        let before = schedule_acyclic(&ddg, &machine, &asg).expect("schedules");
        let (improved, after) =
            replicate_for_acyclic_length(&ddg, &machine, asg).expect("schedules");
        prop_assert!(
            after.length() <= before.length(),
            "replication lengthened the block: {} -> {}",
            before.length(),
            after.length()
        );
        check_schedule(&ddg, &machine, &improved, &after)?;
    }

    #[test]
    fn single_cluster_blocks_never_communicate(ddg in arb_dag()) {
        let machine = MachineConfig::unified(256);
        let asg = Assignment::from_partition(&vec![0u8; ddg.node_count()]);
        let s = schedule_acyclic(&ddg, &machine, &asg).expect("schedules");
        prop_assert_eq!(s.copy_count(), 0);
    }
}
