//! Differential functional validation: for random loops, every compilation
//! mode (baseline, value cloning, replication, §5.1 extension) must produce
//! a schedule that (a) verifies statically, (b) executes in lockstep with
//! every operand arriving on time, and (c) recomputes exactly the reference
//! value in **every** cluster holding a replica — i.e. replication never
//! changes what the loop computes.

use cvliw::machine::{FuCounts, LatencyTable, MachineConfig};
use cvliw::prelude::*;
use cvliw::replicate::{compile_loop, CompileOptions, Mode};
use cvliw::sim::simulate;
use proptest::prelude::*;

/// Random loop bodies shaped like compiler output: an induction chain, a
/// few address computations, load/compute/store chains with occasional
/// cross-links and reductions.
fn arb_loop() -> impl Strategy<Value = Ddg> {
    (2usize..5, 1u32..4, any::<u64>()).prop_map(|(chains, coupling, seed)| {
        // Deterministic pseudo-random structure from the seed, no rand
        // dependency needed.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = Ddg::builder();
        let iv = b.add_labeled(OpKind::IntAdd, "iv");
        b.data_dist(iv, iv, 1);
        let mut producers = vec![iv];
        for chain in 0..chains {
            let addr = b.add_labeled(OpKind::IntAdd, format!("a{chain}"));
            b.data(iv, addr);
            let ld = b.add_labeled(OpKind::Load, format!("x{chain}"));
            b.data(addr, ld);
            let mut cur = ld;
            let ops = 1 + (next() as usize % 3);
            for k in 0..ops {
                let kind = match next() % 4 {
                    0 => OpKind::FpAdd,
                    1 => OpKind::FpMul,
                    2 => OpKind::IntAdd,
                    _ => OpKind::FpAbs,
                };
                let n = b.add_labeled(kind, format!("c{chain}_{k}"));
                b.data(cur, n);
                // Occasionally read another chain's producer too.
                if coupling > 1 && next() % u64::from(coupling) == 0 {
                    let extra = producers[next() as usize % producers.len()];
                    b.data(extra, n);
                }
                producers.push(n);
                cur = n;
            }
            // Half the chains accumulate (loop-carried self dependence).
            if next() % 2 == 0 {
                b.data_dist(cur, cur, 1);
            }
            let st = b.add_labeled(OpKind::Store, format!("s{chain}"));
            b.data(cur, st).data(addr, st);
        }
        b.build().expect("generator output is valid")
    })
}

fn arb_machine() -> impl Strategy<Value = MachineConfig> {
    prop_oneof![
        prop::sample::select(vec![
            "2c1b2l64r",
            "2c2b4l64r",
            "4c1b2l64r",
            "4c2b4l64r",
            "4c2b2l64r",
            "4c4b4l64r",
        ])
        .prop_map(|s| MachineConfig::from_spec(s).expect("valid spec")),
        Just(MachineConfig::unified(256)),
        Just(
            MachineConfig::heterogeneous(
                vec![
                    FuCounts {
                        int: 1,
                        fp: 3,
                        mem: 2
                    },
                    FuCounts {
                        int: 3,
                        fp: 1,
                        mem: 2
                    },
                ],
                2,
                2,
                64,
                LatencyTable::PAPER,
            )
            .expect("valid heterogeneous machine")
        ),
    ]
}

/// Modes whose schedules are executable (zero-bus is intentionally
/// optimistic and excluded by design).
const EXECUTABLE_MODES: [Mode; 4] = [
    Mode::Baseline,
    Mode::ValueClone,
    Mode::Replicate,
    Mode::ReplicateSchedLen,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_mode_verifies_and_executes(ddg in arb_loop(), machine in arb_machine()) {
        for mode in EXECUTABLE_MODES {
            let opts = CompileOptions { mode, max_ii: None };
            let out = compile_loop(&ddg, &machine, &opts)
                .unwrap_or_else(|e| panic!("{mode:?} failed to compile: {e}"));
            out.schedule
                .verify(&ddg, &machine)
                .unwrap_or_else(|e| panic!("{mode:?} schedule invalid: {e}"));
            let report = simulate(&ddg, &machine, &out.schedule, 6)
                .unwrap_or_else(|e| panic!("{mode:?} execution failed: {e}"));
            prop_assert!(report.values_checked > 0 || ddg.edge_count() == 0);
            prop_assert!(report.makespan <= report.texec_formula);
        }
    }

    #[test]
    fn replication_preserves_instruction_accounting(
        ddg in arb_loop(),
        machine in arb_machine(),
    ) {
        let out = compile_loop(&ddg, &machine, &CompileOptions::replicate()).unwrap();
        let s = &out.stats;
        // Stores are never replicated (§3.1).
        let store_instances: u32 = ddg
            .stores()
            .map(|st| out.assignment.instances(st).len())
            .sum();
        prop_assert_eq!(store_instances, ddg.stores().count() as u32);
        // The schedule holds exactly the assignment's instances.
        prop_assert_eq!(s.instances_per_iter, out.assignment.instance_count());
        // Replication may only *remove* communications.
        prop_assert!(s.final_coms <= s.partition_coms);
    }

    #[test]
    fn replication_never_hurts_ii_or_comms(ddg in arb_loop(), machine in arb_machine()) {
        let base = compile_loop(&ddg, &machine, &CompileOptions::baseline()).unwrap();
        let repl = compile_loop(&ddg, &machine, &CompileOptions::replicate()).unwrap();
        prop_assert!(repl.stats.ii <= base.stats.ii,
            "replication raised the II: {} vs {}", repl.stats.ii, base.stats.ii);
        let clone = compile_loop(&ddg, &machine, &CompileOptions::value_clone()).unwrap();
        prop_assert!(clone.stats.ii <= base.stats.ii,
            "value cloning raised the II: {} vs {}", clone.stats.ii, base.stats.ii);
        // The restricted technique can never beat full replication on
        // communications removed at the same II.
        if clone.stats.ii == repl.stats.ii {
            prop_assert!(repl.stats.final_coms <= clone.stats.final_coms + 1,
                "subgraph replication should remove at least as much as cloning");
        }
    }

    #[test]
    fn registers_allocate_within_the_file(ddg in arb_loop(), machine in arb_machine()) {
        // Every accepted schedule must be register-allocatable on a
        // rotating file: at least MaxLive registers, and — for these loop
        // sizes against the paper's 64-register files — within the file
        // (first-fit can fragment slightly past MaxLive, but nowhere near
        // the 64-register headroom these bodies leave).
        let out = compile_loop(&ddg, &machine, &CompileOptions::replicate()).unwrap();
        let alloc = cvliw::sched::allocate_registers(&out.schedule, &ddg, &machine)
            .unwrap_or_else(|e| panic!("allocation failed: {e}"));
        let pressure = cvliw::sched::max_live(&out.schedule, &ddg, &machine);
        for (c, (&used, &need)) in
            alloc.registers_used().iter().zip(pressure.iter()).enumerate()
        {
            prop_assert!(used >= need, "cluster {c}: used {used} < MaxLive {need}");
            prop_assert!(
                used <= machine.regs_per_cluster(),
                "cluster {c}: used {used} registers of {}",
                machine.regs_per_cluster()
            );
        }
    }

    #[test]
    fn expansion_matches_the_analytic_model(ddg in arb_loop(), n in 1u64..24) {
        let machine = MachineConfig::from_spec("4c2b4l64r").expect("valid spec");
        let out = compile_loop(&ddg, &machine, &CompileOptions::replicate()).unwrap();
        let trace = cvliw::sched::expand(&out.schedule, n);
        prop_assert_eq!(trace.cycles(), out.schedule.texec(n));
        prop_assert_eq!(
            trace.issued_ops(),
            n * u64::from(out.schedule.op_count() + out.schedule.copy_count())
        );
    }

    #[test]
    fn verifier_rejects_transfers_longer_than_the_kernel(
        ddg in arb_loop(),
    ) {
        // Metamorphic failure injection: compile for a 2-cycle bus, then
        // claim the bus takes 6 cycles. When the kernel is shorter than one
        // transfer (II < 6), the copy cannot fit at all, so the static
        // verifier must reject any schedule that uses a bus. (With II ≥ 6 a
        // slack-rich schedule may legitimately tolerate the slower bus —
        // that case is not an error.)
        let fast = MachineConfig::from_spec("4c1b2l64r").expect("valid spec");
        let slow = MachineConfig::from_spec("4c1b6l64r").expect("valid spec");
        let out = compile_loop(&ddg, &fast, &CompileOptions::baseline()).unwrap();
        prop_assume!(out.stats.final_coms > 0 && out.stats.ii < 6);
        prop_assert!(
            out.schedule.verify(&ddg, &slow).is_err(),
            "a 6-cycle transfer cannot fit an II-{} kernel",
            out.stats.ii
        );
    }
}

#[test]
fn simulation_catches_understated_operation_latencies() {
    // Compile against unit latencies (everything takes 1 cycle), then
    // execute under the paper's Table-1 latencies. A dependent chain
    // scheduled back-to-back must now violate the load's 2-cycle latency.
    use cvliw::machine::LatencyTable;
    let mut b = Ddg::builder();
    let ld = b.add_node(OpKind::Load);
    let m = b.add_node(OpKind::FpMul);
    let st = b.add_node(OpKind::Store);
    b.data(ld, m).data(m, st);
    let ddg = b.build().unwrap();

    let optimistic = MachineConfig::new(
        1,
        0,
        1,
        64,
        FuCounts {
            int: 4,
            fp: 4,
            mem: 4,
        },
        LatencyTable::UNIT,
    )
    .unwrap();
    let honest = MachineConfig::unified(64);

    let out = compile_loop(&ddg, &optimistic, &CompileOptions::baseline()).unwrap();
    simulate(&ddg, &optimistic, &out.schedule, 4).expect("consistent machine passes");
    let err = simulate(&ddg, &honest, &out.schedule, 4)
        .expect_err("a unit-latency schedule cannot satisfy Table-1 latencies");
    assert!(
        matches!(err, cvliw::sim::SimError::LatencyViolated { .. }),
        "{err}"
    );
}

#[test]
fn deterministic_compilation() {
    // The whole pipeline is deterministic: compiling twice gives the same
    // II, length, assignment and schedule statistics.
    let machine = MachineConfig::from_spec("4c2b4l64r").unwrap();
    for (_, ddg) in cvliw::workloads::kernels::all() {
        let a = compile_loop(&ddg, &machine, &CompileOptions::replicate()).unwrap();
        let b = compile_loop(&ddg, &machine, &CompileOptions::replicate()).unwrap();
        assert_eq!(a.stats, b.stats);
        let ia: Vec<_> = a.schedule.instances().collect();
        let ib: Vec<_> = b.schedule.instances().collect();
        assert_eq!(ia, ib);
    }
}
