//! End-to-end integration: hand-written kernels through the full pipeline
//! (partition → replicate → schedule → verify → simulate) on every machine
//! configuration of the paper.

use cvliw::machine::paper_specs;
use cvliw::prelude::*;
use cvliw::sim::simulate;
use cvliw::workloads::kernels;

fn configs() -> Vec<MachineConfig> {
    paper_specs()
        .iter()
        .map(|s| MachineConfig::from_spec(s).expect("preset parses"))
        .collect()
}

#[test]
fn every_kernel_compiles_verifies_and_simulates_everywhere() {
    for (name, ddg) in kernels::all() {
        for machine in configs() {
            for opts in [CompileOptions::baseline(), CompileOptions::replicate()] {
                let out = compile_loop(&ddg, &machine, &opts)
                    .unwrap_or_else(|e| panic!("{name} on {machine}: {e}"));
                out.schedule
                    .verify(&ddg, &machine)
                    .unwrap_or_else(|e| panic!("{name} on {machine}: {e}"));
                let iters = u64::from(out.schedule.stage_count()) + 4;
                simulate(&ddg, &machine, &out.schedule, iters)
                    .unwrap_or_else(|e| panic!("{name} on {machine}: {e}"));
            }
        }
    }
}

#[test]
fn replication_never_raises_the_ii() {
    for (name, ddg) in kernels::all() {
        for machine in configs() {
            let base = compile_loop(&ddg, &machine, &CompileOptions::baseline()).unwrap();
            let repl = compile_loop(&ddg, &machine, &CompileOptions::replicate()).unwrap();
            assert!(
                repl.stats.ii <= base.stats.ii,
                "{name} on {machine}: replication II {} > baseline II {}",
                repl.stats.ii,
                base.stats.ii
            );
        }
    }
}

#[test]
fn unified_machine_is_a_practical_upper_bound() {
    let unified = MachineConfig::unified(256);
    for (name, ddg) in kernels::all() {
        let u = compile_loop(&ddg, &unified, &CompileOptions::baseline()).unwrap();
        for machine in configs() {
            let c = compile_loop(&ddg, &machine, &CompileOptions::replicate()).unwrap();
            // The clustered II can never beat the unified II by more than
            // scheduling-heuristic noise (one cycle).
            assert!(
                c.stats.ii + 1 >= u.stats.ii,
                "{name}: clustered {machine} II {} far below unified II {}",
                c.stats.ii,
                u.stats.ii
            );
        }
    }
}

#[test]
fn fir_speedup_grows_with_samples() {
    let ddg = kernels::fir(8);
    let machine = MachineConfig::from_spec("4c1b2l64r").unwrap();
    let base = compile_loop(&ddg, &machine, &CompileOptions::baseline()).unwrap();
    let repl = compile_loop(&ddg, &machine, &CompileOptions::replicate()).unwrap();
    assert!(
        repl.stats.ii < base.stats.ii,
        "FIR is communication-bound on 4c1b"
    );
    // For long-running loops the speedup approaches the II ratio.
    let t_base = base.schedule.texec(100_000) as f64;
    let t_repl = repl.schedule.texec(100_000) as f64;
    let expected = f64::from(base.stats.ii) / f64::from(repl.stats.ii);
    assert!((t_base / t_repl - expected).abs() < 0.01);
}

#[test]
fn dot_product_is_recurrence_bound_not_comm_bound() {
    // The accumulator recurrence pins the II at the fp-add latency; no
    // amount of replication changes that (MII = RecMII = 3).
    let ddg = kernels::dot_product();
    let machine = MachineConfig::from_spec("4c1b2l64r").unwrap();
    let base = compile_loop(&ddg, &machine, &CompileOptions::baseline()).unwrap();
    let repl = compile_loop(&ddg, &machine, &CompileOptions::replicate()).unwrap();
    assert_eq!(base.stats.mii, 3);
    assert_eq!(base.stats.ii, repl.stats.ii);
}

#[test]
fn sched_len_extension_never_lengthens() {
    for (name, ddg) in kernels::all() {
        let machine = MachineConfig::from_spec("4c2b2l64r").unwrap();
        let repl = compile_loop(&ddg, &machine, &CompileOptions::replicate()).unwrap();
        let ext = compile_loop(&ddg, &machine, &CompileOptions::sched_len()).unwrap();
        ext.schedule.verify(&ddg, &machine).unwrap();
        if ext.stats.ii == repl.stats.ii {
            assert!(
                ext.stats.length <= repl.stats.length + 1,
                "{name}: extension length {} vs {}",
                ext.stats.length,
                repl.stats.length
            );
        }
    }
}

#[test]
fn zero_bus_bound_dominates_replication() {
    for (name, ddg) in kernels::all() {
        let machine = MachineConfig::from_spec("4c1b2l64r").unwrap();
        let repl = compile_loop(&ddg, &machine, &CompileOptions::replicate()).unwrap();
        let zero = compile_loop(&ddg, &machine, &CompileOptions::zero_bus()).unwrap();
        let n = 10_000;
        assert!(
            zero.schedule.texec(n) <= repl.schedule.texec(n),
            "{name}: the zero-latency upper bound must not lose"
        );
    }
}
