//! # cvliw — instruction replication for clustered VLIW microarchitectures
//!
//! A faithful, from-scratch Rust reproduction of *"Instruction Replication
//! for Clustered Microarchitectures"* (A. Aletà, J. M. Codina, A. González,
//! D. Kaeli — MICRO-36, 2003), together with every substrate the paper
//! depends on:
//!
//! * [`ddg`] — loop data-dependence graphs with loop-carried edges,
//!   strongly-connected-component and recurrence analysis;
//! * [`machine`] — the clustered VLIW machine model (`wcxbylzr`
//!   configurations, Table-1 functional-unit mix and latencies, register
//!   buses);
//! * [`sched`] — modulo scheduling: MII bounds, swing ordering, modulo
//!   reservation tables, copy insertion, register pressure, pseudo-schedules;
//! * [`partition`] — the multilevel DDG partitioner of the baseline
//!   scheduler (slack-weighted heavy-edge matching, pseudo-schedule guided
//!   refinement);
//! * [`replicate`] — **the paper's contribution**: replication subgraphs,
//!   removable instructions, the weighting heuristic, the selection loop and
//!   the full compilation driver (plus the §5 alternative algorithms);
//! * [`workloads`] — a seeded synthetic stand-in for the paper's 678
//!   SPECfp95 loops with per-program structure and profiles;
//! * [`sim`] — a cycle-level lockstep simulator that validates schedules
//!   functionally and reproduces the paper's `(N-1+SC)·II` timing model;
//! * [`ir`] — a textual loop format (parser + printer) and the `cvliw`
//!   command-line front end;
//! * [`unroll`] — loop unrolling, the code-size-hungry alternative the
//!   paper's related work compares against (reference \[22\]);
//! * [`exp`] — experiment orchestration: the §4 (workload × machine ×
//!   policy) grid, a deterministic parallel suite runner, and the
//!   JSON/CSV/Markdown report emitters behind `cvliw suite` and the
//!   regenerable `docs/RESULTS.md` results book;
//! * [`serve`] — compile-as-a-service: the JSONL protocol,
//!   content-addressed result cache and persistent worker pool behind
//!   `cvliw serve`, pinned byte-identical to one-shot compilation by a
//!   differential test layer.
//!
//! ## Quickstart
//!
//! ```
//! use cvliw::prelude::*;
//!
//! // A tiny loop: two coupled floating-point chains sharing loads.
//! let mut b = Ddg::builder();
//! let i = b.add_node(OpKind::IntAdd);     // induction variable
//! b.data_dist(i, i, 1);
//! let ld = b.add_node(OpKind::Load);
//! let mul = b.add_node(OpKind::FpMul);
//! let acc = b.add_node(OpKind::FpAdd);
//! let st = b.add_node(OpKind::Store);
//! b.data(i, ld).data(ld, mul).data(mul, acc).data(acc, st).data(i, st);
//! let ddg = b.build()?;
//!
//! let machine = MachineConfig::from_spec("4c1b2l64r")?;
//! let compiled = compile_loop(&ddg, &machine, &CompileOptions::replicate())?;
//! assert!(compiled.schedule.verify(&ddg, &machine).is_ok());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cvliw_ddg as ddg;
pub use cvliw_exp as exp;
pub use cvliw_ir as ir;
pub use cvliw_machine as machine;
pub use cvliw_partition as partition;
pub use cvliw_replicate as replicate;
pub use cvliw_sched as sched;
pub use cvliw_serve as serve;
pub use cvliw_sim as sim;
pub use cvliw_unroll as unroll;
pub use cvliw_workloads as workloads;

/// Convenient glob import of the most frequently used items.
pub mod prelude {
    pub use cvliw_ddg::{Ddg, DdgBuilder, DepKind, Edge, NodeId, OpClass, OpKind};
    pub use cvliw_ir::{parse_loop, parse_module, print_loop};
    pub use cvliw_machine::MachineConfig;
    pub use cvliw_partition::partition_loop;
    pub use cvliw_replicate::{compile_loop, CompileOptions, CompiledLoop, Mode};
    pub use cvliw_sched::{Assignment, ClusterSet, Schedule};
    pub use cvliw_sim::{simulate, IpcAccumulator};
    pub use cvliw_workloads::{suite, BenchmarkProgram, WorkloadLoop};
}
