//! Minimal command-line argument parsing (no external dependencies).

use std::collections::HashMap;
use std::fmt;

/// A parsed command line: a subcommand, positional arguments, and
/// `--key value` options.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// The subcommand (first argument).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    options: HashMap<String, String>,
}

/// A command-line usage error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UsageError {
    /// No subcommand given.
    MissingCommand,
    /// `--flag` given without a value.
    MissingValue(String),
    /// An option that no command understands.
    UnknownOption(String),
    /// A required option was not supplied.
    RequiredOption(&'static str),
    /// An option value failed to parse.
    BadValue {
        /// The option name.
        option: String,
        /// The unparseable value.
        value: String,
    },
    /// Wrong number of positional arguments.
    Positional(&'static str),
    /// An option value parsed but is zero where at least 1 is required.
    NotPositive(String),
}

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UsageError::MissingCommand => write!(f, "no command given (try `cvliw help`)"),
            UsageError::MissingValue(o) => write!(f, "option --{o} needs a value"),
            UsageError::UnknownOption(o) => write!(f, "unknown option --{o}"),
            UsageError::RequiredOption(o) => write!(f, "missing required option --{o}"),
            UsageError::BadValue { option, value } => {
                write!(f, "cannot parse `{value}` for --{option}")
            }
            UsageError::Positional(what) => write!(f, "expected {what}"),
            UsageError::NotPositive(o) => write!(f, "--{o} must be at least 1"),
        }
    }
}

impl std::error::Error for UsageError {}

const KNOWN_OPTIONS: [&str; 21] = [
    "cache-path",
    "snapshot-every",
    "machine",
    "mode",
    "loop",
    "max-loops",
    "iterations",
    "seed",
    "jobs",
    "format",
    "out",
    "runs",
    "warmup",
    "budget-ms",
    "refine-seeds",
    "socket",
    "cache-entries",
    "cache-mb",
    "deadline-ms",
    "sessions",
    "max-inflight",
];

/// Options that take no value (stored as `"true"` when present).
const KNOWN_FLAGS: [&str; 3] = ["serve", "restart", "stats"];

impl Args {
    /// Parses raw process arguments (without the executable name).
    pub fn parse(raw: impl IntoIterator<Item = String>) -> Result<Args, UsageError> {
        let mut iter = raw.into_iter();
        let command = iter.next().ok_or(UsageError::MissingCommand)?;
        let mut args = Args {
            command,
            ..Args::default()
        };
        while let Some(a) = iter.next() {
            if let Some(name) = a.strip_prefix("--") {
                if KNOWN_FLAGS.contains(&name) {
                    args.options.insert(name.to_string(), "true".to_string());
                    continue;
                }
                if !KNOWN_OPTIONS.contains(&name) {
                    return Err(UsageError::UnknownOption(name.to_string()));
                }
                let value = iter
                    .next()
                    .ok_or_else(|| UsageError::MissingValue(name.to_string()))?;
                args.options.insert(name.to_string(), value);
            } else {
                args.positional.push(a);
            }
        }
        Ok(args)
    }

    /// An optional string option.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A required string option.
    pub fn require(&self, name: &'static str) -> Result<&str, UsageError> {
        self.get(name).ok_or(UsageError::RequiredOption(name))
    }

    /// An optional numeric option.
    pub fn get_num<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, UsageError> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v.parse::<T>().map(Some).map_err(|_| UsageError::BadValue {
                option: name.to_string(),
                value: v.to_string(),
            }),
        }
    }

    /// An optional numeric option that must be at least 1. Zero (however
    /// spelled — `0`, `00`, …) is a usage error; overflow and garbage are
    /// [`UsageError::BadValue`] like any other number.
    pub fn get_positive_num<T>(&self, name: &str) -> Result<Option<T>, UsageError>
    where
        T: std::str::FromStr + Default + PartialEq,
    {
        match self.get_num::<T>(name)? {
            Some(v) if v == T::default() => Err(UsageError::NotPositive(name.to_string())),
            other => Ok(other),
        }
    }

    /// Whether a value-less flag (e.g. `--serve`) was given.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.get(name) == Some("true")
    }

    /// Exactly one positional argument (the input file).
    pub fn one_positional(&self, what: &'static str) -> Result<&str, UsageError> {
        match self.positional.as_slice() {
            [one] => Ok(one),
            _ => Err(UsageError::Positional(what)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Args, UsageError> {
        Args::parse(words.iter().map(ToString::to_string))
    }

    #[test]
    fn parses_command_options_and_positionals() {
        let a = parse(&[
            "schedule",
            "f.loop",
            "--machine",
            "4c1b2l64r",
            "--mode",
            "replicate",
        ])
        .unwrap();
        assert_eq!(a.command, "schedule");
        assert_eq!(a.one_positional("a file").unwrap(), "f.loop");
        assert_eq!(a.get("machine"), Some("4c1b2l64r"));
        assert_eq!(a.require("mode").unwrap(), "replicate");
    }

    #[test]
    fn missing_command_is_an_error() {
        assert_eq!(parse(&[]).unwrap_err(), UsageError::MissingCommand);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert_eq!(
            parse(&["x", "--machine"]).unwrap_err(),
            UsageError::MissingValue("machine".into())
        );
    }

    #[test]
    fn unknown_option_is_an_error() {
        assert!(matches!(
            parse(&["x", "--wat", "1"]).unwrap_err(),
            UsageError::UnknownOption(_)
        ));
    }

    #[test]
    fn numeric_options_parse_or_error() {
        let a = parse(&["x", "--max-loops", "12"]).unwrap();
        assert_eq!(a.get_num::<usize>("max-loops").unwrap(), Some(12));
        assert_eq!(a.get_num::<usize>("iterations").unwrap(), None);
        let bad = parse(&["x", "--max-loops", "dozen"]).unwrap();
        assert!(bad.get_num::<usize>("max-loops").is_err());
    }

    #[test]
    fn suite_options_are_known() {
        let a = parse(&["suite", "--jobs", "4", "--format", "md", "--out", "-"]).unwrap();
        assert_eq!(a.get_num::<usize>("jobs").unwrap(), Some(4));
        assert_eq!(a.get("format"), Some("md"));
        assert_eq!(a.get("out"), Some("-"));
    }

    #[test]
    fn positive_numbers_reject_zero_and_overflow() {
        let zero = parse(&["suite", "--jobs", "0"]).unwrap();
        assert_eq!(
            zero.get_positive_num::<usize>("jobs").unwrap_err(),
            UsageError::NotPositive("jobs".into())
        );
        let zeros = parse(&["suite", "--jobs", "000"]).unwrap();
        assert!(zeros.get_positive_num::<usize>("jobs").is_err());
        let over = parse(&["bench", "--runs", "99999999999999999999999999"]).unwrap();
        assert!(matches!(
            over.get_positive_num::<u32>("runs").unwrap_err(),
            UsageError::BadValue { .. }
        ));
        let fine = parse(&["suite", "--jobs", "4"]).unwrap();
        assert_eq!(fine.get_positive_num::<usize>("jobs").unwrap(), Some(4));
        let absent = parse(&["suite"]).unwrap();
        assert_eq!(absent.get_positive_num::<usize>("jobs").unwrap(), None);
    }

    #[test]
    fn serve_flag_takes_no_value() {
        let a = parse(&["bench", "--serve", "--jobs", "2"]).unwrap();
        assert!(a.flag("serve"));
        assert_eq!(a.get_num::<usize>("jobs").unwrap(), Some(2));
        assert!(!parse(&["bench"]).unwrap().flag("serve"));
    }

    #[test]
    fn positional_arity_is_checked() {
        let a = parse(&["x", "one", "two"]).unwrap();
        assert!(a.one_positional("a file").is_err());
        let b = parse(&["x"]).unwrap();
        assert!(b.one_positional("a file").is_err());
    }

    #[test]
    fn usage_errors_display_helpfully() {
        assert!(UsageError::RequiredOption("machine")
            .to_string()
            .contains("--machine"));
        assert!(UsageError::BadValue {
            option: "m".into(),
            value: "x".into()
        }
        .to_string()
        .contains("cannot parse"));
    }
}
