//! `cvliw` — command-line front end for the clustered-VLIW modulo scheduler
//! with instruction replication (Aletà et al., MICRO-36 2003).
//!
//! Run `cvliw help` for usage. Loops are written in the `cvliw-ir` text
//! format; see `examples/loops/` for samples.

mod args;
mod commands;
#[cfg(unix)]
mod signals;

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        print!("{}", commands::usage());
        return ExitCode::from(2);
    }
    let parsed = match args::Args::parse(raw) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cvliw: {e}");
            return ExitCode::from(2);
        }
    };
    match commands::run(&parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(commands::CliError::Usage(e)) => {
            eprintln!("cvliw: {e}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("cvliw: {e}");
            ExitCode::FAILURE
        }
    }
}
