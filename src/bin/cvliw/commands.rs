//! Implementations of the `cvliw` subcommands.

use std::fmt;
use std::fs;

use cvliw::ddg::to_dot;
use cvliw::exp::{
    bench_suite, default_jobs, emit, emit_bench_json, run_suite, serve_replay,
    serve_restart_replay, Format, SuiteError, SuiteGrid,
};
use cvliw::ir::{parse_module, print_loop, NamedLoop, ParseError};
use cvliw::machine::{MachineConfig, SpecError};
use cvliw::replicate::{compile_loop, CompileError, CompileOptions, CompiledLoop, Mode};
use cvliw::sched::mii as sched_mii;
use cvliw::sched::res_mii_unclustered;
use cvliw::sim::simulate;

use crate::args::{Args, UsageError};

/// Any failure a subcommand can produce.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Usage(UsageError),
    /// Could not read the input file.
    Io {
        /// The path that failed.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Could not write an output file (`--out`, the results book).
    Write {
        /// The path that failed.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The input file did not parse.
    Parse(ParseError),
    /// The `--machine` spec did not parse.
    Spec(SpecError),
    /// A loop name that the file does not define.
    NoSuchLoop(String),
    /// Compilation failed.
    Compile(CompileError),
    /// Acyclic-region scheduling failed.
    Block(String),
    /// Unknown subcommand.
    UnknownCommand(String),
    /// Unknown `--mode` value.
    UnknownMode(String),
    /// Unknown `--format` value.
    UnknownFormat(String),
    /// A suite run could not start.
    Suite(SuiteError),
    /// A `cvliw bench` run exceeded its `--budget-ms` wall-clock budget.
    BudgetExceeded {
        /// Median total wall clock of the measured runs.
        wall_ms: f64,
        /// The budget that was exceeded.
        budget_ms: f64,
    },
    /// `cvliw serve` failed on its transport (stdin/stdout or the socket).
    Serve(std::io::Error),
    /// `cvliw cache verify` found damage in a persisted cache directory.
    CacheCorrupt {
        /// The directory that was verified.
        dir: String,
        /// How many issues (corrupt frames, torn tails, refused files).
        issues: usize,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(e) => write!(f, "{e}"),
            CliError::Io { path, source } => write!(f, "cannot read `{path}`: {source}"),
            CliError::Write { path, source } => write!(f, "cannot write `{path}`: {source}"),
            CliError::Parse(e) => write!(f, "parse error at {e}"),
            CliError::Spec(e) => write!(f, "bad machine spec: {e}"),
            CliError::NoSuchLoop(name) => write!(f, "the file defines no loop named `{name}`"),
            CliError::Compile(e) => write!(f, "compilation failed: {e}"),
            CliError::Block(e) => write!(f, "block scheduling failed: {e}"),
            CliError::UnknownCommand(c) => {
                write!(f, "unknown command `{c}` (try `cvliw help`)")
            }
            CliError::UnknownMode(m) => write!(
                f,
                "unknown mode `{m}` (expected baseline, replicate, sched-len, zero-bus \
                 or value-clone)"
            ),
            CliError::UnknownFormat(x) => {
                write!(f, "unknown format `{x}` (expected text, json, csv or md)")
            }
            CliError::Suite(e) => write!(f, "suite failed: {e}"),
            CliError::BudgetExceeded { wall_ms, budget_ms } => write!(
                f,
                "bench exceeded its wall-clock budget: {wall_ms:.0} ms > {budget_ms:.0} ms"
            ),
            CliError::Serve(e) => write!(f, "serve i/o failed: {e}"),
            CliError::CacheCorrupt { dir, issues } => write!(
                f,
                "cache directory `{dir}` failed verification with {issues} issue{} \
                 (details above)",
                if *issues == 1 { "" } else { "s" }
            ),
        }
    }
}

impl std::error::Error for CliError {}

impl From<UsageError> for CliError {
    fn from(e: UsageError) -> Self {
        CliError::Usage(e)
    }
}

impl From<ParseError> for CliError {
    fn from(e: ParseError) -> Self {
        CliError::Parse(e)
    }
}

impl From<SpecError> for CliError {
    fn from(e: SpecError) -> Self {
        CliError::Spec(e)
    }
}

impl From<CompileError> for CliError {
    fn from(e: CompileError) -> Self {
        CliError::Compile(e)
    }
}

/// Dispatches a parsed command line.
pub fn run(args: &Args) -> Result<(), CliError> {
    match args.command.as_str() {
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            Ok(())
        }
        "print" => cmd_print(args),
        "dot" => cmd_dot(args),
        "mii" => cmd_mii(args),
        "machines" => cmd_machines(args),
        "schedule" => cmd_schedule(args),
        "block" => cmd_block(args),
        "expand" => cmd_expand(args),
        "compare" => cmd_compare(args),
        "suite" => cmd_suite(args),
        "bench" => cmd_bench(args),
        "serve" => cmd_serve(args),
        "client" => cmd_client(args),
        "cache" => cmd_cache(args),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

/// The help text.
#[must_use]
pub fn usage() -> String {
    "\
cvliw — modulo scheduling with instruction replication for clustered VLIWs
(reproduction of Aletà et al., MICRO-36 2003)

USAGE:
    cvliw <command> [arguments] [options]

COMMANDS:
    schedule <file.loop>   compile a loop and print schedule + statistics
    expand   <file.loop>   emit the software-pipelined code (prologue /
                           kernel / epilogue) for --iterations iterations
    block    <file.loop>   schedule an acyclic region (no loop-carried
                           edges) and apply critical-path replication
    compare  <file.loop>   baseline vs replication (and §5 modes) side by side
    mii      <file.loop>   print the MII decomposition of each loop
    machines               list every registered machine spec (paper grid +
                           topology grid) with its interconnect and derived
                           capacity numbers
    print    <file.loop>   parse and reprint in canonical form
    dot      <file.loop>   emit Graphviz DOT for the dependence graph
    suite                  run the 678-loop experiment grid in parallel
                           (paper machines + topology appendix × all modes
                           by default)
    bench                  time suite compilation (warmup + median-of-N)
                           and write BENCH_compile.json; --serve also
                           replays the grid through the compile daemon
                           (cold + warm pass) and records throughput
    serve                  run as a compile daemon: JSONL requests on
                           stdin (or --socket <path>), one response per
                           line, with a content-addressed result cache
                           and per-worker persistent compile contexts;
                           --cache-path <dir> makes the cache survive
                           restarts (journal + snapshots, crash-safe)
    client                 talk to a socket daemon with reconnect +
                           backoff: compile a .loop file (--machine,
                           --mode), pump stdin JSONL, or --stats
    cache verify <dir>     check a persisted cache directory without
                           modifying it; nonzero exit + per-record byte
                           offsets on any corruption
    help                   show this message

OPTIONS:
    --machine <spec>       machine config: wcxbylzr (e.g. 4c1b2l64r), a
                           topology spec wc-<ring|xbar><y>l<z>r (e.g.
                           4c-ring1l64r), `unified` (12-wide, no clusters),
                           or the heterogeneous form het:INT.FP.MEM+...:xbylzr
                           (e.g. het:0.3.1+3.0.2:1b2l64r)
                           [required for schedule/compare/mii; for `suite`
                           it restricts the grid to one machine]
    --mode <mode>          baseline | replicate | sched-len | zero-bus |
                           value-clone (default: replicate; for `suite` it
                           restricts the grid to one mode)
    --loop <name>          pick one loop from a multi-loop file
    --iterations <n>       trip count for Texec/IPC reporting (default 100)
    --max-loops <n>        cap loops per program for `suite`
    --jobs <n>             suite worker threads (default: CPU count, max 8);
                           the report is identical for any worker count
    --refine-seeds <n>     suite/bench: race n perturbed refinement seeds
                           per loop for the MII seed partition (default 1 =
                           off); the winner is picked by (score, seed-index),
                           so reports never depend on thread scheduling
    --format <fmt>         suite output: text | json | csv | md
                           (default text; md is the docs/RESULTS.md book)
    --out <path>           suite output file; `-` forces stdout
                           (default: stdout, except md -> docs/RESULTS.md;
                           for `bench`: BENCH_compile.json)
    --runs <n>             bench: measured passes, median reported (default 3)
    --warmup <n>           bench: untimed warmup passes (default 1)
    --budget-ms <n>        bench: exit nonzero if the median total exceeds
                           this wall-clock budget (CI's 10×-regression net)
    --serve                bench: also replay the grid through an in-process
                           compile daemon and record cold/warm throughput
                           in the serve section of BENCH_compile.json
    --restart              bench --serve: additionally cold-compile into a
                           scratch --cache-path, drop the daemon, recover
                           the directory and record warm-restart hit rate
                           and throughput (serve_restart section)
    --socket <path>        serve: listen on a Unix socket instead of stdin
                           (refuses a path a live daemon serves; recovers
                           a stale one; removes the file on exit)
    --sessions <n>         serve: concurrent socket sessions sharing one
                           cache (default 4; requires --socket)
    --cache-entries <n>    serve: result-cache entry bound (default 1024;
                           0 disables the cache entirely)
    --cache-mb <n>         serve: result-cache payload bound in MiB
                           (default 64; 0 disables the cache entirely)
    --cache-path <dir>     serve: persist the cache in <dir> (crash-safe
                           journal + compacted snapshots) and recover it
                           on startup, tolerating torn/corrupt/alien
                           files; incompatible with a disabled cache
    --snapshot-every <n>   serve: journal records between compacted
                           snapshots (default 1024; requires --cache-path)
    --deadline-ms <n>      serve: per-request compile budget; a compile
                           that exceeds it is cancelled at its next II
                           attempt and answers `deadline_exceeded`
                           (default: no deadline)
    --max-inflight <n>     serve: daemon-wide in-flight compile bound;
                           misses beyond it answer `overloaded` with a
                           retry_after_ms hint that scales with the
                           observed in-flight depth (default 256)
    --stats                client: ask the daemon for its counters
                           instead of compiling

SERVE PROTOCOL (one JSON object per line):
    {\"id\": 1, \"loop\": \"loop t {\\n i: iadd i@1\\n x: load i\\n}\",
     \"machine\": \"4c1b2l64r\", \"mode\": \"replicate\", \"seeds\": 1}
    {\"id\": 2, \"op\": \"stats\"}
    -> {\"id\":1,\"ok\":{...same counters as one-shot compilation...}}
    -> {\"id\":2,\"ok\":{...cache hit/miss/eviction accounting...}}
    error kinds: json | field | oversized | spec | parse | compile |
    deadline_exceeded | overloaded | compile_panic | internal — one
    response per request even when its compile panics or is shed; the
    daemon itself never exits on a request. Exit code 0 on EOF or a
    drained SIGTERM/SIGINT, 1 on transport errors (socket in use, bind
    failure), 2 on usage errors.

EXAMPLES:
    cvliw schedule examples/loops/fir.loop --machine 4c1b2l64r
    cvliw compare  examples/loops/fir.loop --machine 4c2b4l64r
    cvliw suite --machine 4c1b2l64r --mode baseline --max-loops 16
    cvliw suite --jobs 4 --format md        # regenerate docs/RESULTS.md
    cvliw suite --jobs 4 --format csv --out results.csv
    cvliw bench --max-loops 8 --runs 3      # quick perf snapshot
    cvliw bench                             # full-grid BENCH_compile.json
    cvliw bench --serve --max-loops 4       # daemon throughput snapshot
    cvliw serve --jobs 4                    # compile daemon on stdin/stdout
    cvliw serve --socket /tmp/cvliw.sock --cache-path /var/cache/cvliw
    cvliw client --socket /tmp/cvliw.sock examples/loops/fir.loop \\
                 --machine 4c1b2l64r       # resilient client: reconnects
    cvliw client --socket /tmp/cvliw.sock --stats
    cvliw cache verify /var/cache/cvliw     # offline corruption check
"
    .to_string()
}

fn parse_machine(spec: &str) -> Result<MachineConfig, CliError> {
    Ok(MachineConfig::from_extended_spec(spec)?)
}

fn parse_mode(args: &Args) -> Result<Mode, CliError> {
    let name = args.get("mode").unwrap_or("replicate");
    Mode::parse(name).ok_or_else(|| CliError::UnknownMode(name.to_string()))
}

fn read_loops(args: &Args) -> Result<Vec<NamedLoop>, CliError> {
    let path = args.one_positional("one input file")?;
    let text = fs::read_to_string(path).map_err(|source| CliError::Io {
        path: path.to_string(),
        source,
    })?;
    let module = parse_module(&text)?;
    match args.get("loop") {
        None => Ok(module.into_iter().collect()),
        Some(name) => match module.get(name) {
            Some(l) => Ok(vec![l.clone()]),
            None => Err(CliError::NoSuchLoop(name.to_string())),
        },
    }
}

fn cmd_print(args: &Args) -> Result<(), CliError> {
    for l in read_loops(args)? {
        print!("{}", print_loop(&l.name, &l.ddg));
    }
    Ok(())
}

fn cmd_dot(args: &Args) -> Result<(), CliError> {
    for l in read_loops(args)? {
        println!("// loop {}", l.name);
        print!("{}", to_dot(&l.ddg));
    }
    Ok(())
}

fn cmd_mii(args: &Args) -> Result<(), CliError> {
    let machine = parse_machine(args.require("machine")?)?;
    println!(
        "{:<16} {:>6} {:>7} {:>6}",
        "loop", "ResMII", "RecMII", "MII"
    );
    for l in read_loops(args)? {
        let res = res_mii_unclustered(&l.ddg, &machine);
        let total = sched_mii(&l.ddg, &machine);
        let rec = cvliw::ddg::rec_mii(&l.ddg, machine.edge_latency(&l.ddg));
        println!("{:<16} {res:>6} {rec:>7} {total:>6}", l.name);
    }
    Ok(())
}

/// Renders one compiled loop in full.
fn report_compiled(l: &NamedLoop, machine: &MachineConfig, out: &CompiledLoop, iterations: u64) {
    let s = &out.stats;
    println!(
        "loop {}: {} ops, {} deps",
        l.name,
        l.ddg.node_count(),
        l.ddg.edge_count()
    );
    println!(
        "machine {}: {} clusters",
        machine.spec(),
        machine.clusters()
    );
    println!();
    println!(
        "  MII {} -> II {} (length {}, {} stages)",
        s.mii, s.ii, s.length, s.stage_count
    );
    println!(
        "  communications: {} after partition, {} scheduled on buses",
        s.partition_coms, s.final_coms
    );
    if s.replication.subgraphs_replicated > 0 {
        println!(
            "  replication: {} subgraphs, +{} instances, -{} dead originals",
            s.replication.subgraphs_replicated,
            s.replication.added_instances(),
            s.replication.removed_instances,
        );
    }
    if s.causes.total() > 0 {
        println!(
            "  II increments: bus {}, recurrence {}, registers {}, resources {}",
            s.causes.bus, s.causes.recurrence, s.causes.registers, s.causes.resources
        );
    }
    let cycles = out.schedule.texec(iterations);
    let ops = iterations * u64::from(s.ops_per_iter);
    println!(
        "  Texec({iterations} iterations) = {cycles} cycles, IPC {:.2}",
        ops as f64 / cycles as f64
    );
    match cvliw::sched::allocate_registers(&out.schedule, &l.ddg, machine) {
        Ok(alloc) => println!(
            "  rotating registers: {:?} of {} per cluster",
            alloc.registers_used(),
            machine.regs_per_cluster()
        ),
        Err(e) => println!("  register allocation failed: {e}"),
    }
    println!();
    print!("{}", out.schedule.render(&l.ddg));
}

fn cmd_schedule(args: &Args) -> Result<(), CliError> {
    let machine = parse_machine(args.require("machine")?)?;
    let mode = parse_mode(args)?;
    let iterations = args.get_positive_num::<u64>("iterations")?.unwrap_or(100);
    let opts = CompileOptions { mode, max_ii: None };
    for l in read_loops(args)? {
        let out = compile_loop(&l.ddg, &machine, &opts)?;
        report_compiled(&l, &machine, &out, iterations);
        match out.schedule.verify(&l.ddg, &machine) {
            Ok(()) => println!("schedule verified OK"),
            Err(e) => println!("schedule verification FAILED: {e}"),
        }
        if mode != Mode::ZeroBusLatency {
            match simulate(&l.ddg, &machine, &out.schedule, 8) {
                Ok(_) => println!("lockstep simulation (8 iterations) OK"),
                Err(e) => println!("lockstep simulation FAILED: {e}"),
            }
        }
        println!();
    }
    Ok(())
}

fn cmd_block(args: &Args) -> Result<(), CliError> {
    use cvliw::partition::partition_loop;
    use cvliw::replicate::{replicate_for_acyclic_length, schedule_acyclic};
    let machine = parse_machine(args.require("machine")?)?;
    for l in read_loops(args)? {
        let part = partition_loop(&l.ddg, &machine, 1);
        let assignment = part.to_assignment();
        let before = schedule_acyclic(&l.ddg, &machine, &assignment)
            .map_err(|e| CliError::Block(e.to_string()))?;
        let (improved, after) = replicate_for_acyclic_length(&l.ddg, &machine, assignment)
            .map_err(|e| CliError::Block(e.to_string()))?;
        println!(
            "block {}: length {} -> {} cycles, copies {} -> {}",
            l.name,
            before.length(),
            after.length(),
            before.copy_count(),
            after.copy_count()
        );
        for n in l.ddg.node_ids() {
            let clusters: Vec<u8> = improved.instances(n).iter().collect();
            let cycles: Vec<String> = clusters
                .iter()
                .filter_map(|&c| after.instance_cycle(n, c).map(|t| format!("c{c}@{t}")))
                .collect();
            println!("  {:<12} {}", l.ddg.display_label(n), cycles.join("  "));
        }
        println!();
    }
    Ok(())
}

fn cmd_expand(args: &Args) -> Result<(), CliError> {
    let machine = parse_machine(args.require("machine")?)?;
    let mode = parse_mode(args)?;
    let iterations = args.get_positive_num::<u64>("iterations")?.unwrap_or(6);
    let opts = CompileOptions { mode, max_ii: None };
    for l in read_loops(args)? {
        let out = compile_loop(&l.ddg, &machine, &opts)?;
        let shape = cvliw::sched::code_shape(&out.schedule);
        println!(
            "loop {}: II={} SC={}; static code: {} rows / {} ops \
             (prologue {}, kernel {}, epilogue {})",
            l.name,
            out.stats.ii,
            out.stats.stage_count,
            shape.total_rows(),
            shape.total_ops(),
            shape.prologue_ops,
            shape.kernel_ops,
            shape.epilogue_ops,
        );
        let trace = cvliw::sched::expand(&out.schedule, iterations);
        print!("{}", cvliw::sched::render_expansion(&trace, &l.ddg));
        println!();
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), CliError> {
    let machine = parse_machine(args.require("machine")?)?;
    let iterations = args.get_positive_num::<u64>("iterations")?.unwrap_or(100);
    const MODES: [(&str, Mode); 5] = [
        ("baseline", Mode::Baseline),
        ("value-clone", Mode::ValueClone),
        ("replicate", Mode::Replicate),
        ("sched-len", Mode::ReplicateSchedLen),
        ("zero-bus", Mode::ZeroBusLatency),
    ];
    for l in read_loops(args)? {
        println!("loop {} on {}:", l.name, machine.spec());
        println!(
            "{:<12} {:>4} {:>4} {:>7} {:>7} {:>6} {:>8} {:>7}",
            "mode", "MII", "II", "length", "stages", "coms", "+instrs", "IPC"
        );
        for (name, mode) in MODES {
            match compile_loop(&l.ddg, &machine, &CompileOptions { mode, max_ii: None }) {
                Ok(out) => {
                    let s = out.stats;
                    let cycles = out.schedule.texec(iterations);
                    let ipc = (iterations * u64::from(s.ops_per_iter)) as f64 / cycles as f64;
                    println!(
                        "{name:<12} {:>4} {:>4} {:>7} {:>7} {:>6} {:>8} {ipc:>7.2}",
                        s.mii,
                        s.ii,
                        s.length,
                        s.stage_count,
                        s.final_coms,
                        s.replication.added_instances(),
                    );
                }
                Err(e) => println!("{name:<12} failed: {e}"),
            }
        }
        println!();
    }
    Ok(())
}

/// `cvliw machines`: the registered machine specs (the paper's Table-1
/// grid plus the topology appendix grid) with their parsed interconnect,
/// per-cluster unit mix and MII-relevant derived numbers.
fn cmd_machines(args: &Args) -> Result<(), CliError> {
    let _ = args;
    println!(
        "{:<14} {:>8} {:>13} {:>5} {:<28} {:>5} {:>9} {:>7} {:>7}",
        "spec",
        "clusters",
        "int/fp/mem",
        "regs",
        "interconnect",
        "links",
        "lat",
        "cap@8",
        "IIpart4"
    );
    let specs = cvliw::machine::paper_specs()
        .into_iter()
        .chain(cvliw::machine::topology_specs());
    for spec in specs {
        let m = parse_machine(spec)?;
        let fu = m.fu_counts();
        let lat_min = m.bus_latency();
        let lat_max = m.max_transfer_latency();
        let lat = if lat_min == lat_max {
            format!("{lat_min}")
        } else {
            format!("{lat_min}-{lat_max}")
        };
        // MII-relevant derived numbers: aggregate transfer capacity at a
        // representative II of 8, and the smallest II whose bandwidth
        // carries 4 communications (the `IIpart` floor of a 4-com loop).
        let ii_part4 = m
            .min_ii_for_coms(4)
            .map_or("—".to_string(), |ii| ii.to_string());
        println!(
            "{:<14} {:>8} {:>13} {:>5} {:<28} {:>5} {:>9} {:>7} {:>7}",
            m.spec(),
            m.clusters(),
            format!("{}/{}/{}", fu.int, fu.fp, fu.mem),
            m.regs_per_cluster(),
            m.interconnect().describe(m.clusters()),
            m.links(),
            lat,
            m.coms_capacity_per_ii(8),
            ii_part4,
        );
    }
    Ok(())
}

/// Options only `cvliw serve` understands; `suite` and `bench` reject
/// them so a typo'd invocation fails loudly instead of silently ignoring
/// a daemon knob.
const SERVE_ONLY_OPTIONS: [&str; 8] = [
    "socket",
    "cache-entries",
    "cache-mb",
    "cache-path",
    "snapshot-every",
    "deadline-ms",
    "sessions",
    "max-inflight",
];

/// Where the Markdown results book lives relative to the repository root.
const RESULTS_BOOK: &str = "docs/RESULTS.md";

/// Where `cvliw bench` writes its timing artifact by default.
const BENCH_BOOK: &str = "BENCH_compile.json";

/// Builds the (possibly restricted) grid shared by `suite` and `bench`.
/// `suite` defaults to the paper grid plus the topology appendix; `bench`
/// times the paper grid only, so the committed `BENCH_compile.json` keeps
/// its shape (one row per paper machine × program pair).
fn grid_from_args(args: &Args, base: SuiteGrid) -> Result<SuiteGrid, CliError> {
    let mut grid = base;
    if let Some(spec) = args.get("machine") {
        parse_machine(spec)?; // report a spec error before the run starts
        grid = grid.with_specs(vec![spec.to_string()]);
    }
    if args.get("mode").is_some() {
        grid = grid.with_modes(vec![parse_mode(args)?]);
    }
    if let Some(cap) = args.get_positive_num::<usize>("max-loops")? {
        grid = grid.with_max_loops(cap);
    }
    if let Some(seeds) = args.get_positive_num::<u32>("refine-seeds")? {
        grid = grid.with_refine_seeds(seeds);
    }
    Ok(grid)
}

fn cmd_suite(args: &Args) -> Result<(), CliError> {
    // The timing knobs belong to `bench`; accepting them here would
    // silently skip the wall-clock gate a CI author thought they set.
    for bench_only in ["runs", "warmup", "budget-ms", "serve", "restart"] {
        if args.get(bench_only).is_some() {
            return Err(CliError::Usage(UsageError::UnknownOption(format!(
                "{bench_only} (only `cvliw bench` accepts it)"
            ))));
        }
    }
    for serve_only in SERVE_ONLY_OPTIONS {
        if args.get(serve_only).is_some() {
            return Err(CliError::Usage(UsageError::UnknownOption(format!(
                "{serve_only} (only `cvliw serve` accepts it)"
            ))));
        }
    }
    if args.flag("stats") {
        return Err(CliError::Usage(UsageError::UnknownOption(
            "stats (only `cvliw client` accepts it)".to_string(),
        )));
    }
    let grid = grid_from_args(args, SuiteGrid::paper_with_topology())?;
    let jobs = args
        .get_positive_num::<usize>("jobs")?
        .unwrap_or_else(default_jobs);
    let format = match args.get("format") {
        None => Format::Text,
        Some(name) => Format::parse(name).ok_or_else(|| CliError::UnknownFormat(name.into()))?,
    };

    let started = std::time::Instant::now();
    let report = run_suite(&grid, jobs).map_err(CliError::Suite)?;
    let elapsed = started.elapsed().as_secs_f64();
    // The measured footer: throughput belongs on stderr so every emitted
    // format stays a pure (deterministic) function of the grid.
    eprintln!(
        "suite: {} cells on {} worker{} in {elapsed:.1}s ({:.1} cells/s)",
        report.cells.len(),
        jobs,
        if jobs == 1 { "" } else { "s" },
        report.cells.len() as f64 / elapsed
    );

    let rendered = emit(&report, format);
    // `--format md` regenerates the checked-in results book unless an
    // explicit destination is given; every other format prints to stdout.
    let destination = match (args.get("out"), format) {
        (Some("-"), _) | (None, Format::Text | Format::Json | Format::Csv) => None,
        (Some(path), _) => Some(path.to_string()),
        (None, Format::Markdown) => Some(RESULTS_BOOK.to_string()),
    };
    match destination {
        None => print!("{rendered}"),
        Some(path) => {
            if let Some(parent) = std::path::Path::new(&path).parent() {
                if !parent.as_os_str().is_empty() {
                    fs::create_dir_all(parent).map_err(|source| CliError::Write {
                        path: path.clone(),
                        source,
                    })?;
                }
            }
            fs::write(&path, &rendered).map_err(|source| CliError::Write {
                path: path.clone(),
                source,
            })?;
            eprintln!("wrote {path}");
        }
    }
    Ok(())
}

/// `cvliw bench`: time suite compilation with warmup and median-of-N, write
/// `BENCH_compile.json`, and optionally enforce a wall-clock budget.
fn cmd_bench(args: &Args) -> Result<(), CliError> {
    for serve_only in SERVE_ONLY_OPTIONS {
        if args.get(serve_only).is_some() {
            return Err(CliError::Usage(UsageError::UnknownOption(format!(
                "{serve_only} (only `cvliw serve` accepts it)"
            ))));
        }
    }
    if args.flag("stats") {
        return Err(CliError::Usage(UsageError::UnknownOption(
            "stats (only `cvliw client` accepts it)".to_string(),
        )));
    }
    if args.flag("restart") && !args.flag("serve") {
        return Err(CliError::Usage(UsageError::UnknownOption(
            "restart (only meaningful with --serve; it benches the serve cache \
             across a restart)"
                .to_string(),
        )));
    }
    let grid = grid_from_args(args, SuiteGrid::paper())?;
    let jobs = args
        .get_positive_num::<usize>("jobs")?
        .unwrap_or_else(default_jobs);
    let runs = args.get_positive_num::<usize>("runs")?.unwrap_or(3);
    let warmup = args.get_num::<usize>("warmup")?.unwrap_or(1);
    let budget_ms = args.get_num::<f64>("budget-ms")?;
    if let Some(budget) = budget_ms {
        // "0", "-5" and "NaN" all parse as f64; none is a usable budget.
        if budget.is_nan() || budget <= 0.0 {
            return Err(CliError::Usage(UsageError::NotPositive(
                "budget-ms".to_string(),
            )));
        }
    }

    let mut report = bench_suite(&grid, jobs, runs, warmup).map_err(CliError::Suite)?;
    eprintln!(
        "bench: {} cells × {} run{} (+{} warmup) on {} worker{}: median {:.0} ms, {:.1} cells/s",
        report.cells,
        report.runs,
        if report.runs == 1 { "" } else { "s" },
        report.warmup,
        report.jobs,
        if report.jobs == 1 { "" } else { "s" },
        report.total_wall_ms,
        report.cells_per_sec
    );
    eprintln!(
        "stage_ms: {}",
        cvliw::replicate::Stage::ALL
            .iter()
            .map(|s| format!("{} {:.0}", s.name(), report.stage_ms[*s as usize]))
            .collect::<Vec<_>>()
            .join(", ")
    );
    if args.flag("serve") {
        let sr = serve_replay(&grid, jobs).map_err(CliError::Suite)?;
        eprintln!(
            "serve: {} requests on {} worker{}: cold {:.0} ms ({:.0} req/s), \
             warm {:.0} ms ({:.0} req/s, hit rate {:.2}), {} errors",
            sr.requests,
            sr.jobs,
            if sr.jobs == 1 { "" } else { "s" },
            sr.cold_wall_ms,
            sr.cold_rps,
            sr.warm_wall_ms,
            sr.warm_rps,
            sr.warm_hit_rate,
            sr.errors
        );
        report.serve = Some(sr);
        if args.flag("restart") {
            let rr = serve_restart_replay(&grid, jobs).map_err(CliError::Suite)?;
            eprintln!(
                "serve_restart: {} requests on {} worker{}: {} entries recovered, \
                 warm-restart {:.0} ms ({:.0} req/s, hit rate {:.2})",
                rr.requests,
                rr.jobs,
                if rr.jobs == 1 { "" } else { "s" },
                rr.loaded_entries,
                rr.restart_wall_ms,
                rr.restart_rps,
                rr.restart_hit_rate
            );
            report.serve_restart = Some(rr);
        }
    }
    let rendered = emit_bench_json(&report);
    let destination = match args.get("out") {
        Some("-") => None,
        Some(path) => Some(path.to_string()),
        None => Some(BENCH_BOOK.to_string()),
    };
    match destination {
        None => print!("{rendered}"),
        Some(path) => {
            fs::write(&path, &rendered).map_err(|source| CliError::Write {
                path: path.clone(),
                source,
            })?;
            eprintln!("wrote {path}");
        }
    }

    if let Some(budget) = budget_ms {
        if report.total_wall_ms > budget {
            return Err(CliError::BudgetExceeded {
                wall_ms: report.total_wall_ms,
                budget_ms: budget,
            });
        }
    }
    Ok(())
}

/// `cvliw serve`: the long-running compile daemon. Requests arrive as
/// JSONL on stdin (or a Unix socket with `--socket`); each carries its own
/// loop, machine, mode and seed config, so none of the grid-shaping
/// options apply here.
fn cmd_serve(args: &Args) -> Result<(), CliError> {
    use cvliw::serve::{PersistConfig, Server, ServerConfig, SharedState};

    for not_serve in [
        "machine",
        "mode",
        "loop",
        "max-loops",
        "iterations",
        "seed",
        "format",
        "out",
        "runs",
        "warmup",
        "budget-ms",
        "refine-seeds",
        "serve",
        "restart",
        "stats",
    ] {
        if args.get(not_serve).is_some() {
            return Err(CliError::Usage(UsageError::UnknownOption(format!(
                "{not_serve} (not a `cvliw serve` option; each request carries its own \
                 machine/mode/seeds)"
            ))));
        }
    }
    let jobs = args
        .get_positive_num::<usize>("jobs")?
        .unwrap_or_else(default_jobs);
    // Zero is meaningful here: an explicit "run without a result cache"
    // (every request recompiles — a measurement and debugging mode).
    let cache_entries = args.get_num::<usize>("cache-entries")?.unwrap_or(1024);
    let cache_mb = args.get_num::<usize>("cache-mb")?.unwrap_or(64);
    let cache_disabled = cache_entries == 0 || cache_mb == 0;
    let deadline_ms = args.get_positive_num::<u64>("deadline-ms")?;
    let max_inflight = args
        .get_positive_num::<usize>("max-inflight")?
        .unwrap_or(256);
    let sessions = args.get_positive_num::<usize>("sessions")?;
    if sessions.is_some() && args.get("socket").is_none() {
        return Err(CliError::Usage(UsageError::UnknownOption(
            "sessions (only meaningful with --socket; the stdin daemon is one session)".to_string(),
        )));
    }
    let snapshot_every = args.get_positive_num::<u64>("snapshot-every")?;
    if snapshot_every.is_some() && args.get("cache-path").is_none() {
        return Err(CliError::Usage(UsageError::UnknownOption(
            "snapshot-every (only meaningful with --cache-path)".to_string(),
        )));
    }
    let persist = match args.get("cache-path") {
        None => None,
        Some(dir) => {
            if cache_disabled {
                // Persisting a cache that was explicitly disabled is a
                // contradiction, not a degenerate configuration: fail
                // loudly (exit 2) instead of writing an empty journal.
                return Err(CliError::Usage(UsageError::UnknownOption(
                    "cache-path (contradicts --cache-entries 0 / --cache-mb 0: there is \
                     no cache to persist)"
                        .to_string(),
                )));
            }
            let mut pcfg = PersistConfig::new(dir.into());
            if let Some(every) = snapshot_every {
                pcfg.snapshot_every = every;
            }
            Some(pcfg)
        }
    };
    let cfg = ServerConfig {
        jobs,
        cache_entries,
        cache_bytes: cache_mb << 20,
        deadline_ms,
        max_inflight,
        ..ServerConfig::default()
    };
    if cache_disabled {
        eprintln!("serve: result cache disabled (every request compiles)");
    }

    let shared = match &persist {
        None => SharedState::new(&cfg),
        Some(pcfg) => {
            let (shared, report) =
                SharedState::with_persistence(&cfg, pcfg).map_err(CliError::Serve)?;
            eprintln!(
                "serve: cache-path {}: {}",
                pcfg.dir.display(),
                report.summary()
            );
            for refused in &report.refused {
                eprintln!("serve: warning: refused {refused}");
            }
            for warning in &report.warnings {
                eprintln!("serve: warning: {warning}");
            }
            shared
        }
    };

    match args.get("socket") {
        None => {
            // `StdinLock` is not `Send` (the reader runs on its own
            // thread), so buffer the handle instead of locking it. The
            // graceful shutdown path here is EOF on stdin.
            let mut server = Server::with_shared(cfg, std::sync::Arc::clone(&shared));
            let stdin = std::io::BufReader::new(std::io::stdin());
            let stdout = std::io::stdout().lock();
            server
                .run_jsonl(stdin, std::io::BufWriter::new(stdout))
                .map_err(CliError::Serve)?;
            eprintln!("{}", server.summary());
        }
        Some(path) => {
            let stats = serve_socket(cfg, path, sessions.unwrap_or(4), &shared)?;
            eprintln!("{stats}");
        }
    }
    finish_persistence(&shared);
    Ok(())
}

/// Compacts the persisted cache one last time on the way out (both the
/// EOF and the drained-SIGTERM exit paths go through here). A failure is
/// a warning, not an exit code: the journal already holds everything the
/// snapshot would, so the next start recovers regardless.
fn finish_persistence(shared: &cvliw::serve::SharedState) {
    if let Some(reason) = shared.persist_dead_reason() {
        eprintln!("serve: warning: persistence stopped mid-run: {reason}");
        return;
    }
    match shared.snapshot_now() {
        None => {}
        Some(Ok(n)) => eprintln!("serve: final snapshot: {n} entries"),
        Some(Err(e)) => eprintln!("serve: warning: final snapshot failed: {e}"),
    }
}

/// The Unix-socket daemon: concurrent sessions over one shared cache,
/// graceful drain on SIGTERM/SIGINT, socket file removed on every exit.
#[cfg(unix)]
fn serve_socket(
    cfg: cvliw::serve::ServerConfig,
    path: &str,
    sessions: usize,
    shared: &std::sync::Arc<cvliw::serve::SharedState>,
) -> Result<cvliw::serve::ServeStats, CliError> {
    use cvliw::serve::{run_socket_with, ShutdownFlag, SocketConfig};

    let shutdown = ShutdownFlag::new();
    crate::signals::install_shutdown_handler(&shutdown);
    eprintln!(
        "serve: listening on {path} (up to {sessions} concurrent session{}, \
         SIGTERM/ctrl-c drains and exits)",
        if sessions == 1 { "" } else { "s" }
    );
    let sock = SocketConfig {
        path: path.into(),
        sessions,
    };
    run_socket_with(cfg, &sock, &shutdown, std::sync::Arc::clone(shared)).map_err(CliError::Serve)
}

#[cfg(not(unix))]
fn serve_socket(
    _cfg: cvliw::serve::ServerConfig,
    _path: &str,
    _sessions: usize,
    _shared: &std::sync::Arc<cvliw::serve::SharedState>,
) -> Result<cvliw::serve::ServeStats, CliError> {
    Err(CliError::Usage(UsageError::UnknownOption(
        "socket (Unix sockets are unavailable on this platform; use stdin)".to_string(),
    )))
}

/// `cvliw client`: the resilient side of the socket protocol. Compiles a
/// `.loop` file, pumps stdin JSONL, or fetches `--stats` — reconnecting
/// with exponential backoff and honoring `retry_after_ms` shed hints.
#[cfg(unix)]
fn cmd_client(args: &Args) -> Result<(), CliError> {
    use cvliw::serve::Client;

    for not_client in [
        "max-loops",
        "iterations",
        "seed",
        "format",
        "out",
        "runs",
        "warmup",
        "budget-ms",
        "jobs",
        "cache-entries",
        "cache-mb",
        "cache-path",
        "snapshot-every",
        "deadline-ms",
        "sessions",
        "max-inflight",
    ] {
        if args.get(not_client).is_some() {
            return Err(CliError::Usage(UsageError::UnknownOption(format!(
                "{not_client} (not a `cvliw client` option)"
            ))));
        }
    }
    for not_client in ["serve", "restart"] {
        if args.flag(not_client) {
            return Err(CliError::Usage(UsageError::UnknownOption(format!(
                "{not_client} (only `cvliw bench` accepts it)"
            ))));
        }
    }
    let socket = args.require("socket")?;
    let mut client = Client::new(std::path::Path::new(socket));

    if args.flag("stats") {
        if !args.positional.is_empty() {
            return Err(CliError::Usage(UsageError::Positional(
                "no input file with --stats",
            )));
        }
        let response = client.stats(0).map_err(CliError::Serve)?;
        println!("{response}");
        return Ok(());
    }

    if args.positional.is_empty() {
        // Raw mode: each stdin line is already a protocol request; the
        // client adds only the reconnect/backoff resilience.
        use std::io::BufRead;
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = line.map_err(CliError::Serve)?;
            if line.trim().is_empty() {
                continue;
            }
            let response = client.request(&line).map_err(CliError::Serve)?;
            println!("{response}");
        }
    } else {
        let machine = args.require("machine")?;
        // Validate locally before shipping requests: a typo should be a
        // usage error here, not a per-request `spec` error from the daemon.
        parse_machine(machine)?;
        let mode = parse_mode(args);
        let mode_name = mode?.name();
        let seeds = args.get_positive_num::<u32>("refine-seeds")?.unwrap_or(1);
        for (id, l) in read_loops(args)?.iter().enumerate() {
            let source = print_loop(&l.name, &l.ddg);
            let response = client
                .compile(id as u64 + 1, &source, machine, mode_name, seeds)
                .map_err(CliError::Serve)?;
            println!("{response}");
        }
    }
    if client.reconnects() > 0 || client.sheds_honored() > 0 {
        eprintln!(
            "client: {} reconnect{}, {} shed hint{} honored",
            client.reconnects(),
            if client.reconnects() == 1 { "" } else { "s" },
            client.sheds_honored(),
            if client.sheds_honored() == 1 { "" } else { "s" },
        );
    }
    Ok(())
}

#[cfg(not(unix))]
fn cmd_client(_args: &Args) -> Result<(), CliError> {
    Err(CliError::Usage(UsageError::UnknownOption(
        "socket (Unix sockets are unavailable on this platform)".to_string(),
    )))
}

/// `cvliw cache verify <dir>`: a pure read-only audit of a persisted
/// cache directory. Prints one line per file plus one line per damaged
/// record (with its byte offset), and exits nonzero on any damage.
fn cmd_cache(args: &Args) -> Result<(), CliError> {
    use cvliw::serve::verify_dir;

    let dir = match args.positional.as_slice() {
        [verb, dir] if verb == "verify" => dir,
        _ => {
            return Err(CliError::Usage(UsageError::Positional(
                "`verify <dir>` (the only `cvliw cache` action)",
            )))
        }
    };
    let report = verify_dir(std::path::Path::new(dir)).map_err(CliError::Serve)?;
    for file in &report.files {
        if !file.present {
            println!("{}: absent (clean cold start)", file.name);
            continue;
        }
        if let Some(why) = &file.refused {
            println!("{}: REFUSED: {why}", file.name);
            continue;
        }
        let verdict = if file.issues.is_empty() {
            "ok"
        } else {
            "DAMAGED"
        };
        println!(
            "{}: {verdict}: {} verified record{}",
            file.name,
            file.records,
            if file.records == 1 { "" } else { "s" }
        );
        for issue in &file.issues {
            println!(
                "{}: record #{} at byte {}: {}",
                file.name, issue.record, issue.offset, issue.detail
            );
        }
    }
    if report.clean() {
        println!(
            "clean: {} record{} verified",
            report.records(),
            if report.records() == 1 { "" } else { "s" }
        );
        Ok(())
    } else {
        Err(CliError::CacheCorrupt {
            dir: dir.to_string(),
            issues: report.issue_count(),
        })
    }
}
