//! SIGTERM/SIGINT → graceful-shutdown bridge for the socket daemon.
//!
//! The handler is async-signal-safe by construction: it stores one
//! atomic flag and returns. A watcher thread polls the flag and forwards
//! it to the daemon's [`cvliw::serve::ShutdownFlag`], which the accept
//! loop and every session observe at their next poll — in-flight batches
//! drain, responses flush, and the socket file is removed.
//!
//! Only the socket daemon installs this. The stdin daemon's graceful
//! path is EOF: glibc's `signal()` gives `SA_RESTART` semantics, so a
//! handler would not interrupt a blocking stdin read anyway, and ctrl-d
//! already drains cleanly.
//!
//! When the daemon persists its cache (`--cache-path`), both graceful
//! exits funnel through the same post-drain epilogue in `cmd_serve`: a
//! final compacted snapshot is written (tmp + fsync + atomic rename)
//! after the accept loop returns, so a SIGTERM'd daemon restarts warm
//! without replaying a long journal. A SIGKILL skips the epilogue by
//! definition — that is what the journal is for.

use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::Duration;

use cvliw::serve::ShutdownFlag;

static REQUESTED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    REQUESTED.store(true, Ordering::Release);
}

/// Installs SIGINT/SIGTERM handlers and spawns the watcher that forwards
/// the first signal to `shutdown`. Call once, before the accept loop.
pub fn install_shutdown_handler(shutdown: &ShutdownFlag) {
    // `signal(2)` via its C prototype — the only libc surface this
    // needs, so the workspace stays free of FFI crates. The returned
    // previous handler is irrelevant here.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
    let shutdown = shutdown.clone();
    thread::spawn(move || loop {
        if REQUESTED.load(Ordering::Acquire) {
            shutdown.request();
            return;
        }
        thread::sleep(Duration::from_millis(50));
    });
}
