//! Related work, head to head: loop unrolling (reference [22]) against
//! instruction replication, on the kernels the paper's DSP motivation cares
//! about. Unrolling gives the partitioner independent copies of every value
//! and removes communications wholesale — but multiplies code size, the
//! scarce resource on VLIW DSPs. Replication surgically copies only the
//! few instructions whose values cross clusters.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example unroll_vs_replicate
//! ```

use cvliw::machine::MachineConfig;
use cvliw::replicate::{compile_loop, CompileOptions};
use cvliw::sched::code_shape;
use cvliw::unroll::compile_unrolled;
use cvliw::workloads::kernels;

const TRIP_COUNT: u64 = 256;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineConfig::from_spec("4c1b2l64r")?;
    println!("machine {}, trip count {TRIP_COUNT}\n", machine.spec());
    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>14}",
        "kernel", "baseline", "replicate", "unroll x2", "unroll x4"
    );
    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>14}",
        "", "IPC/code", "IPC/code", "IPC/code", "IPC/code"
    );

    for (name, ddg) in kernels::all() {
        let mut cells = Vec::new();
        for opts in [CompileOptions::baseline(), CompileOptions::replicate()] {
            let out = compile_loop(&ddg, &machine, &opts)?;
            let ops = TRIP_COUNT * ddg.node_count() as u64;
            let ipc = ops as f64 / out.schedule.texec(TRIP_COUNT) as f64;
            let code = code_shape(&out.schedule).total_ops();
            cells.push(format!("{ipc:.2}/{code}"));
        }
        for factor in [2u32, 4] {
            match compile_unrolled(&ddg, &machine, factor) {
                Ok(report) => {
                    let code = code_shape(&report.compiled.schedule).total_ops();
                    cells.push(format!("{:.2}/{code}", report.ipc(TRIP_COUNT)));
                }
                Err(e) => cells.push(format!("fail({e})")),
            }
        }
        println!(
            "{name:<12} {:>14} {:>14} {:>14} {:>14}",
            cells[0], cells[1], cells[2], cells[3]
        );
    }

    println!(
        "\nEach cell is IPC / static code size (op slots incl. prologue and \
         epilogue).\nThe paper's related-work claim in numbers: unrolling can \
         match replication's\nthroughput but pays for it in kernel size, which \
         is what DSP code budgets\ncannot afford."
    );
    Ok(())
}
