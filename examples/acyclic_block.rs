//! The paper's Figure 11, executed: replication to reduce the schedule
//! length of **acyclic** code (the §6 transfer of the §5.1 heuristic).
//!
//! Instruction `A` (cluster 2) feeds `D → E` (cluster 1) and `F`
//! (cluster 3). The bus hop on `A → D` puts one cycle of communication
//! latency on the critical path; replicating `A` into cluster 1 *only*
//! (not into cluster 3, where the copy is off the critical path) shortens
//! the block from 4 cycles to 3.
//!
//! Run with:
//!
//! ```bash
//! cargo run --example acyclic_block
//! ```

use cvliw::machine::{FuCounts, LatencyTable, MachineConfig};
use cvliw::prelude::*;
use cvliw::replicate::{replicate_for_acyclic_length, schedule_acyclic};
use cvliw::sched::Assignment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut b = Ddg::builder();
    let a = b.add_labeled(OpKind::IntAdd, "A");
    let bb = b.add_labeled(OpKind::IntAdd, "B");
    let c = b.add_labeled(OpKind::IntAdd, "C");
    let d = b.add_labeled(OpKind::IntAdd, "D");
    let e = b.add_labeled(OpKind::IntAdd, "E");
    let f = b.add_labeled(OpKind::IntAdd, "F");
    b.data(a, bb).data(bb, c).data(a, d).data(d, e).data(a, f);
    let ddg = b.build()?;

    // Three 2-wide integer clusters, one 1-cycle bus, unit latencies —
    // the setting of the figure.
    let machine = MachineConfig::heterogeneous(
        vec![
            FuCounts {
                int: 2,
                fp: 0,
                mem: 0
            };
            3
        ],
        1,
        1,
        64,
        LatencyTable::UNIT,
    )?;
    let assignment = Assignment::from_partition(&[1, 1, 1, 0, 0, 2]);

    let before = schedule_acyclic(&ddg, &machine, &assignment)?;
    println!(
        "before replication: length {} cycles, {} copies",
        before.length(),
        before.copy_count()
    );
    for n in ddg.node_ids() {
        for cl in machine.cluster_ids() {
            if let Some(t) = before.instance_cycle(n, cl) {
                println!("  cycle {t}: {} in cluster {cl}", ddg.display_label(n));
            }
        }
    }
    if let Some((t, bus)) = before.copy_of(a) {
        println!("  cycle {t}: copy(A) on bus {bus}");
    }

    let (improved, after) = replicate_for_acyclic_length(&ddg, &machine, assignment)?;
    println!(
        "\nafter replication: length {} cycles, {} copies",
        after.length(),
        after.copy_count()
    );
    println!(
        "A now lives in clusters {:?} — replicated where the critical path \
         needed it, left communicated elsewhere",
        improved.instances(a).iter().collect::<Vec<_>>()
    );
    assert_eq!(before.length(), 4);
    assert_eq!(after.length(), 3);
    println!("\nFigure 11 reproduced: 4 cycles -> 3 cycles.");
    Ok(())
}
