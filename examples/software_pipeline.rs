//! The §5.1 story, made concrete: why reducing the II barely helps a loop
//! with a short trip count.
//!
//! The paper observes that applu's hot loops run many times but iterate
//! only ~4 times per visit, so prologue and epilogue — not the kernel —
//! dominate execution, and replication's II reduction buys little. This
//! example expands real schedules into prologue/kernel/epilogue code and
//! measures exactly that effect.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example software_pipeline
//! ```

use cvliw::prelude::*;
use cvliw::replicate::{compile_loop, CompileOptions};
use cvliw::sched::{code_shape, expand, render_expansion};
use cvliw::workloads::kernels;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-tap FIR filter: its shared address/coefficient values make it
    // communication-bound on a 2-cluster machine, so replication buys a
    // real II reduction.
    let ddg = kernels::fir(8);
    let machine = MachineConfig::from_spec("2c1b2l64r")?;

    let base = compile_loop(&ddg, &machine, &CompileOptions::baseline())?;
    let repl = compile_loop(&ddg, &machine, &CompileOptions::replicate())?;
    println!(
        "baseline:    II={} SC={} (communications: {})",
        base.stats.ii, base.stats.stage_count, base.stats.final_coms
    );
    println!(
        "replication: II={} SC={} (communications: {})",
        repl.stats.ii, repl.stats.stage_count, repl.stats.final_coms
    );

    println!("\n--- the paper's Texec = (N-1+SC)·II, at different trip counts ---");
    println!(
        "{:>10} {:>14} {:>14} {:>10} {:>16}",
        "N", "baseline cyc", "replicated cyc", "speedup", "steady fraction"
    );
    for n in [2u64, 4, 8, 32, 128, 1024] {
        let tb = base.schedule.texec(n);
        let tr = repl.schedule.texec(n);
        let steady = expand(&repl.schedule, n).steady_fraction();
        println!(
            "{n:>10} {tb:>14} {tr:>14} {:>9.1}% {:>15.0}%",
            100.0 * (tb as f64 / tr as f64 - 1.0),
            100.0 * steady
        );
    }
    println!("\nAt applu-like trip counts the pipeline never fills, the deeper");
    println!("replicated pipeline (larger SC) costs as much as the smaller II");
    println!("saves — replication can even lose at N=2 and only breaks even near");
    println!("N=4. At N=1024 the speedup converges to the II ratio. This is the");
    println!("paper's Figure 9 discussion (and its §5.1 motivation) in numbers.");

    let shape = code_shape(&repl.schedule);
    println!(
        "\nstatic code emitted: {} rows, {} op slots (prologue {}, kernel {}, epilogue {})",
        shape.total_rows(),
        shape.total_ops(),
        shape.prologue_ops,
        shape.kernel_ops,
        shape.epilogue_ops
    );

    println!("\n--- expanded trace, 4 iterations (replicated schedule) ---");
    print!("{}", render_expansion(&expand(&repl.schedule, 4), &ddg));
    Ok(())
}
