//! Quickstart: build a loop, compile it for a clustered VLIW with and
//! without instruction replication, inspect the schedules, and validate
//! the replicated kernel in the cycle simulator.
//!
//! Run with `cargo run --example quickstart`.

use cvliw::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small communication-bound loop: one shared address computation
    // feeding two floating-point chains that end in stores.
    let mut b = Ddg::builder();
    let iv = b.add_labeled(OpKind::IntAdd, "iv");
    b.data_dist(iv, iv, 1); // induction variable
    let base = b.add_labeled(OpKind::IntAdd, "base");
    b.data(iv, base);
    for chain in 0..2 {
        let ld = b.add_labeled(OpKind::Load, format!("ld{chain}"));
        let mul = b.add_labeled(OpKind::FpMul, format!("mul{chain}"));
        let add = b.add_labeled(OpKind::FpAdd, format!("add{chain}"));
        let st = b.add_labeled(OpKind::Store, format!("st{chain}"));
        b.data(base, ld)
            .data(ld, mul)
            .data(mul, add)
            .data(add, st)
            .data(base, st);
    }
    let ddg = b.build()?;
    println!(
        "loop body: {} ops, {} dependences",
        ddg.node_count(),
        ddg.edge_count()
    );

    // The paper's 4-cluster machine with one 2-cycle bus.
    let machine = MachineConfig::from_spec("4c1b2l64r")?;

    let baseline = compile_loop(&ddg, &machine, &CompileOptions::baseline())?;
    let replicated = compile_loop(&ddg, &machine, &CompileOptions::replicate())?;

    println!(
        "\nbaseline:    II={} length={} communications={}",
        baseline.stats.ii, baseline.stats.length, baseline.stats.final_coms
    );
    println!(
        "replication: II={} length={} communications={} (+{} replicas, -{} dead)",
        replicated.stats.ii,
        replicated.stats.length,
        replicated.stats.final_coms,
        replicated.stats.replication.added_instances(),
        replicated.stats.replication.removed_instances
    );

    println!("\nreplicated kernel:\n{}", replicated.schedule.render(&ddg));

    // Both schedules must be legal…
    baseline.schedule.verify(&ddg, &machine)?;
    replicated.schedule.verify(&ddg, &machine)?;

    // …and the replicated one must compute the same values, on time.
    let report = cvliw::sim::simulate(&ddg, &machine, &replicated.schedule, 32)?;
    println!(
        "simulated 32 iterations: {} ops, {} copies, {} operand checks, {} cycles",
        report.instructions_executed,
        report.copies_executed,
        report.values_checked,
        report.makespan
    );

    // Execution-time comparison under the paper's timing model, for a loop
    // running 1000 iterations.
    let n = 1000;
    println!(
        "\nTexec({n} iterations): baseline {} cycles, replication {} cycles ({:.1}% faster)",
        baseline.schedule.texec(n),
        replicated.schedule.texec(n),
        100.0 * (1.0 - replicated.schedule.texec(n) as f64 / baseline.schedule.texec(n) as f64)
    );
    Ok(())
}
