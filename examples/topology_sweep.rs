//! Compile one communication-bound loop across bus, ring and crossbar
//! variants of the same 4-cluster machine and print the replication win
//! per topology.
//!
//! The interesting outcome is the *shape* of the table: on the paper's
//! shared bus, replication buys back most of the communication-bound II;
//! on a ring the win shrinks (per-pair links add bandwidth, long hops
//! still cost latency); on a full crossbar it mostly vanishes — which is
//! exactly the evidence that the paper's benefit is bus *contention*
//! rather than transfer *latency*.
//!
//! Run with `cargo run --release --example topology_sweep [loop-name]`
//! (default: the su2cor-style communication-bound loop below).

use cvliw::machine::topology_specs;
use cvliw::prelude::*;
use cvliw::replicate::compile_loop as compile;

/// A loop whose partition necessarily communicates: two shared integer
/// address chains feeding eight coupled fp chains that end in stores, with
/// cross-links between neighbouring chains so no clean per-cluster split
/// exists (a denser variant of the shape the driver's unit tests use).
fn comm_bound() -> Ddg {
    let mut b = Ddg::builder();
    let iv = b.add_labeled(OpKind::IntAdd, "iv");
    b.data_dist(iv, iv, 1);
    let base = b.add_labeled(OpKind::IntAdd, "base");
    b.data(iv, base);
    let mut prev_mul = None;
    for _ in 0..8 {
        let ld = b.add_node(OpKind::Load);
        b.data(base, ld);
        let m0 = b.add_node(OpKind::FpMul);
        let a0 = b.add_node(OpKind::FpAdd);
        b.data(ld, m0).data(m0, a0);
        // Couple neighbouring chains: each fp add also reads the previous
        // chain's product, so cutting anywhere costs a communication.
        if let Some(p) = prev_mul {
            b.data(p, a0);
        }
        prev_mul = Some(m0);
        let st = b.add_node(OpKind::Store);
        b.data(a0, st).data(base, st);
    }
    b.build().expect("well-formed loop")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ddg = comm_bound();
    println!(
        "loop: {} ops, {} deps\n",
        ddg.node_count(),
        ddg.edge_count()
    );
    println!(
        "{:<14} {:<30} {:>8} {:>8} {:>8} {:>9} {:>8}",
        "machine", "interconnect", "base II", "repl II", "+instrs", "coms", "win"
    );
    let specs = std::iter::once("4c1b2l64r").chain(topology_specs());
    for spec in specs {
        let machine = MachineConfig::from_spec(spec)?;
        let base = compile(&ddg, &machine, &CompileOptions::baseline())?;
        let repl = compile(&ddg, &machine, &CompileOptions::replicate())?;
        repl.schedule.verify(&ddg, &machine)?;
        let win = 100.0 * (f64::from(base.stats.ii) / f64::from(repl.stats.ii) - 1.0);
        println!(
            "{spec:<14} {:<30} {:>8} {:>8} {:>8} {:>4} → {:>2} {win:>7.1}%",
            machine.interconnect().describe(machine.clusters()),
            base.stats.ii,
            repl.stats.ii,
            repl.stats.replication.added_instances(),
            repl.stats.partition_coms,
            repl.stats.final_coms,
        );
    }
    Ok(())
}
