//! Sweep one benchmark program across every machine configuration of the
//! paper and print a Figure-7-style IPC table.
//!
//! Run with `cargo run --release --example config_sweep [program]`
//! (default: su2cor, the paper's best case).

use cvliw::machine::paper_specs;
use cvliw::prelude::*;
use cvliw::replicate::compile_loop as compile;
use cvliw::sim::IpcAccumulator;

fn ipc_of(program: &BenchmarkProgram, machine: &MachineConfig, opts: &CompileOptions) -> f64 {
    let mut acc = IpcAccumulator::new();
    for l in &program.loops {
        let out = compile(&l.ddg, machine, opts).expect("suite loops compile");
        acc.add_loop(
            l.profile.visits,
            l.profile.iterations,
            out.stats.ops_per_iter,
            out.stats.ii,
            out.stats.stage_count,
        );
    }
    acc.ipc()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "su2cor".to_string());
    let program =
        cvliw::workloads::program(&name).ok_or_else(|| format!("unknown program `{name}`"))?;
    println!(
        "{name}: {} loops, {} dynamic ops\n",
        program.loops.len(),
        program.dynamic_ops()
    );

    println!(
        "{:<12} {:>10} {:>12} {:>9}",
        "machine", "baseline", "replication", "speedup"
    );
    let unified = MachineConfig::unified(256);
    let u = ipc_of(&program, &unified, &CompileOptions::baseline());
    println!("{:<12} {u:>10.2} {:>12} {:>9}", "unified", "-", "-");
    for spec in paper_specs() {
        let machine = MachineConfig::from_spec(spec)?;
        let base = ipc_of(&program, &machine, &CompileOptions::baseline());
        let repl = ipc_of(&program, &machine, &CompileOptions::replicate());
        println!(
            "{spec:<12} {base:>10.2} {repl:>12.2} {:>8.1}%",
            100.0 * (repl / base - 1.0)
        );
    }
    Ok(())
}
