//! A DSP scenario: schedule an 8-tap FIR filter — the kind of kernel the
//! clustered VLIW DSPs in the paper's introduction (TI C6x, TigerSHARC)
//! run all day — across machine shapes, with and without replication, and
//! validate the winner in the cycle simulator.
//!
//! Run with `cargo run --example fir_filter`.

use cvliw::prelude::*;
use cvliw::workloads::kernels;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ddg = kernels::fir(8);
    println!(
        "8-tap FIR: {} ops per output sample ({} loads, {} fp)\n",
        ddg.node_count(),
        ddg.node_ids()
            .filter(|&n| ddg.kind(n) == OpKind::Load)
            .count(),
        ddg.node_ids()
            .filter(|&n| ddg.kind(n).class() == OpClass::Fp)
            .count(),
    );

    println!(
        "{:<12} {:>8} {:>8} {:>9} {:>9} {:>10}",
        "machine", "II base", "II repl", "coms", "replicas", "speedup"
    );
    for spec in ["2c1b2l64r", "2c2b4l64r", "4c1b2l64r", "4c2b4l64r"] {
        let machine = MachineConfig::from_spec(spec)?;
        let base = compile_loop(&ddg, &machine, &CompileOptions::baseline())?;
        let repl = compile_loop(&ddg, &machine, &CompileOptions::replicate())?;
        let n = 4096; // samples
        let speedup = base.schedule.texec(n) as f64 / repl.schedule.texec(n) as f64 - 1.0;
        println!(
            "{spec:<12} {:>8} {:>8} {:>4} → {:>2} {:>9} {:>9.1}%",
            base.stats.ii,
            repl.stats.ii,
            base.stats.final_coms,
            repl.stats.final_coms,
            repl.stats.replication.added_instances(),
            100.0 * speedup,
        );

        // Replicated code must still compute the same samples.
        repl.schedule.verify(&ddg, &machine)?;
        let report = cvliw::sim::simulate(&ddg, &machine, &repl.schedule, 64)?;
        assert_eq!(
            report.instructions_executed,
            u64::from(repl.schedule.op_count()) * 64
        );
    }

    println!("\nall replicated schedules verified and simulated (64 samples each)");
    Ok(())
}
