//! §2.1 extension: heterogeneous clusters.
//!
//! The paper assumes homogeneous clusters but notes the algorithm "can be
//! easily extended to deal with heterogeneous clusters". This example
//! builds a DSP-style asymmetric machine — one fp-heavy compute cluster
//! and one int/mem "address engine" — and compares it against the paper's
//! homogeneous 2-cluster machine of the same total issue width on a set of
//! signal-processing kernels.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example heterogeneous
//! ```

use cvliw::machine::{FuCounts, LatencyTable, MachineConfig};
use cvliw::replicate::{compile_loop, CompileOptions};
use cvliw::workloads::kernels;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's homogeneous 2-cluster split of a 12-wide machine...
    let homogeneous = MachineConfig::from_spec("2c1b2l64r")?;
    // ...and an asymmetric split of the same 12 issue slots: the compute
    // cluster gets 4 fp units, the address engine gets 4 int units, and
    // the memory ports sit 2+2.
    let heterogeneous = MachineConfig::heterogeneous(
        vec![
            FuCounts {
                int: 0,
                fp: 4,
                mem: 2,
            },
            FuCounts {
                int: 4,
                fp: 0,
                mem: 2,
            },
        ],
        1,
        2,
        64,
        LatencyTable::PAPER,
    )?;
    assert_eq!(homogeneous.issue_width(), heterogeneous.issue_width());

    println!(
        "machine A: {} (homogeneous 2/2/2 per cluster)",
        homogeneous.spec()
    );
    println!(
        "machine B: {} (fp cluster + address engine)",
        heterogeneous.spec()
    );
    println!();
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "kernel", "A base II", "A repl II", "B base II", "B repl II"
    );

    for (name, ddg) in kernels::all() {
        let mut cells = Vec::new();
        for machine in [&homogeneous, &heterogeneous] {
            for opts in [CompileOptions::baseline(), CompileOptions::replicate()] {
                match compile_loop(&ddg, machine, &opts) {
                    Ok(out) => {
                        out.schedule.verify(&ddg, machine)?;
                        cells.push(format!("{} ({}c)", out.stats.ii, out.stats.final_coms));
                    }
                    Err(e) => cells.push(format!("fail: {e}")),
                }
            }
        }
        println!(
            "{name:<12} {:>12} {:>12} {:>12} {:>12}",
            cells[0], cells[1], cells[2], cells[3]
        );
    }

    println!();
    println!("(cells are II with the number of bus communications in parentheses)");
    println!();
    println!("Reading the table: on the homogeneous machine replication removes");
    println!("most communications and halves the II of the comm-bound kernels.");
    println!("On the asymmetric machine the compute cluster has no integer units,");
    println!("so replication subgraphs containing address arithmetic cannot move");
    println!("there — the weight heuristic's capacity check rejects them and the");
    println!("communications stay. Heterogeneity constrains replication exactly");
    println!("as §3.3's resource model predicts.");
    Ok(())
}
