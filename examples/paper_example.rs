//! Walk through the paper's worked example (Figures 3 and 6): build the
//! 14-instruction graph, print the replication subgraphs and weights,
//! replicate the lightest one and show how the remaining plans update.
//!
//! Run with `cargo run --example paper_example`.

use cvliw::replicate::paper_example::{fig3_example, fig3_machine, FIG3_II};
use cvliw::replicate::ReplicationEngine;

fn main() {
    let (ddg, assignment, _) = fig3_example();
    let machine = fig3_machine();

    println!(
        "Figure 3: {} instructions on 4 clusters, II = {FIG3_II}",
        ddg.node_count()
    );
    let coms = assignment.communicated(&ddg);
    println!(
        "communicated values: {:?}",
        coms.iter()
            .map(|&n| ddg.display_label(n))
            .collect::<Vec<_>>()
    );

    let mut engine = ReplicationEngine::new(&ddg, &machine, FIG3_II, assignment);
    println!(
        "extra_coms = {} (3 communications, bus fits 2 per II)\n",
        engine.extra_coms()
    );

    println!("replication subgraphs and weights (paper: S_D=49/16, S_J=40/16):");
    let weights = engine.weights().to_vec();
    let plan = {
        let plans = engine.plans();
        for (plan, &w) in plans.iter().zip(&weights) {
            println!(
                "  S_{}: nodes {:?} into clusters {}, removable {:?}, weight {w:.4} ({}/16)",
                ddg.display_label(plan.com()),
                plan.subgraph()
                    .map(|n| ddg.display_label(n))
                    .collect::<Vec<_>>(),
                plan.targets(),
                plan.removable()
                    .iter()
                    .map(|&(n, c)| format!("{}@{}", ddg.display_label(n), c + 1))
                    .collect::<Vec<_>>(),
                (w * 16.0).round() as i64,
            );
        }

        // Commit the lightest subgraph (S_E), exactly what the engine does.
        let lightest = weights
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite weights"))
            .map(|(i, _)| i)
            .expect("three plans exist");
        plans.get(lightest).to_plan()
    };
    println!("\nreplicating S_{} …\n", ddg.display_label(plan.com));
    engine.commit(&plan);

    println!("updated subgraphs (Figure 6: S_D=44/8 into clusters 2 and 4, S_J=42/8):");
    let weights = engine.weights().to_vec();
    let plans = engine.plans();
    for (plan, &w) in plans.iter().zip(&weights) {
        println!(
            "  S_{}: nodes {:?} into clusters {}, removable {:?}, weight {w:.4} ({}/8)",
            ddg.display_label(plan.com()),
            plan.subgraph()
                .map(|n| ddg.display_label(n))
                .collect::<Vec<_>>(),
            plan.targets(),
            plan.removable()
                .iter()
                .map(|&(n, c)| format!("{}@{}", ddg.display_label(n), c + 1))
                .collect::<Vec<_>>(),
            (w * 8.0).round() as i64,
        );
    }

    let (final_assignment, stats) = engine.into_parts();
    println!("\nfinal statistics: {stats:?}");
    println!(
        "E now lives in clusters {:?} (paper: replicated into 2 and 4, removed from 3)",
        final_assignment
            .instances(ddg.find_by_label("E").expect("E exists"))
            .iter()
            .map(|c| c + 1)
            .collect::<Vec<_>>()
    );
}
