//! Property tests for the unrolling transformation: the remapped edge set
//! is exactly what the unrolling semantics dictate, for arbitrary graphs
//! and factors.

use cvliw_ddg::{Ddg, DepKind, OpKind};
use cvliw_unroll::unroll;
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = OpKind> {
    prop::sample::select(OpKind::ALL.to_vec())
}

fn arb_ddg() -> impl Strategy<Value = Ddg> {
    let nodes = prop::collection::vec(arb_kind(), 1..10);
    nodes
        .prop_flat_map(|kinds| {
            let n = kinds.len();
            let edges = prop::collection::vec((0..n, 0..n, 0u32..4, prop::bool::ANY), 0..(2 * n));
            (Just(kinds), edges)
        })
        .prop_map(|(kinds, edges)| {
            let mut b = Ddg::builder();
            let ids: Vec<_> = kinds.iter().map(|&k| b.add_node(k)).collect();
            for (src, dst, dist, is_mem) in edges {
                let kind = if is_mem || !kinds[src].produces_value() {
                    DepKind::Mem
                } else {
                    DepKind::Data
                };
                if dist > 0 {
                    b.edge(ids[src], ids[dst], kind, dist);
                } else if src < dst {
                    b.edge(ids[src], ids[dst], kind, 0);
                }
            }
            b.build().expect("valid by construction")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn counts_scale_exactly(ddg in arb_ddg(), factor in 1u32..6) {
        let u = unroll(&ddg, factor).unwrap();
        prop_assert_eq!(u.node_count(), ddg.node_count() * factor as usize);
        prop_assert_eq!(u.edge_count(), ddg.edge_count() * factor as usize);
    }

    #[test]
    fn kinds_replicate_per_instance(ddg in arb_ddg(), factor in 1u32..6) {
        let u = unroll(&ddg, factor).unwrap();
        let n = ddg.node_count();
        for k in 0..factor as usize {
            for v in ddg.node_ids() {
                let instance = u.node_ids().nth(k * n + v.index()).unwrap();
                prop_assert_eq!(u.kind(instance), ddg.kind(v));
            }
        }
    }

    #[test]
    fn every_edge_remaps_by_the_unrolling_equation(ddg in arb_ddg(), factor in 1u32..5) {
        let u = unroll(&ddg, factor).unwrap();
        let n = ddg.node_count();
        let f = i64::from(factor);
        // Collect unrolled edges as tuples for multiset comparison.
        let mut got: Vec<(usize, usize, bool, u32)> = u
            .edges()
            .map(|e| (e.src.index(), e.dst.index(), e.kind == DepKind::Data, e.distance))
            .collect();
        got.sort_unstable();
        let mut want: Vec<(usize, usize, bool, u32)> = Vec::new();
        for e in ddg.edges() {
            for k in 0..factor as i64 {
                let j = k - i64::from(e.distance);
                let src_instance = j.rem_euclid(f) as usize;
                let new_dist = if j >= 0 { 0 } else { ((-j + f - 1) / f) as u32 };
                want.push((
                    src_instance * n + e.src.index(),
                    k as usize * n + e.dst.index(),
                    e.kind == DepKind::Data,
                    new_dist,
                ));
            }
        }
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn total_distance_is_preserved_per_original_edge(ddg in arb_ddg(), factor in 1u32..5) {
        // Summing unrolled distances over the F images of an edge must give
        // the original distance: each original dependence spans `d` original
        // iterations, and the F images together span d unrolled iterations'
        // worth of original iterations.
        let u = unroll(&ddg, factor).unwrap();
        let sum_orig: u64 = ddg.edges().map(|e| u64::from(e.distance)).sum();
        let sum_unrolled: u64 = u.edges().map(|e| u64::from(e.distance)).sum();
        prop_assert_eq!(sum_unrolled, sum_orig, "factor {}", factor);
    }

    #[test]
    fn unrolling_is_deterministic(ddg in arb_ddg(), factor in 1u32..5) {
        let a = unroll(&ddg, factor).unwrap();
        let b = unroll(&ddg, factor).unwrap();
        prop_assert_eq!(a.node_count(), b.node_count());
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        prop_assert_eq!(ea, eb);
    }
}
