//! Loop unrolling for clustered VLIW modulo scheduling.
//!
//! The paper's related work (§6, reference \[22\] — Sánchez & González,
//! *"The Effectiveness of Loop Unrolling for Modulo Scheduling in Clustered
//! VLIW Architectures"*, ICPP 2000) discusses unrolling as the main
//! alternative to instruction replication: unrolling a loop `F` times gives
//! the partitioner `F` independent instances of every value, so consumers
//! can be co-located with producers and most inter-cluster communications
//! disappear — **at the cost of a kernel roughly `F` times larger**, which
//! matters on the DSPs these machines target.
//!
//! This crate provides the transformation ([`unroll`]) and an evaluation
//! wrapper ([`compile_unrolled`]) so the trade-off can be measured against
//! replication on the same machine model (`ablation_unrolling` bench):
//! throughput per original iteration, static code size, and remaining
//! communications.
//!
//! # Example
//!
//! ```
//! use cvliw_ddg::{Ddg, OpKind};
//! use cvliw_machine::MachineConfig;
//! use cvliw_unroll::compile_unrolled;
//!
//! // One shared address chain feeding two fp chains.
//! let mut b = Ddg::builder();
//! let iv = b.add_node(OpKind::IntAdd);
//! b.data_dist(iv, iv, 1);
//! for _ in 0..2 {
//!     let ld = b.add_node(OpKind::Load);
//!     let m = b.add_node(OpKind::FpMul);
//!     let s = b.add_node(OpKind::Store);
//!     b.data(iv, ld).data(ld, m).data(m, s);
//! }
//! let ddg = b.build()?;
//! let machine = MachineConfig::from_spec("4c1b2l64r")?;
//!
//! let u2 = compile_unrolled(&ddg, &machine, 2)?;
//! // Per-original-iteration II is comparable with the plain loop's II...
//! assert!(u2.effective_ii() >= 1.0);
//! // ...but the kernel holds two copies of the body.
//! assert!(u2.code_size() >= 2 * ddg.node_count() as u32);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eval;
mod transform;

pub use eval::{compile_unrolled, UnrollError, UnrollReport};
pub use transform::unroll;
