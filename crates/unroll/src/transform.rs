//! The unrolling graph transformation.

use cvliw_ddg::{Ddg, DdgError, NodeId};

/// Unrolls a loop body `factor` times.
///
/// The unrolled body contains `factor` instances of every operation;
/// instance `k` of node `v` represents `v` in original iteration
/// `U·factor + k` of unrolled iteration `U`. Dependences are remapped so
/// the unrolled loop computes exactly the same thing:
///
/// * a distance-0 edge `u → v` becomes `factor` distance-0 edges
///   `u.k → v.k`;
/// * a distance-`d` edge `u → v` becomes, for each instance `k` of `v`, an
///   edge from instance `(k − d) mod factor` of `u` with unrolled distance
///   `⌈(d − k) / factor⌉` (clamped at 0) — cross-iteration dependences that
///   land inside the same unrolled body turn into plain distance-0 edges,
///   which is exactly why unrolling removes inter-cluster communications:
///   the consumer can be placed in the producer's cluster independently
///   for every instance.
///
/// Instance `k` of a node labeled `x` is labeled `x.k`.
///
/// # Errors
///
/// Returns [`DdgError`] only if `ddg` itself was malformed (cannot happen
/// for graphs built through [`Ddg::builder`]).
///
/// # Panics
///
/// Panics if `factor` is zero.
///
/// # Example
///
/// ```
/// use cvliw_ddg::{Ddg, OpKind};
/// use cvliw_unroll::unroll;
///
/// let mut b = Ddg::builder();
/// let acc = b.add_labeled(OpKind::FpAdd, "acc");
/// b.data_dist(acc, acc, 1); // acc += ... every iteration
/// let ddg = b.build()?;
///
/// let u2 = unroll(&ddg, 2)?;
/// assert_eq!(u2.node_count(), 2);
/// // acc.1 reads acc.0 in the same unrolled iteration; acc.0 reads acc.1
/// // from the previous one.
/// let a0 = u2.find_by_label("acc.0").unwrap();
/// let a1 = u2.find_by_label("acc.1").unwrap();
/// assert!(u2.edges().any(|e| e.src == a0 && e.dst == a1 && e.distance == 0));
/// assert!(u2.edges().any(|e| e.src == a1 && e.dst == a0 && e.distance == 1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn unroll(ddg: &Ddg, factor: u32) -> Result<Ddg, DdgError> {
    assert!(factor > 0, "unroll factor must be positive");
    let f = factor as usize;
    let n = ddg.node_count();

    let mut b = Ddg::builder();
    // instance_ids[k][v] = id of instance k of node v.
    let mut instance_ids: Vec<Vec<NodeId>> = Vec::with_capacity(f);
    for k in 0..f {
        let mut ids = Vec::with_capacity(n);
        for v in ddg.node_ids() {
            let base = match ddg.node(v).label() {
                Some(l) => l.to_string(),
                None => format!("n{}", v.index()),
            };
            ids.push(b.add_labeled(ddg.kind(v), format!("{base}.{k}")));
        }
        instance_ids.push(ids);
    }

    for e in ddg.edges() {
        let d = i64::from(e.distance);
        for (k, ids) in instance_ids.iter().enumerate() {
            let j = k as i64 - d; // source original-iteration offset
            let src_instance = j.rem_euclid(factor as i64) as usize;
            let new_distance = if j >= 0 {
                0
            } else {
                // ceil(-j / factor)
                u32::try_from((-j + i64::from(factor) - 1) / i64::from(factor))
                    .expect("distance fits")
            };
            b.edge(
                instance_ids[src_instance][e.src.index()],
                ids[e.dst.index()],
                e.kind,
                new_distance,
            );
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvliw_ddg::{rec_mii, DepKind, OpKind};

    /// i → load → fmul → store with an induction self-edge.
    fn simple_loop() -> Ddg {
        let mut b = Ddg::builder();
        let i = b.add_labeled(OpKind::IntAdd, "i");
        b.data_dist(i, i, 1);
        let ld = b.add_labeled(OpKind::Load, "x");
        let m = b.add_labeled(OpKind::FpMul, "m");
        let s = b.add_labeled(OpKind::Store, "s");
        b.data(i, ld).data(ld, m).data(m, s);
        b.build().unwrap()
    }

    #[test]
    fn factor_one_is_an_isomorphic_copy() {
        let ddg = simple_loop();
        let u = unroll(&ddg, 1).unwrap();
        assert_eq!(u.node_count(), ddg.node_count());
        assert_eq!(u.edge_count(), ddg.edge_count());
        // Same kinds, same distances.
        for (a, b) in ddg.node_ids().zip(u.node_ids()) {
            assert_eq!(ddg.kind(a), u.kind(b));
        }
        let dists = |g: &Ddg| {
            let mut v: Vec<u32> = g.edges().map(|e| e.distance).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(dists(&ddg), dists(&u));
    }

    #[test]
    fn node_and_edge_counts_scale_linearly() {
        let ddg = simple_loop();
        for factor in [2u32, 3, 4] {
            let u = unroll(&ddg, factor).unwrap();
            assert_eq!(u.node_count(), ddg.node_count() * factor as usize);
            assert_eq!(u.edge_count(), ddg.edge_count() * factor as usize);
        }
    }

    #[test]
    fn intra_iteration_edges_stay_within_instances() {
        let u = unroll(&simple_loop(), 3).unwrap();
        for k in 0..3 {
            let x = u.find_by_label(&format!("x.{k}")).unwrap();
            let m = u.find_by_label(&format!("m.{k}")).unwrap();
            assert!(u
                .edges()
                .any(|e| e.src == x && e.dst == m && e.distance == 0));
        }
    }

    #[test]
    fn induction_chain_threads_through_instances() {
        let u = unroll(&simple_loop(), 4).unwrap();
        // i.k reads i.(k-1) at distance 0 for k > 0.
        for k in 1..4 {
            let prev = u.find_by_label(&format!("i.{}", k - 1)).unwrap();
            let cur = u.find_by_label(&format!("i.{k}")).unwrap();
            assert!(
                u.edges()
                    .any(|e| e.src == prev && e.dst == cur && e.distance == 0),
                "missing chain link {} -> {}",
                k - 1,
                k
            );
        }
        // i.0 reads i.3 of the previous unrolled iteration.
        let last = u.find_by_label("i.3").unwrap();
        let first = u.find_by_label("i.0").unwrap();
        assert!(u
            .edges()
            .any(|e| e.src == last && e.dst == first && e.distance == 1));
    }

    #[test]
    fn long_distances_split_correctly() {
        // v depends on itself 3 iterations back; unroll by 2.
        let mut b = Ddg::builder();
        let v = b.add_labeled(OpKind::FpAdd, "v");
        b.data_dist(v, v, 3);
        let ddg = b.build().unwrap();
        let u = unroll(&ddg, 2).unwrap();
        let v0 = u.find_by_label("v.0").unwrap();
        let v1 = u.find_by_label("v.1").unwrap();
        // v.0 of iter U = original iter 2U reads original 2U-3 = v.1 of U-2.
        assert!(u
            .edges()
            .any(|e| e.src == v1 && e.dst == v0 && e.distance == 2));
        // v.1 of iter U = original 2U+1 reads original 2U-2 = v.0 of U-1.
        assert!(u
            .edges()
            .any(|e| e.src == v0 && e.dst == v1 && e.distance == 1));
    }

    #[test]
    fn mem_edges_unroll_too() {
        let mut b = Ddg::builder();
        let s = b.add_labeled(OpKind::Store, "s");
        let l = b.add_labeled(OpKind::Load, "l");
        b.mem_dep(s, l, 1);
        let ddg = b.build().unwrap();
        let u = unroll(&ddg, 2).unwrap();
        assert_eq!(u.edges().filter(|e| e.kind == DepKind::Mem).count(), 2);
        // s.0 -> l.1 same iteration; s.1 -> l.0 next iteration.
        let s0 = u.find_by_label("s.0").unwrap();
        let l1 = u.find_by_label("l.1").unwrap();
        assert!(u
            .edges()
            .any(|e| e.src == s0 && e.dst == l1 && e.distance == 0));
    }

    #[test]
    fn recurrence_mii_scales_with_factor() {
        // A self-recurrence of latency L has RecMII = L; unrolled by F the
        // cycle contains F copies but also distance F... total latency F·L
        // over distance... the per-unrolled-iteration RecMII is F·L, i.e.
        // unchanged per original iteration.
        let mut b = Ddg::builder();
        let v = b.add_labeled(OpKind::FpAdd, "v");
        b.data_dist(v, v, 1);
        let ddg = b.build().unwrap();
        let lat = |_: &cvliw_ddg::Edge| 3u32;
        let base = rec_mii(&ddg, lat);
        let u4 = unroll(&ddg, 4).unwrap();
        let unrolled = rec_mii(&u4, lat);
        assert_eq!(base, 3);
        assert_eq!(
            unrolled, 12,
            "recurrence length per unrolled iteration scales by F"
        );
    }

    #[test]
    fn unlabeled_nodes_get_positional_instance_labels() {
        let mut b = Ddg::builder();
        let a = b.add_node(OpKind::Load);
        let c = b.add_node(OpKind::FpAdd);
        b.data(a, c);
        let ddg = b.build().unwrap();
        let u = unroll(&ddg, 2).unwrap();
        assert!(u.find_by_label("n0.0").is_some());
        assert!(u.find_by_label("n1.1").is_some());
    }

    #[test]
    #[should_panic(expected = "factor must be positive")]
    fn factor_zero_panics() {
        let _ = unroll(&simple_loop(), 0);
    }
}
