//! Evaluation wrapper: schedule an unrolled loop and compare it with
//! replication on the metrics the paper's related-work section discusses —
//! per-iteration throughput and static code size.

use cvliw_ddg::{Ddg, DdgError};
use cvliw_machine::MachineConfig;
use cvliw_replicate::{compile_loop, CompileError, CompileOptions, CompiledLoop};

use crate::transform::unroll;

/// The outcome of compiling one loop at one unroll factor.
#[derive(Clone, Debug)]
pub struct UnrollReport {
    /// The unroll factor used.
    pub factor: u32,
    /// The compiled unrolled loop.
    pub compiled: CompiledLoop,
    /// Operations per *original* iteration (constant across factors).
    pub ops_per_orig_iter: u32,
}

impl UnrollReport {
    /// The initiation interval charged to one **original** iteration:
    /// `II_unrolled / factor`. This is the throughput metric comparable
    /// with the non-unrolled II.
    #[must_use]
    pub fn effective_ii(&self) -> f64 {
        f64::from(self.compiled.stats.ii) / f64::from(self.factor)
    }

    /// Static code size of the kernel in operations (functional-unit
    /// instances plus bus copies). Unrolling inflates this roughly by the
    /// factor — the cost the paper's related work holds against it.
    #[must_use]
    pub fn code_size(&self) -> u32 {
        self.compiled.stats.instances_per_iter + self.compiled.stats.copies_per_iter
    }

    /// Communications per original iteration.
    #[must_use]
    pub fn coms_per_orig_iter(&self) -> f64 {
        f64::from(self.compiled.stats.final_coms) / f64::from(self.factor)
    }

    /// Execution cycles for `n` original iterations (epilogue iterations
    /// that do not fill a whole unrolled body are charged a full body,
    /// matching how a compiler would peel the remainder).
    #[must_use]
    pub fn texec(&self, n: u64) -> u64 {
        let bodies = n.div_ceil(u64::from(self.factor));
        self.compiled.schedule.texec(bodies)
    }

    /// IPC over `n` original iterations, counting only original operations
    /// (the same accounting the paper uses for replication).
    #[must_use]
    pub fn ipc(&self, n: u64) -> f64 {
        let ops = n * u64::from(self.ops_per_orig_iter);
        ops as f64 / self.texec(n) as f64
    }
}

/// Why unrolled compilation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum UnrollError {
    /// The transformation produced an invalid graph (cannot happen for
    /// graphs built through [`Ddg::builder`]).
    Transform(DdgError),
    /// The unrolled body did not fit any II up to the cap.
    Compile(CompileError),
}

impl std::fmt::Display for UnrollError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnrollError::Transform(e) => write!(f, "unroll transformation failed: {e}"),
            UnrollError::Compile(e) => write!(f, "unrolled loop failed to compile: {e}"),
        }
    }
}

impl std::error::Error for UnrollError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UnrollError::Transform(e) => Some(e),
            UnrollError::Compile(e) => Some(e),
        }
    }
}

/// Unrolls `ddg` by `factor` and compiles it **without replication** (the
/// two techniques are alternatives; the paper's related work compares them
/// head to head).
///
/// # Errors
///
/// Returns [`UnrollError::Compile`] when no II up to the cap schedules the
/// unrolled body — unrolled bodies are `factor` times larger and can
/// exhaust a cluster's capacity.
///
/// # Panics
///
/// Panics if `factor` is zero.
pub fn compile_unrolled(
    ddg: &Ddg,
    machine: &MachineConfig,
    factor: u32,
) -> Result<UnrollReport, UnrollError> {
    let unrolled = unroll(ddg, factor).map_err(UnrollError::Transform)?;
    let compiled = compile_loop(&unrolled, machine, &CompileOptions::baseline())
        .map_err(UnrollError::Compile)?;
    Ok(UnrollReport {
        factor,
        compiled,
        ops_per_orig_iter: ddg.node_count() as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvliw_ddg::OpKind;

    /// A shared address chain feeding two fp chains — communication-bound
    /// on a clustered machine.
    fn comm_bound() -> Ddg {
        let mut b = Ddg::builder();
        let iv = b.add_labeled(OpKind::IntAdd, "iv");
        b.data_dist(iv, iv, 1);
        for t in 0..2 {
            let ld = b.add_labeled(OpKind::Load, format!("ld{t}"));
            let m = b.add_labeled(OpKind::FpMul, format!("m{t}"));
            let s = b.add_labeled(OpKind::Store, format!("s{t}"));
            b.data(iv, ld).data(ld, m).data(m, s).data(iv, s);
        }
        b.build().unwrap()
    }

    fn machine() -> MachineConfig {
        MachineConfig::from_spec("4c1b2l64r").unwrap()
    }

    #[test]
    fn factor_one_matches_plain_baseline() {
        let ddg = comm_bound();
        let m = machine();
        let plain = compile_loop(&ddg, &m, &CompileOptions::baseline()).unwrap();
        let u1 = compile_unrolled(&ddg, &m, 1).unwrap();
        assert_eq!(u1.compiled.stats.ii, plain.stats.ii);
        assert!((u1.effective_ii() - f64::from(plain.stats.ii)).abs() < 1e-9);
    }

    #[test]
    fn unrolling_improves_effective_ii_on_comm_bound_loops() {
        let ddg = comm_bound();
        let m = machine();
        let u1 = compile_unrolled(&ddg, &m, 1).unwrap();
        let u4 = compile_unrolled(&ddg, &m, 4).unwrap();
        assert!(
            u4.effective_ii() <= u1.effective_ii() + 1e-9,
            "unrolling should not hurt throughput: {} vs {}",
            u4.effective_ii(),
            u1.effective_ii()
        );
    }

    #[test]
    fn unrolling_inflates_code_size() {
        let ddg = comm_bound();
        let m = machine();
        let u1 = compile_unrolled(&ddg, &m, 1).unwrap();
        let u4 = compile_unrolled(&ddg, &m, 4).unwrap();
        assert!(
            u4.code_size() >= 3 * u1.code_size(),
            "factor-4 kernel should be ~4x larger: {} vs {}",
            u4.code_size(),
            u1.code_size()
        );
    }

    #[test]
    fn ipc_counts_original_ops_only() {
        let ddg = comm_bound();
        let m = machine();
        let u2 = compile_unrolled(&ddg, &m, 2).unwrap();
        assert_eq!(u2.ops_per_orig_iter, ddg.node_count() as u32);
        let ipc = u2.ipc(1000);
        assert!(ipc > 0.0 && ipc <= m.issue_width() as f64);
    }

    #[test]
    fn texec_charges_whole_bodies() {
        let ddg = comm_bound();
        let m = machine();
        let u4 = compile_unrolled(&ddg, &m, 4).unwrap();
        // 5 original iterations need 2 unrolled bodies.
        assert_eq!(u4.texec(5), u4.compiled.schedule.texec(2));
        assert_eq!(u4.texec(8), u4.compiled.schedule.texec(2));
        assert_eq!(u4.texec(9), u4.compiled.schedule.texec(3));
    }

    #[test]
    fn errors_display() {
        let e = UnrollError::Compile(CompileError::IiLimitExceeded {
            mii: 2,
            max_ii: 4,
            causes: Default::default(),
        });
        assert!(e.to_string().contains("failed to compile"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
