//! Protocol robustness: a daemon that dies on bad input is not a daemon.
//!
//! Every malformed line — garbage bytes, truncated JSON, unknown fields,
//! oversized payloads, unknown machines or modes, a stream cut mid-line —
//! must produce exactly one structured error response (carrying the
//! request id whenever the scan recovered it, and the underlying error's
//! position information) and leave the server fully able to compile the
//! next request.

use cvliw_serve::testutil::{escape, request_line, TINY_LOOP};
use cvliw_serve::{Server, ServerConfig, MAX_LINE_BYTES};
use proptest::prelude::*;

fn server() -> Server {
    Server::new(ServerConfig {
        jobs: 2,
        ..ServerConfig::default()
    })
}

fn valid_line(id: u64) -> String {
    request_line(id, TINY_LOOP, "4c1b2l64r", "replicate", 1)
}

#[test]
fn malformed_lines_answer_structured_errors_and_daemon_survives() {
    let cases: &[(&str, &str)] = &[
        ("not json at all", "\"kind\":\"json\""),
        ("{", "\"kind\":\"json\""),
        ("{\"id\": 1", "\"kind\":\"json\""),
        ("{\"id\": 1,}", "\"kind\":\"json\""),
        ("[1, 2]", "\"kind\":\"json\""),
        (
            "{\"id\": 1, \"loop\": {\"nested\": 1}}",
            "\"kind\":\"json\"",
        ),
        ("{\"id\": 1, \"loop\": 1.5}", "\"kind\":\"json\""),
        ("{\"id\": 1} trailing", "\"kind\":\"json\""),
        ("{\"frobnicate\": 1}", "\"kind\":\"json\""),
        ("{\"id\": 99999999999999999999999}", "\"kind\":\"json\""),
        ("{\"loop\": \"x\"}", "missing required field `id`"),
        ("{\"id\": 4}", "missing required field `loop`"),
        (
            "{\"id\": 4, \"loop\": \"x\"}",
            "missing required field `machine`",
        ),
        ("{\"id\": 4, \"op\": \"shutdown\"}", "unknown op"),
        (
            "{\"id\": 4, \"loop\": \"x\", \"machine\": \"m\", \"mode\": \"yolo\"}",
            "unknown mode",
        ),
        (
            "{\"id\": 4, \"loop\": \"x\", \"machine\": \"m\", \"seeds\": 0}",
            "at least 1",
        ),
        (
            "{\"id\": 4, \"loop\": \"x\", \"machine\": null}",
            "must not be null",
        ),
    ];
    let mut s = server();
    for (i, (bad, want)) in cases.iter().enumerate() {
        let mut out = String::new();
        s.process_batch(&[bad.to_string(), valid_line(1000 + i as u64)], &mut out);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{bad}: {out}");
        assert!(
            lines[0].contains("\"error\":") && lines[0].contains(want),
            "{bad}: expected `{want}` in {}",
            lines[0]
        );
        assert!(
            lines[1].contains("\"ok\":"),
            "daemon failed to serve after `{bad}`: {}",
            lines[1]
        );
    }
}

#[test]
fn bad_machine_spec_carries_spec_error_details() {
    let mut s = server();
    let mut out = String::new();
    // `4c0b2l64r` parses until the zero bus-latency field; the error body
    // must carry the span of the offending field like `SpecError` does.
    let line = format!(
        "{{\"id\": 7, \"loop\": \"{}\", \"machine\": \"4c1b0l64r\"}}",
        escape(TINY_LOOP)
    );
    s.process_batch(&[line], &mut out);
    assert!(
        out.starts_with("{\"id\":7,\"error\":{\"kind\":\"spec\""),
        "{out}"
    );
    assert!(out.contains("\"span\":["), "{out}");
}

#[test]
fn bad_loop_source_carries_parse_position() {
    let mut s = server();
    let mut out = String::new();
    s.process_batch(
        &[request_line(
            8,
            "loop broken {\n  x: frobnicate y\n}",
            "4c1b2l64r",
            "replicate",
            1,
        )],
        &mut out,
    );
    assert!(
        out.starts_with("{\"id\":8,\"error\":{\"kind\":\"parse\""),
        "{out}"
    );
    assert!(out.contains("\"line\":2"), "{out}");
}

#[test]
fn oversized_lines_are_rejected_unscanned() {
    let mut s = server();
    let huge = format!(
        "{{\"id\": 1, \"loop\": \"{}\", \"machine\": \"4c1b2l64r\"}}",
        "x".repeat(MAX_LINE_BYTES)
    );
    let mut out = String::new();
    s.process_batch(&[huge, valid_line(2)], &mut out);
    let lines: Vec<&str> = out.lines().collect();
    assert!(
        lines[0].starts_with("{\"id\":null,\"error\":{\"kind\":\"oversized\""),
        "{}",
        lines[0]
    );
    assert!(lines[1].contains("\"ok\":"));
    assert_eq!(s.stats().compiles, 1);
}

#[test]
fn mid_stream_eof_on_a_partial_line_is_a_structured_error() {
    let mut s = server();
    let input = format!("{}\n{{\"id\": 5, \"loo", valid_line(1));
    let mut out = Vec::new();
    s.run_jsonl(std::io::Cursor::new(input), &mut out).unwrap();
    let out = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 2, "{out}");
    assert!(lines[0].contains("\"ok\":"), "{}", lines[0]);
    assert!(
        lines[1].starts_with("{\"id\":5,\"error\":{\"kind\":\"json\""),
        "{}",
        lines[1]
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fuzz over truncated valid requests: every prefix of a well-formed
    /// line must be answered (or skipped, when the cut leaves whitespace
    /// only) without poisoning the server — the valid request that
    /// follows on the same stream must always compile.
    #[test]
    fn truncated_valid_requests_never_poison_the_stream(
        id in 0u64..1000,
        cut in 0usize..150,
        seeds in 1u32..4,
    ) {
        let full = request_line(id, TINY_LOOP, "2c1b2l64r", "baseline", seeds);
        let cut = cut.min(full.len());
        prop_assume!(full.is_char_boundary(cut));
        let prefix = &full[..cut];

        let mut s = server();
        let input = format!("{prefix}\n{}", valid_line(id + 1000));
        let mut out = Vec::new();
        s.run_jsonl(std::io::Cursor::new(input), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();

        let expected = if prefix.trim().is_empty() { 1 } else { 2 };
        prop_assert_eq!(lines.len(), expected, "prefix `{}`: {}", prefix, out);
        if expected == 2 {
            let verdict = if cut == full.len() { "\"ok\":" } else { "\"error\":" };
            prop_assert!(
                lines[0].contains(verdict),
                "prefix `{}` answered {}", prefix, lines[0]
            );
        }
        let last = lines.last().expect("valid request answered");
        prop_assert!(last.contains("\"ok\":"), "stream poisoned: {}", last);
    }
}
