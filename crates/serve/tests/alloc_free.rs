//! The cache-hit path is allocation-free — demonstrated, not asserted by
//! inspection.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! cold batch has populated the cache, the text memo, the slot table and
//! the output buffer, replaying the *same lines* through
//! `process_batch` must perform exactly zero heap allocations: JSON
//! scanning borrows from the input, the memo and the spec table are
//! looked up by reference, cached payloads come back as `Arc` refcount
//! bumps, and with no miss in the batch the worker fan-out (and its
//! `thread::scope`) is skipped entirely.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cvliw_serve::testutil::{request_line, TINY_LOOP};
use cvliw_serve::{Server, ServerConfig};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

/// A second distinct loop so the warm batch exercises more than one
/// cache entry.
const OTHER_LOOP: &str =
    "loop other {\n  i: iadd i@1\n  a: load i\n  b: fadd a, b@1\n  s: store b\n}";

#[test]
fn warm_batch_allocates_nothing() {
    let mut server = Server::new(ServerConfig {
        jobs: 2,
        ..ServerConfig::default()
    });

    // Mixed traffic: two loops, two machines, two modes, plus repeats
    // inside the batch itself.
    let lines: Vec<String> = vec![
        request_line(1, TINY_LOOP, "4c1b2l64r", "replicate", 1),
        request_line(2, OTHER_LOOP, "4c1b2l64r", "baseline", 1),
        request_line(3, TINY_LOOP, "2c1b2l64r", "sched-len", 2),
        request_line(4, TINY_LOOP, "4c1b2l64r", "replicate", 1),
        request_line(5, OTHER_LOOP, "4c1b2l64r", "baseline", 1),
    ];

    // Cold pass: compiles, fills the cache/memo/slots, and grows the
    // output buffer to its steady-state capacity.
    let mut out = String::new();
    server.process_batch(&lines, &mut out);
    let cold = out.clone();
    assert_eq!(server.stats().compiles, 3, "{:?}", server.stats());
    assert_eq!(server.stats().errors, 0, "{cold}");

    // Warm pass: identical lines (same ids, so `out` needs no more
    // capacity than the cold pass already gave it).
    out.clear();
    let before = ALLOCS.load(Ordering::Relaxed);
    server.process_batch(&lines, &mut out);
    let after = ALLOCS.load(Ordering::Relaxed);

    assert_eq!(out, cold, "warm responses must be byte-identical");
    assert_eq!(
        after - before,
        0,
        "cache-hit path allocated {} times",
        after - before
    );
    // In-batch duplicates coalesce on the cold pass; on the warm pass all
    // five lines hit the cache.
    assert_eq!(server.stats().hits, 5, "{:?}", server.stats());
    assert_eq!(server.stats().coalesced, 2, "{:?}", server.stats());
}

/// The fault-tolerance plumbing must be free when armed but idle: with a
/// deadline configured and an in-flight bound in place, a warm batch
/// still takes the pure hit path — no token is armed (hits never reach a
/// worker), the shed gate is untouched (hits never acquire), and the
/// allocation count stays exactly zero.
#[test]
fn warm_batch_with_deadline_and_inflight_bound_still_allocates_nothing() {
    let mut server = Server::new(ServerConfig {
        jobs: 2,
        deadline_ms: Some(10_000),
        max_inflight: 8,
        ..ServerConfig::default()
    });

    let lines: Vec<String> = vec![
        request_line(1, TINY_LOOP, "4c1b2l64r", "replicate", 1),
        request_line(2, OTHER_LOOP, "4c1b2l64r", "baseline", 1),
        request_line(3, TINY_LOOP, "4c1b2l64r", "replicate", 1),
    ];

    let mut out = String::new();
    server.process_batch(&lines, &mut out);
    let cold = out.clone();
    let stats = server.stats();
    assert_eq!(
        (stats.errors, stats.shed, stats.deadlines, stats.panics),
        (0, 0, 0, 0),
        "{stats:?}"
    );

    out.clear();
    let before = ALLOCS.load(Ordering::Relaxed);
    server.process_batch(&lines, &mut out);
    let after = ALLOCS.load(Ordering::Relaxed);

    assert_eq!(out, cold, "warm responses must be byte-identical");
    assert_eq!(
        after - before,
        0,
        "armed-but-idle fault plumbing allocated {} times on the warm path",
        after - before
    );
}

/// Persistence must stay off the hit path: journal appends happen on
/// *insert* (a miss), so a warm batch against a persistence-backed cache
/// is still exactly zero allocations — no frame encoding, no persister
/// lock traffic, no `PathBuf` churn.
#[test]
fn warm_batch_with_persistence_enabled_still_allocates_nothing() {
    use cvliw_serve::{PersistConfig, SharedState};

    let dir = std::env::temp_dir().join(format!("cvliw-alloc-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = cvliw_serve::ServerConfig {
        jobs: 2,
        ..cvliw_serve::ServerConfig::default()
    };
    let (shared, load) =
        SharedState::with_persistence(&cfg, &PersistConfig::new(dir.clone())).expect("cold open");
    assert_eq!(load.loaded, 0);
    let mut server = Server::with_shared(cfg, shared);

    let lines: Vec<String> = vec![
        request_line(1, TINY_LOOP, "4c1b2l64r", "replicate", 1),
        request_line(2, OTHER_LOOP, "4c1b2l64r", "baseline", 1),
        request_line(3, TINY_LOOP, "4c1b2l64r", "replicate", 1),
    ];

    let mut out = String::new();
    server.process_batch(&lines, &mut out);
    let cold = out.clone();
    assert_eq!(server.stats().errors, 0, "{cold}");

    out.clear();
    let before = ALLOCS.load(Ordering::Relaxed);
    server.process_batch(&lines, &mut out);
    let after = ALLOCS.load(Ordering::Relaxed);

    assert_eq!(out, cold, "warm responses must be byte-identical");
    assert_eq!(
        after - before,
        0,
        "persistence leaked {} allocations onto the cache-hit path",
        after - before
    );
    let _ = std::fs::remove_dir_all(&dir);
}
