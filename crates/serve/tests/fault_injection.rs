//! The fault-injection harness: for arbitrary seeded [`FaultPlan`]s the
//! daemon must survive — worker panics contained to `compile_panic`
//! responses, slow compiles cut off at the deadline, torn client streams
//! answered for every complete line — while every *unaffected* request
//! stays byte-identical to the one-shot oracle, and no fault ever leaves
//! a poisoned payload in the result cache (a disarmed replay of the same
//! stream compiles cleanly and matches the oracle everywhere).
//!
//! Runs only under the `fault-inject` feature, which compiles the
//! injection hooks into the server:
//! `cargo test -p cvliw_serve --features fault-inject`.
#![cfg(feature = "fault-inject")]

use cvliw_machine::MachineConfig;
use cvliw_replicate::{compile_stats_ctx, CompileContext, CompileOptions, Mode};
use cvliw_serve::testutil::request_line;
use cvliw_serve::{
    render_compile_error_body, render_ok_body, render_response, FaultPlan, Server, ServerConfig,
};
use proptest::prelude::*;

const SPEC: &str = "4c1b2l64r";

/// A family of structurally distinct loops (the recurrence distance
/// differs), all compiling in microseconds — so only injected faults can
/// make a request slow or fail.
fn distinct_loop(i: u64) -> String {
    format!(
        "loop l {{\n  i: iadd i@{}\n  ld: load i\n  m: fmul ld\n  st: store m\n}}",
        i + 1
    )
}

/// Exactly what a one-shot compile of this request renders, from a fresh
/// context — the same oracle `tests/serve_equals_oneshot.rs` pins the
/// fault-free server against.
fn oneshot_response(id: u64, src: &str) -> String {
    let ddg = cvliw_ir::parse_loop(src).expect("fixture loop parses").ddg;
    let machine = MachineConfig::from_extended_spec(SPEC).expect("paper spec");
    let ctx = CompileContext::new(&ddg, &machine).with_refine_seeds(1);
    let opts = CompileOptions {
        mode: Mode::Replicate,
        max_ii: None,
    };
    let mut body = String::new();
    match compile_stats_ctx(&ddg, &machine, &opts, &ctx) {
        Ok(stats) => render_ok_body(&stats, &mut body),
        Err(e) => render_compile_error_body(&e, &mut body),
    }
    let mut out = String::new();
    render_response(Some(id), &body, &mut out);
    out
}

/// Feeds request `i` as its own single-line batch so global stamps equal
/// request indices and duplicates can't coalesce.
fn serve_one(s: &mut Server, id: u64, src: &str) -> String {
    let mut out = String::new();
    s.process_batch(&[request_line(id, src, SPEC, "replicate", 1)], &mut out);
    out
}

/// Replays the whole stream with faults disarmed and asserts every
/// response matches the oracle — the proof that no fault corrupted the
/// shared cache (a poisoned payload would be served right back here).
fn assert_clean_replay(s: &mut Server, n: u64) -> Result<(), TestCaseError> {
    s.set_fault_plan(FaultPlan::default());
    for i in 0..n {
        let src = distinct_loop(i);
        let got = serve_one(s, 1000 + i, &src);
        let want = oneshot_response(1000 + i, &src);
        prop_assert_eq!(got, want, "disarmed replay diverged at request {}", i);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Worker panics at seeded stamps: the daemon answers them with
    /// structured `compile_panic` errors, answers everything else
    /// byte-identically to the oracle, and recovers completely.
    #[test]
    fn injected_panics_never_kill_the_daemon(seed in 0u64..1_000_000) {
        const N: u64 = 6;
        let plan = FaultPlan::seeded(seed, N, 10);
        let faulted = plan.faulted_stamps(false);
        let mut s = Server::new(ServerConfig { jobs: 2, ..ServerConfig::default() });
        s.set_fault_plan(plan);

        for i in 0..N {
            let src = distinct_loop(i);
            let got = serve_one(&mut s, i, &src);
            if faulted.contains(&i) {
                let prefix = format!("{{\"id\":{i},\"error\":{{\"kind\":\"compile_panic\"");
                prop_assert!(got.starts_with(&prefix), "stamp {}: {}", i, got);
            } else {
                prop_assert_eq!(got, oneshot_response(i, &src), "unaffected stamp {}", i);
            }
        }
        prop_assert_eq!(s.stats().panics, faulted.len() as u64);
        assert_clean_replay(&mut s, N)?;
    }

    /// Slow compiles under an armed deadline: the seeded stalls (200 ms)
    /// deterministically blow the 50 ms budget and answer
    /// `deadline_exceeded`; panics still answer `compile_panic`; every
    /// unaffected request still matches the oracle (its compile runs in
    /// microseconds, three orders of magnitude inside the budget).
    #[test]
    fn slow_compiles_exceed_the_deadline_and_nothing_else_does(seed in 0u64..1_000_000) {
        const N: u64 = 5;
        let plan = FaultPlan::seeded(seed, N, 200);
        let panicked = plan.faulted_stamps(false);
        let faulted = plan.faulted_stamps(true);
        let mut s = Server::new(ServerConfig {
            jobs: 2,
            deadline_ms: Some(50),
            ..ServerConfig::default()
        });
        s.set_fault_plan(plan);

        let mut deadline_hits = 0u64;
        for i in 0..N {
            let src = distinct_loop(i);
            let got = serve_one(&mut s, i, &src);
            if panicked.contains(&i) {
                let prefix = format!("{{\"id\":{i},\"error\":{{\"kind\":\"compile_panic\"");
                prop_assert!(got.starts_with(&prefix), "stamp {}: {}", i, got);
            } else if faulted.contains(&i) {
                let prefix = format!("{{\"id\":{i},\"error\":{{\"kind\":\"deadline_exceeded\"");
                prop_assert!(got.starts_with(&prefix), "stamp {}: {}", i, got);
                prop_assert!(got.contains("\"deadline_ms\":50"), "{}", got);
                deadline_hits += 1;
            } else {
                prop_assert_eq!(got, oneshot_response(i, &src), "unaffected stamp {}", i);
            }
        }
        prop_assert_eq!(s.stats().deadlines, deadline_hits);
        assert_clean_replay(&mut s, N)?;
    }

    /// Torn client streams — a write truncated mid-line, a disconnect
    /// between lines — through the real [`Server::run_jsonl`] pump:
    /// every complete line is answered (oracle bytes, or the structured
    /// fault its stamp was seeded with), a non-empty torn tail gets a
    /// structured error, and the pump returns cleanly.
    #[test]
    fn torn_client_streams_never_kill_the_pump(seed in 0u64..1_000_000) {
        const N: usize = 5;
        let plan = FaultPlan::seeded(seed, N as u64, 10);
        let faulted = plan.faulted_stamps(false);
        let lines: Vec<String> = (0..N)
            .map(|i| request_line(i as u64, &distinct_loop(i as u64), SPEC, "replicate", 1))
            .collect();

        // Mutilate the byte stream the way a dying client would: stop
        // after `disconnect_after` complete lines, or cut one line short
        // and end the stream right there — whichever comes first.
        let disconnect = plan.disconnect_after.unwrap_or(N).min(N);
        let mut input = String::new();
        let mut complete = 0usize;
        let mut torn_tail = false;
        for (i, line) in lines.iter().enumerate() {
            if i >= disconnect {
                break;
            }
            if let Some((at, bytes)) = plan.truncate_write {
                if i == at {
                    let cut = bytes.min(line.len());
                    input.push_str(&line[..cut]);
                    torn_tail = cut > 0;
                    break;
                }
            }
            input.push_str(line);
            input.push('\n');
            complete += 1;
        }

        let mut s = Server::new(ServerConfig { jobs: 2, ..ServerConfig::default() });
        s.set_fault_plan(plan);
        let mut out = Vec::new();
        s.run_jsonl(std::io::Cursor::new(input), &mut out).expect("pump died");
        let out = String::from_utf8(out).expect("responses are UTF-8");
        let got: Vec<&str> = out.lines().collect();

        prop_assert_eq!(got.len(), complete + usize::from(torn_tail), "{}", out);
        for (i, line) in got.iter().take(complete).enumerate() {
            let stamp = i as u64;
            if faulted.contains(&stamp) {
                let prefix = format!("{{\"id\":{i},\"error\":{{\"kind\":\"compile_panic\"");
                prop_assert!(line.starts_with(&prefix), "stamp {}: {}", i, line);
            } else {
                let want = oneshot_response(stamp, &distinct_loop(stamp));
                prop_assert_eq!(*line, want.trim_end(), "complete line {}", i);
            }
        }
        if torn_tail {
            let tail = got[complete];
            prop_assert!(tail.contains("\"error\""), "torn tail got: {}", tail);
            prop_assert!(tail.ends_with('}'), "torn response line itself torn: {}", tail);
        }
        assert_clean_replay(&mut s, N as u64)?;
    }
}

/// A unique scratch cache directory for the disk-fault property,
/// removed on drop (a failed case reports its seed, not its litter).
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(seed: u64) -> Scratch {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cvliw-diskfault-{}-{}-{}",
            std::process::id(),
            seed,
            SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash recovery under every seeded disk fault — the persister dies
    /// mid-journal-append or mid-snapshot (exactly as `kill -9` would:
    /// a written prefix, no cleanup), or the harness truncates /
    /// bit-flips the journal between runs. Whatever the fault, the
    /// restarted daemon must (a) recover without panicking, (b) answer
    /// the replayed stream byte-identical to the one-shot oracle — a
    /// corrupted entry surviving into the cache would diverge right
    /// here — and (c) leave a directory that then verifies clean.
    #[test]
    fn any_disk_fault_recovers_byte_identical_to_the_oracle(seed in 0u64..1_000_000) {
        use cvliw_serve::{PersistConfig, SharedState};

        const N: u64 = 6;
        let scratch = Scratch::new(seed);
        let plan = FaultPlan::seeded_disk(seed, 2048);
        let cfg = ServerConfig {
            jobs: 1,
            cache_entries: 64,
            ..ServerConfig::default()
        };
        let pcfg = PersistConfig {
            dir: scratch.0.clone(),
            snapshot_every: 2, // snapshots fire mid-stream, so their kill can land
        };

        // Life 1: serve with the write-time deaths armed. Responses are
        // oracle-correct regardless — a dead persister stops writing,
        // never serving.
        {
            let (shared, _) = SharedState::with_persistence(&cfg, &pcfg).expect("cold open");
            shared.set_disk_faults(plan.disk_faults());
            let mut s = Server::with_shared(cfg, shared);
            for i in 0..N {
                let src = distinct_loop(i);
                let got = serve_one(&mut s, i, &src);
                prop_assert_eq!(got, oneshot_response(i, &src), "life-1 stamp {}", i);
            }
            // No final snapshot: the "process" dies right here.
        }

        // Between runs the harness-side faults mutilate the journal.
        let journal = scratch.0.join(cvliw_serve::persist::JOURNAL_FILE);
        if let Some(at) = plan.truncate_file {
            if let Ok(data) = std::fs::read(&journal) {
                let cut = (at as usize).min(data.len());
                std::fs::write(&journal, &data[..cut]).expect("truncate journal");
            }
        }
        if let Some((byte, bit)) = plan.flip_bit {
            if let Ok(mut data) = std::fs::read(&journal) {
                if !data.is_empty() {
                    let at = (byte as usize) % data.len();
                    data[at] ^= 1 << bit;
                    std::fs::write(&journal, &data).expect("flip journal bit");
                }
            }
        }

        // Life 2: recover and replay. Hits serve recovered bytes, misses
        // recompile — either way every response must match the oracle.
        let (shared, _) = SharedState::with_persistence(&cfg, &pcfg).expect("recovery");
        let mut s = Server::with_shared(cfg, shared);
        for i in 0..N {
            let src = distinct_loop(i);
            let got = serve_one(&mut s, 100 + i, &src);
            prop_assert_eq!(got, oneshot_response(100 + i, &src), "life-2 stamp {}", i);
        }

        // Recovery repaired whatever it read.
        let verify = cvliw_serve::verify_dir(&scratch.0).expect("verify");
        prop_assert!(verify.clean(), "directory not clean after recovery: {:?}", verify);
    }
}
