//! The resilient client against real sockets: reconnect-and-resend
//! through a daemon restart, and the `retry_after_ms` contract against a
//! hand-rolled server that sheds precisely on cue.
//!
//! The backoff *math* (deterministic exponential, ±25% jitter, cap) is
//! pinned by unit tests in `client.rs`; these tests pin the *protocol*:
//! what the client does with a dead socket, a mid-exchange EOF, and an
//! `overloaded` response.
#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use cvliw_serve::testutil::TINY_LOOP;
use cvliw_serve::{
    run_socket_with, BackoffPolicy, Client, ServerConfig, SharedState, ShutdownFlag, SocketConfig,
};

static SOCK_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "cvliw-client-{tag}-{}-{}.sock",
        std::process::id(),
        SOCK_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A fast-retry policy so the tests don't sleep their way to a timeout.
fn eager() -> BackoffPolicy {
    BackoffPolicy {
        base_ms: 1,
        cap_ms: 50,
        max_retries: 40,
        ..BackoffPolicy::default()
    }
}

fn spawn_daemon(
    path: PathBuf,
    shutdown: ShutdownFlag,
) -> thread::JoinHandle<std::io::Result<cvliw_serve::ServeStats>> {
    thread::spawn(move || {
        let cfg = ServerConfig {
            jobs: 1,
            ..ServerConfig::default()
        };
        let sock = SocketConfig { path, sessions: 2 };
        run_socket_with(cfg, &sock, &shutdown, SharedState::new(&cfg))
    })
}

fn wait_for_socket(path: &PathBuf) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !path.exists() {
        assert!(Instant::now() < deadline, "daemon never bound {path:?}");
        thread::sleep(Duration::from_millis(5));
    }
}

/// The headline behavior: a request stream survives the daemon being
/// stopped and restarted underneath it. The client reports reconnects;
/// every response is a real compile answer.
#[test]
fn client_rides_through_a_daemon_restart() {
    let path = scratch_socket("restart");
    let shutdown = ShutdownFlag::new();
    let daemon = spawn_daemon(path.clone(), shutdown.clone());
    wait_for_socket(&path);

    let mut client = Client::with_policy(&path, eager());
    let first = client
        .compile(1, TINY_LOOP, "4c1b2l64r", "replicate", 1)
        .expect("first compile");
    assert!(first.contains("\"ok\""), "{first}");

    // Stop the daemon; the socket file goes away with it.
    shutdown.request();
    daemon.join().expect("daemon thread").expect("daemon exit");
    assert!(!path.exists(), "socket file must be removed on exit");

    // Restart on the same path while the client's next request is
    // already retrying against the dead socket.
    let shutdown = ShutdownFlag::new();
    let client_thread = thread::spawn(move || {
        let second = client
            .compile(2, TINY_LOOP, "4c1b2l64r", "replicate", 1)
            .expect("compile across restart");
        (second, client.reconnects())
    });
    thread::sleep(Duration::from_millis(20)); // let some retries fail first
    let daemon = spawn_daemon(path.clone(), shutdown.clone());

    let (second, reconnects) = client_thread.join().expect("client thread");
    assert!(second.contains("\"ok\""), "{second}");
    assert!(reconnects >= 1, "restart must be visible as a reconnect");
    assert!(second.contains("\"id\":2"), "{second}");

    shutdown.request();
    daemon.join().expect("daemon thread").expect("daemon exit");
}

/// The shed contract: on `overloaded` the client waits the server's
/// `retry_after_ms` (not its own schedule) and resends on the same
/// connection. A hand-rolled listener sheds once, then serves, so the
/// test controls the exact byte stream.
#[test]
fn client_honors_retry_after_and_resends_the_same_line() {
    let path = scratch_socket("shed");
    let listener = UnixListener::bind(&path).expect("bind");
    let server = thread::spawn(move || -> (String, String) {
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        let mut first = String::new();
        reader.read_line(&mut first).expect("first line");
        writer
            .write_all(b"{\"id\":7,\"error\":{\"kind\":\"overloaded\",\"retry_after_ms\":40}}\n")
            .expect("shed response");
        let mut second = String::new();
        reader.read_line(&mut second).expect("resent line");
        writer
            .write_all(b"{\"id\":7,\"ok\":{\"served\":\"after backoff\"}}\n")
            .expect("ok response");
        (first, second)
    });

    let mut client = Client::with_policy(&path, eager());
    let started = Instant::now();
    let response = client
        .request("{\"id\":7,\"op\":\"stats\"}")
        .expect("request");
    let waited = started.elapsed();

    let (first, second) = server.join().expect("server thread");
    assert_eq!(first, second, "the resent line must be byte-identical");
    assert_eq!(response, "{\"id\":7,\"ok\":{\"served\":\"after backoff\"}}");
    assert_eq!(client.sheds_honored(), 1);
    assert_eq!(client.reconnects(), 0, "a shed is not a reconnect");
    assert!(
        waited >= Duration::from_millis(40),
        "client waited only {waited:?}, ignoring retry_after_ms"
    );
    let _ = std::fs::remove_file(&path);
}

/// A dead socket with nothing behind it: the client gives up after
/// `max_retries` with the connect error, not a hang or a panic.
#[test]
fn client_gives_up_cleanly_when_no_daemon_ever_appears() {
    let path = scratch_socket("absent");
    let mut client = Client::with_policy(
        &path,
        BackoffPolicy {
            base_ms: 1,
            cap_ms: 2,
            max_retries: 3,
            ..BackoffPolicy::default()
        },
    );
    let err = client
        .request("{\"id\":1,\"op\":\"stats\"}")
        .expect_err("no daemon");
    assert!(err.to_string().contains("giving up"), "{err}");
}
