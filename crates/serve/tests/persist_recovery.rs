//! Crash-safety properties of the persisted result cache.
//!
//! Three layers, three property families:
//!
//! * **Frame layer** — arbitrary records journaled through [`Persister`]
//!   come back byte-identical; a file cut at *any* byte yields exactly
//!   the longest complete-record prefix (torn tail detected, never a
//!   panic, never a fabricated record); a bit flipped *anywhere* after
//!   the header never produces a record that was not written.
//! * **Server layer** — a daemon that persists, snapshots, dies and
//!   restarts answers a continued request stream byte-identically to a
//!   daemon that never restarted, with the *same* hit/miss/eviction
//!   counts: the restored LRU is behaviorally indistinguishable.
//! * **Refusal layer** — alien headers (wrong version, wrong magic,
//!   wrong schema hash) start cold with the file set aside, and the
//!   directory then verifies clean.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use cvliw_serve::persist::{
    scan_bytes, FileKind, HeaderStatus, HEADER_LEN, JOURNAL_FILE, SNAPSHOT_FILE,
};
use cvliw_serve::testutil::request_line;
use cvliw_serve::{
    verify_dir, PersistConfig, PersistRecord, Persister, Server, ServerConfig, SharedState,
};
use proptest::prelude::*;

const SPEC: &str = "4c1b2l64r";

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique scratch cache directory, removed on drop (pass or fail —
/// a failed proptest reports its seed, not its litter).
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "cvliw-persist-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn arb_record() -> impl Strategy<Value = PersistRecord> {
    (
        0u64..u64::MAX,
        0u8..5,
        1u32..4,
        prop::collection::vec(32u8..127, 0..60),
    )
        .prop_map(|(fp, mode, seeds, payload)| PersistRecord {
            fp,
            mode,
            seeds,
            stamp: 0, // assigned by position below
            spec: Box::from(SPEC),
            payload: String::from_utf8(payload)
                .expect("printable ASCII")
                .into_boxed_str(),
        })
}

fn stamped(mut records: Vec<PersistRecord>) -> Vec<PersistRecord> {
    for (i, r) in records.iter_mut().enumerate() {
        r.stamp = i as u64;
    }
    records
}

/// Journals `records` into `dir` and returns the journal file's bytes.
fn journal_bytes(dir: &Path, records: &[PersistRecord]) -> Vec<u8> {
    let (mut p, loaded, _) = Persister::open(dir, u64::MAX).expect("open scratch dir");
    assert!(loaded.is_empty(), "scratch dir must start empty");
    for r in records {
        p.append(&r.as_ref());
    }
    assert!(p.dead_reason().is_none(), "{:?}", p.dead_reason());
    drop(p);
    fs::read(dir.join(JOURNAL_FILE)).expect("journal exists")
}

/// A family of structurally distinct loops (the recurrence distance
/// differs), each a distinct cache entry.
fn distinct_loop(i: usize) -> String {
    format!(
        "loop l {{\n  i: iadd i@{}\n  ld: load i\n  m: fmul ld\n  st: store m\n}}",
        i + 1
    )
}

fn serve_one(s: &mut Server, id: u64, src: &str) -> String {
    let mut out = String::new();
    s.process_batch(&[request_line(id, src, SPEC, "replicate", 1)], &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Journal round trip: what the persister appended is exactly what
    /// recovery returns — same records, same order, same bytes.
    #[test]
    fn journal_round_trips_byte_identically(
        records in prop::collection::vec(arb_record(), 1..12),
    ) {
        let scratch = Scratch::new("roundtrip");
        let records = stamped(records);
        let bytes = journal_bytes(&scratch.0, &records);

        let scan = scan_bytes(&bytes, FileKind::Journal);
        prop_assert_eq!(&scan.header, &HeaderStatus::Ok);
        prop_assert_eq!(&scan.records, &records);
        prop_assert!(scan.corrupt.is_empty() && scan.torn_at.is_none());

        // And through the full recovery path (which may repair).
        let (_, recovered, report) =
            Persister::open(&scratch.0, u64::MAX).expect("reopen");
        prop_assert_eq!(&recovered, &records);
        prop_assert_eq!(report.corrupt_records, 0);
        prop_assert!(!report.torn_tail);
    }

    /// Cut the journal at *any* byte: recovery yields exactly the
    /// records whose frames fit before the cut, repairs the file, and a
    /// second recovery finds nothing left to complain about.
    #[test]
    fn any_truncation_point_recovers_the_longest_complete_prefix(
        records in prop::collection::vec(arb_record(), 1..8),
        cut_frac in 0.0f64..1.0,
    ) {
        let scratch = Scratch::new("torn");
        let records = stamped(records);
        let bytes = journal_bytes(&scratch.0, &records);

        // Cut somewhere after the header (a shorter file is a refused
        // header — covered by the refusal tests, not a torn tail).
        let span = bytes.len() - HEADER_LEN;
        let cut = HEADER_LEN + ((span as f64) * cut_frac) as usize;
        let path = scratch.0.join(JOURNAL_FILE);
        fs::write(&path, &bytes[..cut]).expect("truncate journal");

        // How many whole frames survive the cut?
        let expected: Vec<PersistRecord> = {
            let scan = scan_bytes(&bytes[..cut], FileKind::Journal);
            scan.records
        };
        prop_assert!(expected.len() <= records.len());
        prop_assert_eq!(&records[..expected.len()], &expected[..]);

        let (_, recovered, report) = Persister::open(&scratch.0, u64::MAX).expect("recover");
        prop_assert_eq!(&recovered, &expected);
        prop_assert_eq!(report.corrupt_records, 0);
        // A cut exactly on a frame boundary is not torn, just shorter.
        let on_boundary = expected.len() == records.len()
            || scan_bytes(&bytes[..cut], FileKind::Journal).torn_at.is_none();
        prop_assert_eq!(report.torn_tail, !on_boundary);

        // Recovery repaired the file: a second start is pristine.
        let (_, again, report2) = Persister::open(&scratch.0, u64::MAX).expect("reopen");
        prop_assert_eq!(&again, &expected);
        prop_assert!(!report2.torn_tail);
        prop_assert_eq!(report2.corrupt_records, 0);
    }

    /// Flip one bit anywhere after the header: recovery never panics,
    /// never fabricates a record (everything loaded was written), always
    /// keeps every record that lies wholly before the flip, and
    /// quarantines damaged frames rather than silently dropping bytes.
    #[test]
    fn a_bit_flip_never_surfaces_a_corrupted_record(
        records in prop::collection::vec(arb_record(), 1..8),
        flip_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let scratch = Scratch::new("flip");
        let records = stamped(records);
        let bytes = journal_bytes(&scratch.0, &records);

        let span = bytes.len() - HEADER_LEN;
        let flip_at = HEADER_LEN + ((span as f64) * flip_frac) as usize;
        let flip_at = flip_at.min(bytes.len() - 1);
        let mut damaged = bytes.clone();
        damaged[flip_at] ^= 1 << bit;
        let path = scratch.0.join(JOURNAL_FILE);
        fs::write(&path, &damaged).expect("write damaged journal");

        let (_, recovered, report) = Persister::open(&scratch.0, u64::MAX).expect("recover");

        // No fabrication: every recovered record is one we wrote.
        for rec in &recovered {
            prop_assert!(records.contains(rec), "recovered a record never written: {rec:?}");
        }
        // No collateral before the flip: frames wholly before `flip_at`
        // decode from undamaged bytes and must all survive.
        let intact_prefix = scan_bytes(&bytes[..flip_at], FileKind::Journal).records.len();
        prop_assert!(
            recovered.len() >= intact_prefix,
            "flip at {flip_at} lost records before it: {} < {intact_prefix}",
            recovered.len()
        );
        // Anything lost is accounted for: quarantined or torn, never silent.
        if recovered.len() < records.len() {
            prop_assert!(
                report.corrupt_records > 0 || report.torn_tail,
                "{} records vanished without a diagnostic: {report:?}",
                records.len() - recovered.len()
            );
        }
        if report.corrupt_records > 0 {
            prop_assert!(scratch.0.join(format!("{JOURNAL_FILE}.corrupt")).exists());
        }

        // The repair converged: a second recovery is clean and identical.
        let (_, again, report2) = Persister::open(&scratch.0, u64::MAX).expect("reopen");
        prop_assert_eq!(&again, &recovered);
        prop_assert_eq!(report2.corrupt_records, 0);
        prop_assert!(!report2.torn_tail);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole behavioral property: snapshot + journal recovery is
    /// *LRU-equivalent* to never restarting. One daemon persists, dies
    /// after an arbitrary split point and recovers; its twin never
    /// restarts. Both then serve the same continued stream: every
    /// response byte-identical, every hit/miss/compile/eviction count
    /// identical — an evicted key misses in both worlds or neither.
    #[test]
    fn restart_is_lru_equivalent_to_never_restarting(
        ids in prop::collection::vec(0usize..6, 8..24),
        split_frac in 0.0f64..1.0,
        cache_entries in 2usize..5,
    ) {
        let scratch = Scratch::new("lru");
        let cfg = ServerConfig {
            jobs: 1,
            cache_entries,
            ..ServerConfig::default()
        };
        let pcfg = PersistConfig {
            dir: scratch.0.clone(),
            snapshot_every: 3, // exercise mid-stream compacted snapshots too
        };
        let split = ((ids.len() as f64) * split_frac) as usize;

        // The twin that never restarts.
        let oracle_shared = SharedState::new(&cfg);
        let mut oracle = Server::with_shared(cfg, oracle_shared.clone());

        // Life 1 of the persisted daemon.
        let (shared, load) = SharedState::with_persistence(&cfg, &pcfg).expect("cold open");
        prop_assert_eq!(load.loaded, 0);
        let mut persisted = Server::with_shared(cfg, shared.clone());
        for (n, &i) in ids[..split].iter().enumerate() {
            let src = distinct_loop(i);
            let want = serve_one(&mut oracle, n as u64, &src);
            let got = serve_one(&mut persisted, n as u64, &src);
            prop_assert_eq!(got, want, "pre-restart divergence at request {}", n);
        }
        if let Some(outcome) = shared.snapshot_now() {
            outcome.expect("snapshot");
        }
        drop(persisted);
        drop(shared);

        // Life 2: recover, then both worlds serve the rest.
        let (shared, load) = SharedState::with_persistence(&cfg, &pcfg).expect("warm open");
        prop_assert_eq!(load.loaded, oracle_shared.cache_len(), "restored size differs");
        let mut persisted = Server::with_shared(cfg, shared.clone());
        let before = oracle_shared.stats().snapshot();
        for (n, &i) in ids[split..].iter().enumerate() {
            let id = (split + n) as u64;
            let src = distinct_loop(i);
            let want = serve_one(&mut oracle, id, &src);
            let got = serve_one(&mut persisted, id, &src);
            prop_assert_eq!(got, want, "post-restart divergence at request {}", id);
        }
        let after = oracle_shared.stats().snapshot();
        let restarted = shared.stats().snapshot();
        prop_assert_eq!(restarted.hits, after.hits - before.hits, "hit counts diverged");
        prop_assert_eq!(restarted.misses, after.misses - before.misses);
        prop_assert_eq!(restarted.compiles, after.compiles - before.compiles);
        prop_assert_eq!(restarted.evictions, after.evictions - before.evictions);
        prop_assert_eq!(shared.cache_len(), oracle_shared.cache_len());
    }
}

#[test]
fn alien_headers_are_refused_set_aside_and_then_verify_clean() {
    // Three ways a header can be alien: future version, wrong magic,
    // different record schema. Each must start cold (no records, no
    // panic), set the file aside, and leave a clean directory behind.
    type Mutation = fn(&mut Vec<u8>);
    let mutations: [(&str, Mutation); 3] = [
        ("future version", |b| b[8] = 0xFF),
        ("wrong magic", |b| b[0] ^= 0x20),
        ("schema drift", |b| b[12] ^= 0x01),
    ];
    for (what, mutate) in mutations {
        let scratch = Scratch::new("refuse");
        let records = stamped(vec![PersistRecord {
            fp: 1,
            mode: 2,
            seeds: 1,
            stamp: 0,
            spec: Box::from(SPEC),
            payload: Box::from("x"),
        }]);
        let mut bytes = journal_bytes(&scratch.0, &records);
        mutate(&mut bytes);
        fs::write(scratch.0.join(JOURNAL_FILE), &bytes).expect("write alien journal");

        let (_, recovered, report) = Persister::open(&scratch.0, u64::MAX).expect(what);
        assert!(
            recovered.is_empty(),
            "{what}: loaded records from a refused file"
        );
        assert_eq!(report.refused.len(), 1, "{what}: {report:?}");
        assert!(
            scratch.0.join(format!("{JOURNAL_FILE}.refused")).exists(),
            "{what}: refused file not set aside"
        );

        let verify = verify_dir(&scratch.0).expect("verify");
        assert!(
            verify.clean(),
            "{what}: directory not clean after refusal: {verify:?}"
        );
    }
}

#[test]
fn snapshot_compaction_truncates_the_journal_and_survives_restart() {
    let scratch = Scratch::new("compact");
    let cfg = ServerConfig {
        jobs: 1,
        cache_entries: 64,
        ..ServerConfig::default()
    };
    let pcfg = PersistConfig {
        dir: scratch.0.clone(),
        snapshot_every: u64::MAX,
    };
    let (shared, _) = SharedState::with_persistence(&cfg, &pcfg).expect("cold open");
    let mut server = Server::with_shared(cfg, shared.clone());
    for i in 0..5 {
        serve_one(&mut server, i, &distinct_loop(i as usize));
    }
    let n = shared
        .snapshot_now()
        .expect("persistence armed")
        .expect("snapshot");
    assert_eq!(n, 5);

    // Compaction: the snapshot holds everything, the journal only a header.
    let snap = fs::metadata(scratch.0.join(SNAPSHOT_FILE)).expect("snapshot file");
    let jour = fs::metadata(scratch.0.join(JOURNAL_FILE)).expect("journal file");
    assert!(snap.len() > HEADER_LEN as u64);
    assert_eq!(
        jour.len(),
        HEADER_LEN as u64,
        "journal not truncated after snapshot"
    );
    drop(server);
    drop(shared);

    let (shared, load) = SharedState::with_persistence(&cfg, &pcfg).expect("warm open");
    assert_eq!(load.loaded, 5);
    assert_eq!(load.snapshot_records, 5);
    assert_eq!(load.journal_records, 0);
    assert_eq!(shared.cache_len(), 5);
}

#[test]
fn persistence_with_a_disabled_cache_is_refused() {
    let scratch = Scratch::new("disabled");
    let cfg = ServerConfig {
        jobs: 1,
        cache_entries: 0,
        ..ServerConfig::default()
    };
    let pcfg = PersistConfig::new(scratch.0.clone());
    let err = SharedState::with_persistence(&cfg, &pcfg).expect_err("must refuse");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
}
