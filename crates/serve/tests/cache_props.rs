//! Cache-correctness properties: the content-addressed key must equate
//! exactly the requests whose compiles are interchangeable.
//!
//! Hits are *structural*: alpha-renaming every label or reflowing the
//! whitespace of a loop changes none of the compile inputs, so it must
//! hit. Misses are *structural* too: mutating one edge distance or one
//! operation kind produces a different loop, so it must miss — a false
//! hit here would serve a wrong (cached) schedule, the one failure mode a
//! result cache cannot have. And eviction must be invisible: a key pushed
//! out by LRU pressure recomputes to byte-identical payload bytes.

use cvliw_serve::testutil::request_line;
use cvliw_serve::{Server, ServerConfig};
use cvliw_workloads::{generate_loop, GeneratorParams};
use proptest::prelude::*;

fn server(jobs: usize, cache_entries: usize) -> Server {
    Server::new(ServerConfig {
        jobs,
        cache_entries,
        ..ServerConfig::default()
    })
}

/// One batch per request so every repeat is a cache hit, never a
/// coalesced duplicate.
fn run_one(server: &mut Server, line: &str) -> String {
    let mut out = String::new();
    server.process_batch(&[line], &mut out);
    out
}

/// The response body after the `"id":N,` prefix.
fn body(response: &str) -> &str {
    response.split_once(',').expect("id prefix").1
}

/// A two-chain loop over a shared induction variable, with every label
/// drawn from `names` — two calls with different `names` are
/// alpha-renamings of each other.
fn relabeled_loop(names: [&str; 6], distance: u32, kind: &str) -> String {
    let [i, a, b, c, d, e] = names;
    format!(
        "loop l {{\n  {i}: iadd {i}@{distance}\n  {a}: load {i}\n  {b}: {kind} {a}\n  \
         {c}: store {b}\n  {d}: fadd {b}\n  {e}: store {d}\n}}"
    )
}

#[test]
fn alpha_renamed_loops_hit() {
    let mut s = server(2, 64);
    let first = run_one(
        &mut s,
        &request_line(
            1,
            &relabeled_loop(["i", "ld", "m", "st", "acc", "out"], 1, "fmul"),
            "4c1b2l64r",
            "replicate",
            1,
        ),
    );
    let second = run_one(
        &mut s,
        &request_line(
            2,
            &relabeled_loop(["j", "v", "prod", "w", "sum", "res"], 1, "fmul"),
            "4c1b2l64r",
            "replicate",
            1,
        ),
    );
    assert_eq!(s.stats().compiles, 1, "rename must not recompile");
    assert_eq!(s.stats().hits, 1);
    assert_eq!(body(&first), body(&second));
}

#[test]
fn one_edge_mutations_miss() {
    let names = ["i", "ld", "m", "st", "acc", "out"];
    let mut s = server(2, 64);
    run_one(
        &mut s,
        &request_line(
            1,
            &relabeled_loop(names, 1, "fmul"),
            "4c1b2l64r",
            "replicate",
            1,
        ),
    );
    // Same shape, one loop-carried distance changed.
    run_one(
        &mut s,
        &request_line(
            2,
            &relabeled_loop(names, 2, "fmul"),
            "4c1b2l64r",
            "replicate",
            1,
        ),
    );
    // Same shape, one op kind changed.
    run_one(
        &mut s,
        &request_line(
            3,
            &relabeled_loop(names, 1, "fdiv"),
            "4c1b2l64r",
            "replicate",
            1,
        ),
    );
    assert_eq!(s.stats().hits, 0, "mutated loops must never hit");
    assert_eq!(s.stats().compiles, 3);
}

#[test]
fn key_distinguishes_machine_mode_and_seeds() {
    let src = relabeled_loop(["i", "ld", "m", "st", "acc", "out"], 1, "fmul");
    let mut s = server(2, 64);
    run_one(&mut s, &request_line(1, &src, "4c1b2l64r", "replicate", 1));
    run_one(&mut s, &request_line(2, &src, "2c1b2l64r", "replicate", 1));
    run_one(&mut s, &request_line(3, &src, "4c1b2l64r", "baseline", 1));
    run_one(&mut s, &request_line(4, &src, "4c1b2l64r", "replicate", 3));
    assert_eq!(s.stats().hits, 0);
    assert_eq!(s.stats().compiles, 4);
}

#[test]
fn eviction_recomputes_byte_identical() {
    let names = ["i", "ld", "m", "st", "acc", "out"];
    let mut s = server(1, 2);
    let line_a = request_line(
        1,
        &relabeled_loop(names, 1, "fmul"),
        "4c1b2l64r",
        "replicate",
        1,
    );
    let first_a = run_one(&mut s, &line_a);
    // Two more distinct keys overflow the 2-entry cache and evict A.
    run_one(
        &mut s,
        &request_line(
            2,
            &relabeled_loop(names, 2, "fmul"),
            "4c1b2l64r",
            "replicate",
            1,
        ),
    );
    run_one(
        &mut s,
        &request_line(
            3,
            &relabeled_loop(names, 3, "fmul"),
            "4c1b2l64r",
            "replicate",
            1,
        ),
    );
    assert!(s.stats().evictions >= 1, "{:?}", s.stats());

    let again_a = run_one(&mut s, &line_a);
    assert_eq!(
        s.stats().compiles,
        4,
        "evicted key must recompute, not hit: {:?}",
        s.stats()
    );
    assert_eq!(
        first_a, again_a,
        "recompute after eviction must be byte-identical"
    );
}

fn arb_params() -> impl Strategy<Value = GeneratorParams> {
    ((1usize..=4, 1usize..=3), 0.0f64..0.6, 0.0f64..1.0).prop_map(
        |((chains, depth), coupling, shared_addr)| GeneratorParams {
            chains: (chains, chains + 1),
            depth: (depth, depth + 1),
            coupling,
            shared_addr,
            ..GeneratorParams::medium()
        },
    )
}

/// Reflows the loop body's whitespace without touching its tokens.
fn reflow(src: &str) -> String {
    src.replace("\n    ", "\n\t  ").replace(" {", "  {")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On arbitrary generated loops: the canonical reprint and a
    /// whitespace-reflowed variant must both hit the first compile, and
    /// every body served for the key must be byte-identical.
    #[test]
    fn whitespace_and_reprints_hit_on_generated_loops(
        seed in 0u64..10_000,
        params in arb_params(),
    ) {
        let l = generate_loop(seed, &params).expect("generator is total");
        let src = cvliw_ir::print_loop("gen", &l.ddg);
        let mut s = server(2, 64);
        let first = run_one(&mut s, &request_line(1, &src, "4c1b2l64r", "replicate", 1));
        let second = run_one(&mut s, &request_line(2, &src, "4c1b2l64r", "replicate", 1));
        let third = run_one(&mut s, &request_line(3, &reflow(&src), "4c1b2l64r", "replicate", 1));
        prop_assert_eq!(s.stats().compiles, 1, "reflow recompiled");
        prop_assert_eq!(s.stats().hits, 2);
        prop_assert_eq!(body(&first), body(&second));
        prop_assert_eq!(body(&first), body(&third));
    }

    /// Bumping one loop-carried distance in the printed text must miss.
    #[test]
    fn distance_bump_misses_on_generated_loops(
        seed in 0u64..10_000,
        params in arb_params(),
    ) {
        let l = generate_loop(seed, &params).expect("generator is total");
        let src = cvliw_ir::print_loop("gen", &l.ddg);
        // Every generated loop carries recurrences; bump the first `@1`.
        prop_assume!(src.contains("@1"));
        let mutated = src.replacen("@1", "@7", 1);
        let mut s = server(2, 64);
        run_one(&mut s, &request_line(1, &src, "4c1b2l64r", "replicate", 1));
        run_one(&mut s, &request_line(2, &mutated, "4c1b2l64r", "replicate", 1));
        prop_assert_eq!(s.stats().hits, 0);
        prop_assert_eq!(s.stats().compiles, 2);
    }
}
