//! The serve wire protocol: JSONL requests in, JSONL responses out.
//!
//! One request per line, one response per line, always in request order:
//!
//! ```text
//! {"id": 1, "loop": "loop t {\n i: iadd i@1\n x: load i\n}", "machine": "4c1b2l64r", "mode": "replicate"}
//! {"id": 2, "op": "stats"}
//! ```
//!
//! A compile response is `{"id":1,"ok":{...}}` with the same counters a
//! one-shot `compile_stats` run reports, or `{"id":1,"error":{...}}`. The
//! **body after the id is a pure function of (loop structure, machine,
//! mode, seeds)** — it never mentions the cache, a worker, or timing, which
//! is what lets the server return cached bytes verbatim and stay
//! byte-identical to one-shot compilation.
//!
//! Errors are structured in the `SpecError` span-carrying style: every
//! error body has a `kind` and a `detail`, plus the position information
//! the underlying error carries (`line`/`col` for loop parse errors, a
//! byte `span` for machine-spec field errors, a byte `pos` for JSON syntax
//! errors). A line that fails before its `id` field is known is answered
//! with `"id":null`.

use std::fmt::Write as _;

use cvliw_ir::ParseError;
use cvliw_machine::SpecError;
use cvliw_replicate::{CauseCounts, CompileError, LoopStats, Mode};

use crate::json::{self, JsonError, RawValue};

/// Hard cap on one request line. Oversized lines are rejected with a
/// structured error *without* being scanned — the daemon must survive a
/// client that pipes it a gigabyte of garbage on one line.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// A parsed request line, borrowing from the input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request<'a> {
    /// Compile a loop for a machine under a mode.
    Compile {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
        /// The loop source, still JSON-escaped (hash it for identity;
        /// [`json::unescape`] it to parse).
        loop_src: &'a str,
        /// The machine spec string, still JSON-escaped.
        machine: &'a str,
        /// Compilation mode.
        mode: Mode,
        /// Refinement seeds to race (clamped to at least 1 downstream).
        seeds: u32,
    },
    /// Report cache / pool accounting.
    Stats {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
    },
}

/// Everything that can go wrong with a request before (or during)
/// compilation. Paired with the request id when one was recovered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line exceeds [`MAX_LINE_BYTES`].
    Oversized {
        /// Actual line length.
        bytes: usize,
    },
    /// The line is not a protocol object.
    Json(JsonError),
    /// A required field is absent.
    MissingField(&'static str),
    /// A field is present but unusable (wrong type, unknown name, bad
    /// number, unknown mode…).
    BadField {
        /// The field in question.
        field: &'static str,
        /// Why it was rejected.
        detail: String,
    },
    /// The loop source does not parse.
    Parse(ParseError),
    /// The machine spec does not parse.
    Spec(SpecError),
    /// Compilation itself failed (cached like a success — the failure is
    /// as much a function of the inputs as a schedule is).
    Compile(CompileError),
    /// The daemon is at its in-flight compile bound and shed this
    /// request instead of queueing it unboundedly. Never cached.
    Overloaded {
        /// Client back-off hint, in milliseconds.
        retry_after_ms: u64,
    },
    /// An invariant the daemon relies on failed. Replaces what used to
    /// be a request-path panic: the client gets a structured answer and
    /// the daemon keeps serving.
    Internal {
        /// What went wrong.
        detail: &'static str,
    },
}

/// Parses one request line (already length-checked by the server).
///
/// # Errors
///
/// Returns the structured [`ErrorKind`] plus the request id when the scan
/// got far enough to learn it — so even a rejected request is answered on
/// the right correlation id whenever possible.
pub fn parse_request(line: &str) -> Result<Request<'_>, (Option<u64>, ErrorKind)> {
    let mut id: Option<u64> = None;
    let mut op: Option<&str> = None;
    let mut loop_src: Option<&str> = None;
    let mut machine: Option<&str> = None;
    let mut mode_src: Option<&str> = None;
    let mut seeds: Option<&str> = None;

    let scan = json::scan_object(line, |key, value| {
        let slot: &mut Option<&str> = match key {
            "id" => {
                match value {
                    RawValue::Num(digits) => match digits.parse::<u64>() {
                        Ok(n) => id = Some(n),
                        Err(_) => {
                            return Err(JsonError {
                                pos: 0,
                                detail: "id out of range".into(),
                            })
                        }
                    },
                    _ => {
                        return Err(JsonError {
                            pos: 0,
                            detail: "id must be an unsigned integer".into(),
                        })
                    }
                }
                return Ok(());
            }
            "op" => &mut op,
            "loop" => &mut loop_src,
            "machine" => &mut machine,
            "mode" => &mut mode_src,
            "seeds" => &mut seeds,
            other => {
                return Err(JsonError {
                    pos: 0,
                    detail: format!("unknown field `{other}`"),
                })
            }
        };
        match value {
            RawValue::Str(s) | RawValue::Num(s) => {
                *slot = Some(s);
                Ok(())
            }
            RawValue::Null => Err(JsonError {
                pos: 0,
                detail: format!("field `{key}` must not be null"),
            }),
        }
    });
    if let Err(e) = scan {
        return Err((id, ErrorKind::Json(e)));
    }

    let id = match id {
        Some(id) => id,
        None => return Err((None, ErrorKind::MissingField("id"))),
    };
    match op {
        None | Some("compile") => {}
        Some("stats") => return Ok(Request::Stats { id }),
        Some(other) => {
            return Err((
                Some(id),
                ErrorKind::BadField {
                    field: "op",
                    detail: format!("unknown op `{other}` (expected compile or stats)"),
                },
            ))
        }
    }

    let loop_src = match loop_src {
        Some(s) => s,
        None => return Err((Some(id), ErrorKind::MissingField("loop"))),
    };
    let machine = match machine {
        Some(s) => s,
        None => return Err((Some(id), ErrorKind::MissingField("machine"))),
    };
    let mode = match mode_src {
        None => Mode::Replicate,
        Some(name) => match Mode::parse(name) {
            Some(mode) => mode,
            None => {
                return Err((
                    Some(id),
                    ErrorKind::BadField {
                        field: "mode",
                        detail: format!(
                            "unknown mode `{name}` (expected baseline, replicate, sched-len, \
                             zero-bus or value-clone)"
                        ),
                    },
                ))
            }
        },
    };
    let seeds = match seeds {
        None => 1,
        Some(digits) => match digits.parse::<u32>() {
            Ok(n) if n >= 1 => n,
            Ok(_) => {
                return Err((
                    Some(id),
                    ErrorKind::BadField {
                        field: "seeds",
                        detail: "seeds must be at least 1".into(),
                    },
                ))
            }
            Err(_) => {
                return Err((
                    Some(id),
                    ErrorKind::BadField {
                        field: "seeds",
                        detail: format!("cannot parse `{digits}` as an unsigned 32-bit count"),
                    },
                ))
            }
        },
    };
    Ok(Request::Compile {
        id,
        loop_src,
        machine,
        mode,
        seeds,
    })
}

fn append_causes(causes: &CauseCounts, out: &mut String) {
    let _ = write!(
        out,
        "\"causes\":{{\"bus\":{},\"recurrence\":{},\"registers\":{},\"resources\":{}}}",
        causes.bus, causes.recurrence, causes.registers, causes.resources
    );
}

/// Appends the `"ok":{...}` body for a successful compilation. This is the
/// *entire* cacheable payload — it carries every counter the suite's
/// per-cell aggregation consumes and nothing about how it was produced.
pub fn render_ok_body(stats: &LoopStats, out: &mut String) {
    let _ = write!(
        out,
        "\"ok\":{{\"mii\":{},\"ii\":{},\"length\":{},\"stages\":{},\"partition_coms\":{},\
         \"final_coms\":{},\"added\":{},\"removed\":{},\"ops\":{},\"instances\":{},\"copies\":{},",
        stats.mii,
        stats.ii,
        stats.length,
        stats.stage_count,
        stats.partition_coms,
        stats.final_coms,
        stats.replication.added_instances(),
        stats.replication.removed_instances,
        stats.ops_per_iter,
        stats.instances_per_iter,
        stats.copies_per_iter,
    );
    append_causes(&stats.causes, out);
    out.push('}');
}

/// Appends the `"error":{...}` body for a compilation failure (cached
/// exactly like a success).
pub fn render_compile_error_body(e: &CompileError, out: &mut String) {
    match e {
        CompileError::IiLimitExceeded {
            mii,
            max_ii,
            causes,
        } => {
            out.push_str("\"error\":{\"kind\":\"compile\",\"detail\":\"");
            json::escape_into(&e.to_string(), out);
            let _ = write!(out, "\",\"mii\":{mii},\"max_ii\":{max_ii},");
            append_causes(causes, out);
            out.push('}');
        }
        // `CompileError` is non_exhaustive; future variants degrade to a
        // kind + detail body.
        other => {
            out.push_str("\"error\":{\"kind\":\"compile\",\"detail\":\"");
            json::escape_into(&other.to_string(), out);
            out.push_str("\"}");
        }
    }
}

/// Appends the `"error":{...}` body for a pre-compilation failure,
/// carrying whatever position information the underlying error has:
/// `pos` for JSON errors, `line`/`col` for loop parse errors, and the
/// machine spec's byte `span` for zero-field spec errors.
pub fn render_error_body(kind: &ErrorKind, out: &mut String) {
    match kind {
        ErrorKind::Oversized { bytes } => {
            let _ = write!(
                out,
                "\"error\":{{\"kind\":\"oversized\",\"detail\":\"request line of {bytes} bytes \
                 exceeds the {MAX_LINE_BYTES}-byte cap\",\"bytes\":{bytes}}}"
            );
        }
        ErrorKind::Json(e) => {
            out.push_str("\"error\":{\"kind\":\"json\",\"detail\":\"");
            json::escape_into(&e.detail, out);
            let _ = write!(out, "\",\"pos\":{}}}", e.pos);
        }
        ErrorKind::MissingField(field) => {
            let _ = write!(
                out,
                "\"error\":{{\"kind\":\"protocol\",\"detail\":\"missing required field \
                 `{field}`\",\"field\":\"{field}\"}}"
            );
        }
        ErrorKind::BadField { field, detail } => {
            out.push_str("\"error\":{\"kind\":\"protocol\",\"detail\":\"");
            json::escape_into(detail, out);
            let _ = write!(out, "\",\"field\":\"{field}\"}}");
        }
        ErrorKind::Parse(e) => {
            out.push_str("\"error\":{\"kind\":\"parse\",\"detail\":\"");
            json::escape_into(&e.to_string(), out);
            let _ = write!(out, "\",\"line\":{},\"col\":{}}}", e.pos.line, e.pos.col);
        }
        ErrorKind::Spec(e) => {
            out.push_str("\"error\":{\"kind\":\"spec\",\"detail\":\"");
            json::escape_into(&e.to_string(), out);
            out.push('"');
            if let SpecError::ZeroField {
                span: Some((start, end)),
                ..
            } = e
            {
                let _ = write!(out, ",\"span\":[{start},{end}]");
            }
            out.push('}');
        }
        ErrorKind::Compile(e) => render_compile_error_body(e, out),
        ErrorKind::Overloaded { retry_after_ms } => {
            let _ = write!(
                out,
                "\"error\":{{\"kind\":\"overloaded\",\"detail\":\"compile queue at capacity; \
                 retry after {retry_after_ms} ms\",\"retry_after_ms\":{retry_after_ms}}}"
            );
        }
        ErrorKind::Internal { detail } => {
            out.push_str("\"error\":{\"kind\":\"internal\",\"detail\":\"");
            json::escape_into(detail, out);
            out.push_str("\"}");
        }
    }
}

/// Appends the `"error":{...}` body for a compile job that blew its
/// `--deadline-ms` budget. Never cached: the timeout reflects load, not
/// the request, so a follow-up identical request compiles cleanly.
pub fn render_deadline_body(deadline_ms: u64, out: &mut String) {
    let _ = write!(
        out,
        "\"error\":{{\"kind\":\"deadline_exceeded\",\"detail\":\"compile exceeded the \
         {deadline_ms} ms budget\",\"deadline_ms\":{deadline_ms}}}"
    );
}

/// Appends the `"error":{...}` body for a compile job whose worker
/// panicked. Carries the offending cache key (loop fingerprint, interned
/// spec id, mode index, seed count) so the input can be reproduced, plus
/// the panic message. Never cached — the worker's context pool entry is
/// discarded as poisoned, and a follow-up identical request recompiles
/// on a rebuilt context.
pub fn render_panic_body(key: &crate::cache::CacheKey, detail: &str, out: &mut String) {
    out.push_str("\"error\":{\"kind\":\"compile_panic\",\"detail\":\"");
    json::escape_into(detail, out);
    let _ = write!(
        out,
        "\",\"fp\":\"{:016x}\",\"spec\":{},\"mode\":{},\"seeds\":{}}}",
        key.fp, key.spec, key.mode, key.seeds
    );
}

/// Appends one full response line: `{"id":<id>,<body>}\n`. `None` renders
/// as `"id":null` (the line never revealed its id).
pub fn render_response(id: Option<u64>, body: &str, out: &mut String) {
    out.push_str("{\"id\":");
    match id {
        Some(id) => {
            let _ = write!(out, "{id}");
        }
        None => out.push_str("null"),
    }
    out.push(',');
    out.push_str(body);
    out.push_str("}\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_compile_request() {
        let line = r#"{"id": 9, "loop": "loop t {\n i: iadd i@1\n}", "machine": "4c1b2l64r", "mode": "baseline", "seeds": 4}"#;
        let req = parse_request(line).unwrap();
        assert_eq!(
            req,
            Request::Compile {
                id: 9,
                loop_src: r"loop t {\n i: iadd i@1\n}",
                machine: "4c1b2l64r",
                mode: Mode::Baseline,
                seeds: 4,
            }
        );
    }

    #[test]
    fn mode_and_seeds_default() {
        let line = r#"{"id": 1, "loop": "x", "machine": "unified"}"#;
        match parse_request(line).unwrap() {
            Request::Compile { mode, seeds, .. } => {
                assert_eq!(mode, Mode::Replicate);
                assert_eq!(seeds, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stats_op_parses() {
        assert_eq!(
            parse_request(r#"{"id": 3, "op": "stats"}"#).unwrap(),
            Request::Stats { id: 3 }
        );
    }

    #[test]
    fn errors_echo_the_id_once_known() {
        // id scanned before the failure → echoed.
        let (id, kind) = parse_request(r#"{"id": 5, "loop": "x"}"#).unwrap_err();
        assert_eq!(id, Some(5));
        assert_eq!(kind, ErrorKind::MissingField("machine"));
        // Failure before any id → None.
        let (id, kind) = parse_request("garbage").unwrap_err();
        assert_eq!(id, None);
        assert!(matches!(kind, ErrorKind::Json(_)));
        // Unknown mode.
        let (id, kind) =
            parse_request(r#"{"id": 2, "loop": "x", "machine": "m", "mode": "yolo"}"#).unwrap_err();
        assert_eq!(id, Some(2));
        assert!(matches!(kind, ErrorKind::BadField { field: "mode", .. }));
        // Zero seeds.
        let (_, kind) =
            parse_request(r#"{"id": 2, "loop": "x", "machine": "m", "seeds": 0}"#).unwrap_err();
        assert!(matches!(kind, ErrorKind::BadField { field: "seeds", .. }));
        // Unknown field.
        let (_, kind) = parse_request(r#"{"id": 2, "frobnicate": 1}"#).unwrap_err();
        assert!(matches!(kind, ErrorKind::Json(_)));
    }

    #[test]
    fn response_rendering_is_exact() {
        let mut out = String::new();
        render_response(Some(12), "\"ok\":{}", &mut out);
        assert_eq!(out, "{\"id\":12,\"ok\":{}}\n");
        out.clear();
        render_response(None, "\"error\":{\"kind\":\"json\"}", &mut out);
        assert_eq!(out, "{\"id\":null,\"error\":{\"kind\":\"json\"}}\n");
    }

    #[test]
    fn spec_error_body_carries_the_span() {
        let e = SpecError::zero_field_in("bus latency", "4c0b2l64r", (2, 3));
        let mut out = String::new();
        render_error_body(&ErrorKind::Spec(e), &mut out);
        assert!(out.contains("\"kind\":\"spec\""), "{out}");
        assert!(out.contains("\"span\":[2,3]"), "{out}");
    }

    #[test]
    fn parse_error_body_carries_line_and_col() {
        let e = cvliw_ir::parse_loop("loop l {\n x: frobnicate y\n}").unwrap_err();
        let mut out = String::new();
        render_error_body(&ErrorKind::Parse(e), &mut out);
        assert!(out.contains("\"kind\":\"parse\""), "{out}");
        assert!(out.contains("\"line\":2"), "{out}");
    }
}
