//! The content-addressed result cache.
//!
//! A compile response body is a pure function of `(loop structure, machine
//! spec, mode, seed config)`, so the cache key is exactly that quadruple:
//! the loop collapses to its [`cvliw_replicate::loop_fingerprint`] (labels
//! and whitespace already erased), the machine spec to a small interned
//! id, and the payload is the rendered response body — cached bytes are
//! returned verbatim, which is what makes warm responses byte-identical
//! to cold ones by construction.
//!
//! Eviction is LRU over **request sequence numbers**, never wall time:
//! every lookup and insert stamps the entry with the admitting request's
//! seq, stamps are unique, and the victim is the unique minimum-stamp
//! entry. The whole replacement policy is therefore a deterministic
//! function of the request stream, independent of worker count and
//! scheduling — a property the differential test layer leans on.

use std::collections::HashMap;
use std::sync::Arc;

/// The canonical identity of a compile request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Structural fingerprint of the loop ([`cvliw_replicate::loop_fingerprint`]).
    pub fp: u64,
    /// Interned machine-spec id (the server owns the interner).
    pub spec: u32,
    /// Mode discriminant (index into [`cvliw_replicate::Mode::ALL`]).
    pub mode: u8,
    /// Refinement-seed count the compile raced.
    pub seeds: u32,
}

impl CacheKey {
    /// A stable byte serialization, used to shard keys across workers.
    #[must_use]
    pub fn bytes(&self) -> [u8; 17] {
        let mut out = [0u8; 17];
        out[..8].copy_from_slice(&self.fp.to_le_bytes());
        out[8..12].copy_from_slice(&self.spec.to_le_bytes());
        out[12] = self.mode;
        out[13..].copy_from_slice(&self.seeds.to_le_bytes());
        out
    }
}

#[derive(Debug)]
struct Entry {
    payload: Arc<str>,
    stamp: u64,
}

/// A bounded-memory LRU of rendered response bodies.
#[derive(Debug)]
pub struct ResultCache {
    entries: HashMap<CacheKey, Entry>,
    max_entries: usize,
    max_bytes: usize,
    /// Payload bytes currently held (keys and bookkeeping not counted).
    bytes: usize,
    evictions: u64,
}

impl ResultCache {
    /// Creates a cache bounded by entry count and payload bytes. Both
    /// bounds are clamped to at least one entry's worth so a single
    /// oversized payload degrades to "cache of one" rather than thrashing.
    #[must_use]
    pub fn new(max_entries: usize, max_bytes: usize) -> Self {
        ResultCache {
            entries: HashMap::new(),
            max_entries: max_entries.max(1),
            max_bytes: max_bytes.max(1),
            bytes: 0,
            evictions: 0,
        }
    }

    /// Looks up a key, refreshing its LRU stamp on a hit. The returned
    /// `Arc` clone is a refcount bump — no payload copy, no allocation.
    pub fn lookup(&mut self, key: &CacheKey, stamp: u64) -> Option<Arc<str>> {
        let entry = self.entries.get_mut(key)?;
        entry.stamp = stamp;
        Some(Arc::clone(&entry.payload))
    }

    /// Inserts a freshly computed payload, evicting minimum-stamp entries
    /// until both bounds hold. Returns how many entries were evicted.
    pub fn insert(&mut self, key: CacheKey, payload: Arc<str>, stamp: u64) -> u64 {
        if let Some(old) = self.entries.insert(
            key,
            Entry {
                payload: Arc::clone(&payload),
                stamp,
            },
        ) {
            // Re-insert under the same key (a racing duplicate that missed
            // before the first insert landed): replace, adjust bytes.
            self.bytes -= old.payload.len();
        }
        self.bytes += payload.len();

        let mut evicted = 0;
        while self.entries.len() > self.max_entries
            || (self.bytes > self.max_bytes && self.entries.len() > 1)
        {
            // Stamps are unique request seq numbers, so the minimum is
            // unique and the victim deterministic. The loop condition
            // guarantees a non-empty map; if it were ever empty anyway,
            // stopping is strictly safer than panicking mid-request.
            let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
            else {
                break;
            };
            if victim == key && self.entries.len() == 1 {
                break;
            }
            if let Some(gone) = self.entries.remove(&victim) {
                self.bytes -= gone.payload.len();
                evicted += 1;
            }
        }
        self.evictions += evicted;
        evicted
    }

    /// Entries currently resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Payload bytes currently resident.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Total evictions over the cache's lifetime.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Every resident entry with its LRU stamp, in arbitrary order — the
    /// raw material for a persistence snapshot. Payload clones are
    /// refcount bumps.
    #[must_use]
    pub fn export(&self) -> Vec<(CacheKey, u64, Arc<str>)> {
        self.entries
            .iter()
            .map(|(k, e)| (*k, e.stamp, Arc::clone(&e.payload)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(fp: u64) -> CacheKey {
        CacheKey {
            fp,
            spec: 0,
            mode: 2,
            seeds: 1,
        }
    }

    #[test]
    fn hit_returns_the_same_payload_and_refreshes_lru() {
        let mut c = ResultCache::new(2, 1 << 20);
        c.insert(key(1), Arc::from("one"), 0);
        c.insert(key(2), Arc::from("two"), 1);
        // Touch key 1 so key 2 becomes the LRU victim.
        assert_eq!(c.lookup(&key(1), 2).as_deref(), Some("one"));
        assert_eq!(c.insert(key(3), Arc::from("three"), 3), 1);
        assert!(c.lookup(&key(2), 4).is_none(), "LRU victim survived");
        assert_eq!(c.lookup(&key(1), 5).as_deref(), Some("one"));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn byte_bound_evicts_even_below_the_entry_bound() {
        let mut c = ResultCache::new(100, 10);
        c.insert(key(1), Arc::from("aaaaaa"), 0); // 6 bytes
        c.insert(key(2), Arc::from("bbbbbb"), 1); // 12 total → evict key 1
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), 6);
        assert!(c.lookup(&key(1), 2).is_none());
        assert_eq!(c.lookup(&key(2), 3).as_deref(), Some("bbbbbb"));
    }

    #[test]
    fn one_oversized_payload_still_resides() {
        let mut c = ResultCache::new(100, 4);
        c.insert(key(1), Arc::from("way too large"), 0);
        assert_eq!(c.lookup(&key(1), 1).as_deref(), Some("way too large"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reinsert_replaces_and_keeps_byte_accounting_exact() {
        let mut c = ResultCache::new(4, 1 << 20);
        c.insert(key(1), Arc::from("short"), 0);
        c.insert(key(1), Arc::from("a longer payload"), 1);
        assert_eq!(c.bytes(), "a longer payload".len());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn key_bytes_are_injective_over_fields() {
        let a = key(1).bytes();
        let mut other = key(1);
        other.seeds = 2;
        assert_ne!(a, other.bytes());
        let mut other = key(1);
        other.mode = 3;
        assert_ne!(a, other.bytes());
    }
}
