//! The resilient caller's side of the daemon socket.
//!
//! `testutil`'s raw one-shot socket writes are fine for tests that own
//! both ends; a real caller has to live with a daemon that restarts
//! underneath it (deploys, crashes — the whole point of persistence is
//! that a restart keeps the cache, and the client's job is to make it
//! keep the *connection* too). A [`Client`] therefore:
//!
//! * connects lazily and **reconnects** on EOF or a broken pipe,
//!   resending the in-flight request — safe because compile and stats
//!   requests are idempotent by construction (byte-identity is the
//!   serve layer's core guarantee);
//! * spaces attempts with **exponential backoff + deterministic
//!   jitter** ([`BackoffPolicy`]): nominal delay `base · 2^attempt`
//!   capped at `cap_ms`, jittered within ±25% by a seeded splitmix so
//!   tests can pin the exact schedule while a fleet of real clients
//!   still decorrelates;
//! * honors **`retry_after_ms`** from `overloaded` shed responses,
//!   sleeping the server's hint (capped at `cap_ms`) before resending
//!   instead of hammering a daemon that just said it was full.
//!
//! `cvliw client` is a thin CLI over this type.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::thread;
use std::time::Duration;

/// How reconnect attempts are spaced. All of it is deterministic given
/// the seed — the backoff tests pin the exact millisecond schedule.
#[derive(Clone, Copy, Debug)]
pub struct BackoffPolicy {
    /// Nominal first-retry delay, in milliseconds.
    pub base_ms: u64,
    /// Ceiling for both backoff delays and honored `retry_after_ms`
    /// hints, in milliseconds.
    pub cap_ms: u64,
    /// Connection/shed retries per request before giving up.
    pub max_retries: u32,
    /// Seed for the deterministic jitter.
    pub jitter_seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ms: 10,
            cap_ms: 2000,
            max_retries: 8,
            jitter_seed: 0x5eed_cafe,
        }
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl BackoffPolicy {
    /// The delay before retry number `attempt` (zero-based), in
    /// milliseconds: `min(cap, base · 2^attempt)`, jittered within
    /// ±25% by `jitter_seed` — a pure function of `(policy, attempt)`.
    #[must_use]
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let nominal = self
            .base_ms
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
            .min(self.cap_ms)
            .max(1);
        let span = nominal / 4;
        if span == 0 {
            return nominal;
        }
        let roll = splitmix(self.jitter_seed ^ u64::from(attempt));
        let jitter = (roll % (2 * span + 1)) as i64 - span as i64;
        nominal.saturating_add_signed(jitter).max(1)
    }
}

/// Extracts the server's back-off hint from an `overloaded` shed
/// response; `None` for any other response line.
#[must_use]
pub fn shed_retry_after(response: &str) -> Option<u64> {
    if !response.contains("\"kind\":\"overloaded\"") {
        return None;
    }
    let rest = response.split("\"retry_after_ms\":").nth(1)?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// One retryable connection to a daemon socket. Requests are sent with
/// [`Client::request`]; the connection is (re)established as needed.
#[derive(Debug)]
pub struct Client {
    path: PathBuf,
    policy: BackoffPolicy,
    conn: Option<Conn>,
    reconnects: u64,
    sheds_honored: u64,
}

#[derive(Debug)]
struct Conn {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// A client for the daemon at `path` with the default policy. Does
    /// not connect yet — the first request does.
    #[must_use]
    pub fn new(path: &Path) -> Self {
        Client::with_policy(path, BackoffPolicy::default())
    }

    /// A client with an explicit backoff policy.
    #[must_use]
    pub fn with_policy(path: &Path, policy: BackoffPolicy) -> Self {
        Client {
            path: path.to_path_buf(),
            policy,
            conn: None,
            reconnects: 0,
            sheds_honored: 0,
        }
    }

    /// Times the daemon restarted (or first came up) underneath this
    /// client — i.e. successful connects after the first attempt of a
    /// request, plus resends after an EOF.
    #[must_use]
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// `overloaded` responses whose `retry_after_ms` hint was slept on.
    #[must_use]
    pub fn sheds_honored(&self) -> u64 {
        self.sheds_honored
    }

    fn connect(&mut self) -> io::Result<()> {
        let stream = UnixStream::connect(&self.path)?;
        let reader = BufReader::new(stream.try_clone()?);
        self.conn = Some(Conn {
            reader,
            writer: stream,
        });
        Ok(())
    }

    /// One write-then-read exchange on the current connection. `Ok(None)`
    /// means the connection died in a resend-safe way (EOF, broken pipe,
    /// reset) — the caller reconnects and resends.
    fn exchange(&mut self, line: &str) -> io::Result<Option<String>> {
        let Some(conn) = self.conn.as_mut() else {
            return Ok(None);
        };
        let send = |conn: &mut Conn| -> io::Result<String> {
            conn.writer.write_all(line.as_bytes())?;
            conn.writer.write_all(b"\n")?;
            conn.writer.flush()?;
            let mut response = String::new();
            conn.reader.read_line(&mut response)?;
            Ok(response)
        };
        match send(conn) {
            Ok(response) if response.is_empty() => Ok(None), // EOF mid-request
            Ok(mut response) => {
                while response.ends_with('\n') || response.ends_with('\r') {
                    response.pop();
                }
                Ok(Some(response))
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::BrokenPipe
                        | io::ErrorKind::ConnectionReset
                        | io::ErrorKind::ConnectionAborted
                        | io::ErrorKind::UnexpectedEof
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Sends one request line (no trailing newline needed) and returns
    /// the daemon's response line, reconnecting/resending through
    /// daemon restarts and honoring shed back-off hints.
    ///
    /// # Errors
    ///
    /// Gives up with the last connect error once `max_retries` is
    /// exhausted; propagates non-retryable I/O errors immediately.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        let mut attempt = 0u32;
        loop {
            if self.conn.is_none() {
                match self.connect() {
                    Ok(()) => {
                        if attempt > 0 {
                            self.reconnects += 1;
                        }
                    }
                    Err(e) => {
                        if attempt >= self.policy.max_retries {
                            return Err(io::Error::new(
                                e.kind(),
                                format!(
                                    "giving up on {} after {attempt} retries: {e}",
                                    self.path.display()
                                ),
                            ));
                        }
                        thread::sleep(Duration::from_millis(self.policy.delay_ms(attempt)));
                        attempt += 1;
                        continue;
                    }
                }
            }
            match self.exchange(line)? {
                Some(response) => {
                    if let Some(hint) = shed_retry_after(&response) {
                        if attempt >= self.policy.max_retries {
                            return Ok(response); // out of patience: surface the shed
                        }
                        self.sheds_honored += 1;
                        thread::sleep(Duration::from_millis(hint.min(self.policy.cap_ms)));
                        attempt += 1;
                        continue;
                    }
                    return Ok(response);
                }
                None => {
                    // The daemon went away mid-exchange. Requests are
                    // idempotent, so dropping the connection and resending
                    // is safe; the backoff spaces the attempts.
                    self.conn = None;
                    self.reconnects += 1;
                    if attempt >= self.policy.max_retries {
                        return Err(io::Error::new(
                            io::ErrorKind::ConnectionAborted,
                            format!(
                                "daemon at {} kept dropping the connection \
                                 ({attempt} retries)",
                                self.path.display()
                            ),
                        ));
                    }
                    thread::sleep(Duration::from_millis(self.policy.delay_ms(attempt)));
                    attempt += 1;
                }
            }
        }
    }

    /// Compiles one loop: builds the request line and sends it.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn compile(
        &mut self,
        id: u64,
        loop_src: &str,
        machine: &str,
        mode: &str,
        seeds: u32,
    ) -> io::Result<String> {
        let line = crate::testutil::request_line(id, loop_src, machine, mode, seeds);
        self.request(&line)
    }

    /// Fetches the daemon-wide counters.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn stats(&mut self, id: u64) -> io::Result<String> {
        self.request(&format!("{{\"id\": {id}, \"op\": \"stats\"}}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_exponential_capped_and_jittered_within_a_quarter() {
        let policy = BackoffPolicy::default();
        for attempt in 0..12 {
            let nominal = policy
                .base_ms
                .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
                .min(policy.cap_ms);
            let d = policy.delay_ms(attempt);
            assert_eq!(d, policy.delay_ms(attempt), "jitter must be deterministic");
            assert!(
                d >= nominal - nominal / 4 && d <= nominal + nominal / 4,
                "attempt {attempt}: {d} outside ±25% of {nominal}"
            );
            assert!(d <= policy.cap_ms + policy.cap_ms / 4);
        }
        // The cap actually binds: late attempts stop growing.
        assert!(policy.delay_ms(30) <= policy.cap_ms + policy.cap_ms / 4);
    }

    #[test]
    fn different_seeds_decorrelate_the_schedule() {
        let a = BackoffPolicy {
            jitter_seed: 1,
            ..BackoffPolicy::default()
        };
        let b = BackoffPolicy {
            jitter_seed: 2,
            ..BackoffPolicy::default()
        };
        let differs = (0..8).any(|i| a.delay_ms(i) != b.delay_ms(i));
        assert!(differs, "two seeds produced identical schedules");
    }

    #[test]
    fn shed_hint_parses_only_from_overloaded_responses() {
        assert_eq!(
            shed_retry_after(
                "{\"id\":2,\"error\":{\"kind\":\"overloaded\",\"retry_after_ms\":15}}"
            ),
            Some(15)
        );
        assert_eq!(shed_retry_after("{\"id\":1,\"ok\":{\"mii\":3}}"), None);
        assert_eq!(
            shed_retry_after("{\"id\":1,\"error\":{\"kind\":\"bad_request\"}}"),
            None
        );
    }
}
