//! The Unix-socket daemon: concurrent sessions over one shared cache,
//! stale-socket recovery, and graceful shutdown.
//!
//! `cvliw serve --socket PATH` used to be a sequential accept loop that
//! blindly unlinked whatever sat at `PATH` — aiming two daemons at the
//! same path silently hijacked it, and a crash left a stale socket that
//! broke the next start. This module fixes both ends of the lifecycle:
//!
//! * **Startup** probes the path with a connect before touching it: a
//!   live server answers the connect and startup refuses with
//!   `AddrInUse`; a stale socket (leftover file, connection refused) is
//!   unlinked and rebound; an absent path binds directly.
//! * **Runtime** accepts up to a configured number of concurrent
//!   sessions, each on its own thread with its own [`Server`] session
//!   state, all sharing one [`SharedState`] (result cache, spec
//!   interner, seq counter, shed gate).
//! * **Shutdown** is cooperative: when the [`ShutdownFlag`] fires (a
//!   signal handler, a test, another thread), the accept loop stops
//!   taking connections and every session drains — lines already read
//!   are compiled and answered, responses flushed, no torn output — and
//!   the socket file is removed on **every** exit path, error returns
//!   included, by an RAII guard.

use std::fs;
use std::io::{self, BufReader, BufWriter};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::server::{ServeStats, Server, ServerConfig, ShutdownFlag};
use crate::shared::SharedState;

/// How often the nonblocking accept loop re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Read timeout on accepted session sockets. This is what lets a
/// blocking session observe the shutdown flag: the reader wakes at least
/// this often even when the client sends nothing.
const SESSION_READ_TIMEOUT: Duration = Duration::from_millis(50);

/// What a connect-probe of a socket path found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SocketProbe {
    /// A daemon answered the connect: the path is in active use.
    Live,
    /// Something is at the path but nothing is listening — a leftover
    /// from a daemon that died without cleaning up. Safe to unlink.
    Stale,
    /// Nothing at the path.
    Absent,
}

/// Socket-specific knobs for [`run_socket`].
#[derive(Clone, Debug)]
pub struct SocketConfig {
    /// Filesystem path the daemon listens on.
    pub path: PathBuf,
    /// Concurrent client sessions accepted (clamped to at least 1);
    /// further connects wait in the listen backlog until a slot frees.
    pub sessions: usize,
}

/// Classifies what currently occupies `path` by trying to connect to it.
/// Inherently a point-in-time answer (the daemon that refused the
/// connect could exit a microsecond later), which is exactly enough to
/// stop the common failure: clobbering a healthy daemon's socket.
///
/// # Errors
///
/// Propagates connect errors other than "refused" and "not found".
pub fn probe_socket(path: &Path) -> io::Result<SocketProbe> {
    match UnixStream::connect(path) {
        Ok(_) => Ok(SocketProbe::Live),
        Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => Ok(SocketProbe::Stale),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(SocketProbe::Absent),
        Err(e) => Err(e),
    }
}

/// Removes the socket file when dropped — the one cleanup that must run
/// on every exit path out of [`run_socket`], early errors included.
struct SocketGuard {
    path: PathBuf,
}

impl Drop for SocketGuard {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Runs the daemon on a Unix socket until `shutdown` is requested,
/// then drains every live session and removes the socket file. Returns
/// the daemon-wide counters at shutdown.
///
/// # Errors
///
/// Refuses with [`io::ErrorKind::AddrInUse`] when a live daemon already
/// serves the path; propagates bind and accept failures. Per-session
/// I/O errors end that session only, never the daemon.
pub fn run_socket(
    cfg: ServerConfig,
    sock: &SocketConfig,
    shutdown: &ShutdownFlag,
) -> io::Result<ServeStats> {
    run_socket_with(cfg, sock, shutdown, SharedState::new(&cfg))
}

/// [`run_socket`] over caller-built shared state — the entry point when
/// the state carries something a bare [`ServerConfig`] cannot describe,
/// such as a persistence-backed cache recovered via
/// [`SharedState::with_persistence`] (the CLI snapshots it after this
/// returns).
///
/// # Errors
///
/// As [`run_socket`].
pub fn run_socket_with(
    cfg: ServerConfig,
    sock: &SocketConfig,
    shutdown: &ShutdownFlag,
    shared: Arc<SharedState>,
) -> io::Result<ServeStats> {
    match probe_socket(&sock.path)? {
        SocketProbe::Live => {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                format!(
                    "socket {} is served by a live daemon (connect succeeded); \
                     refusing to clobber it",
                    sock.path.display()
                ),
            ));
        }
        SocketProbe::Stale => fs::remove_file(&sock.path)?,
        SocketProbe::Absent => {}
    }
    let listener = UnixListener::bind(&sock.path)?;
    let _guard = SocketGuard {
        path: sock.path.clone(),
    };
    listener.set_nonblocking(true)?;

    let max_sessions = sock.sessions.max(1);
    let accept_result = thread::scope(|scope| -> io::Result<()> {
        let mut handles: Vec<thread::ScopedJoinHandle<'_, ()>> = Vec::new();
        loop {
            if shutdown.is_requested() {
                return Ok(());
            }
            handles.retain(|h| !h.is_finished());
            if handles.len() >= max_sessions {
                thread::sleep(ACCEPT_POLL);
                continue;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&shared);
                    handles.push(scope.spawn(move || {
                        // Belt over the worker-level suspenders: even a
                        // panic outside the compile containment boundary
                        // takes down this session only. The empty stream
                        // is dropped either way, so the client sees EOF.
                        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
                            run_session(cfg, shared, stream, shutdown)
                        }));
                        match caught {
                            Ok(Ok(())) | Ok(Err(_)) | Err(_) => {}
                        }
                    }));
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    // A hard accept failure ends the daemon — but the
                    // sessions still drain: request shutdown so their
                    // pumps stop at the next line boundary, then let the
                    // scope join them before the error propagates.
                    shutdown.request();
                    return Err(e);
                }
            }
        }
    });
    accept_result?;
    Ok(shared.stats().snapshot())
}

fn run_session(
    cfg: ServerConfig,
    shared: Arc<SharedState>,
    stream: UnixStream,
    shutdown: &ShutdownFlag,
) -> io::Result<()> {
    // Accepted sockets are explicitly returned to blocking mode (they
    // may inherit the listener's nonblocking flag on some platforms),
    // then given a read timeout: that timeout is the session's shutdown
    // poll.
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(SESSION_READ_TIMEOUT))?;
    let reader = BufReader::new(stream.try_clone()?);
    let writer = BufWriter::new(stream);
    let mut server = Server::with_shared(cfg, shared);
    server.run_jsonl_until(reader, writer, shutdown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{request_line, TINY_LOOP};
    use std::io::{BufRead, Write};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_socket_path(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("cvliw-{}-{tag}-{n}.sock", std::process::id()))
    }

    #[test]
    fn probe_classifies_absent_stale_and_live() {
        let path = temp_socket_path("probe");
        assert_eq!(probe_socket(&path).unwrap(), SocketProbe::Absent);

        {
            let _listener = UnixListener::bind(&path).unwrap();
            assert_eq!(probe_socket(&path).unwrap(), SocketProbe::Live);
        }
        // Listener dropped, file remains: stale.
        assert!(path.exists());
        assert_eq!(probe_socket(&path).unwrap(), SocketProbe::Stale);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn daemon_serves_concurrent_clients_and_cleans_up_on_shutdown() {
        let path = temp_socket_path("daemon");
        let sock = SocketConfig {
            path: path.clone(),
            sessions: 4,
        };
        let shutdown = ShutdownFlag::new();
        let daemon = {
            let sock = sock.clone();
            let shutdown = shutdown.clone();
            thread::spawn(move || run_socket(ServerConfig::default(), &sock, &shutdown))
        };

        // Wait for the socket to come up.
        let mut tries = 0;
        while probe_socket(&path).unwrap() != SocketProbe::Live {
            tries += 1;
            assert!(tries < 200, "daemon never bound {}", path.display());
            thread::sleep(Duration::from_millis(10));
        }

        // A second daemon on the same path must refuse, not clobber.
        let rival = run_socket(ServerConfig::default(), &sock, &ShutdownFlag::new());
        assert_eq!(rival.unwrap_err().kind(), io::ErrorKind::AddrInUse);
        assert!(
            path.exists(),
            "rival's guard must not remove the live socket"
        );

        // Two concurrent clients (each a fresh resilient Client, so both
        // connect independently); the second's request hits the first's
        // cached result.
        let ask = |id: u64| {
            crate::client::Client::new(&path)
                .compile(id, TINY_LOOP, "4c1b2l64r", "replicate", 1)
                .unwrap()
        };
        let a = ask(1);
        let b = ask(2);
        assert!(a.starts_with("{\"id\":1,\"ok\":"), "{a}");
        assert_eq!(
            a.trim_start_matches("{\"id\":1,"),
            b.trim_start_matches("{\"id\":2,")
        );

        shutdown.request();
        let stats = daemon.join().unwrap().unwrap();
        assert_eq!(stats.requests, 2);
        assert_eq!((stats.misses, stats.hits), (1, 1));
        assert!(!path.exists(), "socket file must be removed on shutdown");
    }

    #[test]
    fn stale_socket_is_recovered_on_restart() {
        let path = temp_socket_path("stale");
        // Fake a crashed daemon: bound socket file, nobody listening.
        drop(UnixListener::bind(&path).unwrap());
        assert_eq!(probe_socket(&path).unwrap(), SocketProbe::Stale);

        let sock = SocketConfig {
            path: path.clone(),
            sessions: 1,
        };
        let shutdown = ShutdownFlag::new();
        let daemon = {
            let sock = sock.clone();
            let shutdown = shutdown.clone();
            thread::spawn(move || run_socket(ServerConfig::default(), &sock, &shutdown))
        };
        let mut tries = 0;
        while probe_socket(&path).unwrap() != SocketProbe::Live {
            tries += 1;
            assert!(tries < 200, "restart over a stale socket never bound");
            thread::sleep(Duration::from_millis(10));
        }
        shutdown.request();
        daemon.join().unwrap().unwrap();
        assert!(!path.exists());
    }

    #[test]
    fn shutdown_mid_batch_still_answers_every_admitted_request() {
        let path = temp_socket_path("drain");
        let sock = SocketConfig {
            path: path.clone(),
            sessions: 2,
        };
        let shutdown = ShutdownFlag::new();
        let daemon = {
            let sock = sock.clone();
            let shutdown = shutdown.clone();
            thread::spawn(move || run_socket(ServerConfig::default(), &sock, &shutdown))
        };
        let mut tries = 0;
        while probe_socket(&path).unwrap() != SocketProbe::Live {
            tries += 1;
            assert!(tries < 200);
            thread::sleep(Duration::from_millis(10));
        }

        // Send a burst of requests, then request shutdown while the
        // client connection is still open (no EOF from our side): drain
        // must answer everything already written, with well-formed lines.
        let mut c = UnixStream::connect(&path).unwrap();
        let sent = 6u64;
        for id in 0..sent {
            c.write_all(request_line(id, TINY_LOOP, "4c1b2l64r", "replicate", 1).as_bytes())
                .unwrap();
            c.write_all(b"\n").unwrap();
        }
        c.flush().unwrap();
        thread::sleep(Duration::from_millis(150));
        shutdown.request();
        let stats = daemon.join().unwrap().unwrap();
        assert_eq!(stats.requests, sent, "admitted requests were dropped");

        let mut replies = String::new();
        let mut reader = BufReader::new(c);
        loop {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => replies.push_str(&line),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    break
                }
                Err(e) => panic!("reading drained responses: {e}"),
            }
        }
        let lines: Vec<&str> = replies.lines().collect();
        assert_eq!(lines.len(), sent as usize, "{replies}");
        for (i, line) in lines.iter().enumerate() {
            assert!(
                line.starts_with(&format!("{{\"id\":{i},")) && line.ends_with('}'),
                "torn or misordered line {i}: {line}"
            );
        }
        assert!(!path.exists());
    }
}
