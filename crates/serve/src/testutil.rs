//! Small helpers for building protocol request lines — shared by this
//! crate's tests, the workspace differential tests and the `bench
//! --serve` loopback driver.

use crate::json;

/// A tiny loop every paper machine compiles quickly: one recurrence, a
/// load, an fp op and a store.
pub const TINY_LOOP: &str =
    "loop tiny {\n  i: iadd i@1\n  ld: load i\n  m: fmul ld\n  st: store m\n}";

/// JSON-escapes `s` into a fresh string.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    json::escape_into(s, &mut out);
    out
}

/// Renders one complete compile request line (no trailing newline).
#[must_use]
pub fn request_line(id: u64, loop_src: &str, machine: &str, mode: &str, seeds: u32) -> String {
    format!(
        "{{\"id\": {id}, \"loop\": \"{}\", \"machine\": \"{}\", \"mode\": \"{mode}\", \
         \"seeds\": {seeds}}}",
        escape(loop_src),
        escape(machine),
    )
}
