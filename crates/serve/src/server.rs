//! The daemon proper: admission, the persistent worker pool and the
//! batched request pump.
//!
//! A batch of request lines flows through four strictly ordered phases:
//!
//! 1. **Admission** (single-threaded, in line order): parse, intern the
//!    machine spec, fingerprint the loop (via a raw-text memo that lets a
//!    repeated request skip unescape *and* parse), then classify each
//!    line as a cache **hit**, a **coalesced** duplicate of a miss
//!    already admitted this batch, or a fresh **miss** routed to a
//!    worker by `fnv(key) % jobs`.
//! 2. **Compile fan-out**: each worker with jobs runs them on its own
//!    thread against its own long-lived [`CompileContext`]s — a context
//!    is keyed per `(loop, machine, seeds)` and survives across requests
//!    and batches, so the scratch reuse the one-shot driver proves
//!    byte-identical also pays off here. Workers never touch the cache.
//! 3. **Cache insert** (single-threaded, in admission order): freshly
//!    rendered payloads — compile failures included — enter the LRU
//!    stamped with their request seq, so the cache state after a batch
//!    is independent of worker count and thread scheduling.
//! 4. **Emit** (in line order): every line gets exactly one response
//!    line, hits and misses rendered from the same cached bytes.
//!
//! The warm path (every line a hit) allocates nothing: slots, job queues
//! and the output string are reused across batches, payload clones are
//! `Arc` refcount bumps, and the compile fan-out — the only phase that
//! spawns threads — is skipped entirely when no jobs were admitted.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

use cvliw_ddg::Ddg;
use cvliw_ir::parse_loop;
use cvliw_machine::MachineConfig;
use cvliw_replicate::{
    compile_stats_ctx, fnv1a_64, loop_fingerprint, CompileContext, CompileOptions, Mode,
};

use crate::cache::{CacheKey, ResultCache};
use crate::json;
use crate::protocol::{self, ErrorKind, Request, MAX_LINE_BYTES};

/// Upper bound on lines drained into one batch by [`Server::run_jsonl`].
pub const MAX_BATCH: usize = 64;

/// Sizing knobs for a [`Server`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads (clamped to at least 1).
    pub jobs: usize,
    /// Result-cache entry bound.
    pub cache_entries: usize,
    /// Result-cache payload-byte bound.
    pub cache_bytes: usize,
    /// Live [`CompileContext`]s each worker retains (LRU beyond that).
    pub contexts_per_worker: usize,
    /// Raw-text memo entries (escaped loop source → fingerprint).
    pub memo_entries: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            jobs: 1,
            cache_entries: 1024,
            cache_bytes: 64 << 20,
            contexts_per_worker: 64,
            memo_entries: 1024,
        }
    }
}

/// Lifetime accounting, all counters monotonic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Request lines admitted (blank lines not counted).
    pub requests: u64,
    /// Lines answered from the result cache.
    pub hits: u64,
    /// Lines that required a compile.
    pub misses: u64,
    /// Lines that duplicated a miss admitted earlier in the same batch
    /// and shared its compile instead of running their own.
    pub coalesced: u64,
    /// Compiles executed by the pool (successes and failures).
    pub compiles: u64,
    /// Result-cache evictions.
    pub evictions: u64,
    /// Responses that carried an `error` body.
    pub errors: u64,
}

struct TextEntry {
    escaped: Box<str>,
    fp: u64,
    stamp: u64,
}

struct CtxEntry {
    ddg: Ddg,
    ctx: CompileContext,
    stamp: u64,
}

/// One worker's private state: its long-lived compile contexts. Each
/// `CompileContext` holds interior mutability (`RefCell` scratch), so it
/// is `Send` but not `Sync` — ownership by exactly one worker is what
/// makes the fan-out sound, and key-sharded routing is what makes it
/// deterministic.
#[derive(Default)]
struct WorkerState {
    ctxs: HashMap<(u64, u32, u32), CtxEntry>,
}

struct Job {
    key: CacheKey,
    mode: Mode,
    ddg: Option<Ddg>,
    stamp: u64,
    payload: Option<Arc<str>>,
    is_err: bool,
}

enum Slot {
    /// Whitespace-only line: no response.
    Blank,
    /// Answered from cache.
    Hit { id: u64, payload: Arc<str> },
    /// Awaiting the payload computed by `worker_jobs[worker][idx]`.
    Job { id: u64, worker: u32, idx: u32 },
    /// Rejected before compilation.
    Reject { id: Option<u64>, kind: ErrorKind },
    /// Accounting request.
    Stats { id: u64 },
}

/// The compile daemon. Feed it batches of JSONL request lines (or a whole
/// stream via [`Server::run_jsonl`]); state — cache, memo, worker
/// contexts, counters — persists for the server's lifetime.
pub struct Server {
    cfg: ServerConfig,
    machines: Vec<MachineConfig>,
    spec_ids: HashMap<Box<str>, u32>,
    text_memo: HashMap<u64, TextEntry>,
    cache: ResultCache,
    workers: Vec<WorkerState>,
    worker_jobs: Vec<Vec<Job>>,
    pending: HashMap<CacheKey, (u32, u32)>,
    slots: Vec<Slot>,
    body_buf: String,
    stats: ServeStats,
    seq: u64,
}

impl Server {
    /// Creates a server with `cfg.jobs` workers (clamped to at least 1).
    #[must_use]
    pub fn new(cfg: ServerConfig) -> Self {
        let jobs = cfg.jobs.max(1);
        Server {
            cfg: ServerConfig { jobs, ..cfg },
            machines: Vec::new(),
            spec_ids: HashMap::new(),
            text_memo: HashMap::new(),
            cache: ResultCache::new(cfg.cache_entries, cfg.cache_bytes),
            workers: (0..jobs).map(|_| WorkerState::default()).collect(),
            worker_jobs: (0..jobs).map(|_| Vec::new()).collect(),
            pending: HashMap::new(),
            slots: Vec::new(),
            body_buf: String::new(),
            stats: ServeStats::default(),
            seq: 0,
        }
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// One-line human summary for stderr.
    #[must_use]
    pub fn summary(&self) -> String {
        let s = &self.stats;
        format!(
            "serve: {} requests, {} hits, {} misses ({} coalesced), {} compiles, {} evictions, \
             {} errors",
            s.requests, s.hits, s.misses, s.coalesced, s.compiles, s.evictions, s.errors
        )
    }

    fn intern_spec(&mut self, escaped: &str) -> Result<u32, ErrorKind> {
        if let Some(&id) = self.spec_ids.get(escaped) {
            return Ok(id);
        }
        let text = json::unescape(escaped).map_err(|e| ErrorKind::BadField {
            field: "machine",
            detail: e.to_string(),
        })?;
        let machine = MachineConfig::from_extended_spec(&text).map_err(ErrorKind::Spec)?;
        let id = u32::try_from(self.machines.len()).expect("spec intern overflow");
        self.machines.push(machine);
        self.spec_ids.insert(Box::from(escaped), id);
        Ok(id)
    }

    /// Fingerprints the escaped loop source, via the raw-text memo when it
    /// has seen these exact bytes before. Returns the parsed DDG only when
    /// parsing actually happened (memo misses).
    fn fingerprint_loop(
        &mut self,
        escaped: &str,
        stamp: u64,
    ) -> Result<(u64, Option<Ddg>), ErrorKind> {
        let h = fnv1a_64(escaped.as_bytes());
        if let Some(e) = self.text_memo.get_mut(&h) {
            // Full-text equality guards against a 64-bit collision ever
            // aliasing two different loops.
            if &*e.escaped == escaped {
                e.stamp = stamp;
                return Ok((e.fp, None));
            }
        }
        let text = json::unescape(escaped).map_err(|e| ErrorKind::BadField {
            field: "loop",
            detail: e.to_string(),
        })?;
        let named = parse_loop(&text).map_err(ErrorKind::Parse)?;
        let fp = loop_fingerprint(&named.ddg);
        if self.text_memo.len() >= self.cfg.memo_entries.max(1) {
            if let Some(&victim) = self
                .text_memo
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k)
            {
                self.text_memo.remove(&victim);
            }
        }
        self.text_memo.insert(
            h,
            TextEntry {
                escaped: Box::from(escaped),
                fp,
                stamp,
            },
        );
        Ok((fp, Some(named.ddg)))
    }

    fn admit_compile(
        &mut self,
        id: u64,
        loop_src: &str,
        machine: &str,
        mode: Mode,
        seeds: u32,
        stamp: u64,
    ) -> Slot {
        let spec = match self.intern_spec(machine) {
            Ok(spec) => spec,
            Err(kind) => return Slot::Reject { id: Some(id), kind },
        };
        let (fp, parsed) = match self.fingerprint_loop(loop_src, stamp) {
            Ok(pair) => pair,
            Err(kind) => return Slot::Reject { id: Some(id), kind },
        };
        let mode_idx = Mode::ALL
            .into_iter()
            .position(|m| m == mode)
            .expect("mode in Mode::ALL") as u8;
        let key = CacheKey {
            fp,
            spec,
            mode: mode_idx,
            seeds,
        };

        if let Some(payload) = self.cache.lookup(&key, stamp) {
            self.stats.hits += 1;
            if payload.starts_with("\"error\"") {
                self.stats.errors += 1;
            }
            return Slot::Hit { id, payload };
        }
        if let Some(&(worker, idx)) = self.pending.get(&key) {
            self.stats.coalesced += 1;
            return Slot::Job { id, worker, idx };
        }

        self.stats.misses += 1;
        // A miss always carries its DDG: the worker may lack a context for
        // it (or may evict one mid-batch), and re-parsing here costs noise
        // next to the compile the miss is about to pay for anyway.
        let ddg = match parsed {
            Some(d) => Some(d),
            None => match json::unescape(loop_src)
                .ok()
                .and_then(|text| parse_loop(&text).ok())
            {
                Some(named) => Some(named.ddg),
                // Unreachable in practice: a memo hit means these exact
                // bytes parsed before. Fail closed if it ever happens.
                None => {
                    return Slot::Reject {
                        id: Some(id),
                        kind: ErrorKind::BadField {
                            field: "loop",
                            detail: "loop no longer parses".into(),
                        },
                    }
                }
            },
        };
        let worker = (fnv1a_64(&key.bytes()) % self.cfg.jobs as u64) as u32;
        let idx = u32::try_from(self.worker_jobs[worker as usize].len()).expect("batch too large");
        self.worker_jobs[worker as usize].push(Job {
            key,
            mode,
            ddg,
            stamp,
            payload: None,
            is_err: false,
        });
        self.pending.insert(key, (worker, idx));
        Slot::Job { id, worker, idx }
    }

    /// Processes one batch of request lines, appending one response line
    /// per non-blank input line (in input order) to `out`.
    ///
    /// A `stats` request reports the counters as of the end of this
    /// batch's admission and compile work — deterministic for a given
    /// request stream, whatever the worker count.
    pub fn process_batch<S: AsRef<str>>(&mut self, lines: &[S], out: &mut String) {
        self.slots.clear();
        self.pending.clear();

        // Phase 1: admission, in line order.
        for line in lines {
            let line = line.as_ref();
            if line.trim().is_empty() {
                self.slots.push(Slot::Blank);
                continue;
            }
            self.stats.requests += 1;
            let stamp = self.seq;
            self.seq += 1;
            if line.len() > MAX_LINE_BYTES {
                self.stats.errors += 1;
                self.slots.push(Slot::Reject {
                    id: None,
                    kind: ErrorKind::Oversized { bytes: line.len() },
                });
                continue;
            }
            let slot = match protocol::parse_request(line) {
                Ok(Request::Stats { id }) => Slot::Stats { id },
                Ok(Request::Compile {
                    id,
                    loop_src,
                    machine,
                    mode,
                    seeds,
                }) => self.admit_compile(id, loop_src, machine, mode, seeds, stamp),
                Err((id, kind)) => Slot::Reject { id, kind },
            };
            if let Slot::Reject { .. } = slot {
                self.stats.errors += 1;
            }
            self.slots.push(slot);
        }

        // Phase 2: compile fan-out. Skipped entirely on an all-hit batch —
        // even spawning a scope would allocate.
        if self.worker_jobs.iter().any(|jobs| !jobs.is_empty()) {
            let machines = &self.machines;
            let max_ctxs = self.cfg.contexts_per_worker.max(1);
            thread::scope(|scope| {
                for (ws, jobs) in self.workers.iter_mut().zip(self.worker_jobs.iter_mut()) {
                    if jobs.is_empty() {
                        continue;
                    }
                    scope.spawn(move || run_worker(ws, jobs, machines, max_ctxs));
                }
            });
        }

        // Phase 3: cache insertion in admission (stamp) order, so the
        // cache state never depends on which worker finished first.
        let mut done: Vec<(u64, u32, u32)> = Vec::new();
        for (w, jobs) in self.worker_jobs.iter().enumerate() {
            for (i, job) in jobs.iter().enumerate() {
                done.push((job.stamp, w as u32, i as u32));
            }
        }
        done.sort_unstable();
        for &(stamp, w, i) in &done {
            let job = &self.worker_jobs[w as usize][i as usize];
            let payload = job.payload.clone().expect("worker filled every job");
            self.stats.compiles += 1;
            if job.is_err {
                self.stats.errors += 1;
            }
            self.stats.evictions += self.cache.insert(job.key, payload, stamp);
        }

        // Phase 4: emit, in line order.
        for slot in &self.slots {
            match slot {
                Slot::Blank => {}
                Slot::Hit { id, payload } => protocol::render_response(Some(*id), payload, out),
                Slot::Job { id, worker, idx } => {
                    let job = &self.worker_jobs[*worker as usize][*idx as usize];
                    let payload = job.payload.as_deref().expect("worker filled every job");
                    protocol::render_response(Some(*id), payload, out);
                }
                Slot::Reject { id, kind } => {
                    self.body_buf.clear();
                    protocol::render_error_body(kind, &mut self.body_buf);
                    protocol::render_response(*id, &self.body_buf, out);
                }
                Slot::Stats { id } => {
                    self.body_buf.clear();
                    let s = &self.stats;
                    let _ = write!(
                        self.body_buf,
                        "\"ok\":{{\"requests\":{},\"hits\":{},\"misses\":{},\"coalesced\":{},\
                         \"compiles\":{},\"evictions\":{},\"errors\":{},\"cache_entries\":{},\
                         \"cache_bytes\":{}}}",
                        s.requests,
                        s.hits,
                        s.misses,
                        s.coalesced,
                        s.compiles,
                        s.evictions,
                        s.errors,
                        self.cache.len(),
                        self.cache.bytes(),
                    );
                    protocol::render_response(Some(*id), &self.body_buf, out);
                }
            }
        }

        for jobs in &mut self.worker_jobs {
            jobs.clear();
        }
    }

    /// Pumps a JSONL stream: reads request lines from `reader` (on a
    /// dedicated thread, so a slow client never stalls compilation of
    /// lines already received), batches up to [`MAX_BATCH`] at a time
    /// through [`Server::process_batch`], and writes response lines to
    /// `writer`, flushing after every batch. Returns at input EOF. A final
    /// line without a trailing newline is still a request — a truncated
    /// one gets a structured error response like any other malformed line.
    ///
    /// # Errors
    ///
    /// Propagates `writer` failures; `reader` errors end the stream.
    pub fn run_jsonl<R, W>(&mut self, reader: R, mut writer: W) -> io::Result<()>
    where
        R: BufRead + Send,
        W: Write,
    {
        let (tx, rx) = mpsc::sync_channel::<String>(4 * MAX_BATCH);
        thread::scope(|scope| {
            scope.spawn(move || {
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    if tx.send(line).is_err() {
                        break;
                    }
                }
            });
            let mut lines: Vec<String> = Vec::with_capacity(MAX_BATCH);
            let mut out = String::new();
            while let Ok(first) = rx.recv() {
                lines.clear();
                lines.push(first);
                while lines.len() < MAX_BATCH {
                    match rx.try_recv() {
                        Ok(line) => lines.push(line),
                        Err(_) => break,
                    }
                }
                out.clear();
                self.process_batch(&lines, &mut out);
                writer.write_all(out.as_bytes())?;
                writer.flush()?;
            }
            Ok(())
        })
    }
}

fn run_worker(ws: &mut WorkerState, jobs: &mut [Job], machines: &[MachineConfig], max_ctxs: usize) {
    let mut body = String::new();
    for job in jobs {
        let ctx_key = (job.key.fp, job.key.spec, job.key.seeds);
        let machine = &machines[job.key.spec as usize];
        if !ws.ctxs.contains_key(&ctx_key) {
            while ws.ctxs.len() >= max_ctxs {
                let victim = ws
                    .ctxs
                    .iter()
                    .min_by_key(|(_, e)| e.stamp)
                    .map(|(k, _)| *k)
                    .expect("non-empty context pool");
                ws.ctxs.remove(&victim);
            }
            let ddg = job.ddg.take().expect("miss carries its DDG");
            let ctx = CompileContext::new(&ddg, machine).with_refine_seeds(job.key.seeds);
            ws.ctxs.insert(
                ctx_key,
                CtxEntry {
                    ddg,
                    ctx,
                    stamp: job.stamp,
                },
            );
        }
        let entry = ws.ctxs.get_mut(&ctx_key).expect("context just ensured");
        entry.stamp = entry.stamp.max(job.stamp);
        let opts = CompileOptions {
            mode: job.mode,
            max_ii: None,
        };
        body.clear();
        match compile_stats_ctx(&entry.ddg, machine, &opts, &entry.ctx) {
            Ok(stats) => protocol::render_ok_body(&stats, &mut body),
            Err(e) => {
                job.is_err = true;
                protocol::render_compile_error_body(&e, &mut body);
            }
        }
        job.payload = Some(Arc::from(body.as_str()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{escape, request_line, TINY_LOOP};

    fn server(jobs: usize) -> Server {
        Server::new(ServerConfig {
            jobs,
            ..ServerConfig::default()
        })
    }

    #[test]
    fn one_request_compiles_and_repeats_hit_the_cache() {
        let mut s = server(2);
        let line = request_line(1, TINY_LOOP, "4c1b2l64r", "replicate", 1);
        let mut cold = String::new();
        s.process_batch(std::slice::from_ref(&line), &mut cold);
        assert!(cold.starts_with("{\"id\":1,\"ok\":{\"mii\":"), "{cold}");
        assert_eq!(s.stats().misses, 1);

        let line2 = request_line(2, TINY_LOOP, "4c1b2l64r", "replicate", 1);
        let mut warm = String::new();
        s.process_batch(&[line2], &mut warm);
        assert_eq!(s.stats().hits, 1);
        assert_eq!(s.stats().compiles, 1, "hit must not recompile");
        // Same body, different id.
        assert_eq!(
            cold.trim_start_matches("{\"id\":1,"),
            warm.trim_start_matches("{\"id\":2,")
        );
    }

    #[test]
    fn duplicates_within_a_batch_coalesce() {
        let mut s = server(3);
        let a = request_line(1, TINY_LOOP, "4c1b2l64r", "replicate", 1);
        let b = request_line(2, TINY_LOOP, "4c1b2l64r", "replicate", 1);
        let mut out = String::new();
        s.process_batch(&[a, b], &mut out);
        assert_eq!(s.stats().compiles, 1);
        assert_eq!(s.stats().coalesced, 1);
        assert_eq!(out.lines().count(), 2);
    }

    #[test]
    fn alpha_renaming_and_whitespace_still_hit() {
        let mut s = server(1);
        let renamed = TINY_LOOP.replace("acc", "total").replace("ld", "v");
        let spaced = format!("  {}", TINY_LOOP.replace('\n', "\n  "));
        let mut out = String::new();
        s.process_batch(
            &[
                request_line(1, TINY_LOOP, "4c1b2l64r", "replicate", 1),
                request_line(2, &renamed, "4c1b2l64r", "replicate", 1),
                request_line(3, &spaced, "4c1b2l64r", "replicate", 1),
            ],
            &mut out,
        );
        assert_eq!(s.stats().compiles, 1);
        assert_eq!(s.stats().hits + s.stats().coalesced, 2);
    }

    #[test]
    fn errors_answer_without_killing_the_server() {
        let mut s = server(2);
        let mut out = String::new();
        let lines = [
            "not json".to_string(),
            format!(
                "{{\"id\": 1, \"loop\": \"{}\", \"machine\": \"bogus\"}}",
                escape(TINY_LOOP)
            ),
            request_line(2, "loop broken {", "4c1b2l64r", "replicate", 1),
            request_line(3, TINY_LOOP, "4c1b2l64r", "replicate", 1),
        ];
        s.process_batch(&lines, &mut out);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"id\":null,\"error\":{\"kind\":\"json\""));
        assert!(lines[1].starts_with("{\"id\":1,\"error\":{\"kind\":\"spec\""));
        assert!(lines[2].starts_with("{\"id\":2,\"error\":{\"kind\":\"parse\""));
        assert!(lines[3].starts_with("{\"id\":3,\"ok\":"));
        assert_eq!(s.stats().errors, 3);
    }

    #[test]
    fn stats_op_reports_accounting() {
        let mut s = server(1);
        let mut out = String::new();
        s.process_batch(
            &[
                request_line(1, TINY_LOOP, "4c1b2l64r", "replicate", 1),
                "{\"id\": 9, \"op\": \"stats\"}".to_string(),
            ],
            &mut out,
        );
        let stats_line = out.lines().nth(1).unwrap();
        assert!(stats_line.contains("\"requests\":2"), "{stats_line}");
        assert!(stats_line.contains("\"compiles\":1"), "{stats_line}");
    }

    #[test]
    fn run_jsonl_round_trips_a_stream() {
        let mut s = server(2);
        let input = format!(
            "{}\n{}\n{}",
            request_line(1, TINY_LOOP, "4c1b2l64r", "baseline", 1),
            "",
            // Truncated final line, no newline: still answered.
            "{\"id\": 3, \"loo"
        );
        let mut out = Vec::new();
        s.run_jsonl(io::Cursor::new(input), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        assert!(lines[0].starts_with("{\"id\":1,\"ok\":"));
        assert!(lines[1].starts_with("{\"id\":3,\"error\":{\"kind\":\"json\""));
    }

    #[test]
    fn responses_are_identical_for_any_worker_count() {
        let reqs: Vec<String> = (0..6)
            .map(|i| {
                request_line(
                    i,
                    TINY_LOOP,
                    ["4c1b2l64r", "2c1b2l64r", "unified"][i as usize % 3],
                    ["baseline", "replicate"][i as usize % 2],
                    1,
                )
            })
            .collect();
        let mut one = String::new();
        server(1).process_batch(&reqs, &mut one);
        let mut four = String::new();
        server(4).process_batch(&reqs, &mut four);
        assert_eq!(one, four);
    }
}
