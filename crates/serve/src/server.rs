//! The daemon proper: admission, the persistent worker pool and the
//! batched request pump.
//!
//! A batch of request lines flows through four strictly ordered phases:
//!
//! 1. **Admission** (single-threaded, in line order): parse, intern the
//!    machine spec, fingerprint the loop (via a raw-text memo that lets a
//!    repeated request skip unescape *and* parse), then classify each
//!    line as a cache **hit**, a **coalesced** duplicate of a miss
//!    already admitted this batch, or a fresh **miss** routed to a
//!    worker by `fnv(key) % jobs` — unless the daemon-wide in-flight
//!    bound is reached, in which case the miss is **shed** with an
//!    `overloaded` error and a `retry_after` hint.
//! 2. **Compile fan-out**: each worker with jobs runs them on its own
//!    thread against its own long-lived [`CompileContext`]s — a context
//!    is keyed per `(loop, machine, seeds)` and survives across requests
//!    and batches, so the scratch reuse the one-shot driver proves
//!    byte-identical also pays off here. Workers never touch the cache.
//!    Every job runs under `catch_unwind`: a panicking compile renders a
//!    structured `compile_panic` response and discards the worker's
//!    context for that key as poisoned (rebuilt on next use) instead of
//!    killing the daemon. When a deadline is configured the job arms the
//!    context's [`cvliw_replicate::CancelToken`], and a compile that
//!    blows the budget renders `deadline_exceeded`.
//! 3. **Cache insert** (single-threaded, in admission order): freshly
//!    rendered payloads — compile failures included — enter the LRU
//!    stamped with their request seq, so the cache state after a batch
//!    is independent of worker count and thread scheduling. Fault
//!    payloads (`compile_panic`, `deadline_exceeded`) are **never**
//!    cached: they reflect load or a bug, not the request, and a
//!    follow-up identical request must compile cleanly.
//! 4. **Emit** (in line order): every line gets exactly one response
//!    line, hits and misses rendered from the same cached bytes.
//!
//! The warm path (every line a hit) allocates nothing: slots, job queues
//! and the output string are reused across batches, payload clones are
//! `Arc` refcount bumps, counters are atomics, and the compile fan-out —
//! the only phase that spawns threads — is skipped entirely when no jobs
//! were admitted. The fault-tolerance plumbing is free when disarmed: no
//! deadline means no token is ever armed, and the shed gate is two
//! atomic operations per miss, none per hit.
//!
//! Cross-session state — the result cache, the spec interner, the seq
//! counter, the counters and the shed gate — lives in [`SharedState`];
//! a `Server` is one *session* over it. A single-session daemon behaves
//! bit-for-bit like the old single-owner design, which is what lets the
//! differential layer keep pinning byte identity.

use std::collections::HashMap;
use std::fmt::{self, Write as _};
use std::io::{self, BufRead, Write};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use cvliw_ddg::Ddg;
use cvliw_ir::parse_loop;
use cvliw_machine::MachineConfig;
use cvliw_replicate::{
    compile_stats_ctx, fnv1a_64, loop_fingerprint, CompileContext, CompileError, CompileOptions,
    Mode,
};

use crate::cache::CacheKey;
#[cfg(feature = "fault-inject")]
use crate::fault::FaultPlan;
use crate::json;
use crate::protocol::{self, ErrorKind, Request, MAX_LINE_BYTES};
use crate::shared::SharedState;

/// Upper bound on lines drained into one batch by [`Server::run_jsonl`].
pub const MAX_BATCH: usize = 64;

/// Floor of the shed back-off hint, in milliseconds.
pub const RETRY_AFTER_BASE_MS: u64 = 10;

/// Added to the hint per observed in-flight compile, in milliseconds —
/// a deeper queue earns callers a longer pause.
pub const RETRY_AFTER_PER_INFLIGHT_MS: u64 = 5;

/// Ceiling of the shed back-off hint, in milliseconds.
pub const RETRY_AFTER_MAX_MS: u64 = 2000;

/// The back-off hint attached to `overloaded` responses: scales with
/// the in-flight compile depth observed at shed time, clamped to
/// [`RETRY_AFTER_MAX_MS`]. A pure function of the observed depth (no
/// wall clock), so the client backoff tests can pin the contract.
#[must_use]
pub fn retry_after_hint(inflight: u64) -> u64 {
    RETRY_AFTER_BASE_MS
        .saturating_add(RETRY_AFTER_PER_INFLIGHT_MS.saturating_mul(inflight))
        .min(RETRY_AFTER_MAX_MS)
}

/// Sizing knobs for a [`Server`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads (clamped to at least 1).
    pub jobs: usize,
    /// Result-cache entry bound.
    pub cache_entries: usize,
    /// Result-cache payload-byte bound.
    pub cache_bytes: usize,
    /// Live [`CompileContext`]s each worker retains (LRU beyond that).
    pub contexts_per_worker: usize,
    /// Raw-text memo entries (escaped loop source → fingerprint).
    pub memo_entries: usize,
    /// Per-request compile budget in milliseconds; `None` disarms the
    /// deadline entirely (no token is ever armed).
    pub deadline_ms: Option<u64>,
    /// Daemon-wide bound on in-flight compile jobs; misses beyond it are
    /// shed with an `overloaded` error (clamped to at least 1).
    pub max_inflight: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            jobs: 1,
            cache_entries: 1024,
            cache_bytes: 64 << 20,
            contexts_per_worker: 64,
            memo_entries: 1024,
            deadline_ms: None,
            max_inflight: 256,
        }
    }
}

/// Lifetime accounting, all counters monotonic. Daemon-wide: sessions
/// sharing a [`SharedState`] report combined counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Request lines admitted (blank lines not counted).
    pub requests: u64,
    /// Lines answered from the result cache.
    pub hits: u64,
    /// Lines that required a compile (shed lines not counted).
    pub misses: u64,
    /// Lines that duplicated a miss admitted earlier in the same batch
    /// and shared its compile instead of running their own.
    pub coalesced: u64,
    /// Compiles executed by the pool (successes, failures, faults).
    pub compiles: u64,
    /// Result-cache evictions.
    pub evictions: u64,
    /// Responses that carried an `error` body.
    pub errors: u64,
    /// Misses shed at the in-flight bound (`overloaded` responses).
    pub shed: u64,
    /// Compile jobs that panicked and were contained (`compile_panic`).
    pub panics: u64,
    /// Compile jobs that blew the budget (`deadline_exceeded`).
    pub deadlines: u64,
}

impl fmt::Display for ServeStats {
    /// The one-line human summary the daemon prints to stderr at exit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "serve: {} requests, {} hits, {} misses ({} coalesced), {} compiles, {} evictions, \
             {} errors, {} shed, {} panics, {} deadline",
            self.requests,
            self.hits,
            self.misses,
            self.coalesced,
            self.compiles,
            self.evictions,
            self.errors,
            self.shed,
            self.panics,
            self.deadlines,
        )
    }
}

/// A clonable, thread-safe shutdown request. Hand one to
/// [`Server::run_jsonl_until`] (or the socket daemon) and
/// [`ShutdownFlag::request`] it from a signal handler watcher or another
/// thread: readers stop at the next line boundary, every admitted
/// request is still answered and flushed, and the stream ends with no
/// torn output line.
#[derive(Clone, Debug, Default)]
pub struct ShutdownFlag(Arc<AtomicBool>);

impl ShutdownFlag {
    /// A fresh, unrequested flag.
    #[must_use]
    pub fn new() -> Self {
        ShutdownFlag::default()
    }

    /// Requests shutdown (idempotent, sticky).
    pub fn request(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_requested(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

struct TextEntry {
    escaped: Box<str>,
    fp: u64,
    stamp: u64,
}

struct CtxEntry {
    ddg: Ddg,
    ctx: CompileContext,
    stamp: u64,
}

/// One worker's private state: its long-lived compile contexts. Each
/// `CompileContext` holds interior mutability (`RefCell` scratch), so it
/// is `Send` but not `Sync` — ownership by exactly one worker is what
/// makes the fan-out sound, and key-sharded routing is what makes it
/// deterministic.
#[derive(Default)]
struct WorkerState {
    ctxs: HashMap<(u64, u32, u32), CtxEntry>,
}

/// What became of one compile job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobOutcome {
    /// Worker has not filled the job (unreachable once phase 2 ran).
    Pending,
    /// Compiled; payload is an `ok` body.
    Ok,
    /// Compiled to a structured compile error (cached like a success).
    CompileErr,
    /// An internal invariant failed; payload is an `internal` error.
    Internal,
    /// The worker panicked; payload is a `compile_panic` error.
    Panicked,
    /// The compile blew its budget; payload is `deadline_exceeded`.
    DeadlineExceeded,
}

impl JobOutcome {
    /// Fault payloads reflect load or a bug, never the request — only
    /// honest compile outcomes may enter the shared cache.
    fn cacheable(self) -> bool {
        matches!(self, JobOutcome::Ok | JobOutcome::CompileErr)
    }
}

struct Job {
    key: CacheKey,
    mode: Mode,
    ddg: Option<Ddg>,
    stamp: u64,
    payload: Option<Arc<str>>,
    outcome: JobOutcome,
}

enum Slot {
    /// Whitespace-only line: no response.
    Blank,
    /// Answered from cache.
    Hit { id: u64, payload: Arc<str> },
    /// Awaiting the payload computed by `worker_jobs[worker][idx]`.
    Job { id: u64, worker: u32, idx: u32 },
    /// Rejected before compilation.
    Reject { id: Option<u64>, kind: ErrorKind },
    /// Accounting request.
    Stats { id: u64 },
}

/// Everything a worker thread needs besides its own state: the session's
/// spec mirror, pool sizing, the deadline and (under `fault-inject`) the
/// fault plan.
struct WorkerEnv<'a> {
    machines: &'a HashMap<u32, MachineConfig>,
    max_ctxs: usize,
    deadline_ms: Option<u64>,
    #[cfg(feature = "fault-inject")]
    fault: &'a FaultPlan,
}

/// One session of the compile daemon. Feed it batches of JSONL request
/// lines (or a whole stream via [`Server::run_jsonl`]); session state —
/// worker contexts, the raw-text memo — lives here, daemon state — the
/// cache, the spec interner, counters — in the [`SharedState`] all
/// sessions of one daemon share.
pub struct Server {
    cfg: ServerConfig,
    shared: Arc<SharedState>,
    /// Session-local mirror of the shared spec table (id → config),
    /// lock-free on the warm path.
    machines: HashMap<u32, MachineConfig>,
    /// Session-local mirror: escaped spec text → shared id.
    spec_ids: HashMap<Box<str>, u32>,
    text_memo: HashMap<u64, TextEntry>,
    workers: Vec<WorkerState>,
    worker_jobs: Vec<Vec<Job>>,
    pending: HashMap<CacheKey, (u32, u32)>,
    slots: Vec<Slot>,
    body_buf: String,
    #[cfg(feature = "fault-inject")]
    fault: FaultPlan,
}

impl Server {
    /// Creates a single-session server with its own private
    /// [`SharedState`] and `cfg.jobs` workers (clamped to at least 1).
    #[must_use]
    pub fn new(cfg: ServerConfig) -> Self {
        let shared = SharedState::new(&cfg);
        Server::with_shared(cfg, shared)
    }

    /// Creates a session over existing daemon-wide state. Every session
    /// of one daemon must be built from the same `Arc` — the cache keys
    /// carry interned spec ids that only the shared table can mint.
    #[must_use]
    pub fn with_shared(cfg: ServerConfig, shared: Arc<SharedState>) -> Self {
        let jobs = cfg.jobs.max(1);
        Server {
            cfg: ServerConfig { jobs, ..cfg },
            shared,
            machines: HashMap::new(),
            spec_ids: HashMap::new(),
            text_memo: HashMap::new(),
            workers: (0..jobs).map(|_| WorkerState::default()).collect(),
            worker_jobs: (0..jobs).map(|_| Vec::new()).collect(),
            pending: HashMap::new(),
            slots: Vec::new(),
            body_buf: String::new(),
            #[cfg(feature = "fault-inject")]
            fault: FaultPlan::default(),
        }
    }

    /// The daemon-wide state this session shares.
    #[must_use]
    pub fn shared(&self) -> &Arc<SharedState> {
        &self.shared
    }

    /// Arms a deterministic [`FaultPlan`] for this session's workers
    /// (test builds only).
    #[cfg(feature = "fault-inject")]
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = plan;
    }

    /// Lifetime counters (daemon-wide when sessions share state).
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.shared.stats().snapshot()
    }

    /// One-line human summary for stderr.
    #[must_use]
    pub fn summary(&self) -> String {
        self.stats().to_string()
    }

    fn intern_spec(&mut self, escaped: &str) -> Result<u32, ErrorKind> {
        if let Some(&id) = self.spec_ids.get(escaped) {
            return Ok(id);
        }
        let (id, machine) = self.shared.intern_spec(escaped)?;
        self.spec_ids.insert(Box::from(escaped), id);
        self.machines.insert(id, machine);
        Ok(id)
    }

    /// Fingerprints the escaped loop source, via the raw-text memo when it
    /// has seen these exact bytes before. Returns the parsed DDG only when
    /// parsing actually happened (memo misses).
    fn fingerprint_loop(
        &mut self,
        escaped: &str,
        stamp: u64,
    ) -> Result<(u64, Option<Ddg>), ErrorKind> {
        let h = fnv1a_64(escaped.as_bytes());
        if let Some(e) = self.text_memo.get_mut(&h) {
            // Full-text equality guards against a 64-bit collision ever
            // aliasing two different loops.
            if &*e.escaped == escaped {
                e.stamp = stamp;
                return Ok((e.fp, None));
            }
        }
        let text = json::unescape(escaped).map_err(|e| ErrorKind::BadField {
            field: "loop",
            detail: e.to_string(),
        })?;
        let named = parse_loop(&text).map_err(ErrorKind::Parse)?;
        let fp = loop_fingerprint(&named.ddg);
        if self.text_memo.len() >= self.cfg.memo_entries.max(1) {
            if let Some(&victim) = self
                .text_memo
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k)
            {
                self.text_memo.remove(&victim);
            }
        }
        self.text_memo.insert(
            h,
            TextEntry {
                escaped: Box::from(escaped),
                fp,
                stamp,
            },
        );
        Ok((fp, Some(named.ddg)))
    }

    fn admit_compile(
        &mut self,
        id: u64,
        loop_src: &str,
        machine: &str,
        mode: Mode,
        seeds: u32,
        stamp: u64,
    ) -> Slot {
        let spec = match self.intern_spec(machine) {
            Ok(spec) => spec,
            Err(kind) => return Slot::Reject { id: Some(id), kind },
        };
        let (fp, parsed) = match self.fingerprint_loop(loop_src, stamp) {
            Ok(pair) => pair,
            Err(kind) => return Slot::Reject { id: Some(id), kind },
        };
        let key = CacheKey {
            fp,
            spec,
            mode: mode.index(),
            seeds,
        };

        if let Some(payload) = self.shared.cache_lookup(&key, stamp) {
            self.shared.stats().hits(1);
            if payload.starts_with("\"error\"") {
                self.shared.stats().errors(1);
            }
            return Slot::Hit { id, payload };
        }
        if let Some(&(worker, idx)) = self.pending.get(&key) {
            self.shared.stats().coalesced(1);
            return Slot::Job { id, worker, idx };
        }

        // A miss always carries its DDG: the worker may lack a context for
        // it (or may evict one mid-batch), and re-parsing here costs noise
        // next to the compile the miss is about to pay for anyway.
        let ddg = match parsed {
            Some(d) => Some(d),
            None => match json::unescape(loop_src)
                .ok()
                .and_then(|text| parse_loop(&text).ok())
            {
                Some(named) => Some(named.ddg),
                // Unreachable in practice: a memo hit means these exact
                // bytes parsed before. Fail closed if it ever happens.
                None => {
                    return Slot::Reject {
                        id: Some(id),
                        kind: ErrorKind::BadField {
                            field: "loop",
                            detail: "loop no longer parses".into(),
                        },
                    }
                }
            },
        };

        // Load shedding: a fresh miss claims one daemon-wide in-flight
        // slot or is turned away with a back-off hint — never queued
        // unboundedly. Hits and coalesced duplicates above cost nothing.
        if !self.shared.try_acquire_compile() {
            self.shared.stats().shed(1);
            return Slot::Reject {
                id: Some(id),
                kind: ErrorKind::Overloaded {
                    retry_after_ms: retry_after_hint(self.shared.inflight_depth()),
                },
            };
        }
        self.shared.stats().misses(1);
        let worker = (fnv1a_64(&key.bytes()) % self.cfg.jobs as u64) as u32;
        let idx = match u32::try_from(self.worker_jobs[worker as usize].len()) {
            Ok(idx) => idx,
            Err(_) => {
                self.shared.release_compiles(1);
                return Slot::Reject {
                    id: Some(id),
                    kind: ErrorKind::Internal {
                        detail: "batch job index overflow",
                    },
                };
            }
        };
        self.worker_jobs[worker as usize].push(Job {
            key,
            mode,
            ddg,
            stamp,
            payload: None,
            outcome: JobOutcome::Pending,
        });
        self.pending.insert(key, (worker, idx));
        Slot::Job { id, worker, idx }
    }

    /// Processes one batch of request lines, appending one response line
    /// per non-blank input line (in input order) to `out`.
    ///
    /// A `stats` request reports the counters as of the end of this
    /// batch's admission and compile work — deterministic for a given
    /// request stream, whatever the worker count.
    pub fn process_batch<S: AsRef<str>>(&mut self, lines: &[S], out: &mut String) {
        self.slots.clear();
        self.pending.clear();

        // Phase 1: admission, in line order.
        for line in lines {
            let line = line.as_ref();
            if line.trim().is_empty() {
                self.slots.push(Slot::Blank);
                continue;
            }
            self.shared.stats().requests(1);
            let stamp = self.shared.next_stamp();
            if line.len() > MAX_LINE_BYTES {
                self.shared.stats().errors(1);
                self.slots.push(Slot::Reject {
                    id: None,
                    kind: ErrorKind::Oversized { bytes: line.len() },
                });
                continue;
            }
            let slot = match protocol::parse_request(line) {
                Ok(Request::Stats { id }) => Slot::Stats { id },
                Ok(Request::Compile {
                    id,
                    loop_src,
                    machine,
                    mode,
                    seeds,
                }) => self.admit_compile(id, loop_src, machine, mode, seeds, stamp),
                Err((id, kind)) => Slot::Reject { id, kind },
            };
            if let Slot::Reject { .. } = slot {
                self.shared.stats().errors(1);
            }
            self.slots.push(slot);
        }

        // Phase 2: compile fan-out. Skipped entirely on an all-hit batch —
        // even spawning a scope would allocate.
        if self.worker_jobs.iter().any(|jobs| !jobs.is_empty()) {
            let env = WorkerEnv {
                machines: &self.machines,
                max_ctxs: self.cfg.contexts_per_worker.max(1),
                deadline_ms: self.cfg.deadline_ms,
                #[cfg(feature = "fault-inject")]
                fault: &self.fault,
            };
            let env = &env;
            thread::scope(|scope| {
                for (ws, jobs) in self.workers.iter_mut().zip(self.worker_jobs.iter_mut()) {
                    if jobs.is_empty() {
                        continue;
                    }
                    scope.spawn(move || run_worker(ws, jobs, env));
                }
            });
        }

        // Phase 3: cache insertion in admission (stamp) order, so the
        // cache state never depends on which worker finished first. Every
        // job claimed an in-flight slot at admission; return them all.
        let mut done: Vec<(u64, u32, u32)> = Vec::new();
        for (w, jobs) in self.worker_jobs.iter().enumerate() {
            for (i, job) in jobs.iter().enumerate() {
                done.push((job.stamp, w as u32, i as u32));
            }
        }
        done.sort_unstable();
        for &(stamp, w, i) in &done {
            let job = &self.worker_jobs[w as usize][i as usize];
            let stats = self.shared.stats();
            stats.compiles(1);
            match job.outcome {
                JobOutcome::Ok => {}
                JobOutcome::CompileErr | JobOutcome::Internal | JobOutcome::Pending => {
                    stats.errors(1);
                }
                JobOutcome::Panicked => {
                    stats.errors(1);
                    stats.panics(1);
                }
                JobOutcome::DeadlineExceeded => {
                    stats.errors(1);
                    stats.deadlines(1);
                }
            }
            if job.outcome.cacheable() {
                if let Some(payload) = job.payload.clone() {
                    stats.evictions(self.shared.cache_insert(job.key, payload, stamp));
                }
            }
        }
        self.shared.release_compiles(done.len() as u64);

        // Phase 4: emit, in line order.
        for slot in &self.slots {
            match slot {
                Slot::Blank => {}
                Slot::Hit { id, payload } => protocol::render_response(Some(*id), payload, out),
                Slot::Job { id, worker, idx } => {
                    let job = &self.worker_jobs[*worker as usize][*idx as usize];
                    match job.payload.as_deref() {
                        Some(payload) => protocol::render_response(Some(*id), payload, out),
                        // Unreachable: phase 2 fills every job, panic or
                        // not. Fail closed with a structured answer.
                        None => {
                            self.body_buf.clear();
                            protocol::render_error_body(
                                &ErrorKind::Internal {
                                    detail: "worker returned no payload",
                                },
                                &mut self.body_buf,
                            );
                            protocol::render_response(Some(*id), &self.body_buf, out);
                        }
                    }
                }
                Slot::Reject { id, kind } => {
                    self.body_buf.clear();
                    protocol::render_error_body(kind, &mut self.body_buf);
                    protocol::render_response(*id, &self.body_buf, out);
                }
                Slot::Stats { id } => {
                    self.body_buf.clear();
                    let s = self.shared.stats().snapshot();
                    let _ = write!(
                        self.body_buf,
                        "\"ok\":{{\"requests\":{},\"hits\":{},\"misses\":{},\"coalesced\":{},\
                         \"compiles\":{},\"evictions\":{},\"errors\":{},\"shed\":{},\
                         \"panics\":{},\"deadlines\":{},\"cache_entries\":{},\"cache_bytes\":{}}}",
                        s.requests,
                        s.hits,
                        s.misses,
                        s.coalesced,
                        s.compiles,
                        s.evictions,
                        s.errors,
                        s.shed,
                        s.panics,
                        s.deadlines,
                        self.shared.cache_len(),
                        self.shared.cache_bytes(),
                    );
                    protocol::render_response(Some(*id), &self.body_buf, out);
                }
            }
        }

        for jobs in &mut self.worker_jobs {
            jobs.clear();
        }
    }

    /// Pumps a JSONL stream: reads request lines from `reader` (on a
    /// dedicated thread, so a slow client never stalls compilation of
    /// lines already received), batches up to [`MAX_BATCH`] at a time
    /// through [`Server::process_batch`], and writes response lines to
    /// `writer`, flushing after every batch. Returns at input EOF. A final
    /// line without a trailing newline is still a request — a truncated
    /// one gets a structured error response like any other malformed line.
    ///
    /// # Errors
    ///
    /// Propagates `writer` failures; `reader` errors end the stream.
    pub fn run_jsonl<R, W>(&mut self, reader: R, writer: W) -> io::Result<()>
    where
        R: BufRead + Send,
        W: Write,
    {
        self.run_jsonl_until(reader, writer, &ShutdownFlag::new())
    }

    /// [`Server::run_jsonl`] with cooperative shutdown: when `shutdown`
    /// is requested, the reader stops at the next line boundary (or read
    /// timeout), every line already read is processed and answered, the
    /// writer is flushed, and the pump returns `Ok`. The reader side
    /// tolerates `WouldBlock`/`TimedOut` (a socket with a read timeout)
    /// by retrying, retaining any partial line across retries — that
    /// polling is what lets a blocking socket session observe the flag.
    ///
    /// # Errors
    ///
    /// Propagates `writer` failures; `reader` errors end the stream.
    pub fn run_jsonl_until<R, W>(
        &mut self,
        reader: R,
        mut writer: W,
        shutdown: &ShutdownFlag,
    ) -> io::Result<()>
    where
        R: BufRead + Send,
        W: Write,
    {
        let (tx, rx) = mpsc::sync_channel::<String>(4 * MAX_BATCH);
        // Set once the pump stops consuming (EOF or a writer error), so
        // a reader waking from a read timeout exits instead of pumping
        // lines nobody will answer.
        let done = AtomicBool::new(false);
        let done = &done;
        thread::scope(|scope| {
            scope.spawn(move || pump_lines(reader, &tx, shutdown, done));
            let result = (|| {
                let mut lines: Vec<String> = Vec::with_capacity(MAX_BATCH);
                let mut out = String::new();
                while let Ok(first) = rx.recv() {
                    lines.clear();
                    lines.push(first);
                    while lines.len() < MAX_BATCH {
                        match rx.try_recv() {
                            Ok(line) => lines.push(line),
                            Err(_) => break,
                        }
                    }
                    out.clear();
                    self.process_batch(&lines, &mut out);
                    writer.write_all(out.as_bytes())?;
                    writer.flush()?;
                }
                Ok(())
            })();
            done.store(true, Ordering::Release);
            drop(rx);
            result
        })
    }
}

/// The reader half of [`Server::run_jsonl_until`]: assembles lines from
/// `reader` and sends them to the pump. Memory-bounded — once a line
/// passes the protocol cap its tail is discarded (the line is already
/// doomed to an `oversized` rejection, reported at the cap) — and
/// timeout-tolerant: `WouldBlock`/`TimedOut`/`Interrupted` re-check the
/// shutdown and done flags and retry, keeping the partial line.
fn pump_lines<R: BufRead>(
    mut reader: R,
    tx: &mpsc::SyncSender<String>,
    shutdown: &ShutdownFlag,
    done: &AtomicBool,
) {
    let mut line: Vec<u8> = Vec::new();
    loop {
        if shutdown.is_requested() || done.load(Ordering::Acquire) {
            return;
        }
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            // A hard reader error ends the stream like EOF.
            Err(_) => &[][..],
        };
        if chunk.is_empty() {
            // EOF: a final line without a trailing newline is still a
            // request.
            if !line.is_empty() {
                let _ = tx.send(String::from_utf8_lossy(&line).into_owned());
            }
            return;
        }
        let (take, complete) = match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (chunk.len(), false),
        };
        let body = if complete { take - 1 } else { take };
        let room = (MAX_LINE_BYTES + 1).saturating_sub(line.len());
        line.extend_from_slice(&chunk[..body.min(room)]);
        reader.consume(take);
        if complete {
            let mut text = String::from_utf8_lossy(&line).into_owned();
            if text.ends_with('\r') {
                text.pop();
            }
            line.clear();
            if tx.send(text).is_err() {
                return;
            }
        }
    }
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "worker panicked (non-string payload)"
    }
}

fn run_worker(ws: &mut WorkerState, jobs: &mut [Job], env: &WorkerEnv<'_>) {
    let mut body = String::new();
    for job in jobs {
        body.clear();
        // The containment boundary: a panic anywhere in context
        // construction or compilation converts to a structured response,
        // and the context this job touched is discarded as poisoned —
        // `thread::scope` would otherwise re-raise the panic on join and
        // take the daemon down.
        let outcome =
            panic::catch_unwind(AssertUnwindSafe(|| compile_one(ws, job, env, &mut body)));
        job.outcome = match outcome {
            Ok(outcome) => outcome,
            Err(panic_payload) => {
                ws.ctxs.remove(&(job.key.fp, job.key.spec, job.key.seeds));
                body.clear();
                protocol::render_panic_body(&job.key, panic_message(&*panic_payload), &mut body);
                JobOutcome::Panicked
            }
        };
        job.payload = Some(Arc::from(body.as_str()));
    }
}

/// Runs one compile job on the worker's context pool, rendering the
/// response body and reporting what happened. May panic (a compiler bug
/// or an injected fault); [`run_worker`] contains that.
fn compile_one(
    ws: &mut WorkerState,
    job: &mut Job,
    env: &WorkerEnv<'_>,
    body: &mut String,
) -> JobOutcome {
    #[cfg(feature = "fault-inject")]
    if env.fault.panics_at(job.stamp) {
        panic!("injected fault: worker panic at request {}", job.stamp);
    }
    let ctx_key = (job.key.fp, job.key.spec, job.key.seeds);
    let Some(machine) = env.machines.get(&job.key.spec) else {
        protocol::render_error_body(
            &ErrorKind::Internal {
                detail: "no machine for interned spec id",
            },
            body,
        );
        return JobOutcome::Internal;
    };
    if !ws.ctxs.contains_key(&ctx_key) {
        while ws.ctxs.len() >= env.max_ctxs {
            let Some(victim) = ws.ctxs.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| *k) else {
                break;
            };
            ws.ctxs.remove(&victim);
        }
        let Some(ddg) = job.ddg.take() else {
            protocol::render_error_body(
                &ErrorKind::Internal {
                    detail: "compile job lost its DDG",
                },
                body,
            );
            return JobOutcome::Internal;
        };
        let ctx = CompileContext::new(&ddg, machine).with_refine_seeds(job.key.seeds);
        ws.ctxs.insert(
            ctx_key,
            CtxEntry {
                ddg,
                ctx,
                stamp: job.stamp,
            },
        );
    }
    let Some(entry) = ws.ctxs.get_mut(&ctx_key) else {
        protocol::render_error_body(
            &ErrorKind::Internal {
                detail: "context pool lost a just-ensured entry",
            },
            body,
        );
        return JobOutcome::Internal;
    };
    entry.stamp = entry.stamp.max(job.stamp);
    let opts = CompileOptions {
        mode: job.mode,
        max_ii: None,
    };
    // Deadline checkpoints live in the driver's II attempt loop; arm the
    // context's token for this job only and disarm before the context is
    // reused. When no deadline is configured the token is never touched.
    let token = env.deadline_ms.map(|ms| {
        let token = entry.ctx.cancel_token();
        token.arm_deadline(Instant::now() + Duration::from_millis(ms));
        token
    });
    #[cfg(feature = "fault-inject")]
    if let Some(stall) = env.fault.stall_at(job.stamp) {
        thread::sleep(stall);
    }
    let result = compile_stats_ctx(&entry.ddg, machine, &opts, &entry.ctx);
    if let Some(token) = token {
        token.disarm_deadline();
    }
    match result {
        Ok(stats) => {
            protocol::render_ok_body(&stats, body);
            JobOutcome::Ok
        }
        Err(CompileError::Cancelled { .. }) => {
            protocol::render_deadline_body(env.deadline_ms.unwrap_or(0), body);
            JobOutcome::DeadlineExceeded
        }
        Err(e) => {
            protocol::render_compile_error_body(&e, body);
            JobOutcome::CompileErr
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{escape, request_line, TINY_LOOP};

    fn server(jobs: usize) -> Server {
        Server::new(ServerConfig {
            jobs,
            ..ServerConfig::default()
        })
    }

    /// A second loop structurally distinct from [`TINY_LOOP`].
    const OTHER_LOOP: &str =
        "loop other {\n  i: iadd i@1\n  a: load i\n  b: load i\n  m: fadd a, b\n  st: store m\n}";

    #[test]
    fn one_request_compiles_and_repeats_hit_the_cache() {
        let mut s = server(2);
        let line = request_line(1, TINY_LOOP, "4c1b2l64r", "replicate", 1);
        let mut cold = String::new();
        s.process_batch(std::slice::from_ref(&line), &mut cold);
        assert!(cold.starts_with("{\"id\":1,\"ok\":{\"mii\":"), "{cold}");
        assert_eq!(s.stats().misses, 1);

        let line2 = request_line(2, TINY_LOOP, "4c1b2l64r", "replicate", 1);
        let mut warm = String::new();
        s.process_batch(&[line2], &mut warm);
        assert_eq!(s.stats().hits, 1);
        assert_eq!(s.stats().compiles, 1, "hit must not recompile");
        // Same body, different id.
        assert_eq!(
            cold.trim_start_matches("{\"id\":1,"),
            warm.trim_start_matches("{\"id\":2,")
        );
    }

    #[test]
    fn duplicates_within_a_batch_coalesce() {
        let mut s = server(3);
        let a = request_line(1, TINY_LOOP, "4c1b2l64r", "replicate", 1);
        let b = request_line(2, TINY_LOOP, "4c1b2l64r", "replicate", 1);
        let mut out = String::new();
        s.process_batch(&[a, b], &mut out);
        assert_eq!(s.stats().compiles, 1);
        assert_eq!(s.stats().coalesced, 1);
        assert_eq!(out.lines().count(), 2);
    }

    #[test]
    fn alpha_renaming_and_whitespace_still_hit() {
        let mut s = server(1);
        let renamed = TINY_LOOP.replace("acc", "total").replace("ld", "v");
        let spaced = format!("  {}", TINY_LOOP.replace('\n', "\n  "));
        let mut out = String::new();
        s.process_batch(
            &[
                request_line(1, TINY_LOOP, "4c1b2l64r", "replicate", 1),
                request_line(2, &renamed, "4c1b2l64r", "replicate", 1),
                request_line(3, &spaced, "4c1b2l64r", "replicate", 1),
            ],
            &mut out,
        );
        assert_eq!(s.stats().compiles, 1);
        assert_eq!(s.stats().hits + s.stats().coalesced, 2);
    }

    #[test]
    fn errors_answer_without_killing_the_server() {
        let mut s = server(2);
        let mut out = String::new();
        let lines = [
            "not json".to_string(),
            format!(
                "{{\"id\": 1, \"loop\": \"{}\", \"machine\": \"bogus\"}}",
                escape(TINY_LOOP)
            ),
            request_line(2, "loop broken {", "4c1b2l64r", "replicate", 1),
            request_line(3, TINY_LOOP, "4c1b2l64r", "replicate", 1),
        ];
        s.process_batch(&lines, &mut out);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"id\":null,\"error\":{\"kind\":\"json\""));
        assert!(lines[1].starts_with("{\"id\":1,\"error\":{\"kind\":\"spec\""));
        assert!(lines[2].starts_with("{\"id\":2,\"error\":{\"kind\":\"parse\""));
        assert!(lines[3].starts_with("{\"id\":3,\"ok\":"));
        assert_eq!(s.stats().errors, 3);
    }

    #[test]
    fn stats_op_reports_accounting() {
        let mut s = server(1);
        let mut out = String::new();
        s.process_batch(
            &[
                request_line(1, TINY_LOOP, "4c1b2l64r", "replicate", 1),
                "{\"id\": 9, \"op\": \"stats\"}".to_string(),
            ],
            &mut out,
        );
        let stats_line = out.lines().nth(1).unwrap();
        assert!(stats_line.contains("\"requests\":2"), "{stats_line}");
        assert!(stats_line.contains("\"compiles\":1"), "{stats_line}");
        assert!(stats_line.contains("\"shed\":0"), "{stats_line}");
    }

    #[test]
    fn run_jsonl_round_trips_a_stream() {
        let mut s = server(2);
        let input = format!(
            "{}\n{}\n{}",
            request_line(1, TINY_LOOP, "4c1b2l64r", "baseline", 1),
            "",
            // Truncated final line, no newline: still answered.
            "{\"id\": 3, \"loo"
        );
        let mut out = Vec::new();
        s.run_jsonl(io::Cursor::new(input), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        assert!(lines[0].starts_with("{\"id\":1,\"ok\":"));
        assert!(lines[1].starts_with("{\"id\":3,\"error\":{\"kind\":\"json\""));
    }

    #[test]
    fn responses_are_identical_for_any_worker_count() {
        let reqs: Vec<String> = (0..6)
            .map(|i| {
                request_line(
                    i,
                    TINY_LOOP,
                    ["4c1b2l64r", "2c1b2l64r", "unified"][i as usize % 3],
                    ["baseline", "replicate"][i as usize % 2],
                    1,
                )
            })
            .collect();
        let mut one = String::new();
        server(1).process_batch(&reqs, &mut one);
        let mut four = String::new();
        server(4).process_batch(&reqs, &mut four);
        assert_eq!(one, four);
    }

    #[test]
    fn zero_deadline_is_exceeded_deterministically_and_never_cached() {
        let cfg = ServerConfig {
            jobs: 1,
            deadline_ms: Some(0),
            ..ServerConfig::default()
        };
        let shared = SharedState::new(&cfg);
        let mut strict = Server::with_shared(cfg, Arc::clone(&shared));
        let mut out = String::new();
        let line = request_line(1, TINY_LOOP, "4c1b2l64r", "replicate", 1);
        strict.process_batch(std::slice::from_ref(&line), &mut out);
        assert!(
            out.starts_with("{\"id\":1,\"error\":{\"kind\":\"deadline_exceeded\""),
            "{out}"
        );
        assert!(out.contains("\"deadline_ms\":0"), "{out}");
        assert_eq!(strict.stats().deadlines, 1);

        // Not cached: the same request on the same session compiles again
        // (another miss, another deadline error), never a poisoned hit.
        out.clear();
        strict.process_batch(std::slice::from_ref(&line), &mut out);
        assert!(out.contains("deadline_exceeded"), "{out}");
        assert_eq!(strict.stats().misses, 2, "fault payload must not be cached");
        assert_eq!(strict.stats().hits, 0);

        // A sibling session over the same shared cache, deadline
        // disarmed: compiles cleanly — the shared cache was not corrupted.
        let relaxed_cfg = ServerConfig {
            deadline_ms: None,
            ..cfg
        };
        let mut relaxed = Server::with_shared(relaxed_cfg, shared);
        out.clear();
        relaxed.process_batch(
            &[request_line(9, TINY_LOOP, "4c1b2l64r", "replicate", 1)],
            &mut out,
        );
        assert!(out.starts_with("{\"id\":9,\"ok\":{\"mii\":"), "{out}");
    }

    #[test]
    fn inflight_bound_sheds_with_retry_after_and_recovers() {
        let mut s = Server::new(ServerConfig {
            jobs: 1,
            max_inflight: 1,
            ..ServerConfig::default()
        });
        let mut out = String::new();
        s.process_batch(
            &[
                request_line(1, TINY_LOOP, "4c1b2l64r", "replicate", 1),
                request_line(2, OTHER_LOOP, "4c1b2l64r", "replicate", 1),
            ],
            &mut out,
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"id\":1,\"ok\":"), "{out}");
        assert!(
            lines[1].starts_with("{\"id\":2,\"error\":{\"kind\":\"overloaded\""),
            "{out}"
        );
        // One compile was in flight when request 2 was shed, so the hint
        // is exactly base + 1×per-inflight: the depth-scaling contract.
        assert!(
            lines[1].contains(&format!(
                "\"retry_after_ms\":{}",
                RETRY_AFTER_BASE_MS + RETRY_AFTER_PER_INFLIGHT_MS
            )),
            "{out}"
        );
        assert_eq!(s.stats().shed, 1);
        assert_eq!(s.stats().misses, 1, "a shed line is not a miss");

        // The batch released its slot: the shed request now compiles.
        out.clear();
        s.process_batch(
            &[request_line(3, OTHER_LOOP, "4c1b2l64r", "replicate", 1)],
            &mut out,
        );
        assert!(out.starts_with("{\"id\":3,\"ok\":"), "{out}");
        assert_eq!(s.stats().shed, 1, "no further shedding");
    }

    #[test]
    fn sessions_share_the_cache_and_the_spec_interner() {
        let cfg = ServerConfig::default();
        let shared = SharedState::new(&cfg);
        let mut a = Server::with_shared(cfg, Arc::clone(&shared));
        let mut b = Server::with_shared(cfg, shared);

        let mut cold = String::new();
        a.process_batch(
            &[request_line(1, TINY_LOOP, "4c1b2l64r", "replicate", 1)],
            &mut cold,
        );
        let mut warm = String::new();
        b.process_batch(
            &[request_line(2, TINY_LOOP, "4c1b2l64r", "replicate", 1)],
            &mut warm,
        );

        assert!(cold.starts_with("{\"id\":1,\"ok\":"), "{cold}");
        assert_eq!(
            cold.trim_start_matches("{\"id\":1,"),
            warm.trim_start_matches("{\"id\":2,"),
            "session B must serve session A's cached bytes"
        );
        let s = a.stats();
        assert_eq!((s.misses, s.hits, s.compiles), (1, 1, 1));
    }

    #[test]
    fn requested_shutdown_stops_the_pump_before_reading() {
        let mut s = server(1);
        let shutdown = ShutdownFlag::new();
        shutdown.request();
        let input = request_line(1, TINY_LOOP, "4c1b2l64r", "replicate", 1);
        let mut out = Vec::new();
        s.run_jsonl_until(io::Cursor::new(input), &mut out, &shutdown)
            .unwrap();
        assert!(out.is_empty(), "pre-requested shutdown must read nothing");
        assert_eq!(s.stats().requests, 0);
    }

    #[test]
    fn oversized_lines_are_rejected_with_bounded_memory() {
        let mut s = server(1);
        // 2 MiB of garbage on one line, then a valid request: the reader
        // truncates at the cap, the response is a structured oversized
        // error, and the following line is served normally.
        let mut input = "x".repeat(2 * MAX_LINE_BYTES);
        input.push('\n');
        input.push_str(&request_line(7, TINY_LOOP, "4c1b2l64r", "baseline", 1));
        let mut out = Vec::new();
        s.run_jsonl(io::Cursor::new(input), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        assert!(
            lines[0].starts_with("{\"id\":null,\"error\":{\"kind\":\"oversized\""),
            "{out}"
        );
        assert!(lines[1].starts_with("{\"id\":7,\"ok\":"), "{out}");
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_panic_is_contained_and_the_context_rebuilt() {
        let mut s = server(2);
        s.set_fault_plan(FaultPlan {
            panic_at: vec![0],
            ..FaultPlan::default()
        });
        let line = request_line(1, TINY_LOOP, "4c1b2l64r", "replicate", 1);
        let mut out = String::new();
        s.process_batch(std::slice::from_ref(&line), &mut out);
        assert!(
            out.starts_with("{\"id\":1,\"error\":{\"kind\":\"compile_panic\""),
            "{out}"
        );
        assert!(out.contains("injected fault"), "{out}");
        assert_eq!(s.stats().panics, 1);

        // Stamp 1 is not in the plan: the same request recompiles on a
        // rebuilt context and matches a fresh server's answer.
        out.clear();
        let line2 = request_line(2, TINY_LOOP, "4c1b2l64r", "replicate", 1);
        s.process_batch(std::slice::from_ref(&line2), &mut out);
        let mut oracle = String::new();
        server(1).process_batch(std::slice::from_ref(&line2), &mut oracle);
        assert_eq!(out, oracle, "post-panic compile diverged");
        assert_eq!(s.stats().hits, 0, "panic payload must not be cached");
    }
}
