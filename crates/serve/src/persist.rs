//! Crash-safe persistence for the result cache: an append-only journal
//! plus periodic compacted snapshots, in one versioned, checksummed
//! on-disk format.
//!
//! A cache entry is durable twice over:
//!
//! * the **journal** (`journal.bin`) gets one framed record per cache
//!   insert, appended without fsync — a torn final record after a crash
//!   is expected and recoverable, so the hot path never pays a sync;
//! * a **snapshot** (`snapshot.bin`) is a full compacted dump, written
//!   every `snapshot_every` journal records and at graceful shutdown:
//!   write to `snapshot.bin.tmp`, fsync, atomically rename over the old
//!   snapshot, then truncate the journal — an interrupted snapshot
//!   leaves the previous snapshot + full journal intact.
//!
//! A single rewritten file could not give both properties at once: it
//! would either fsync per insert (journal without compaction) or risk
//! the entire cache on every rewrite (snapshot without a journal).
//!
//! Every record frame is length-prefixed and FNV-1a-checksummed, and
//! every file starts with a header carrying a magic, a format version
//! and a hash of the cache-key schema. Loading tolerates every
//! corruption mode without panicking and without ever surfacing a
//! record whose checksum does not verify:
//!
//! | damage                                | recovery                      |
//! |---------------------------------------|-------------------------------|
//! | frame extends past EOF (torn tail)    | truncate, keep what precedes  |
//! | checksum/shape mismatch mid-file      | quarantine to `*.corrupt`,    |
//! |                                       | skip, keep loading            |
//! | implausible record length             | quarantine rest of file, stop |
//! | bad magic / version / schema hash     | set file aside (`*.refused`), |
//! |                                       | start cold, structured warning|
//! | stale `*.tmp` from a killed snapshot  | delete                        |
//!
//! [`verify_dir`] runs the same scanner read-only (no truncation, no
//! quarantine) and reports every issue with its exact byte offset —
//! that is `cvliw cache verify`.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use cvliw_replicate::fnv1a_64;

/// Current on-disk format version (bumped on any frame/header change).
pub const FORMAT_VERSION: u16 = 1;

/// Snapshot file name inside the cache directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

/// Journal file name inside the cache directory.
pub const JOURNAL_FILE: &str = "journal.bin";

/// Default journal records between compacted snapshots.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 1024;

/// Upper bound on one record body. A length field beyond this is
/// corruption, not a record — skipping by it would be resyncing on
/// garbage, so the scanner quarantines the rest of the file instead.
pub const MAX_RECORD_BYTES: usize = 16 << 20;

const MAGIC: [u8; 8] = *b"CVLWCACH";

/// File-header size: magic (8) + version (2) + kind (1) + reserved (1) +
/// schema hash (8). Public so tests can aim corruption past the header.
pub const HEADER_LEN: usize = 8 + 2 + 1 + 1 + 8;
const FRAME_HEADER_LEN: usize = 4 + 8;

/// The cache-key/record schema this build writes and reads. Hashed into
/// every file header; a build whose schema differs refuses the file
/// rather than misinterpreting its bytes.
const SCHEMA: &str = "fp:u64le,mode:u8,seeds:u32le,stamp:u64le,spec:len32+utf8,payload:len32+utf8";

/// The schema hash stamped into (and required of) every file header.
#[must_use]
pub fn schema_hash() -> u64 {
    fnv1a_64(SCHEMA.as_bytes())
}

/// Which of the two persisted files a header claims to be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// A compacted full dump.
    Snapshot,
    /// The append-only insert log.
    Journal,
}

impl FileKind {
    fn tag(self) -> u8 {
        match self {
            FileKind::Snapshot => 1,
            FileKind::Journal => 2,
        }
    }

    fn file_name(self) -> &'static str {
        match self {
            FileKind::Snapshot => SNAPSHOT_FILE,
            FileKind::Journal => JOURNAL_FILE,
        }
    }
}

/// One persisted cache entry, exactly as framed on disk. The machine
/// spec travels as its escaped *text*: interned ids are session-local
/// and would alias different specs across restarts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PersistRecord {
    /// Structural loop fingerprint ([`crate::cache::CacheKey::fp`]).
    pub fp: u64,
    /// Mode discriminant.
    pub mode: u8,
    /// Refinement-seed count.
    pub seeds: u32,
    /// LRU stamp (global request seq) — persisted so the restored
    /// cache evicts exactly as the never-restarted one would.
    pub stamp: u64,
    /// Escaped machine-spec text (re-interned on load).
    pub spec: Box<str>,
    /// Rendered response body.
    pub payload: Box<str>,
}

impl PersistRecord {
    /// A borrowing view for encoding without copying the payload.
    #[must_use]
    pub fn as_ref(&self) -> RecordRef<'_> {
        RecordRef {
            fp: self.fp,
            mode: self.mode,
            seeds: self.seeds,
            stamp: self.stamp,
            spec: &self.spec,
            payload: &self.payload,
        }
    }
}

/// A borrowed record, used to journal an insert without first copying
/// the payload into an owned [`PersistRecord`].
#[derive(Clone, Copy, Debug)]
pub struct RecordRef<'a> {
    /// Structural loop fingerprint.
    pub fp: u64,
    /// Mode discriminant.
    pub mode: u8,
    /// Refinement-seed count.
    pub seeds: u32,
    /// LRU stamp.
    pub stamp: u64,
    /// Escaped machine-spec text.
    pub spec: &'a str,
    /// Rendered response body.
    pub payload: &'a str,
}

fn header_bytes(kind: FileKind) -> [u8; HEADER_LEN] {
    let mut out = [0u8; HEADER_LEN];
    out[..8].copy_from_slice(&MAGIC);
    out[8..10].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    out[10] = kind.tag();
    out[11] = 0; // reserved
    out[12..].copy_from_slice(&schema_hash().to_le_bytes());
    out
}

/// Appends one framed record (`len u32 | fnv1a_64 u64 | body`) to `out`.
pub fn encode_frame(rec: &RecordRef<'_>, out: &mut Vec<u8>) {
    let body_len = 8 + 1 + 4 + 8 + 4 + rec.spec.len() + 4 + rec.payload.len();
    out.reserve(FRAME_HEADER_LEN + body_len);
    let frame_start = out.len();
    out.extend_from_slice(&[0u8; FRAME_HEADER_LEN]);
    let body_start = out.len();
    out.extend_from_slice(&rec.fp.to_le_bytes());
    out.push(rec.mode);
    out.extend_from_slice(&rec.seeds.to_le_bytes());
    out.extend_from_slice(&rec.stamp.to_le_bytes());
    out.extend_from_slice(&(rec.spec.len() as u32).to_le_bytes());
    out.extend_from_slice(rec.spec.as_bytes());
    out.extend_from_slice(&(rec.payload.len() as u32).to_le_bytes());
    out.extend_from_slice(rec.payload.as_bytes());
    let check = fnv1a_64(&out[body_start..]);
    out[frame_start..frame_start + 4].copy_from_slice(&(body_len as u32).to_le_bytes());
    out[frame_start + 4..frame_start + 12].copy_from_slice(&check.to_le_bytes());
}

fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Option<&'a [u8]> {
    let slice = bytes.get(*pos..*pos + n)?;
    *pos += n;
    Some(slice)
}

fn take_u32(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    take(bytes, pos, 4).map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn take_u64(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    take(bytes, pos, 8).and_then(|b| b.try_into().ok().map(u64::from_le_bytes))
}

/// Decodes a checksum-verified body. A failure here despite a good
/// checksum means a writer bug or schema drift — treated as corruption.
fn decode_body(body: &[u8]) -> Result<PersistRecord, &'static str> {
    let mut p = 0usize;
    let fp = take_u64(body, &mut p).ok_or("body too short for fp")?;
    let mode = *take(body, &mut p, 1)
        .and_then(<[u8]>::first)
        .ok_or("body too short for mode")?;
    let seeds = take_u32(body, &mut p).ok_or("body too short for seeds")?;
    let stamp = take_u64(body, &mut p).ok_or("body too short for stamp")?;
    let spec_len = take_u32(body, &mut p).ok_or("body too short for spec length")? as usize;
    let spec = take(body, &mut p, spec_len).ok_or("spec length exceeds body")?;
    let spec = std::str::from_utf8(spec).map_err(|_| "spec is not UTF-8")?;
    let payload_len = take_u32(body, &mut p).ok_or("body too short for payload length")? as usize;
    let payload = take(body, &mut p, payload_len).ok_or("payload length exceeds body")?;
    let payload = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8")?;
    if p != body.len() {
        return Err("trailing bytes after payload");
    }
    Ok(PersistRecord {
        fp,
        mode,
        seeds,
        stamp,
        spec: Box::from(spec),
        payload: Box::from(payload),
    })
}

/// What a file header turned out to be.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum HeaderStatus {
    /// Header verified; records follow.
    Ok,
    /// The file does not exist or is empty — a cold start, not damage.
    #[default]
    Missing,
    /// Magic, version or schema hash mismatched: the whole file is
    /// refused (the reason is human-readable).
    Refused(String),
}

/// One precisely located problem found while scanning a file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanIssue {
    /// Zero-based index of the damaged record.
    pub record: usize,
    /// Byte offset of the damaged frame's start within the file.
    pub offset: u64,
    /// What was wrong.
    pub detail: String,
}

/// A frame the scanner rejected, with enough context to quarantine it.
#[derive(Clone, Debug)]
pub struct CorruptFrame {
    /// Byte offset of the frame start.
    pub offset: u64,
    /// The raw frame bytes (as far as the length field claimed).
    pub bytes: Vec<u8>,
    /// Why it was rejected.
    pub detail: String,
}

/// Everything a read-only scan of one persisted file found.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Header verdict.
    pub header: HeaderStatus,
    /// Records whose checksum and shape verified, in file order.
    pub records: Vec<PersistRecord>,
    /// Frames rejected mid-file (checksum or shape).
    pub corrupt: Vec<CorruptFrame>,
    /// Offset where a torn final record starts, if the file ends
    /// mid-frame.
    pub torn_at: Option<u64>,
    /// Human-readable issues (corrupt frames and the torn tail),
    /// offsets included.
    pub issues: Vec<ScanIssue>,
}

fn check_header(data: &[u8], kind: FileKind) -> HeaderStatus {
    if data.is_empty() {
        return HeaderStatus::Missing;
    }
    if data.len() < HEADER_LEN {
        return HeaderStatus::Refused(format!(
            "truncated header ({} of {HEADER_LEN} bytes)",
            data.len()
        ));
    }
    if data[..8] != MAGIC {
        return HeaderStatus::Refused("bad magic (not a cvliw cache file)".to_string());
    }
    let version = u16::from_le_bytes([data[8], data[9]]);
    if version != FORMAT_VERSION {
        return HeaderStatus::Refused(format!(
            "format version {version} (this build reads {FORMAT_VERSION})"
        ));
    }
    if data[10] != kind.tag() {
        return HeaderStatus::Refused(format!(
            "wrong file kind tag {} (expected {})",
            data[10],
            kind.tag()
        ));
    }
    let mut hash = [0u8; 8];
    hash.copy_from_slice(&data[12..20]);
    let hash = u64::from_le_bytes(hash);
    if hash != schema_hash() {
        return HeaderStatus::Refused(format!(
            "cache-key schema hash {hash:#018x} (this build writes {:#018x})",
            schema_hash()
        ));
    }
    HeaderStatus::Ok
}

/// Scans one file's bytes: header, then frame after frame, classifying
/// every kind of damage without side effects. Never panics.
#[must_use]
pub fn scan_bytes(data: &[u8], kind: FileKind) -> FileScan {
    let mut scan = FileScan {
        header: check_header(data, kind),
        ..FileScan::default()
    };
    if scan.header != HeaderStatus::Ok {
        return scan;
    }
    let mut pos = HEADER_LEN;
    let mut record = 0usize;
    while pos < data.len() {
        let frame_start = pos as u64;
        let remaining = data.len() - pos;
        if remaining < FRAME_HEADER_LEN {
            scan.torn_at = Some(frame_start);
            scan.issues.push(ScanIssue {
                record,
                offset: frame_start,
                detail: format!("torn tail: {remaining} bytes, not even a frame header"),
            });
            break;
        }
        let mut p = pos;
        // The two header reads cannot fail (remaining >= FRAME_HEADER_LEN),
        // but recovery code stays structurally panic-free anyway.
        let Some(body_len) = take_u32(data, &mut p) else {
            break;
        };
        let Some(check) = take_u64(data, &mut p) else {
            break;
        };
        let body_len = body_len as usize;
        if body_len > MAX_RECORD_BYTES {
            // The length field itself is garbage: there is no trustworthy
            // way to find the next frame boundary. Everything from here
            // is quarantined as one corrupt region.
            let detail = format!(
                "implausible record length {body_len} (cap {MAX_RECORD_BYTES}); \
                 rest of file unrecoverable"
            );
            scan.corrupt.push(CorruptFrame {
                offset: frame_start,
                bytes: data[pos..].to_vec(),
                detail: detail.clone(),
            });
            scan.issues.push(ScanIssue {
                record,
                offset: frame_start,
                detail,
            });
            break;
        }
        if p + body_len > data.len() {
            scan.torn_at = Some(frame_start);
            scan.issues.push(ScanIssue {
                record,
                offset: frame_start,
                detail: format!(
                    "torn tail: frame claims {body_len} body bytes, file has {}",
                    data.len() - p
                ),
            });
            break;
        }
        let body = &data[p..p + body_len];
        let frame_end = p + body_len;
        if fnv1a_64(body) != check {
            let detail = "checksum mismatch (bit flip or partial overwrite)".to_string();
            scan.corrupt.push(CorruptFrame {
                offset: frame_start,
                bytes: data[pos..frame_end].to_vec(),
                detail: detail.clone(),
            });
            scan.issues.push(ScanIssue {
                record,
                offset: frame_start,
                detail,
            });
        } else {
            match decode_body(body) {
                Ok(rec) => scan.records.push(rec),
                Err(why) => {
                    let detail = format!("malformed body despite good checksum: {why}");
                    scan.corrupt.push(CorruptFrame {
                        offset: frame_start,
                        bytes: data[pos..frame_end].to_vec(),
                        detail: detail.clone(),
                    });
                    scan.issues.push(ScanIssue {
                        record,
                        offset: frame_start,
                        detail,
                    });
                }
            }
        }
        pos = frame_end;
        record += 1;
    }
    scan
}

/// Reads and scans one persisted file. A missing file is a clean
/// [`HeaderStatus::Missing`] scan, not an error.
///
/// # Errors
///
/// Propagates I/O errors other than "not found".
pub fn scan_file(path: &Path, kind: FileKind) -> io::Result<FileScan> {
    match fs::read(path) {
        Ok(data) => Ok(scan_bytes(&data, kind)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(FileScan::default()),
        Err(e) => Err(e),
    }
}

/// What startup recovery loaded and what it had to work around.
/// Rendered into the daemon's startup log line.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Entries restored into the cache.
    pub loaded: usize,
    /// Good records read from the snapshot.
    pub snapshot_records: usize,
    /// Good records read from the journal.
    pub journal_records: usize,
    /// Frames quarantined to `*.corrupt`.
    pub corrupt_records: usize,
    /// Whether a torn final record was dropped (either file).
    pub torn_tail: bool,
    /// Whole-file refusals (wrong version / schema / magic).
    pub refused: Vec<String>,
    /// Everything else worth a warning line (stale tmp files removed,
    /// unloadable records skipped, …).
    pub warnings: Vec<String>,
}

impl LoadReport {
    /// One-line human summary for the daemon's startup log.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} entries restored ({} snapshot + {} journal records), \
             {} quarantined, torn tail: {}, {} refused file(s)",
            self.loaded,
            self.snapshot_records,
            self.journal_records,
            self.corrupt_records,
            if self.torn_tail { "yes" } else { "no" },
            self.refused.len(),
        )
    }
}

/// Removes a not-yet-renamed tmp file on drop unless disarmed — the
/// snapshot-file sibling of the daemon's socket guard, so cooperative
/// shutdown mid-snapshot never leaves `*.tmp` litter.
#[derive(Debug)]
pub struct TmpGuard {
    path: PathBuf,
    armed: bool,
}

impl TmpGuard {
    /// Guards `path` until [`TmpGuard::disarm`].
    #[must_use]
    pub fn new(path: PathBuf) -> Self {
        TmpGuard { path, armed: true }
    }

    /// The file reached its final name (or must be left for forensics):
    /// stop guarding it.
    pub fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for TmpGuard {
    fn drop(&mut self) {
        if self.armed {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// Injected disk failures (test builds only): the writer dies — as a
/// killed process would, mid-write, no cleanup — once it has written
/// this many bytes to the named file.
#[cfg(feature = "fault-inject")]
#[derive(Clone, Copy, Debug, Default)]
pub struct DiskFaults {
    /// Journal bytes (frames only, header excluded) before death.
    pub journal_kill_after: Option<u64>,
    /// Snapshot bytes before death. The tmp file is deliberately left
    /// behind, exactly as `kill -9` would leave it.
    pub snapshot_kill_after: Option<u64>,
}

/// Owns the journal file and writes snapshots. One per daemon, behind
/// the shared state's lock; dies quietly (stops persisting, keeps the
/// reason) on I/O errors instead of taking the daemon with it.
#[derive(Debug)]
pub struct Persister {
    dir: PathBuf,
    journal: Option<File>,
    snapshot_every: u64,
    journal_records: u64,
    dead: Option<String>,
    frame_buf: Vec<u8>,
    #[cfg(feature = "fault-inject")]
    faults: DiskFaults,
}

fn tmp_path(dir: &Path, kind: FileKind) -> PathBuf {
    dir.join(format!("{}.tmp", kind.file_name()))
}

fn quarantine(dir: &Path, kind: FileKind, frames: &[CorruptFrame]) -> io::Result<PathBuf> {
    let path = dir.join(format!("{}.corrupt", kind.file_name()));
    let mut f = File::create(&path)?;
    for frame in frames {
        f.write_all(&frame.bytes)?;
    }
    Ok(path)
}

/// Sets a refused file aside as `<name>.refused` so the next start is
/// clean and the bytes stay available for inspection.
fn set_aside_refused(dir: &Path, kind: FileKind, report: &mut LoadReport, why: &str) {
    let from = dir.join(kind.file_name());
    let to = dir.join(format!("{}.refused", kind.file_name()));
    let moved = fs::rename(&from, &to).is_ok();
    report.refused.push(format!(
        "{}: {why}{}",
        kind.file_name(),
        if moved {
            " (set aside as *.refused, starting cold)"
        } else {
            " (could not set aside; starting cold)"
        }
    ));
}

impl Persister {
    /// Opens (creating if needed) a cache directory: recovers both
    /// files, applies every repair the corruption table describes, and
    /// returns the persister ready to append, the recovered records
    /// (snapshot first, then journal; not yet stamp-sorted) and the
    /// load report. Recovery itself never fails — only directory
    /// creation and journal (re)opening can.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and journal-open failures.
    pub fn open(
        dir: &Path,
        snapshot_every: u64,
    ) -> io::Result<(Persister, Vec<PersistRecord>, LoadReport)> {
        fs::create_dir_all(dir)?;
        let mut report = LoadReport::default();

        // A `*.tmp` is a snapshot (or journal rewrite) that never reached
        // its rename: worthless by construction, deleted on sight.
        for kind in [FileKind::Snapshot, FileKind::Journal] {
            let tmp = tmp_path(dir, kind);
            if tmp.exists() {
                let _ = fs::remove_file(&tmp);
                report.warnings.push(format!(
                    "removed stale {}.tmp from an interrupted write",
                    kind.file_name()
                ));
            }
        }

        let mut records = Vec::new();

        // Snapshot: read-only recovery. Corrupt frames are quarantined,
        // but the file itself is left as-is — the next snapshot rewrites
        // it wholesale anyway.
        let snap = scan_file(&dir.join(SNAPSHOT_FILE), FileKind::Snapshot)?;
        match &snap.header {
            HeaderStatus::Ok => {
                report.snapshot_records = snap.records.len();
                report.torn_tail |= snap.torn_at.is_some();
                if !snap.corrupt.is_empty() {
                    report.corrupt_records += snap.corrupt.len();
                    if let Ok(q) = quarantine(dir, FileKind::Snapshot, &snap.corrupt) {
                        report.warnings.push(format!(
                            "{} corrupt snapshot frame(s) quarantined to {}",
                            snap.corrupt.len(),
                            q.display()
                        ));
                    }
                }
                records.extend(snap.records);
            }
            HeaderStatus::Missing => {}
            HeaderStatus::Refused(why) => {
                set_aside_refused(dir, FileKind::Snapshot, &mut report, why);
            }
        }

        // Journal: recovery with repair. A torn tail is truncated away; a
        // journal with mid-file corruption is rewritten (good records
        // only) so it never degrades further across restarts.
        let journal_path = dir.join(JOURNAL_FILE);
        let jour = scan_file(&journal_path, FileKind::Journal)?;
        let mut journal_good = 0u64;
        match &jour.header {
            HeaderStatus::Ok => {
                report.journal_records = jour.records.len();
                report.torn_tail |= jour.torn_at.is_some();
                if !jour.corrupt.is_empty() {
                    report.corrupt_records += jour.corrupt.len();
                    if let Ok(q) = quarantine(dir, FileKind::Journal, &jour.corrupt) {
                        report.warnings.push(format!(
                            "{} corrupt journal frame(s) quarantined to {}",
                            jour.corrupt.len(),
                            q.display()
                        ));
                    }
                    rewrite_journal(dir, &jour.records)?;
                } else if let Some(at) = jour.torn_at {
                    let f = OpenOptions::new().write(true).open(&journal_path)?;
                    f.set_len(at)?;
                    report.warnings.push(format!(
                        "journal truncated to {at} bytes (torn final record)"
                    ));
                }
                journal_good = jour.records.len() as u64;
                records.extend(jour.records);
            }
            HeaderStatus::Missing => {}
            HeaderStatus::Refused(why) => {
                set_aside_refused(dir, FileKind::Journal, &mut report, why);
            }
        }

        // Open (or create) the journal for appending; a fresh or
        // just-refused file gets its header now.
        let mut journal = OpenOptions::new()
            .append(true)
            .create(true)
            .open(&journal_path)?;
        if journal.metadata()?.len() == 0 {
            journal.write_all(&header_bytes(FileKind::Journal))?;
        }

        Ok((
            Persister {
                dir: dir.to_path_buf(),
                journal: Some(journal),
                snapshot_every: snapshot_every.max(1),
                journal_records: journal_good,
                dead: None,
                frame_buf: Vec::new(),
                #[cfg(feature = "fault-inject")]
                faults: DiskFaults::default(),
            },
            records,
            report,
        ))
    }

    /// The cache directory this persister writes into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Arms injected disk deaths (test builds only).
    #[cfg(feature = "fault-inject")]
    pub fn set_disk_faults(&mut self, faults: DiskFaults) {
        self.faults = faults;
    }

    /// Why persistence stopped, if it did. A dead persister keeps the
    /// daemon serving — it just stops writing.
    #[must_use]
    pub fn dead_reason(&self) -> Option<&str> {
        self.dead.as_deref()
    }

    /// Journal records appended since the last snapshot (or open).
    #[must_use]
    pub fn journal_backlog(&self) -> u64 {
        self.journal_records
    }

    /// Appends one insert to the journal (no fsync — a torn tail is
    /// recoverable by design). Returns whether the snapshot cadence is
    /// due; I/O failure kills the persister quietly instead of the
    /// daemon.
    pub fn append(&mut self, rec: &RecordRef<'_>) -> bool {
        if self.dead.is_some() {
            return false;
        }
        let mut frame = std::mem::take(&mut self.frame_buf);
        frame.clear();
        encode_frame(rec, &mut frame);
        let outcome = self.write_journal_bytes(&frame);
        self.frame_buf = frame;
        match outcome {
            Ok(()) => {
                if self.dead.is_some() {
                    // An injected death wrote a prefix: the journal now has
                    // a torn tail, exactly like a real kill.
                    return false;
                }
                self.journal_records += 1;
                self.journal_records >= self.snapshot_every
            }
            Err(e) => {
                self.dead = Some(format!("journal append failed: {e}"));
                false
            }
        }
    }

    #[cfg(not(feature = "fault-inject"))]
    fn write_journal_bytes(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.journal.as_mut() {
            Some(f) => f.write_all(buf),
            None => Err(io::Error::other("journal handle missing")),
        }
    }

    #[cfg(feature = "fault-inject")]
    fn write_journal_bytes(&mut self, buf: &[u8]) -> io::Result<()> {
        let Some(f) = self.journal.as_mut() else {
            return Err(io::Error::other("journal handle missing"));
        };
        match &mut self.faults.journal_kill_after {
            None => f.write_all(buf),
            Some(budget) => {
                let n = (*budget).min(buf.len() as u64) as usize;
                f.write_all(&buf[..n])?;
                *budget -= n as u64;
                if n < buf.len() {
                    self.dead = Some("injected disk death during journal append".to_string());
                }
                Ok(())
            }
        }
    }

    /// Writes a compacted snapshot: tmp file (guarded), fsync, atomic
    /// rename, then journal truncation — in that order, so a crash at
    /// any point leaves a loadable state. Returns the record count.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (the persister is dead
    /// afterwards; the daemon keeps serving from memory).
    pub fn write_snapshot(&mut self, records: &[PersistRecord]) -> io::Result<usize> {
        if let Some(reason) = &self.dead {
            return Err(io::Error::other(reason.clone()));
        }
        let tmp = tmp_path(&self.dir, FileKind::Snapshot);
        let mut guard = TmpGuard::new(tmp.clone());
        let written = self.write_snapshot_tmp(&tmp, records);
        match written {
            Ok(true) => {}
            Ok(false) => {
                // Injected death mid-snapshot: leave the tmp behind (a
                // real kill would), do NOT rename, do NOT touch the
                // journal — startup recovery must cope with all of it.
                guard.disarm();
                let reason = "injected disk death during snapshot".to_string();
                self.dead = Some(reason.clone());
                return Err(io::Error::other(reason));
            }
            Err(e) => {
                // The guard removes the tmp on this path.
                self.dead = Some(format!("snapshot write failed: {e}"));
                return Err(e);
            }
        }
        fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE)).map_err(|e| {
            self.dead = Some(format!("snapshot rename failed: {e}"));
            e
        })?;
        guard.disarm();
        // Best-effort directory sync makes the rename durable; a failure
        // here costs durability of this one compaction, not correctness.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.reset_journal().map_err(|e| {
            self.dead = Some(format!("journal truncation failed: {e}"));
            e
        })?;
        Ok(records.len())
    }

    /// Writes header + records to the tmp file and fsyncs. `Ok(false)`
    /// means an injected death consumed the write budget.
    fn write_snapshot_tmp(&mut self, tmp: &Path, records: &[PersistRecord]) -> io::Result<bool> {
        let mut f = File::create(tmp)?;
        #[cfg(feature = "fault-inject")]
        let mut budget = self.faults.snapshot_kill_after;
        #[cfg(feature = "fault-inject")]
        let mut write = |f: &mut File, buf: &[u8]| -> io::Result<bool> {
            match &mut budget {
                None => f.write_all(buf).map(|()| true),
                Some(b) => {
                    let n = (*b).min(buf.len() as u64) as usize;
                    f.write_all(&buf[..n])?;
                    *b -= n as u64;
                    Ok(n == buf.len())
                }
            }
        };
        #[cfg(not(feature = "fault-inject"))]
        let write =
            |f: &mut File, buf: &[u8]| -> io::Result<bool> { f.write_all(buf).map(|()| true) };
        if !write(&mut f, &header_bytes(FileKind::Snapshot))? {
            return Ok(false);
        }
        let mut frame = std::mem::take(&mut self.frame_buf);
        for rec in records {
            frame.clear();
            encode_frame(&rec.as_ref(), &mut frame);
            if !write(&mut f, &frame)? {
                self.frame_buf = frame;
                return Ok(false);
            }
        }
        self.frame_buf = frame;
        f.sync_all()?;
        Ok(true)
    }

    /// Truncates the journal back to a bare header (the snapshot now
    /// covers everything it held).
    fn reset_journal(&mut self) -> io::Result<()> {
        self.journal = None;
        let path = self.dir.join(JOURNAL_FILE);
        let mut f = File::create(&path)?;
        f.write_all(&header_bytes(FileKind::Journal))?;
        f.sync_all()?;
        self.journal = Some(f);
        self.journal_records = 0;
        Ok(())
    }
}

/// Atomically replaces the journal with `records` (used when mid-file
/// corruption was quarantined: the survivors are rewritten so the
/// damage never compounds).
fn rewrite_journal(dir: &Path, records: &[PersistRecord]) -> io::Result<()> {
    let tmp = tmp_path(dir, FileKind::Journal);
    let mut guard = TmpGuard::new(tmp.clone());
    let mut f = File::create(&tmp)?;
    f.write_all(&header_bytes(FileKind::Journal))?;
    let mut frame = Vec::new();
    for rec in records {
        frame.clear();
        encode_frame(&rec.as_ref(), &mut frame);
        f.write_all(&frame)?;
    }
    f.sync_all()?;
    fs::rename(&tmp, dir.join(JOURNAL_FILE))?;
    guard.disarm();
    Ok(())
}

/// One file's read-only verification verdict.
#[derive(Clone, Debug)]
pub struct FileVerify {
    /// File name within the directory.
    pub name: &'static str,
    /// Whether the file exists (an absent file is clean: cold start).
    pub present: bool,
    /// Whole-file refusal reason, if the header mismatched.
    pub refused: Option<String>,
    /// Records whose checksum and shape verified.
    pub records: usize,
    /// Damaged frames, each with its byte offset.
    pub issues: Vec<ScanIssue>,
}

/// The result of `cvliw cache verify <dir>`: a pure read of both files.
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Per-file verdicts (snapshot, then journal).
    pub files: Vec<FileVerify>,
}

impl VerifyReport {
    /// Whether every present file verified end to end.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.files
            .iter()
            .all(|f| f.refused.is_none() && f.issues.is_empty())
    }

    /// Total verified records across both files.
    #[must_use]
    pub fn records(&self) -> usize {
        self.files.iter().map(|f| f.records).sum()
    }

    /// Total issues (refusals count as one each).
    #[must_use]
    pub fn issue_count(&self) -> usize {
        self.files
            .iter()
            .map(|f| f.issues.len() + usize::from(f.refused.is_some()))
            .sum()
    }
}

/// Verifies a cache directory without modifying anything: no
/// truncation, no quarantine, no tmp cleanup — just a precise report.
///
/// # Errors
///
/// Propagates I/O errors other than missing files.
pub fn verify_dir(dir: &Path) -> io::Result<VerifyReport> {
    let mut report = VerifyReport::default();
    for kind in [FileKind::Snapshot, FileKind::Journal] {
        let path = dir.join(kind.file_name());
        let scan = scan_file(&path, kind)?;
        let (present, refused) = match &scan.header {
            HeaderStatus::Ok => (true, None),
            HeaderStatus::Missing => (path.exists(), None),
            HeaderStatus::Refused(why) => (true, Some(why.clone())),
        };
        report.files.push(FileVerify {
            name: kind.file_name(),
            present,
            refused,
            records: scan.records.len(),
            issues: scan.issues,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(stamp: u64, payload: &str) -> PersistRecord {
        PersistRecord {
            fp: 0x1234_5678_9abc_def0 ^ stamp,
            mode: 2,
            seeds: 1,
            stamp,
            spec: Box::from("4c1b2l64r"),
            payload: Box::from(payload),
        }
    }

    fn file_bytes(kind: FileKind, records: &[PersistRecord]) -> Vec<u8> {
        let mut out = header_bytes(kind).to_vec();
        for r in records {
            encode_frame(&r.as_ref(), &mut out);
        }
        out
    }

    #[test]
    fn frame_round_trips() {
        let records = vec![
            rec(0, "\"ok\":{}"),
            rec(1, ""),
            rec(7, "payload with \u{1F980}"),
        ];
        let bytes = file_bytes(FileKind::Snapshot, &records);
        let scan = scan_bytes(&bytes, FileKind::Snapshot);
        assert_eq!(scan.header, HeaderStatus::Ok);
        assert_eq!(scan.records, records);
        assert!(scan.corrupt.is_empty() && scan.torn_at.is_none());
    }

    #[test]
    fn torn_tail_is_detected_at_the_right_offset() {
        let records = vec![rec(0, "aaaa"), rec(1, "bbbb")];
        let bytes = file_bytes(FileKind::Journal, &records);
        let one = file_bytes(FileKind::Journal, &records[..1]);
        for cut in (one.len() + 1)..bytes.len() {
            let scan = scan_bytes(&bytes[..cut], FileKind::Journal);
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
            assert_eq!(scan.torn_at, Some(one.len() as u64), "cut at {cut}");
        }
    }

    #[test]
    fn bit_flip_is_quarantined_and_the_rest_still_loads() {
        let records = vec![rec(0, "aaaa"), rec(1, "bbbb"), rec(2, "cccc")];
        let mut bytes = file_bytes(FileKind::Journal, &records);
        let one = file_bytes(FileKind::Journal, &records[..1]).len();
        // Flip one bit inside the second record's body.
        bytes[one + FRAME_HEADER_LEN + 3] ^= 0x10;
        let scan = scan_bytes(&bytes, FileKind::Journal);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0].stamp, 0);
        assert_eq!(scan.records[1].stamp, 2);
        assert_eq!(scan.corrupt.len(), 1);
        assert_eq!(scan.corrupt[0].offset, one as u64);
    }

    #[test]
    fn wrong_version_and_schema_are_refused() {
        let records = vec![rec(0, "x")];
        let mut bytes = file_bytes(FileKind::Snapshot, &records);
        bytes[8] = 99; // version
        assert!(matches!(
            scan_bytes(&bytes, FileKind::Snapshot).header,
            HeaderStatus::Refused(ref why) if why.contains("version 99")
        ));
        let mut bytes = file_bytes(FileKind::Snapshot, &records);
        bytes[15] ^= 0xff; // schema hash
        assert!(matches!(
            scan_bytes(&bytes, FileKind::Snapshot).header,
            HeaderStatus::Refused(ref why) if why.contains("schema hash")
        ));
        let scan = scan_bytes(b"not a cache file at all", FileKind::Snapshot);
        assert!(matches!(scan.header, HeaderStatus::Refused(_)));
    }

    #[test]
    fn implausible_length_quarantines_the_rest() {
        let mut bytes = file_bytes(FileKind::Journal, &[rec(0, "aa"), rec(1, "bb")]);
        let one = file_bytes(FileKind::Journal, &[rec(0, "aa")]).len();
        bytes[one..one + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let scan = scan_bytes(&bytes, FileKind::Journal);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.corrupt.len(), 1);
        assert!(scan.issues[0].detail.contains("implausible"));
    }
}
