//! State shared by every concurrent session of one daemon.
//!
//! A [`crate::server::Server`] is a *session*: single-threaded admission,
//! private worker pool, private raw-text memo. Everything whose identity
//! must be daemon-wide lives here instead, behind an `Arc`:
//!
//! * the **result cache**, lock-striped by key hash so concurrent
//!   sessions rarely contend on the same stripe;
//! * the **machine-spec interner** — `CacheKey.spec` is the interned id,
//!   so two sessions interning independently would alias *different*
//!   specs to the *same* id and serve wrong cached payloads. Sessions
//!   keep a lock-free local mirror for the warm path and fall through to
//!   the shared table only on their first sight of a spec;
//! * the **request sequence counter** — LRU stamps and fault-plan
//!   indices are global request seq numbers;
//! * the **counters** (plain atomics) and the **shed gate** bounding
//!   daemon-wide in-flight compiles.
//!
//! With a single session the shared state degenerates to exactly the old
//! single-owner behavior: stamps are consecutive, the striped LRU is a
//! deterministic function of the request stream, and every byte of every
//! response is unchanged — the differential layer pins this.
//!
//! Poisoned locks are impossible by construction (no panic can happen
//! while a stripe or the spec table is held: workers never touch them,
//! and admission is panic-free), but every `lock()` still recovers via
//! [`PoisonError::into_inner`] rather than unwrapping — a daemon must
//! not die on a theory.

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use cvliw_machine::MachineConfig;
use cvliw_replicate::{fnv1a_64, Mode};

use crate::cache::{CacheKey, ResultCache};
use crate::json;
use crate::persist::{LoadReport, PersistRecord, Persister, RecordRef, DEFAULT_SNAPSHOT_EVERY};
use crate::protocol::ErrorKind;
use crate::server::{ServeStats, ServerConfig};

/// Result-cache stripes. A power of two keeps the modulo cheap; eight is
/// plenty for the session counts a Unix-socket daemon realistically runs.
/// Entry/byte bounds are divided per stripe, so the configured totals
/// hold globally (hash skew can make one stripe evict a little early —
/// capacity is a bound, not a promise of perfect utilization).
pub(crate) const CACHE_STRIPES: usize = 8;

/// Caches bounded below this many entries stay single-striped: striping
/// is a contention optimization for big caches, and a single stripe
/// preserves the exact global-LRU eviction order that tightly bounded
/// (mostly test) configurations observe.
const STRIPE_THRESHOLD: usize = 64;

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Daemon-wide counters. Sessions bump these with relaxed atomics; a
/// single-session daemon therefore observes exactly the sequential
/// counts the old owned struct reported.
#[derive(Debug, Default)]
pub struct SharedStats {
    requests: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    compiles: AtomicU64,
    evictions: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    panics: AtomicU64,
    deadlines: AtomicU64,
}

macro_rules! bump {
    ($($name:ident),+) => {
        $(pub(crate) fn $name(&self, n: u64) {
            self.$name.fetch_add(n, Ordering::Relaxed);
        })+
    };
}

impl SharedStats {
    bump!(requests, hits, misses, coalesced, compiles, evictions, errors, shed, panics, deadlines);

    /// A point-in-time copy of every counter.
    #[must_use]
    pub fn snapshot(&self) -> ServeStats {
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            deadlines: self.deadlines.load(Ordering::Relaxed),
        }
    }
}

/// The daemon-wide machine-spec interner: escaped spec text → small id,
/// plus the parsed config and the original text per id. The text is kept
/// because interned ids are session-local: persistence must write the
/// spec *text* so a restarted daemon re-interns instead of trusting a
/// stale id.
#[derive(Debug, Default)]
struct SpecTable {
    ids: HashMap<Box<str>, u32>,
    machines: Vec<MachineConfig>,
    texts: Vec<Arc<str>>,
}

/// Bounds daemon-wide in-flight compile jobs. Admission acquires one
/// slot per fresh miss and sheds (with a `retry_after` hint) when the
/// bound is reached; the batch releases its slots after the compile
/// fan-out returns. Hits and coalesced duplicates never touch the gate.
#[derive(Debug)]
struct ShedGate {
    inflight: AtomicU64,
    max: u64,
}

impl ShedGate {
    fn try_acquire(&self) -> bool {
        let mut cur = self.inflight.load(Ordering::Relaxed);
        loop {
            if cur >= self.max {
                return false;
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    fn release(&self, n: u64) {
        self.inflight.fetch_sub(n, Ordering::AcqRel);
    }

    fn depth(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }
}

/// Where and how often to persist the result cache.
#[derive(Clone, Debug)]
pub struct PersistConfig {
    /// Directory holding `snapshot.bin` / `journal.bin` (created if
    /// missing).
    pub dir: PathBuf,
    /// Journal records between compacted snapshots.
    pub snapshot_every: u64,
}

impl PersistConfig {
    /// Persistence into `dir` at the default snapshot cadence.
    #[must_use]
    pub fn new(dir: PathBuf) -> Self {
        PersistConfig {
            dir,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
        }
    }
}

/// Everything one daemon's sessions share. Construct once, hand an
/// `Arc` clone to each [`crate::server::Server`] session.
///
/// Lock ordering: the persister's lock is acquired only while **no**
/// stripe lock is held (inserts journal after releasing their stripe;
/// snapshots take stripe locks one at a time under the persist lock).
/// The spec-table lock nests inside either but never wraps them.
#[derive(Debug)]
pub struct SharedState {
    /// Empty when the cache is explicitly disabled (`--cache-entries 0`
    /// or `--cache-mb 0`): every lookup misses, every insert is dropped.
    stripes: Vec<Mutex<ResultCache>>,
    specs: Mutex<SpecTable>,
    seq: AtomicU64,
    stats: SharedStats,
    gate: ShedGate,
    persist: Option<Mutex<Persister>>,
}

impl SharedState {
    fn build(cfg: &ServerConfig) -> SharedState {
        let stripes = if cfg.cache_entries == 0 || cfg.cache_bytes == 0 {
            0
        } else if cfg.cache_entries >= STRIPE_THRESHOLD {
            CACHE_STRIPES
        } else {
            1
        };
        let per_entries = (cfg.cache_entries / stripes.max(1)).max(1);
        let per_bytes = (cfg.cache_bytes / stripes.max(1)).max(1);
        SharedState {
            stripes: (0..stripes)
                .map(|_| Mutex::new(ResultCache::new(per_entries, per_bytes)))
                .collect(),
            specs: Mutex::new(SpecTable::default()),
            seq: AtomicU64::new(0),
            stats: SharedStats::default(),
            gate: ShedGate {
                inflight: AtomicU64::new(0),
                max: cfg.max_inflight.max(1) as u64,
            },
            persist: None,
        }
    }

    /// Builds the shared state a [`ServerConfig`] describes (no
    /// persistence).
    #[must_use]
    pub fn new(cfg: &ServerConfig) -> Arc<Self> {
        Arc::new(SharedState::build(cfg))
    }

    /// Builds shared state backed by an on-disk cache directory:
    /// recovers whatever the directory holds (tolerating every
    /// corruption mode — see [`crate::persist`]), replays it into the
    /// cache in stamp order, and arms journaling + snapshots.
    ///
    /// # Errors
    ///
    /// Fails if the cache is disabled (`cache_entries`/`cache_bytes`
    /// zero — persisting nothing is a configuration contradiction) or
    /// if the directory/journal cannot be created or opened. Recovery
    /// of damaged files is *not* an error.
    pub fn with_persistence(
        cfg: &ServerConfig,
        pcfg: &PersistConfig,
    ) -> io::Result<(Arc<Self>, LoadReport)> {
        if cfg.cache_entries == 0 || cfg.cache_bytes == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cache persistence requires an enabled cache \
                 (cache_entries and cache_bytes both nonzero)",
            ));
        }
        let (persister, mut records, mut report) = Persister::open(&pcfg.dir, pcfg.snapshot_every)?;
        let state = SharedState::build(cfg);

        // Replay in stamp order so the restored LRU evicts exactly as
        // the never-restarted cache would have. Duplicate stamps (a
        // crash between snapshot rename and journal truncation replays
        // the overlap) resolve idempotently: later file order wins via
        // plain re-insert, and the stable sort preserves file order.
        records.sort_by_key(|r| r.stamp);
        let mut max_stamp = None::<u64>;
        for rec in records {
            if rec.mode as usize >= Mode::ALL.len() {
                report.warnings.push(format!(
                    "skipped persisted record with unknown mode {}",
                    rec.mode
                ));
                continue;
            }
            let (spec_id, _) = match state.intern_spec(&rec.spec) {
                Ok(ok) => ok,
                Err(e) => {
                    report.warnings.push(format!(
                        "skipped persisted record whose spec no longer parses: {e:?}"
                    ));
                    continue;
                }
            };
            let key = CacheKey {
                fp: rec.fp,
                spec: spec_id,
                mode: rec.mode,
                seeds: rec.seeds,
            };
            // Direct stripe insert: replay must not re-journal.
            if let Some(mut stripe) = state.stripe(&key) {
                stripe.insert(key, Arc::from(&*rec.payload), rec.stamp);
            }
            max_stamp = Some(max_stamp.map_or(rec.stamp, |m| m.max(rec.stamp)));
        }
        if let Some(m) = max_stamp {
            state.seq.store(m + 1, Ordering::Relaxed);
        }
        let state = SharedState {
            persist: Some(Mutex::new(persister)),
            ..state
        };
        report.loaded = state.cache_len();
        Ok((Arc::new(state), report))
    }

    /// The daemon-wide counters.
    #[must_use]
    pub fn stats(&self) -> &SharedStats {
        &self.stats
    }

    /// Claims the next global request sequence number.
    pub(crate) fn next_stamp(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Tries to claim one in-flight compile slot.
    pub(crate) fn try_acquire_compile(&self) -> bool {
        self.gate.try_acquire()
    }

    /// Returns `n` in-flight compile slots.
    pub(crate) fn release_compiles(&self, n: u64) {
        if n > 0 {
            self.gate.release(n);
        }
    }

    /// Current in-flight compile depth (the shed `retry_after` hint
    /// scales with it).
    #[must_use]
    pub fn inflight_depth(&self) -> u64 {
        self.gate.depth()
    }

    /// Whether the cache is enabled at all.
    #[must_use]
    pub fn cache_enabled(&self) -> bool {
        !self.stripes.is_empty()
    }

    fn stripe(&self, key: &CacheKey) -> Option<MutexGuard<'_, ResultCache>> {
        if self.stripes.is_empty() {
            return None;
        }
        let i = (fnv1a_64(&key.bytes()) as usize) % self.stripes.len();
        Some(relock(&self.stripes[i]))
    }

    /// Looks `key` up in its stripe, refreshing the LRU stamp on a hit.
    pub(crate) fn cache_lookup(&self, key: &CacheKey, stamp: u64) -> Option<Arc<str>> {
        self.stripe(key)?.lookup(key, stamp)
    }

    /// Inserts into `key`'s stripe; returns how many entries it evicted.
    /// With persistence armed the insert is also journaled — after the
    /// stripe lock is released, so the disk write never extends stripe
    /// hold time — and a due snapshot cadence triggers compaction.
    pub(crate) fn cache_insert(&self, key: CacheKey, payload: Arc<str>, stamp: u64) -> u64 {
        let Some(mut stripe) = self.stripe(&key) else {
            return 0;
        };
        let evicted = stripe.insert(key, Arc::clone(&payload), stamp);
        drop(stripe);
        if let Some(persist) = &self.persist {
            let Some(spec) = self.spec_text(key.spec) else {
                return evicted; // unreachable: inserts intern first
            };
            let due = relock(persist).append(&RecordRef {
                fp: key.fp,
                mode: key.mode,
                seeds: key.seeds,
                stamp,
                spec: &spec,
                payload: &payload,
            });
            if due {
                // Compaction keeps the persist lock for its duration so
                // concurrent inserts serialize behind it rather than
                // re-triggering; stripe locks are taken one at a time
                // underneath it (never the reverse order).
                let _ = self.snapshot_now();
            }
        }
        evicted
    }

    /// Writes a compacted snapshot now (graceful shutdown, cadence, or
    /// an explicit flush). `None` when persistence is off; `Ok(n)` is
    /// the record count written.
    pub fn snapshot_now(&self) -> Option<io::Result<usize>> {
        let persist = self.persist.as_ref()?;
        let mut persister = relock(persist);
        let mut entries = Vec::new();
        for stripe in &self.stripes {
            entries.extend(relock(stripe).export());
        }
        entries.sort_by_key(|&(_, stamp, _)| stamp);
        let mut records = Vec::with_capacity(entries.len());
        for (key, stamp, payload) in entries {
            let Some(spec) = self.spec_text(key.spec) else {
                continue; // unreachable: cached keys were interned
            };
            records.push(PersistRecord {
                fp: key.fp,
                mode: key.mode,
                seeds: key.seeds,
                stamp,
                spec: Box::from(&*spec),
                payload: Box::from(&*payload),
            });
        }
        Some(persister.write_snapshot(&records))
    }

    /// Why persistence stopped writing, if it has (the daemon keeps
    /// serving from memory when the disk fails).
    #[must_use]
    pub fn persist_dead_reason(&self) -> Option<String> {
        let persist = self.persist.as_ref()?;
        relock(persist).dead_reason().map(str::to_string)
    }

    /// Arms injected disk deaths on the persister (test builds only).
    #[cfg(feature = "fault-inject")]
    pub fn set_disk_faults(&self, faults: crate::persist::DiskFaults) {
        if let Some(persist) = &self.persist {
            relock(persist).set_disk_faults(faults);
        }
    }

    /// Entries resident across all stripes.
    #[must_use]
    pub fn cache_len(&self) -> usize {
        self.stripes.iter().map(|s| relock(s).len()).sum()
    }

    /// Payload bytes resident across all stripes.
    #[must_use]
    pub fn cache_bytes(&self) -> usize {
        self.stripes.iter().map(|s| relock(s).bytes()).sum()
    }

    /// Interns an escaped machine-spec string daemon-wide, parsing it on
    /// first sight. Returns the id and (for first sight per session) the
    /// parsed config so the session can mirror both locally.
    pub(crate) fn intern_spec(&self, escaped: &str) -> Result<(u32, MachineConfig), ErrorKind> {
        let mut table = relock(&self.specs);
        if let Some(&id) = table.ids.get(escaped) {
            let machine = table.machines[id as usize].clone();
            return Ok((id, machine));
        }
        let text = json::unescape(escaped).map_err(|e| ErrorKind::BadField {
            field: "machine",
            detail: e.to_string(),
        })?;
        let machine = MachineConfig::from_extended_spec(&text).map_err(ErrorKind::Spec)?;
        let id = u32::try_from(table.machines.len()).map_err(|_| ErrorKind::Internal {
            detail: "machine-spec intern table overflow",
        })?;
        table.machines.push(machine.clone());
        table.texts.push(Arc::from(escaped));
        table.ids.insert(Box::from(escaped), id);
        Ok((id, machine))
    }

    /// The escaped spec text behind an interned id (a refcount bump).
    pub(crate) fn spec_text(&self, id: u32) -> Option<Arc<str>> {
        relock(&self.specs).texts.get(id as usize).cloned()
    }
}
