//! A minimal flat-JSON scanner for the serve protocol — no external
//! dependency, no allocation on the happy path.
//!
//! The protocol only ever exchanges one-level JSON objects whose values
//! are strings or unsigned integers, so a full JSON tree is overkill:
//! [`scan_object`] walks the line once and hands each `key: value` pair to
//! a callback as **borrowed slices** of the input. String values are the
//! *escaped* span between the quotes — callers that need the decoded text
//! call [`unescape`] (which only allocates when an escape is actually
//! present), and callers that only need an identity (the raw-text cache
//! memo) hash the escaped span directly and never decode at all.

use std::borrow::Cow;
use std::fmt;

/// Where and why a line failed to scan as a protocol object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the line.
    pub pos: usize,
    /// What was wrong at that offset.
    pub detail: String,
}

impl JsonError {
    fn new(pos: usize, detail: impl Into<String>) -> Self {
        JsonError {
            pos,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.pos, self.detail)
    }
}

impl std::error::Error for JsonError {}

/// A scanned value: a borrowed escaped-string span or a number span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RawValue<'a> {
    /// The bytes between the quotes, escapes untouched.
    Str(&'a str),
    /// The literal digit span (unsigned integers only).
    Num(&'a str),
    /// The literal `null`.
    Null,
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\r' || b == b'\n' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, ch: u8) -> Result<(), JsonError> {
        match self.bytes.get(self.pos) {
            Some(&b) if b == ch => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(JsonError::new(
                self.pos,
                format!("expected `{}`", char::from(ch)),
            )),
        }
    }

    /// Scans a quoted string, returning the escaped span between the
    /// quotes. Escapes are *not* validated here beyond "a backslash is
    /// followed by something" — [`unescape`] rejects unknown sequences.
    fn string(&mut self, src: &'a str) -> Result<&'a str, JsonError> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    let span = &src[start..self.pos];
                    self.pos += 1;
                    return Ok(span);
                }
                b'\\' => {
                    if self.pos + 1 >= self.bytes.len() {
                        return Err(JsonError::new(self.pos, "truncated escape"));
                    }
                    self.pos += 2;
                }
                _ => self.pos += 1,
            }
        }
        Err(JsonError::new(self.pos, "unterminated string"))
    }

    fn value(&mut self, src: &'a str) -> Result<RawValue<'a>, JsonError> {
        match self.bytes.get(self.pos) {
            Some(b'"') => Ok(RawValue::Str(self.string(src)?)),
            Some(b'0'..=b'9') => {
                let start = self.pos;
                while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                Ok(RawValue::Num(&src[start..self.pos]))
            }
            Some(b'n') if self.bytes[self.pos..].starts_with(b"null") => {
                self.pos += 4;
                Ok(RawValue::Null)
            }
            _ => Err(JsonError::new(
                self.pos,
                "expected a string, an unsigned integer or null",
            )),
        }
    }
}

/// Scans `line` as a single flat JSON object, invoking `field` for every
/// `key: value` pair with borrowed slices. Trailing content after the
/// closing brace (other than whitespace) is an error, as is anything the
/// protocol grammar does not cover (nested objects, arrays, floats,
/// booleans).
pub fn scan_object<'a>(
    line: &'a str,
    mut field: impl FnMut(&'a str, RawValue<'a>) -> Result<(), JsonError>,
) -> Result<(), JsonError> {
    let mut s = Scanner {
        bytes: line.as_bytes(),
        pos: 0,
    };
    s.skip_ws();
    s.expect(b'{')?;
    s.skip_ws();
    if s.bytes.get(s.pos) != Some(&b'}') {
        loop {
            s.skip_ws();
            let key = s.string(line)?;
            s.skip_ws();
            s.expect(b':')?;
            s.skip_ws();
            let value = s.value(line)?;
            field(key, value)?;
            s.skip_ws();
            match s.bytes.get(s.pos) {
                Some(b',') => s.pos += 1,
                Some(b'}') => break,
                _ => return Err(JsonError::new(s.pos, "expected `,` or `}`")),
            }
        }
    }
    s.expect(b'}')?;
    s.skip_ws();
    if s.pos != s.bytes.len() {
        return Err(JsonError::new(s.pos, "trailing content after object"));
    }
    Ok(())
}

/// Decodes a JSON-escaped span (as returned by [`scan_object`]) into the
/// represented text. Borrows the input unchanged when no escape occurs.
pub fn unescape(escaped: &str) -> Result<Cow<'_, str>, JsonError> {
    if !escaped.as_bytes().contains(&b'\\') {
        return Ok(Cow::Borrowed(escaped));
    }
    let mut out = String::with_capacity(escaped.len());
    let mut chars = escaped.char_indices();
    while let Some((pos, c)) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some((_, '"')) => out.push('"'),
            Some((_, '\\')) => out.push('\\'),
            Some((_, '/')) => out.push('/'),
            Some((_, 'n')) => out.push('\n'),
            Some((_, 't')) => out.push('\t'),
            Some((_, 'r')) => out.push('\r'),
            Some((_, 'b')) => out.push('\u{8}'),
            Some((_, 'f')) => out.push('\u{c}'),
            Some((_, 'u')) => {
                let hex: String = chars.by_ref().take(4).map(|(_, c)| c).collect();
                if hex.len() != 4 {
                    return Err(JsonError::new(pos, "truncated \\u escape"));
                }
                let code = u32::from_str_radix(&hex, 16)
                    .map_err(|_| JsonError::new(pos, "bad \\u escape"))?;
                match char::from_u32(code) {
                    Some(c) => out.push(c),
                    None => {
                        return Err(JsonError::new(pos, "\\u escape is not a scalar value"));
                    }
                }
            }
            _ => return Err(JsonError::new(pos, "unknown escape")),
        }
    }
    Ok(Cow::Owned(out))
}

/// Appends `s` to `out` JSON-escaped (the inverse of [`unescape`] for
/// the escapes this writer emits).
pub fn escape_into(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields(line: &str) -> Result<Vec<(String, String)>, JsonError> {
        let mut out = Vec::new();
        scan_object(line, |k, v| {
            out.push((
                k.to_string(),
                match v {
                    RawValue::Str(s) => format!("s:{s}"),
                    RawValue::Num(n) => format!("n:{n}"),
                    RawValue::Null => "null".to_string(),
                },
            ));
            Ok(())
        })?;
        Ok(out)
    }

    #[test]
    fn scans_flat_objects() {
        let got = fields(r#"{"id": 7, "loop": "loop t {\n}", "mode": "baseline"}"#).unwrap();
        assert_eq!(
            got,
            vec![
                ("id".to_string(), "n:7".to_string()),
                ("loop".to_string(), "s:loop t {\\n}".to_string()),
                ("mode".to_string(), "s:baseline".to_string()),
            ]
        );
        assert_eq!(fields("  { }  ").unwrap(), vec![]);
        assert_eq!(
            fields(r#"{"id": null}"#).unwrap(),
            vec![("id".to_string(), "null".to_string())]
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "not json",
            "{",
            r#"{"id""#,
            r#"{"id":"#,
            r#"{"id": 7"#,
            r#"{"id": 7,}"#,
            r#"{"id": 7} trailing"#,
            r#"{"x": [1]}"#,
            r#"{"x": {"y": 1}}"#,
            r#"{"x": 1.5}"#,
            r#"{"x": true}"#,
            r#"{"x": "unterminated"#,
            r#"{"x": "trailing backslash\"#,
        ] {
            assert!(fields(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn unescape_round_trips_escape() {
        let original = "loop t {\n    x: load i\t// \"quoted\" \\ \u{1} ü\n}";
        let mut escaped = String::new();
        escape_into(original, &mut escaped);
        assert_eq!(unescape(&escaped).unwrap(), original);
        // No escapes → borrowed, not copied.
        assert!(matches!(unescape("plain").unwrap(), Cow::Borrowed(_)));
    }

    #[test]
    fn unescape_rejects_bad_escapes() {
        assert!(unescape(r"\q").is_err());
        assert!(unescape(r"\u12").is_err());
        assert!(unescape(r"\uzzzz").is_err());
        assert!(unescape(r"\ud800").is_err()); // lone surrogate
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(unescape("\\u00fc").unwrap(), "ü");
        assert_eq!(unescape("a\\u0041b").unwrap(), "aAb");
    }
}
