//! Compile-as-a-service for the replication compiler: the machinery
//! behind `cvliw serve`.
//!
//! A long-running daemon accepts compile requests — loop source, machine
//! spec, mode, optional seed-racing width — as JSONL over stdin or a Unix
//! socket, and answers each with exactly the counters a one-shot
//! `compile_stats` run would report. Three guarantees, pinned by the
//! differential test layer:
//!
//! * **Byte identity** — a served response body equals the one-shot
//!   rendering of the same compile, hit or miss, whatever the worker
//!   count, cold or warm.
//! * **Determinism** — cache state and responses are a pure function of
//!   the request stream: LRU stamps are request seq numbers, insertion
//!   follows admission order, and work is sharded by key hash, never by
//!   load.
//! * **Allocation-free warm path** — a batch answered entirely from cache
//!   touches no allocator: borrowed-slice JSON scanning, an interned spec
//!   table, a raw-text fingerprint memo and `Arc` payload clones.
//!
//! The module split mirrors the request's journey: [`json`] scans the
//! line, [`protocol`] types it, [`cache`] answers repeats, [`server`]
//! runs the pool.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod json;
pub mod protocol;
pub mod server;
pub mod testutil;

pub use cache::{CacheKey, ResultCache};
pub use protocol::{
    parse_request, render_compile_error_body, render_error_body, render_ok_body, render_response,
    ErrorKind, Request, MAX_LINE_BYTES,
};
pub use server::{ServeStats, Server, ServerConfig, MAX_BATCH};
