//! Compile-as-a-service for the replication compiler: the machinery
//! behind `cvliw serve`.
//!
//! A long-running daemon accepts compile requests — loop source, machine
//! spec, mode, optional seed-racing width — as JSONL over stdin or a Unix
//! socket, and answers each with exactly the counters a one-shot
//! `compile_stats` run would report. Three guarantees, pinned by the
//! differential test layer:
//!
//! * **Byte identity** — a served response body equals the one-shot
//!   rendering of the same compile, hit or miss, whatever the worker
//!   count, cold or warm.
//! * **Determinism** — cache state and responses are a pure function of
//!   the request stream: LRU stamps are request seq numbers, insertion
//!   follows admission order, and work is sharded by key hash, never by
//!   load.
//! * **Allocation-free warm path** — a batch answered entirely from cache
//!   touches no allocator: borrowed-slice JSON scanning, an interned spec
//!   table, a raw-text fingerprint memo and `Arc` payload clones.
//!
//! On top of those, the serve layer is built to stay up: a panicking
//! compile is contained to its job (`compile_panic`), a compile that
//! blows the per-request budget is cancelled at the next II attempt
//! (`deadline_exceeded`), misses beyond the in-flight bound are shed
//! with a back-off hint (`overloaded`) instead of queueing unboundedly,
//! and SIGTERM/SIGINT drain in-flight batches before the daemon exits.
//! Fault payloads never enter the result cache.
//!
//! The module split mirrors the request's journey: [`json`] scans the
//! line, [`protocol`] types it, [`cache`] answers repeats, [`shared`]
//! holds what sessions share, [`server`] runs the pool, [`daemon`]
//! owns the Unix socket, [`persist`] makes the cache survive restarts,
//! and [`client`] is the reconnecting caller's side of the socket.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// No panic may be reachable from request handling: every `unwrap`/
// `expect` in the serve crate is a latent daemon crash, so the lint
// makes them unrepresentable outside test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
#[cfg(unix)]
pub mod client;
#[cfg(unix)]
pub mod daemon;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod json;
pub mod persist;
pub mod protocol;
pub mod server;
pub mod shared;
pub mod testutil;

pub use cache::{CacheKey, ResultCache};
#[cfg(unix)]
pub use client::{BackoffPolicy, Client};
#[cfg(unix)]
pub use daemon::{probe_socket, run_socket, run_socket_with, SocketConfig, SocketProbe};
#[cfg(feature = "fault-inject")]
pub use fault::FaultPlan;
#[cfg(feature = "fault-inject")]
pub use persist::DiskFaults;
pub use persist::{verify_dir, LoadReport, PersistRecord, Persister, VerifyReport};
pub use protocol::{
    parse_request, render_compile_error_body, render_error_body, render_ok_body, render_response,
    ErrorKind, Request, MAX_LINE_BYTES,
};
pub use server::{
    retry_after_hint, ServeStats, Server, ServerConfig, ShutdownFlag, MAX_BATCH,
    RETRY_AFTER_BASE_MS, RETRY_AFTER_MAX_MS, RETRY_AFTER_PER_INFLIGHT_MS,
};
pub use shared::{PersistConfig, SharedState};
