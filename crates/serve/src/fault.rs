//! Deterministic fault injection for the serve layer, compiled in only
//! under the `fault-inject` cargo feature (test builds; never the
//! shipped daemon).
//!
//! A [`FaultPlan`] names global request sequence numbers (the same
//! stamps the cache and LRU use) at which something goes wrong:
//!
//! * **worker panics** and **slow compiles** are consumed by the server
//!   itself — [`crate::server::Server::set_fault_plan`] arms a session,
//!   and its workers panic or stall at the chosen stamps;
//! * **truncated client writes** and **mid-stream disconnects** are
//!   consumed by the *test harness*, which mutilates the byte stream it
//!   feeds the daemon — the plan just makes one seed describe the whole
//!   scenario;
//! * **disk faults** target the persistence layer: process death at an
//!   arbitrary byte offset during journal appends or snapshot writes
//!   (consumed via [`crate::shared::SharedState::set_disk_faults`]) and
//!   post-mortem file mutilation — truncation or a bit flip at a seeded
//!   offset — applied by the harness between "runs" of the daemon.
//!
//! Everything derives from one `u64` seed via a splitmix-style
//! generator, so a failing proptest case is reproducible from its seed
//! alone and the daemon's behavior under the plan is a pure function of
//! `(plan, request stream)`.

use std::time::Duration;

/// Which faults fire at which global request stamps.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Stamps whose compile job panics inside the worker.
    pub panic_at: Vec<u64>,
    /// `(stamp, millis)`: the compile job stalls this long before
    /// compiling — with a request deadline armed, a deterministic
    /// `deadline_exceeded`; without one, just a late (but byte-correct)
    /// response.
    pub slow_at: Vec<(u64, u64)>,
    /// Cut the client's write of request-line index `.0` after `.1`
    /// bytes of that line (harness-side).
    pub truncate_write: Option<(usize, usize)>,
    /// Disconnect the client after sending this many complete request
    /// lines (harness-side).
    pub disconnect_after: Option<usize>,
    /// The persister dies (as a killed process would — mid-write, no
    /// cleanup) after this many journal frame bytes.
    pub journal_kill_after: Option<u64>,
    /// The persister dies after this many snapshot bytes, leaving the
    /// half-written `*.tmp` behind.
    pub snapshot_kill_after: Option<u64>,
    /// Harness-side: truncate the persisted file to this many bytes
    /// between runs.
    pub truncate_file: Option<u64>,
    /// Harness-side: flip bit `.1` of byte `.0` of the persisted file
    /// between runs.
    pub flip_bit: Option<(u64, u8)>,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Derives a plan for a stream of `horizon` requests from one seed:
    /// up to two panics, up to two slow compiles of `slow_ms` each, and
    /// (steered by the seed's low bits) a truncated write or an early
    /// disconnect.
    #[must_use]
    pub fn seeded(seed: u64, horizon: u64, slow_ms: u64) -> FaultPlan {
        let mut s = seed;
        let mut plan = FaultPlan::default();
        if horizon == 0 {
            return plan;
        }
        for _ in 0..(splitmix(&mut s) % 3) {
            plan.panic_at.push(splitmix(&mut s) % horizon);
        }
        for _ in 0..(splitmix(&mut s) % 3) {
            plan.slow_at.push((splitmix(&mut s) % horizon, slow_ms));
        }
        plan.panic_at.sort_unstable();
        plan.panic_at.dedup();
        // A stamp can't both panic and stall: panic wins, as it would in
        // the worker (the panic hook fires before the compile).
        plan.slow_at.retain(|(t, _)| !plan.panic_at.contains(t));
        plan.slow_at.sort_unstable();
        plan.slow_at.dedup_by_key(|(t, _)| *t);
        let roll = splitmix(&mut s);
        if roll & 1 == 1 {
            let line = (splitmix(&mut s) % horizon) as usize;
            let cut = (splitmix(&mut s) % 40) as usize;
            plan.truncate_write = Some((line, cut));
        }
        if roll & 2 == 2 {
            plan.disconnect_after = Some((splitmix(&mut s) % horizon) as usize + 1);
        }
        plan
    }

    /// Derives a disk-fault plan from one seed: exactly one of the four
    /// disk faults, steered by the seed's low bits, with byte offsets in
    /// `0..max_bytes`. The write-time kills convert to
    /// [`crate::persist::DiskFaults`] via [`FaultPlan::disk_faults`];
    /// `truncate_file` / `flip_bit` are applied by the harness to the
    /// files themselves between runs.
    #[must_use]
    pub fn seeded_disk(seed: u64, max_bytes: u64) -> FaultPlan {
        let mut s = seed;
        let mut plan = FaultPlan::default();
        let span = max_bytes.max(1);
        match splitmix(&mut s) % 4 {
            0 => plan.journal_kill_after = Some(splitmix(&mut s) % span),
            1 => plan.snapshot_kill_after = Some(splitmix(&mut s) % span),
            2 => plan.truncate_file = Some(splitmix(&mut s) % span),
            _ => {
                let byte = splitmix(&mut s) % span;
                let bit = (splitmix(&mut s) % 8) as u8;
                plan.flip_bit = Some((byte, bit));
            }
        }
        plan
    }

    /// The write-time portion of the plan, in the persister's terms.
    #[must_use]
    pub fn disk_faults(&self) -> crate::persist::DiskFaults {
        crate::persist::DiskFaults {
            journal_kill_after: self.journal_kill_after,
            snapshot_kill_after: self.snapshot_kill_after,
        }
    }

    /// Whether the compile at `stamp` should panic.
    #[must_use]
    pub fn panics_at(&self, stamp: u64) -> bool {
        self.panic_at.contains(&stamp)
    }

    /// How long the compile at `stamp` should stall first, if at all.
    #[must_use]
    pub fn stall_at(&self, stamp: u64) -> Option<Duration> {
        self.slow_at
            .iter()
            .find(|(t, _)| *t == stamp)
            .map(|&(_, ms)| Duration::from_millis(ms))
    }

    /// The set of stamps whose *response* is allowed to differ from the
    /// one-shot oracle (panicked or, when a deadline is armed, stalled
    /// past it). Everything else must stay byte-identical.
    #[must_use]
    pub fn faulted_stamps(&self, deadline_armed: bool) -> Vec<u64> {
        let mut out = self.panic_at.clone();
        if deadline_armed {
            out.extend(self.slow_at.iter().map(|&(t, _)| t));
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}
