//! Property tests for the multilevel partitioner: structural invariants of
//! coarsening, matching, and refinement on arbitrary loop graphs.

use cvliw_ddg::{Ddg, DepKind, OpKind};
use cvliw_machine::MachineConfig;
use cvliw_partition::{
    coarsen, greedy_matching, partition_loop, refine_existing, score_partition, Partition,
};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = OpKind> {
    prop::sample::select(OpKind::ALL.to_vec())
}

fn arb_ddg() -> impl Strategy<Value = Ddg> {
    let nodes = prop::collection::vec(arb_kind(), 1..16);
    nodes
        .prop_flat_map(|kinds| {
            let n = kinds.len();
            let edges = prop::collection::vec((0..n, 0..n, 0u32..2, prop::bool::ANY), 0..(2 * n));
            (Just(kinds), edges)
        })
        .prop_map(|(kinds, edges)| {
            let mut b = Ddg::builder();
            let ids: Vec<_> = kinds.iter().map(|&k| b.add_node(k)).collect();
            for (src, dst, dist, mem) in edges {
                let kind = if mem || !kinds[src].produces_value() {
                    DepKind::Mem
                } else {
                    DepKind::Data
                };
                if dist > 0 {
                    b.edge(ids[src], ids[dst], kind, dist);
                } else if src < dst {
                    b.edge(ids[src], ids[dst], kind, 0);
                }
            }
            b.build().expect("valid by construction")
        })
}

fn arb_machine() -> impl Strategy<Value = MachineConfig> {
    prop::sample::select(vec!["2c1b2l64r", "4c1b2l64r", "4c2b4l64r"])
        .prop_map(|s| MachineConfig::from_spec(s).expect("valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn partition_loop_assigns_every_node_in_range(
        ddg in arb_ddg(),
        machine in arb_machine(),
        ii in 1u32..8,
    ) {
        let part = partition_loop(&ddg, &machine, ii);
        prop_assert_eq!(part.node_count(), ddg.node_count());
        prop_assert!(part.as_slice().iter().all(|&c| c < machine.clusters()));
    }

    #[test]
    fn coarsening_levels_shrink_to_cluster_count(
        ddg in arb_ddg(),
        machine in arb_machine(),
        ii in 1u32..8,
    ) {
        let h = coarsen(&ddg, &machine, ii);
        prop_assert!(!h.levels.is_empty());
        // Level 0 is the identity; macro counts never grow level to level.
        prop_assert_eq!(h.levels[0].n_macros, ddg.node_count());
        for w in h.levels.windows(2) {
            prop_assert!(w[1].n_macros <= w[0].n_macros);
        }
        let last = h.levels.last().expect("nonempty");
        prop_assert!(last.n_macros <= (machine.clusters() as usize).max(1)
            || ddg.node_count() <= machine.clusters() as usize);
        // Every level is a total map into its macro count.
        for level in &h.levels {
            prop_assert_eq!(level.macro_of.len(), ddg.node_count());
            prop_assert!(level.macro_of.iter().all(|&m| m < level.n_macros));
        }
    }

    #[test]
    fn greedy_matching_is_a_matching(
        n in 2usize..20,
        edges in prop::collection::vec((0usize..20, 0usize..20, 1u64..100), 0..40),
    ) {
        let edges: Vec<(usize, usize, u64)> = edges
            .into_iter()
            .filter(|&(a, b, _)| a < n && b < n && a != b)
            .collect();
        let matching = greedy_matching(n, &edges);
        let mut seen = vec![false; n];
        for &(a, b) in &matching {
            prop_assert!(a < n && b < n && a != b);
            prop_assert!(!seen[a], "node {a} matched twice");
            prop_assert!(!seen[b], "node {b} matched twice");
            seen[a] = true;
            seen[b] = true;
            prop_assert!(
                edges.iter().any(|&(x, y, _)| (x, y) == (a, b) || (y, x) == (a, b)),
                "matched pair ({a},{b}) is not an edge"
            );
        }
    }

    #[test]
    fn refinement_never_worsens_the_score(
        ddg in arb_ddg(),
        machine in arb_machine(),
        ii in 1u32..8,
        seed in any::<u64>(),
    ) {
        // Start from a deterministic pseudo-random partition and refine.
        let n = ddg.node_count();
        let mut state = seed | 1;
        let initial: Vec<u8> = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % u64::from(machine.clusters())) as u8
            })
            .collect();
        let initial = Partition::from_vec(initial);
        let before = score_partition(&ddg, &initial, &machine, ii);
        let refined = refine_existing(&ddg, &machine, ii, initial);
        let after = score_partition(&ddg, &refined, &machine, ii);
        prop_assert!(after <= before, "refinement worsened the partition");
    }

    #[test]
    fn single_node_graphs_partition_trivially(
        kind in arb_kind(),
        machine in arb_machine(),
    ) {
        let mut b = Ddg::builder();
        b.add_node(kind);
        let ddg = b.build().expect("valid");
        let part = partition_loop(&ddg, &machine, 1);
        prop_assert_eq!(part.node_count(), 1);
        prop_assert_eq!(part.comm_count(&ddg), 0);
    }
}
