//! The partition type: one cluster per node.

use cvliw_ddg::{Ddg, NodeId};
use cvliw_sched::Assignment;

/// A mapping of every DDG node to exactly one cluster.
///
/// This is what the multilevel partitioner produces; the replication pass
/// later generalizes it to a multi-instance [`Assignment`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    cluster_of: Vec<u8>,
}

impl Partition {
    /// Wraps an explicit node → cluster mapping.
    #[must_use]
    pub fn from_vec(cluster_of: Vec<u8>) -> Self {
        Partition { cluster_of }
    }

    /// Everything in cluster 0 (used for unified machines).
    #[must_use]
    pub fn single_cluster(nodes: usize) -> Self {
        Partition {
            cluster_of: vec![0; nodes],
        }
    }

    /// The cluster of one node.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    #[must_use]
    pub fn cluster_of(&self, n: NodeId) -> u8 {
        self.cluster_of[n.index()]
    }

    /// The raw mapping.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.cluster_of
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.cluster_of.len()
    }

    /// Moves one node to another cluster.
    pub fn set_cluster(&mut self, n: NodeId, cluster: u8) {
        self.cluster_of[n.index()] = cluster;
    }

    /// Converts to the scheduler's multi-instance representation (each node
    /// gets a single instance in its cluster, which also becomes its home).
    #[must_use]
    pub fn to_assignment(&self) -> Assignment {
        Assignment::from_partition(&self.cluster_of)
    }

    /// Number of register values that cross clusters under this partition.
    #[must_use]
    pub fn comm_count(&self, ddg: &Ddg) -> u32 {
        self.to_assignment().comm_count(ddg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvliw_ddg::OpKind;

    #[test]
    fn round_trips_through_assignment() {
        let mut b = Ddg::builder();
        let a = b.add_node(OpKind::Load);
        let c = b.add_node(OpKind::FpMul);
        b.data(a, c);
        let ddg = b.build().unwrap();
        let p = Partition::from_vec(vec![0, 1]);
        let asg = p.to_assignment();
        assert!(asg.is_singleton());
        assert_eq!(asg.home(a), 0);
        assert_eq!(asg.home(c), 1);
        assert_eq!(p.comm_count(&ddg), 1);
    }

    #[test]
    fn set_cluster_moves_nodes() {
        let mut p = Partition::single_cluster(3);
        assert_eq!(p.as_slice(), &[0, 0, 0]);
        p.set_cluster(NodeId::new(1), 3);
        assert_eq!(p.cluster_of(NodeId::new(1)), 3);
        assert_eq!(p.node_count(), 3);
    }
}
