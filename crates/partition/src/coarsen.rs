//! Multilevel coarsening: heavy-edge matching into macro-nodes.

use std::collections::BTreeMap;

use cvliw_ddg::{Ddg, OpClass};
use cvliw_machine::MachineConfig;

use crate::matching::greedy_matching;
use crate::partition::Partition;
use crate::weights::edge_weights;

/// One level of the coarsening hierarchy: a grouping of the original nodes
/// into `n_macros` macro-nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoarseLevel {
    /// Original node index → macro index at this level.
    pub macro_of: Vec<usize>,
    /// Number of macro-nodes at this level.
    pub n_macros: usize,
}

impl CoarseLevel {
    /// The member node indices of every macro, in macro order.
    #[must_use]
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.n_macros];
        for (node, &m) in self.macro_of.iter().enumerate() {
            groups[m].push(node);
        }
        groups
    }
}

/// The whole coarsening hierarchy, from the identity level (every node its
/// own macro) down to a level with at most as many macro-nodes as clusters.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// Levels in coarsening order: `levels[0]` is the identity grouping,
    /// the last level is the coarsest.
    pub levels: Vec<CoarseLevel>,
    clusters: u8,
}

impl Hierarchy {
    /// The coarsest level.
    #[must_use]
    pub fn coarsest(&self) -> &CoarseLevel {
        self.levels
            .last()
            .expect("hierarchy has at least the identity level")
    }

    /// The preliminary partition induced by the coarsest level: macro `i`
    /// lands in cluster `i` (the paper's step 1).
    #[must_use]
    pub fn initial_partition(&self) -> Partition {
        let coarsest = self.coarsest();
        debug_assert!(coarsest.n_macros <= self.clusters as usize);
        Partition::from_vec(
            coarsest
                .macro_of
                .iter()
                .map(|&m| u8::try_from(m).expect("few clusters"))
                .collect(),
        )
    }
}

/// Per-macro operation counts by class, used for capacity-aware matching.
fn macro_class_counts(ddg: &Ddg, macro_of: &[usize], n_macros: usize) -> Vec<[u32; 3]> {
    let mut counts = vec![[0u32; 3]; n_macros];
    for n in ddg.node_ids() {
        counts[macro_of[n.index()]][ddg.kind(n).class().index()] += 1;
    }
    counts
}

/// Coarsens the DDG until at most `machine.clusters()` macro-nodes remain.
///
/// Each round aggregates the slack-based edge weights between macro-nodes,
/// takes a greedy maximum-weight matching among pairs whose merged size
/// still fits a cluster's `units·II` capacity, and merges. When matching
/// stalls (disconnected or capacity-blocked graphs) the two smallest
/// macro-nodes are force-merged so the process always terminates.
#[must_use]
pub fn coarsen(ddg: &Ddg, machine: &MachineConfig, ii: u32) -> Hierarchy {
    coarsen_from_weights(ddg, machine, ii, &edge_weights(ddg, machine, ii))
}

/// [`coarsen`] with precomputed edge weights (see
/// [`crate::edge_weights_with`] for the cached-analysis path).
#[must_use]
pub fn coarsen_from_weights(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    weights: &[u64],
) -> Hierarchy {
    let n = ddg.node_count();
    let clusters = machine.clusters() as usize;

    let mut macro_of: Vec<usize> = (0..n).collect();
    let mut n_macros = n;
    let mut levels = vec![CoarseLevel {
        macro_of: macro_of.clone(),
        n_macros,
    }];

    // Macro-nodes must fit in *some* cluster; the largest one bounds them
    // (exact per-cluster fit is enforced later by refinement/scheduling).
    let cap = |class: OpClass| u32::from(machine.max_fu_count(class)) * ii.max(1);

    while n_macros > clusters {
        let counts = macro_class_counts(ddg, &macro_of, n_macros);
        // Aggregate inter-macro weights (+1 per edge so plain connectivity
        // counts even for weight-0 memory edges).
        let mut agg: BTreeMap<(usize, usize), u64> = BTreeMap::new();
        for (e, &w) in ddg.edges().zip(weights.iter()) {
            let a = macro_of[e.src.index()];
            let b = macro_of[e.dst.index()];
            if a != b {
                *agg.entry((a.min(b), a.max(b))).or_insert(0) += w + 1;
            }
        }
        let fits = |a: usize, b: usize| {
            OpClass::ALL
                .iter()
                .all(|&class| counts[a][class.index()] + counts[b][class.index()] <= cap(class))
        };
        let candidates: Vec<(usize, usize, u64)> = agg
            .iter()
            .filter(|(&(a, b), _)| fits(a, b))
            .map(|(&(a, b), &w)| (a, b, w))
            .collect();

        let mut pairs = greedy_matching(n_macros, &candidates);
        // Never overshoot below the cluster count.
        pairs.truncate(n_macros - clusters);

        if pairs.is_empty() {
            // Force-merge the two smallest macros.
            let mut by_size: Vec<usize> = (0..n_macros).collect();
            by_size.sort_by_key(|&m| counts[m].iter().sum::<u32>());
            pairs.push((by_size[0].min(by_size[1]), by_size[0].max(by_size[1])));
        }

        // Apply merges and compact macro indices.
        let mut target: Vec<usize> = (0..n_macros).collect();
        for &(a, b) in &pairs {
            target[b] = a;
        }
        let mut remap = vec![usize::MAX; n_macros];
        let mut next = 0;
        for m in 0..n_macros {
            if target[m] == m {
                remap[m] = next;
                next += 1;
            }
        }
        for m in 0..n_macros {
            if target[m] != m {
                remap[m] = remap[target[m]];
            }
        }
        for slot in macro_of.iter_mut() {
            *slot = remap[target[*slot]];
        }
        n_macros = next;
        levels.push(CoarseLevel {
            macro_of: macro_of.clone(),
            n_macros,
        });
    }

    Hierarchy {
        levels,
        clusters: machine.clusters(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvliw_ddg::OpKind;

    fn machine(spec: &str) -> MachineConfig {
        MachineConfig::from_spec(spec).unwrap()
    }

    fn chain(n: usize) -> Ddg {
        let mut b = Ddg::builder();
        let nodes: Vec<_> = (0..n).map(|_| b.add_node(OpKind::FpAdd)).collect();
        for w in nodes.windows(2) {
            b.data(w[0], w[1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn coarsens_to_cluster_count() {
        let ddg = chain(10);
        let h = coarsen(&ddg, &machine("4c1b2l64r"), 4);
        assert!(h.coarsest().n_macros <= 4);
        assert_eq!(h.levels[0].n_macros, 10);
        // levels strictly shrink
        for w in h.levels.windows(2) {
            assert!(w[1].n_macros < w[0].n_macros);
        }
    }

    #[test]
    fn initial_partition_covers_all_nodes() {
        let ddg = chain(9);
        let h = coarsen(&ddg, &machine("2c1b2l64r"), 4);
        let p = h.initial_partition();
        assert_eq!(p.node_count(), 9);
        assert!(p.as_slice().iter().all(|&c| c < 2));
    }

    #[test]
    fn groups_partition_the_nodes() {
        let ddg = chain(7);
        let h = coarsen(&ddg, &machine("2c1b2l64r"), 3);
        for level in &h.levels {
            let groups = level.groups();
            let total: usize = groups.iter().map(Vec::len).sum();
            assert_eq!(total, 7);
            assert!(groups.iter().all(|g| !g.is_empty()));
        }
    }

    #[test]
    fn disconnected_graph_still_coarsens() {
        let mut b = Ddg::builder();
        for _ in 0..6 {
            b.add_node(OpKind::Load);
        }
        let ddg = b.build().unwrap();
        let h = coarsen(&ddg, &machine("2c1b2l64r"), 3);
        assert!(h.coarsest().n_macros <= 2);
    }

    #[test]
    fn small_graphs_stay_as_is() {
        let ddg = chain(2);
        let h = coarsen(&ddg, &machine("4c1b2l64r"), 1);
        assert_eq!(h.levels.len(), 1);
        assert_eq!(h.coarsest().n_macros, 2);
        let p = h.initial_partition();
        assert_eq!(p.as_slice(), &[0, 1]);
    }

    #[test]
    fn heavy_edges_merge_first() {
        // A tight recurrence pair plus a loose consumer: the recurrence
        // nodes must end up in the same macro before the loose node joins.
        let mut b = Ddg::builder();
        let x = b.add_node(OpKind::FpAdd);
        let y = b.add_node(OpKind::FpAdd);
        b.data(x, y).data_dist(y, x, 1);
        let loose = b.add_node(OpKind::IntAdd);
        b.data(y, loose);
        let ddg = b.build().unwrap();
        let h = coarsen(&ddg, &machine("2c1b2l64r"), 6);
        // after the first merge round, x and y share a macro
        let level1 = &h.levels[1];
        assert_eq!(level1.macro_of[x.index()], level1.macro_of[y.index()]);
        assert_ne!(level1.macro_of[x.index()], level1.macro_of[loose.index()]);
    }
}
