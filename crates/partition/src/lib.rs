//! Multilevel data-dependence-graph partitioning for clustered VLIW
//! scheduling — the baseline scheduler's cluster-assignment stage
//! (references \[1\] and \[2\] of the MICRO-36 2003 replication paper).
//!
//! The pipeline follows the paper's description:
//!
//! 1. **Edge weighting** ([`edge_weights`]): every data dependence is
//!    weighted by the execution-time impact of paying a bus latency on it —
//!    low-slack edges and edges inside recurrences are expensive to cut.
//! 2. **Coarsening** ([`coarsen`]): repeated maximum-weight matchings group
//!    nodes into macro-nodes until as many macro-nodes remain as the
//!    machine has clusters, recording every intermediate level.
//! 3. **Initial partition** ([`Hierarchy::initial_partition`]): the
//!    coarsest macro-nodes map one-to-one onto clusters.
//! 4. **Refinement** ([`refine`]): walking the hierarchy back from coarse
//!    to fine, macro-nodes are greedily moved between clusters whenever a
//!    pseudo-schedule-based score ([`PartitionScore`]) improves.
//!
//! [`partition_loop`] bundles the whole pipeline; [`refine_existing`] is
//! the "Refine Partition" box of the paper's Figure 2, used by the driver
//! each time the II is bumped.
//!
//! # Example
//!
//! ```
//! use cvliw_ddg::{Ddg, OpKind};
//! use cvliw_machine::MachineConfig;
//! use cvliw_partition::partition_loop;
//!
//! let mut b = Ddg::builder();
//! let ld = b.add_node(OpKind::Load);
//! let m0 = b.add_node(OpKind::FpMul);
//! let m1 = b.add_node(OpKind::FpMul);
//! b.data(ld, m0).data(m0, m1);
//! let ddg = b.build()?;
//! let machine = MachineConfig::from_spec("2c1b2l64r")?;
//!
//! let part = partition_loop(&ddg, &machine, 1);
//! // A dependent chain should stay in one cluster: no communications.
//! assert_eq!(part.to_assignment().comm_count(&ddg), 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coarsen;
mod matching;
mod partition;
mod refine;
mod weights;

pub use coarsen::{coarsen, coarsen_from_weights, CoarseLevel, Hierarchy};
pub use matching::greedy_matching;
pub use partition::Partition;
pub use refine::{
    refine, refine_existing, refine_existing_cached, refine_existing_oracle,
    refine_existing_scratch, refine_existing_trace, refine_existing_with, score_partition,
    score_partition_scratch, PartitionScore, RefineCache, RefineMove, RefineScratch,
};
pub use weights::{edge_weights, edge_weights_with};

use cvliw_ddg::Ddg;
use cvliw_machine::MachineConfig;
use cvliw_sched::LoopAnalysis;

/// Runs the full multilevel pipeline: weight, coarsen, seed, refine.
///
/// `ii` is the initiation interval the partition is being built for
/// (normally the loop's MII); capacities and pseudo-schedules are evaluated
/// at this II.
#[must_use]
pub fn partition_loop(ddg: &Ddg, machine: &MachineConfig, ii: u32) -> Partition {
    if machine.clusters() == 1 {
        return Partition::single_cluster(ddg.node_count());
    }
    let hierarchy = coarsen(ddg, machine, ii);
    let initial = hierarchy.initial_partition();
    refine(ddg, machine, ii, &hierarchy, initial)
}

/// [`partition_loop`] on a cached [`LoopAnalysis`]: the edge weights reuse
/// the cache's RecMII and SCC decomposition, and every pseudo-schedule
/// evaluated during refinement reads the cached latency vector. The result
/// is bit-identical to [`partition_loop`].
#[must_use]
pub fn partition_loop_with(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    analysis: &LoopAnalysis,
) -> Partition {
    partition_loop_scratch(ddg, machine, ii, analysis, &mut RefineScratch::default())
}

/// [`partition_loop_with`] on a persistent [`RefineScratch`], so the
/// multilevel refinement walk is allocation-free too. Bit-identical to
/// [`partition_loop`].
#[must_use]
pub fn partition_loop_scratch(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    analysis: &LoopAnalysis,
    scratch: &mut RefineScratch,
) -> Partition {
    if machine.clusters() == 1 {
        return Partition::single_cluster(ddg.node_count());
    }
    let weights = edge_weights_with(ddg, machine, ii, analysis);
    let hierarchy = coarsen_from_weights(ddg, machine, ii, &weights);
    let initial = hierarchy.initial_partition();
    refine::refine_inner(ddg, machine, ii, &hierarchy, initial, analysis, scratch)
}

/// [`partition_loop_scratch`] with a refinement perturbation index, the
/// worker body of best-of-N seed racing: `variant` rotates the
/// target-cluster scan order inside every refinement level, so ties in the
/// greedy move selection break toward different clusters and the walk
/// explores a different trajectory through the same score landscape.
/// `variant == 0` is the canonical order — bit-identical to
/// [`partition_loop_scratch`]; any other variant still only ever accepts
/// strictly score-improving moves.
#[must_use]
pub fn partition_loop_variant(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    analysis: &LoopAnalysis,
    scratch: &mut RefineScratch,
    variant: u32,
) -> Partition {
    if machine.clusters() == 1 {
        return Partition::single_cluster(ddg.node_count());
    }
    let weights = edge_weights_with(ddg, machine, ii, analysis);
    let hierarchy = coarsen_from_weights(ddg, machine, ii, &weights);
    let initial = hierarchy.initial_partition();
    refine::refine_inner_variant(
        ddg, machine, ii, &hierarchy, initial, analysis, scratch, variant,
    )
}
