//! Pseudo-schedule-guided refinement of a partition (reference [2]).
//!
//! Refinement is the compilation driver's hottest loop: every II bump
//! re-scores hundreds of candidate single-node moves. Three layers keep
//! that cheap without changing a single accepted move:
//!
//! * **Lazy lexicographic rejection**: a candidate dies as soon as a cheap
//!   prefix of the score key — capacity overflow and bus overflow, both
//!   computed exactly from O(degree) deltas — already compares worse than
//!   the incumbent. The lexicographic comparison is decided by the first
//!   differing component, so the verdict equals the full score's.
//! * **Incremental scoring** for the survivors: a move only changes the
//!   latencies of the data edges incident to the moved group, so the
//!   recurrence check, the estimated length and the register pressure are
//!   re-derived from an incrementally maintained ASAP fixpoint
//!   ([`IncrementalAsap`]) instead of a from-scratch pseudo-schedule. The
//!   affected cone is updated, speculatively, and rolled back; debug
//!   builds re-score every candidate in full and assert byte equality.
//! * **A move-result cache** ([`RefineCache`]): the communication delta of
//!   a rejected `(node, target)` move depends only on the clusters of a
//!   fixed, graph-structural neighborhood of the node. Entries carry that
//!   neighborhood's cluster bitmask plus a sum of per-cluster version
//!   counters; any accepted move bumps the versions of its two clusters,
//!   so a stale entry can never validate. The counts are latency-free,
//!   hence II-independent: entries filled at one II keep hitting across
//!   the whole II climb.
//!
//! All three layers are observationally pure: `refine_existing_cached`
//! is bit-identical to `refine_existing`, pinned by debug assertions and
//! the differential oracle in `tests/refine_incremental_props.rs`.

use cvliw_ddg::{Ddg, IncrementalAsap, NodeId, OpClass};
use cvliw_machine::MachineConfig;
use cvliw_sched::{pseudo_schedule_scratch, Assignment, LoopAnalysis, PseudoScratch};

use crate::coarsen::{CoarseLevel, Hierarchy};
use crate::partition::Partition;

/// Comparable quality of a partition at a given II; **lower is better**.
///
/// The ordering is lexicographic over, in priority order: functional-unit
/// capacity overflow, bus-bandwidth overflow, recurrence infeasibility,
/// register overflow, communication count, estimated schedule length and
/// load imbalance — i.e. first make the partition schedulable, then
/// minimize communications, then the critical path, then balance.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PartitionScore {
    key: (u32, u32, u8, u32, u32, i64, u32),
}

impl PartitionScore {
    /// Number of communications in the scored partition.
    #[must_use]
    pub fn comms(&self) -> u32 {
        self.key.4
    }

    /// Whether nothing rules the partition out at the scored II.
    #[must_use]
    pub fn feasible(&self) -> bool {
        let (cap, bus, rec, reg, ..) = self.key;
        cap == 0 && bus == 0 && rec == 0 && reg == 0
    }

    /// Estimated schedule length under the pseudo-schedule.
    #[must_use]
    pub fn est_length(&self) -> i64 {
        self.key.5
    }
}

/// Reusable state for refinement and scoring: the pseudo-schedule buffers,
/// a reusable [`Assignment`], the delta-evaluation worklists (group
/// membership stamps, affected-producer lists, usage censuses) and the
/// incremental-ASAP move-speculation state.
///
/// One `RefineScratch` serves a whole compilation — every II of every mode
/// — via `cvliw_replicate::CompileContext`'s compile scratch. All
/// incremental state is rebuilt at every `refine_level` entry, so a
/// scratch may be reused across unrelated graphs (unlike [`RefineCache`]).
#[derive(Clone, Debug)]
pub struct RefineScratch {
    pseudo: PseudoScratch,
    assignment: Assignment,
    /// Current-partition instance census per cluster and class.
    usage: Vec<[u32; 3]>,
    /// Node stamps marking membership of the group being scanned.
    in_group: Vec<bool>,
    /// Producers whose communication status the move can change.
    affected: Vec<NodeId>,
    /// Dedup stamps for building `affected` and the register-update set.
    seen: Vec<u32>,
    /// Current epoch for `seen`.
    epoch: u32,
    /// Incrementally maintained ASAP fixpoint of the current partition.
    inc: IncrementalAsap,
    /// Comm-adjusted per-edge latencies of the current partition.
    cur_edge_lat: Vec<u32>,
    /// `(edge id, previous latency)` log of the speculated candidate.
    edge_changes: Vec<(u32, u32)>,
    /// Destinations of edges whose latency the candidate raised / lowered.
    raised: Vec<NodeId>,
    lowered: Vec<NodeId>,
    /// Per-producer register cost under the current partition's ASAP.
    node_regs: Vec<u64>,
    /// Per-cluster register estimate of the current partition.
    est_base: Vec<u64>,
    /// Per-cluster register estimate of the speculated candidate.
    est_tmp: Vec<u64>,
    /// Communication count of the partition the move base describes, so a
    /// follow-up `refine_level` on the *same* (graph, II, partition) state
    /// can skip the entry recount (see [`LevelOpts::reuse_base`]).
    base_ncoms: u32,
}

impl Default for RefineScratch {
    fn default() -> Self {
        RefineScratch {
            pseudo: PseudoScratch::default(),
            assignment: Assignment::from_partition(&[]),
            usage: Vec::new(),
            in_group: Vec::new(),
            affected: Vec::new(),
            seen: Vec::new(),
            epoch: 0,
            inc: IncrementalAsap::default(),
            cur_edge_lat: Vec::new(),
            edge_changes: Vec::new(),
            raised: Vec::new(),
            lowered: Vec::new(),
            node_regs: Vec::new(),
            est_base: Vec::new(),
            est_tmp: Vec::new(),
            base_ncoms: 0,
        }
    }
}

impl RefineScratch {
    /// Rebuilds the incremental move-speculation base state — the current
    /// partition's comm-adjusted latencies, ASAP fixpoint and per-producer
    /// register costs. Called at `refine_level` entry and after every
    /// accepted move (accepts are rare; candidates are speculative).
    fn rebuild_move_base(
        &mut self,
        ddg: &Ddg,
        machine: &MachineConfig,
        ii: u32,
        part: &Partition,
        analysis: &LoopAnalysis,
    ) {
        let base = analysis.edge_lat();
        let uniform = machine.uniform_transfer_latency();
        self.cur_edge_lat.clear();
        self.cur_edge_lat
            .extend(ddg.edges().zip(base).map(|(e, &lat)| {
                if !e.is_data() {
                    return lat;
                }
                let cs = part.cluster_of(e.src);
                let cd = part.cluster_of(e.dst);
                if cs == cd {
                    lat
                } else {
                    lat + uniform.unwrap_or_else(|| machine.transfer_latency(cs, cd))
                }
            }));
        self.inc.rebuild(ddg, ii, &self.cur_edge_lat);
        self.node_regs.clear();
        self.node_regs.resize(ddg.node_count(), 0);
        self.est_base.clear();
        self.est_base.resize(machine.clusters() as usize, 0);
        if self.inc.is_feasible() {
            let asap = self.inc.asap();
            for n in ddg.node_ids() {
                if !ddg.kind(n).produces_value() {
                    continue;
                }
                let regs = node_reg_cost(ddg, ii, analysis, asap, n);
                self.node_regs[n.index()] = regs;
                self.est_base[part.cluster_of(n) as usize] += regs;
            }
        }
    }
}

/// Register cost of producer `n` under `asap`: its value lives from
/// definition to its furthest consumer (plus iteration distance), and an
/// overlapped lifetime of `span` cycles pins `ceil(span / II)` rotating
/// registers. Mirrors the pseudo-schedule's estimate exactly.
fn node_reg_cost(ddg: &Ddg, ii: u32, analysis: &LoopAnalysis, asap: &[i64], n: NodeId) -> u64 {
    let def = asap[n.index()];
    let mut last = def + i64::from(analysis.node_lat()[n.index()]);
    for e in ddg.out_edges(n) {
        if e.is_data() {
            last = last.max(asap[e.dst.index()] + i64::from(ii) * i64::from(e.distance));
        }
    }
    let span = u64::try_from((last - def).max(1)).expect("non-negative");
    span.div_ceil(u64::from(ii))
}

/// Scores a partition with a pseudo-schedule (see [`PartitionScore`]).
///
/// One-shot convenience: computes a [`LoopAnalysis`] internally. Hot paths
/// use [`score_partition_scratch`].
#[must_use]
pub fn score_partition(
    ddg: &Ddg,
    part: &Partition,
    machine: &MachineConfig,
    ii: u32,
) -> PartitionScore {
    let analysis = LoopAnalysis::new(ddg, machine);
    score_partition_scratch(
        ddg,
        part,
        machine,
        ii,
        &analysis,
        &mut RefineScratch::default(),
    )
}

/// [`score_partition`] on a cached [`LoopAnalysis`] and a reusable
/// [`RefineScratch`] — allocation-free and bit-identical.
#[must_use]
pub fn score_partition_scratch(
    ddg: &Ddg,
    part: &Partition,
    machine: &MachineConfig,
    ii: u32,
    analysis: &LoopAnalysis,
    scratch: &mut RefineScratch,
) -> PartitionScore {
    scratch.assignment.set_from_partition(part.as_slice());
    let ps = pseudo_schedule_scratch(
        ddg,
        &scratch.assignment,
        machine,
        ii,
        analysis,
        &mut scratch.pseudo,
    );
    let bus_overflow = ps.ncoms.saturating_sub(machine.coms_capacity_per_ii(ii));
    let totals = scratch.pseudo.usage.iter().map(|u| u.iter().sum());
    let (min, max) = totals.fold((u32::MAX, 0u32), |(lo, hi), t: u32| (lo.min(t), hi.max(t)));
    let imbalance = max - min.min(max);
    PartitionScore {
        key: (
            ps.cap_overflow,
            bus_overflow,
            u8::from(!ps.recurrences_ok),
            ps.reg_overflow,
            ps.ncoms,
            if ps.recurrences_ok {
                ps.est_length
            } else {
                i64::MAX
            },
            imbalance,
        ),
    }
}

/// Maximum improvement passes per hierarchy level.
const MAX_PASSES: usize = 2;

/// An accepted refinement move: `(node or group-representative index,
/// source cluster, destination cluster)`.
#[doc(hidden)]
pub type RefineMove = (u32, u8, u8);

/// Cached communication deltas of candidate moves, keyed `(node,
/// destination cluster)`, surviving across refinement calls and IIs.
///
/// A candidate's `before`/`after` communication counts depend only on the
/// clusters of a **graph-structural** neighborhood of the node: the node,
/// its data predecessors, and the data successors of those. Each entry
/// records the cluster bitmask of that neighborhood plus the sum of the
/// per-cluster **version counters** over the mask at fill time. Every
/// observed cluster change bumps the versions of its two clusters, and
/// versions only grow — so the sums match iff no relevant node changed
/// cluster, and a stale entry can never validate. The counts contain no
/// latencies, so entries filled at one II stay valid across the II climb.
///
/// A cache is only sound for a single `(graph, machine)` pair (the
/// neighborhood is graph-structural, the key space machine-shaped). The
/// driver owns one per compilation context; reusing one across loops the
/// way a [`RefineScratch`] may be reused is a contract violation, guarded
/// by debug assertions that recompute every hit in full.
#[derive(Clone, Debug, Default)]
pub struct RefineCache {
    nodes: usize,
    clusters: u8,
    /// `nodes × clusters` move entries, row-major by node.
    entries: Vec<MoveEntry>,
    /// Per-cluster move counters; bumped for both endpoint clusters of
    /// every observed node move.
    version: Vec<u32>,
    /// Partition snapshot the versions are relative to.
    last_part: Vec<u8>,
    primed: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct MoveEntry {
    /// Version-counter sum over `mask` at fill time.
    vsum: u64,
    /// Cluster bitmask of the move's structural neighborhood at fill time.
    mask: u32,
    /// Communications paid by the neighborhood with the node in place.
    before: u32,
    /// Communications paid with the node re-homed to the entry's target.
    after: u32,
    valid: bool,
}

impl RefineCache {
    /// Drops every entry while keeping the allocations, making the cache
    /// safe to hand to a *different* `(graph, machine)` pair. Callers that
    /// recycle a cache-bearing scratch across loops must call this at the
    /// hand-over — two graphs can share a node count, and then nothing in
    /// [`RefineCache::prepare`] would notice the swap.
    pub fn invalidate(&mut self) {
        self.primed = false;
    }

    /// Re-anchors the cache to `part` before a refinement call: resizes
    /// (invalidating everything) on shape change, otherwise folds the
    /// partition diff since the last call into the version counters.
    fn prepare(&mut self, part: &[u8], clusters: u8) {
        if !self.primed || self.nodes != part.len() || self.clusters != clusters {
            self.nodes = part.len();
            self.clusters = clusters;
            self.entries.clear();
            self.entries
                .resize(part.len() * clusters as usize, MoveEntry::default());
            self.version.clear();
            self.version.resize(clusters as usize, 0);
            self.last_part.clear();
            self.last_part.extend_from_slice(part);
            self.primed = true;
        } else {
            self.observe(part);
        }
    }

    /// Folds every cluster change between the snapshot and `part` into the
    /// version counters. Called on entry and after each accepted move.
    fn observe(&mut self, part: &[u8]) {
        for (&new, old) in part.iter().zip(self.last_part.iter_mut()) {
            if *old != new {
                self.version[*old as usize] += 1;
                self.version[new as usize] += 1;
                *old = new;
            }
        }
    }

    fn vsum_of(&self, mask: u32) -> u64 {
        let mut sum = 0u64;
        let mut m = mask;
        while m != 0 {
            sum += u64::from(self.version[m.trailing_zeros() as usize]);
            m &= m - 1;
        }
        sum
    }

    /// The cached `(before, after)` communication counts of moving `node`
    /// to `target`, if still valid.
    fn get(&self, node: usize, target: u8) -> Option<(u32, u32)> {
        let e = &self.entries[node * self.clusters as usize + target as usize];
        (e.valid && e.vsum == self.vsum_of(e.mask)).then_some((e.before, e.after))
    }

    /// Fills the `(node, target)` entry under the current partition.
    fn put(
        &mut self,
        ddg: &Ddg,
        part: &Partition,
        node: usize,
        target: u8,
        before: u32,
        after: u32,
    ) {
        let n = NodeId::new(node as u32);
        let mut mask = 0u32;
        let mut add = |x: NodeId| mask |= 1u32 << part.cluster_of(x);
        add(n);
        for &s in ddg.data_succs(n) {
            add(s);
        }
        for &p in ddg.data_preds(n) {
            add(p);
            for &s in ddg.data_succs(p) {
                add(s);
            }
        }
        let vsum = self.vsum_of(mask);
        self.entries[node * self.clusters as usize + target as usize] = MoveEntry {
            vsum,
            mask,
            before,
            after,
            valid: true,
        };
    }
}

/// Refines a partition by walking the hierarchy from coarse to fine,
/// greedily moving macro-nodes between clusters while the score improves.
#[must_use]
pub fn refine(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    hierarchy: &Hierarchy,
    initial: Partition,
) -> Partition {
    let analysis = LoopAnalysis::new(ddg, machine);
    refine_inner(
        ddg,
        machine,
        ii,
        hierarchy,
        initial,
        &analysis,
        &mut RefineScratch::default(),
    )
}

pub(crate) fn refine_inner(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    hierarchy: &Hierarchy,
    initial: Partition,
    analysis: &LoopAnalysis,
    scratch: &mut RefineScratch,
) -> Partition {
    refine_inner_variant(ddg, machine, ii, hierarchy, initial, analysis, scratch, 0)
}

/// [`refine_inner`] with a perturbation index for best-of-N seed racing:
/// `variant` rotates the target-cluster scan order inside every level, so
/// score *ties* between destination clusters break differently and the
/// greedy walk explores a different trajectory. `variant == 0` is the
/// canonical order — bit-identical to [`refine_inner`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn refine_inner_variant(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    hierarchy: &Hierarchy,
    initial: Partition,
    analysis: &LoopAnalysis,
    scratch: &mut RefineScratch,
    variant: u32,
) -> Partition {
    let mut part = initial;
    // Skip the coarsest level: each of its macros is an entire cluster.
    // Consecutive levels see the same (graph, II, partition) state, so the
    // first level's exit move base is every later level's entry base.
    let mut reuse_base = false;
    for level in hierarchy.levels.iter().rev().skip(1) {
        let mut opts = LevelOpts {
            variant,
            cache: None,
            trace: None,
            reuse_base,
        };
        part = refine_level(ddg, machine, ii, level, part, analysis, scratch, &mut opts);
        reuse_base = true;
    }
    part
}

/// The "Refine Partition" box of the paper's Figure 2: refinement at node
/// granularity only, used by the driver whenever it increases the II.
#[must_use]
pub fn refine_existing(ddg: &Ddg, machine: &MachineConfig, ii: u32, part: Partition) -> Partition {
    if machine.clusters() == 1 {
        return part;
    }
    let analysis = LoopAnalysis::new(ddg, machine);
    refine_existing_scratch(
        ddg,
        machine,
        ii,
        part,
        &analysis,
        &mut RefineScratch::default(),
    )
}

/// [`refine_existing`] on a cached [`LoopAnalysis`] (bit-identical results;
/// the II-invariant latency vector is read from the cache).
#[must_use]
pub fn refine_existing_with(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    part: Partition,
    analysis: &LoopAnalysis,
) -> Partition {
    refine_existing_scratch(
        ddg,
        machine,
        ii,
        part,
        analysis,
        &mut RefineScratch::default(),
    )
}

/// [`refine_existing_with`] on a persistent [`RefineScratch`] — bit-identical
/// to [`refine_existing`].
#[must_use]
pub fn refine_existing_scratch(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    part: Partition,
    analysis: &LoopAnalysis,
    scratch: &mut RefineScratch,
) -> Partition {
    refine_existing_driver(ddg, machine, ii, part, analysis, scratch, None, None)
}

/// [`refine_existing_scratch`] with a persistent [`RefineCache`] — the
/// driver's per-II entry point. The cache must only ever see this one
/// `(graph, machine)` pair. Bit-identical to [`refine_existing`].
#[must_use]
pub fn refine_existing_cached(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    part: Partition,
    analysis: &LoopAnalysis,
    scratch: &mut RefineScratch,
    cache: &mut RefineCache,
) -> Partition {
    refine_existing_driver(ddg, machine, ii, part, analysis, scratch, Some(cache), None)
}

/// [`refine_existing_cached`] recording every accepted move — the
/// production side of the differential oracle tests.
#[doc(hidden)]
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn refine_existing_trace(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    part: Partition,
    analysis: &LoopAnalysis,
    scratch: &mut RefineScratch,
    cache: Option<&mut RefineCache>,
    trace: &mut Vec<RefineMove>,
) -> Partition {
    refine_existing_driver(
        ddg,
        machine,
        ii,
        part,
        analysis,
        scratch,
        cache,
        Some(trace),
    )
}

#[allow(clippy::too_many_arguments)]
fn refine_existing_driver(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    part: Partition,
    analysis: &LoopAnalysis,
    scratch: &mut RefineScratch,
    cache: Option<&mut RefineCache>,
    trace: Option<&mut Vec<RefineMove>>,
) -> Partition {
    if machine.clusters() == 1 {
        return part;
    }
    if let Some(cache) = &cache {
        debug_assert!(!cache.primed || cache.nodes == ddg.node_count() || cache.nodes == 0);
    }
    let identity = CoarseLevel {
        macro_of: (0..ddg.node_count()).collect(),
        n_macros: ddg.node_count(),
    };
    let mut opts = LevelOpts {
        variant: 0,
        cache,
        trace,
        reuse_base: false,
    };
    if let Some(cache) = opts.cache.as_deref_mut() {
        cache.prepare(part.as_slice(), machine.clusters());
    }
    refine_level(
        ddg, machine, ii, &identity, part, analysis, scratch, &mut opts,
    )
}

/// A from-scratch reference implementation of [`refine_existing_scratch`]:
/// the same greedy walk, but every candidate is scored with a full
/// pseudo-schedule — no lazy rejection, no incremental ASAP, no cache.
/// Returns the refined partition and the accepted-move sequence; the
/// differential proptests assert both match the production path exactly.
#[doc(hidden)]
#[must_use]
pub fn refine_existing_oracle(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    mut part: Partition,
    analysis: &LoopAnalysis,
) -> (Partition, Vec<RefineMove>) {
    let mut moves = Vec::new();
    if machine.clusters() == 1 {
        return (part, moves);
    }
    let mut scratch = RefineScratch::default();
    let mut best = score_partition_scratch(ddg, &part, machine, ii, analysis, &mut scratch);
    for _ in 0..MAX_PASSES {
        let mut improved = false;
        let consider_all = !best.feasible();
        for i in 0..ddg.node_count() {
            let n = NodeId::new(i as u32);
            let current = part.cluster_of(n);
            let boundary = ddg
                .out_edges(n)
                .map(|e| e.dst)
                .chain(ddg.in_edges(n).map(|e| e.src))
                .any(|other| part.cluster_of(other) != current);
            if !consider_all && !boundary {
                continue;
            }
            let mut best_move: Option<(u8, PartitionScore)> = None;
            for target in 0..machine.clusters() {
                if target == current {
                    continue;
                }
                part.set_cluster(n, target);
                let score =
                    score_partition_scratch(ddg, &part, machine, ii, analysis, &mut scratch);
                part.set_cluster(n, current);
                let thresh = best_move.as_ref().map_or(&best, |(_, s)| s);
                if score < *thresh {
                    best_move = Some((target, score));
                }
            }
            if let Some((target, score)) = best_move {
                part.set_cluster(n, target);
                best = score;
                improved = true;
                moves.push((i as u32, current, target));
            }
        }
        if !improved {
            break;
        }
    }
    (part, moves)
}

/// Whether producer `x` needs a bus under `part` with the nodes marked in
/// `in_group` re-homed to `target` — the exact [`Assignment::needs_comm`]
/// predicate evaluated without materializing the assignment.
fn needs_comm_moved(ddg: &Ddg, part: &Partition, in_group: &[bool], target: u8, x: NodeId) -> bool {
    if !ddg.kind(x).produces_value() {
        return false;
    }
    let cx = if in_group[x.index()] {
        target
    } else {
        part.cluster_of(x)
    };
    ddg.data_succs(x).iter().any(|&y| {
        let cy = if in_group[y.index()] {
            target
        } else {
            part.cluster_of(y)
        };
        cy != cx
    })
}

/// Per-cluster capacity overflow of one cluster under a usage census.
fn cluster_overflow(machine: &MachineConfig, ii: u32, cluster: u8, usage: &[u32; 3]) -> u32 {
    OpClass::ALL
        .iter()
        .map(|&class| {
            let cap = u32::from(machine.fu_count_in(cluster, class)) * ii;
            usage[class.index()].saturating_sub(cap)
        })
        .sum()
}

/// Per-call refinement options: the tie-break perturbation, the optional
/// move-delta cache (singleton groups only) and the optional move trace.
struct LevelOpts<'a> {
    variant: u32,
    cache: Option<&'a mut RefineCache>,
    trace: Option<&'a mut Vec<RefineMove>>,
    /// The scratch already holds the move base (census, comm count, ASAP
    /// fixpoint, register estimates) of exactly this (graph, II, partition)
    /// — true between consecutive levels of the multilevel walk, where the
    /// previous level's exit state *is* this level's entry state. Skips the
    /// O(V + E) entry recount; the entry-score debug assertion still
    /// cross-checks the reused state against a full pseudo-schedule.
    reuse_base: bool,
}

#[allow(clippy::too_many_arguments)]
fn refine_level(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    level: &CoarseLevel,
    mut part: Partition,
    analysis: &LoopAnalysis,
    scratch: &mut RefineScratch,
    opts: &mut LevelOpts,
) -> Partition {
    let groups = level.groups();
    let bus_cap = machine.coms_capacity_per_ii(ii);
    // The cheap-delta base state of the *current* partition: instance
    // census, communication count and the incremental ASAP fixpoint,
    // refreshed after every accepted move. The entry score is assembled
    // from the same base state instead of a second full pseudo-schedule.
    let mut usage = std::mem::take(&mut scratch.usage);
    let mut ncoms;
    if opts.reuse_base {
        ncoms = scratch.base_ncoms;
    } else {
        scratch.assignment.set_from_partition(part.as_slice());
        scratch
            .assignment
            .class_usage_into(ddg, machine.clusters(), &mut usage);
        ncoms = scratch.assignment.comm_count(ddg);
        scratch.rebuild_move_base(ddg, machine, ii, &part, analysis);
        scratch.base_ncoms = ncoms;
    }
    let mut best_score = base_score(
        machine,
        ii,
        bus_cap,
        &usage,
        ncoms,
        &scratch.inc,
        &scratch.est_base,
    );
    debug_assert_eq!(
        best_score,
        score_partition_scratch(ddg, &part, machine, ii, analysis, scratch),
        "base-state entry score diverged from the full pseudo-schedule"
    );

    scratch.in_group.clear();
    scratch.in_group.resize(ddg.node_count(), false);
    scratch.seen.clear();
    scratch.seen.resize(ddg.node_count(), 0);

    // Only macros touching a cross-cluster data edge are move candidates.
    let is_boundary = |part: &Partition, group: &[usize]| {
        group.iter().any(|&i| {
            let n = NodeId::new(i as u32);
            let c = part.cluster_of(n);
            ddg.out_edges(n)
                .map(|e| e.dst)
                .chain(ddg.in_edges(n).map(|e| e.src))
                .any(|other| part.cluster_of(other) != c)
        })
    };

    for _ in 0..MAX_PASSES {
        let mut improved = false;
        // Boundary gating is an optimization for feasible partitions; an
        // infeasible one (e.g. fp work stranded in a cluster without fp
        // units on a heterogeneous machine) may need interior moves.
        let consider_all = !best_score.feasible();
        for group in &groups {
            if group.is_empty() || (!consider_all && !is_boundary(&part, group)) {
                continue;
            }
            let current = part.cluster_of(NodeId::new(group[0] as u32));
            // The move-delta cache only keys singleton groups: multilevel
            // macro representatives alias across hierarchy levels.
            let singleton = group.len() == 1;

            // Group-invariant delta ingredients, shared by every target:
            // membership marks, the affected-producer list, the group's
            // class census and (lazily) the communications paid under
            // `part`.
            scratch.epoch += 1;
            let epoch = scratch.epoch;
            for &i in group {
                scratch.in_group[i] = true;
            }
            scratch.affected.clear();
            let mut group_census = [0u32; 3];
            for &i in group {
                let m = NodeId::new(i as u32);
                group_census[ddg.kind(m).class().index()] += 1;
                if scratch.seen[i] != epoch {
                    scratch.seen[i] = epoch;
                    scratch.affected.push(m);
                }
                for &p in ddg.data_preds(m) {
                    if scratch.seen[p.index()] != epoch {
                        scratch.seen[p.index()] = epoch;
                        scratch.affected.push(p);
                    }
                }
            }
            let mut before: Option<u32> = None;
            let cap_rest: u32 = (0..machine.clusters())
                .map(|c| cluster_overflow(machine, ii, c, &usage[c as usize]))
                .sum::<u32>()
                - cluster_overflow(machine, ii, current, &usage[current as usize]);
            let mut src_usage = usage[current as usize];
            for (slot, &g) in src_usage.iter_mut().zip(&group_census) {
                *slot -= g;
            }

            let mut best_move: Option<(u8, PartitionScore)> = None;
            // The `variant` rotation only changes which *tied* destination
            // is scanned (and therefore kept) first; variant 0 is the
            // canonical ascending order.
            let clusters = u32::from(machine.clusters());
            for t in 0..clusters {
                let target = ((t + opts.variant) % clusters) as u8;
                if target == current {
                    continue;
                }
                let thresh = best_move.as_ref().map_or(&best_score, |(_, s)| s);
                // Lazy lexicographic rejection on the exact cheap prefix:
                // (capacity, bus). `thresh` is what the full score would
                // be compared against.
                let mut dst_usage = usage[target as usize];
                for (slot, &g) in dst_usage.iter_mut().zip(&group_census) {
                    *slot += g;
                }
                let cap = cap_rest - cluster_overflow(machine, ii, target, &usage[target as usize])
                    + cluster_overflow(machine, ii, current, &src_usage)
                    + cluster_overflow(machine, ii, target, &dst_usage);
                if cap > thresh.key.0 {
                    debug_check_rejection(
                        ddg,
                        machine,
                        ii,
                        &mut part,
                        analysis,
                        scratch,
                        group,
                        current,
                        target,
                        &best_score,
                        &best_move,
                    );
                    continue;
                }
                // Exact communication delta of the move, from the cache
                // when a prior fill is still valid, else recomputed (and
                // cached for later passes and IIs).
                let (bef, after) = match opts
                    .cache
                    .as_deref()
                    .filter(|_| singleton)
                    .and_then(|c| c.get(group[0], target))
                {
                    Some(hit) => {
                        #[cfg(debug_assertions)]
                        {
                            let want_before = comm_count_moved(ddg, &part, scratch, current);
                            let want_after = comm_count_moved(ddg, &part, scratch, target);
                            debug_assert_eq!(
                                hit,
                                (want_before, want_after),
                                "stale RefineCache hit for node {} -> {target}",
                                group[0]
                            );
                        }
                        hit
                    }
                    None => {
                        let bef = *before
                            .get_or_insert_with(|| comm_count_moved(ddg, &part, scratch, current));
                        let after = comm_count_moved(ddg, &part, scratch, target);
                        if singleton {
                            if let Some(cache) = opts.cache.as_deref_mut() {
                                cache.put(ddg, &part, group[0], target, bef, after);
                            }
                        }
                        (bef, after)
                    }
                };
                let q_ncoms = ncoms - bef + after;
                let bus = q_ncoms.saturating_sub(bus_cap);
                if cap == thresh.key.0 && bus > thresh.key.1 {
                    debug_check_rejection(
                        ddg,
                        machine,
                        ii,
                        &mut part,
                        analysis,
                        scratch,
                        group,
                        current,
                        target,
                        &best_score,
                        &best_move,
                    );
                    continue;
                }
                // One more exact cheap rejection: with (cap, bus) tied and
                // an incumbent that is recurrence- and register-feasible,
                // a candidate with MORE communications loses no matter what
                // its own expensive components are — its key tail is at
                // best (0, 0, q_ncoms, ..) which already compares greater.
                // This is the common shape in the II climb (stable feasible
                // partition, every move adds a communication) and is what
                // keeps most candidates away from the ASAP speculation.
                if cap == thresh.key.0
                    && bus == thresh.key.1
                    && thresh.key.2 == 0
                    && thresh.key.3 == 0
                    && q_ncoms > thresh.key.4
                {
                    debug_check_rejection(
                        ddg,
                        machine,
                        ii,
                        &mut part,
                        analysis,
                        scratch,
                        group,
                        current,
                        target,
                        &best_score,
                        &best_move,
                    );
                    continue;
                }

                // Still in the race: derive the expensive key components
                // (recurrences, registers, length, imbalance) from a
                // speculative incremental-ASAP update instead of a full
                // pseudo-schedule. `None` is a proven raise-only rejection.
                let score = speculate_move_score(
                    ddg, machine, ii, &part, analysis, scratch, group, target, cap, bus, q_ncoms,
                    &usage, current, &src_usage, &dst_usage, thresh,
                );
                #[cfg(debug_assertions)]
                {
                    for &i in group {
                        part.set_cluster(NodeId::new(i as u32), target);
                    }
                    let full = score_partition_scratch(ddg, &part, machine, ii, analysis, scratch);
                    for &i in group {
                        part.set_cluster(NodeId::new(i as u32), current);
                    }
                    match &score {
                        Some(score) => debug_assert_eq!(
                            score, &full,
                            "incremental candidate score diverged from the full pseudo-schedule"
                        ),
                        None => debug_assert!(
                            full >= *best_move.as_ref().map_or(&best_score, |(_, s)| s),
                            "monotonicity rejection dropped an improving move"
                        ),
                    }
                }
                let Some(score) = score else { continue };
                let thresh = best_move.as_ref().map_or(&best_score, |(_, s)| s);
                if score < *thresh {
                    best_move = Some((target, score));
                }
            }
            for &i in group {
                scratch.in_group[i] = false;
            }
            if let Some((target, score)) = best_move {
                for &i in group {
                    part.set_cluster(NodeId::new(i as u32), target);
                }
                best_score = score;
                improved = true;
                scratch.assignment.set_from_partition(part.as_slice());
                scratch
                    .assignment
                    .class_usage_into(ddg, machine.clusters(), &mut usage);
                ncoms = scratch.assignment.comm_count(ddg);
                scratch.rebuild_move_base(ddg, machine, ii, &part, analysis);
                scratch.base_ncoms = ncoms;
                if let Some(cache) = opts.cache.as_deref_mut() {
                    cache.observe(part.as_slice());
                }
                if let Some(trace) = opts.trace.as_deref_mut() {
                    trace.push((group[0] as u32, current, target));
                }
            }
        }
        if !improved {
            break;
        }
    }
    scratch.usage = usage;
    part
}

/// Communications paid by the affected producers with the marked group
/// re-homed to `target` — the cacheable half of a move's bus delta.
fn comm_count_moved(ddg: &Ddg, part: &Partition, scratch: &RefineScratch, target: u8) -> u32 {
    scratch
        .affected
        .iter()
        .filter(|&&x| needs_comm_moved(ddg, part, &scratch.in_group, target, x))
        .count() as u32
}

/// Debug-build proof obligation of the lazy (cap, bus) rejection: re-score
/// the rejected candidate in full and assert the verdict matches.
#[allow(clippy::too_many_arguments, unused_variables)]
fn debug_check_rejection(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    part: &mut Partition,
    analysis: &LoopAnalysis,
    scratch: &mut RefineScratch,
    group: &[usize],
    current: u8,
    target: u8,
    best_score: &PartitionScore,
    best_move: &Option<(u8, PartitionScore)>,
) {
    #[cfg(debug_assertions)]
    {
        for &i in group {
            part.set_cluster(NodeId::new(i as u32), target);
        }
        let full = score_partition_scratch(ddg, part, machine, ii, analysis, scratch);
        for &i in group {
            part.set_cluster(NodeId::new(i as u32), current);
        }
        let thresh = best_move.as_ref().map_or(best_score, |(_, s)| s);
        debug_assert!(
            full >= *thresh,
            "lazy prefix rejected an improving move: {full:?} < {thresh:?}"
        );
    }
}

/// Scores one surviving candidate move incrementally: applies the move's
/// edge-latency changes, speculates the ASAP fixpoint through the affected
/// cone, re-derives the register estimate over only the producers whose
/// lifetime or home could have changed, and rolls everything back. The
/// returned score is byte-identical to [`score_partition_scratch`] of the
/// moved partition (asserted per candidate in debug builds).
#[allow(clippy::too_many_arguments)]
fn speculate_move_score(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    part: &Partition,
    analysis: &LoopAnalysis,
    scratch: &mut RefineScratch,
    group: &[usize],
    target: u8,
    cap: u32,
    bus: u32,
    q_ncoms: u32,
    usage: &[[u32; 3]],
    current: u8,
    src_usage: &[u32; 3],
    dst_usage: &[u32; 3],
    thresh: &PartitionScore,
) -> Option<PartitionScore> {
    let RefineScratch {
        in_group,
        seen,
        epoch,
        inc,
        cur_edge_lat,
        edge_changes,
        raised,
        lowered,
        node_regs,
        est_base,
        est_tmp,
        ..
    } = scratch;

    // 1. Collect the move's edge-latency changes: only data edges incident
    // to the group can change, and each is visited exactly once (in-edges
    // whose source is also in the group were already seen as out-edges).
    edge_changes.clear();
    raised.clear();
    lowered.clear();
    let base = analysis.edge_lat();
    let uniform = machine.uniform_transfer_latency();
    {
        let eff = |n: NodeId| {
            if in_group[n.index()] {
                target
            } else {
                part.cluster_of(n)
            }
        };
        let mut consider = |eid: u32| {
            let e = ddg.edge(eid);
            if !e.is_data() {
                return;
            }
            let cs = eff(e.src);
            let cd = eff(e.dst);
            let lat = base[eid as usize]
                + if cs == cd {
                    0
                } else {
                    uniform.unwrap_or_else(|| machine.transfer_latency(cs, cd))
                };
            let old = cur_edge_lat[eid as usize];
            if lat != old {
                edge_changes.push((eid, old));
                cur_edge_lat[eid as usize] = lat;
                if lat > old {
                    raised.push(e.dst);
                } else {
                    lowered.push(e.dst);
                }
            }
        };
        for &i in group {
            let m = NodeId::new(i as u32);
            for &eid in ddg.out_edge_ids(m) {
                consider(eid);
            }
            for &eid in ddg.in_edge_ids(m) {
                if !in_group[ddg.edge(eid).src.index()] {
                    consider(eid);
                }
            }
        }
    }

    // 2. Monotonicity rejection: a move that only *raises* latencies (it
    // pulls the group away from every neighbour; nothing gets closer) can
    // only grow the least fixpoint, so its length is at least the base
    // length — and an infeasible base or candidate stays / becomes
    // infeasible, which is worse still. Against a recurrence- and
    // register-feasible incumbent that ties the whole cheap prefix, the
    // candidate can therefore only win on imbalance, and only when the
    // incumbent's length already equals the base length. Everything here
    // is exact; no speculation is needed to reject.
    if lowered.is_empty()
        && cap == thresh.key.0
        && bus == thresh.key.1
        && thresh.key.2 == 0
        && thresh.key.3 == 0
        && q_ncoms == thresh.key.4
    {
        let beaten = if thresh.key.5 < inc.length() {
            true
        } else if thresh.key.5 == inc.length() {
            imbalance_of(machine, usage, current, target, src_usage, dst_usage) >= thresh.key.6
        } else {
            false
        };
        if beaten {
            for &(eid, old) in edge_changes.iter() {
                cur_edge_lat[eid as usize] = old;
            }
            return None;
        }
    }

    // 3. Speculate the ASAP fixpoint through the affected cone.
    let (rec, est, reg) = match inc.speculate(ddg, ii, cur_edge_lat, raised, lowered) {
        // Infeasible candidate: the full score reports reg 0 and max est.
        None => (1u8, i64::MAX, 0u32),
        Some(len) => {
            // 4. Register estimate. A producer's cost changes only if its
            // own ASAP or a data successor's ASAP moved, or it is in the
            // group (its home cluster changes); update exactly that set.
            let reg = match inc.spec_changed() {
                Some(changed) => {
                    est_tmp.clone_from(est_base);
                    *epoch += 1;
                    let ep = *epoch;
                    let asap = inc.asap();
                    let mut update = |i: usize| {
                        if seen[i] == ep {
                            return;
                        }
                        seen[i] = ep;
                        let n = NodeId::new(i as u32);
                        if !ddg.kind(n).produces_value() {
                            return;
                        }
                        est_tmp[part.cluster_of(n) as usize] -= node_regs[i];
                        let home = if in_group[i] {
                            target
                        } else {
                            part.cluster_of(n)
                        };
                        est_tmp[home as usize] += node_reg_cost(ddg, ii, analysis, asap, n);
                    };
                    for &(v, _) in changed {
                        update(v as usize);
                        for &p in ddg.data_preds(NodeId::new(v)) {
                            update(p.index());
                        }
                    }
                    for &i in group {
                        update(i);
                    }
                    reg_overflow_of(est_tmp, machine)
                }
                // The speculation fell back to a full sweep (infeasible
                // base or budget blown): recompute the estimate in full.
                None => {
                    est_tmp.clear();
                    est_tmp.resize(machine.clusters() as usize, 0);
                    let asap = inc.asap();
                    for n in ddg.node_ids() {
                        if !ddg.kind(n).produces_value() {
                            continue;
                        }
                        let home = if in_group[n.index()] {
                            target
                        } else {
                            part.cluster_of(n)
                        };
                        est_tmp[home as usize] += node_reg_cost(ddg, ii, analysis, asap, n);
                    }
                    reg_overflow_of(est_tmp, machine)
                }
            };
            (0u8, len, reg)
        }
    };

    // 5. Load imbalance from the substituted usage census — O(clusters).
    let imbalance = imbalance_of(machine, usage, current, target, src_usage, dst_usage);

    // 6. Roll the speculation back; the base state is untouched.
    inc.rollback();
    for &(eid, old) in edge_changes.iter() {
        cur_edge_lat[eid as usize] = old;
    }

    Some(PartitionScore {
        key: (cap, bus, rec, reg, q_ncoms, est, imbalance),
    })
}

/// Load imbalance of the candidate partition, from the base census with
/// the group's source / destination rows substituted — O(clusters).
fn imbalance_of(
    machine: &MachineConfig,
    usage: &[[u32; 3]],
    current: u8,
    target: u8,
    src_usage: &[u32; 3],
    dst_usage: &[u32; 3],
) -> u32 {
    let mut lo = u32::MAX;
    let mut hi = 0u32;
    for c in 0..machine.clusters() {
        let total: u32 = if c == current {
            src_usage.iter().sum()
        } else if c == target {
            dst_usage.iter().sum()
        } else {
            usage[c as usize].iter().sum()
        };
        lo = lo.min(total);
        hi = hi.max(total);
    }
    hi - lo.min(hi)
}

/// [`score_partition_scratch`] of the *current* partition assembled from
/// the already-maintained base state (usage census, communication count,
/// incremental ASAP fixpoint, per-cluster register estimate) — byte-equal
/// by construction, asserted at every `refine_level` entry in debug builds.
fn base_score(
    machine: &MachineConfig,
    ii: u32,
    bus_cap: u32,
    usage: &[[u32; 3]],
    ncoms: u32,
    inc: &IncrementalAsap,
    est_base: &[u64],
) -> PartitionScore {
    let cap: u32 = (0..machine.clusters())
        .map(|c| cluster_overflow(machine, ii, c, &usage[c as usize]))
        .sum();
    let bus = ncoms.saturating_sub(bus_cap);
    let (rec, est, reg) = if inc.is_feasible() {
        (0u8, inc.length(), reg_overflow_of(est_base, machine))
    } else {
        (1u8, i64::MAX, 0u32)
    };
    let (lo, hi) = usage
        .iter()
        .map(|u| u.iter().sum::<u32>())
        .fold((u32::MAX, 0u32), |(lo, hi), t| (lo.min(t), hi.max(t)));
    PartitionScore {
        key: (cap, bus, rec, reg, ncoms, est, hi - lo.min(hi)),
    }
}

/// Total register-file excess of a per-cluster estimate.
fn reg_overflow_of(est: &[u64], machine: &MachineConfig) -> u32 {
    est.iter()
        .map(|&e| {
            u32::try_from(e.saturating_sub(u64::from(machine.regs_per_cluster())))
                .unwrap_or(u32::MAX)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarsen::coarsen;
    use cvliw_ddg::OpKind;

    fn machine(spec: &str) -> MachineConfig {
        MachineConfig::from_spec(spec).unwrap()
    }

    /// Two independent chains that obviously belong in separate clusters.
    fn two_chains() -> Ddg {
        let mut b = Ddg::builder();
        for _ in 0..2 {
            let x = b.add_node(OpKind::Load);
            let y = b.add_node(OpKind::FpMul);
            let z = b.add_node(OpKind::Store);
            b.data(x, y).data(y, z);
        }
        b.build().unwrap()
    }

    #[test]
    fn refinement_never_worsens_the_score() {
        let ddg = two_chains();
        let m = machine("2c1b2l64r");
        let h = coarsen(&ddg, &m, 2);
        let initial = h.initial_partition();
        let initial_score = score_partition(&ddg, &initial, &m, 2);
        let refined = refine(&ddg, &m, 2, &h, initial);
        let refined_score = score_partition(&ddg, &refined, &m, 2);
        assert!(refined_score <= initial_score);
    }

    #[test]
    fn bad_partition_gets_fixed() {
        // Deliberately split both chains across clusters: refinement should
        // remove all communications.
        let ddg = two_chains();
        let m = machine("2c1b2l64r");
        let bad = Partition::from_vec(vec![0, 1, 0, 1, 0, 1]);
        assert!(bad.comm_count(&ddg) > 0);
        let fixed = refine_existing(&ddg, &m, 2, bad);
        assert_eq!(
            fixed.comm_count(&ddg),
            0,
            "chains reunited: {:?}",
            fixed.as_slice()
        );
    }

    #[test]
    fn capacity_overflow_dominates_score() {
        let mut b = Ddg::builder();
        for _ in 0..4 {
            b.add_node(OpKind::Load);
        }
        let ddg = b.build().unwrap();
        let m = machine("4c1b2l64r"); // 1 mem port per cluster
        let packed = Partition::from_vec(vec![0, 0, 0, 0]);
        let spread = Partition::from_vec(vec![0, 1, 2, 3]);
        let s_packed = score_partition(&ddg, &packed, &m, 1);
        let s_spread = score_partition(&ddg, &spread, &m, 1);
        assert!(s_spread < s_packed);
        assert!(s_spread.feasible());
        assert!(!s_packed.feasible());
    }

    #[test]
    fn score_prefers_fewer_communications() {
        let ddg = two_chains();
        let m = machine("2c1b2l64r");
        let clean = Partition::from_vec(vec![0, 0, 0, 1, 1, 1]);
        let split = Partition::from_vec(vec![0, 0, 1, 1, 1, 1]);
        assert!(score_partition(&ddg, &clean, &m, 4) < score_partition(&ddg, &split, &m, 4));
    }

    #[test]
    fn single_cluster_refinement_is_identity() {
        let ddg = two_chains();
        let m = MachineConfig::unified(64);
        let p = Partition::single_cluster(ddg.node_count());
        assert_eq!(refine_existing(&ddg, &m, 2, p.clone()), p);
    }

    /// The lazy delta-scoring path must agree with a from-scratch score for
    /// every candidate it rejects or accepts: spot-check by comparing a
    /// full refinement pass against one driven through a dirty scratch.
    #[test]
    fn scratch_reuse_matches_fresh_refinement() {
        let ddg = two_chains();
        let m = machine("2c1b2l64r");
        let analysis = LoopAnalysis::new(&ddg, &m);
        let mut scratch = RefineScratch::default();
        for ii in 1..6 {
            let bad = Partition::from_vec(vec![0, 1, 0, 1, 0, 1]);
            let fresh = refine_existing(&ddg, &m, ii, bad.clone());
            let reused = refine_existing_scratch(&ddg, &m, ii, bad, &analysis, &mut scratch);
            assert_eq!(fresh, reused, "ii={ii}");
        }
    }

    /// A persistent cache across the II climb must not change a single
    /// accepted move (debug builds additionally verify every hit in full).
    #[test]
    fn cached_refinement_matches_uncached_across_iis() {
        let ddg = two_chains();
        let m = machine("2c1b2l64r");
        let analysis = LoopAnalysis::new(&ddg, &m);
        let mut scratch = RefineScratch::default();
        let mut cache = RefineCache::default();
        let mut part = Partition::from_vec(vec![0, 1, 0, 1, 0, 1]);
        for ii in 1..8 {
            let plain = refine_existing(&ddg, &m, ii, part.clone());
            part = refine_existing_cached(&ddg, &m, ii, part, &analysis, &mut scratch, &mut cache);
            assert_eq!(plain, part, "ii={ii}");
        }
    }

    /// The oracle and the production path accept the same move sequence.
    #[test]
    fn trace_matches_oracle() {
        let ddg = two_chains();
        let m = machine("2c1b2l64r");
        let analysis = LoopAnalysis::new(&ddg, &m);
        let mut scratch = RefineScratch::default();
        let mut cache = RefineCache::default();
        for ii in 1..6 {
            let bad = Partition::from_vec(vec![0, 1, 0, 1, 0, 1]);
            let mut trace = Vec::new();
            let got = refine_existing_trace(
                &ddg,
                &m,
                ii,
                bad.clone(),
                &analysis,
                &mut scratch,
                Some(&mut cache),
                &mut trace,
            );
            let (want, want_moves) = refine_existing_oracle(&ddg, &m, ii, bad, &analysis);
            assert_eq!(got, want, "ii={ii}");
            assert_eq!(trace, want_moves, "ii={ii}");
        }
    }
}
