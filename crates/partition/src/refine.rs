//! Pseudo-schedule-guided refinement of a partition (reference [2]).
//!
//! Refinement is the compilation driver's hottest loop: every II bump
//! re-scores hundreds of candidate single-node moves, and every score used
//! to build a fresh [`Assignment`] and run a full pseudo-schedule. Two
//! things make the current implementation fast without changing a single
//! accepted move:
//!
//! * **Persistent scratch** ([`RefineScratch`]): every buffer a score needs
//!   (the assignment, the comm-adjusted latency vector, the ASAP fixpoint,
//!   the usage census) is owned by the caller and reused across scores,
//!   IIs and modes.
//! * **Lazy lexicographic scoring**: a candidate move is rejected as soon
//!   as a cheap prefix of the score key — capacity overflow and bus
//!   overflow — already compares worse than the incumbent. Those
//!   components are computed exactly from O(degree) deltas, so the
//!   expensive ASAP sweep only runs for moves that are still in the race.
//!   Most candidates (interior nodes whose move would add communications)
//!   die at the bus-overflow key, which is why this is equivalent: the
//!   lexicographic comparison is decided by the first differing component,
//!   and the delta computation produces the same component values as the
//!   full score (debug builds re-score every rejected move in full and
//!   assert the verdict).

use cvliw_ddg::{Ddg, NodeId, OpClass};
use cvliw_machine::MachineConfig;
use cvliw_sched::{pseudo_schedule_scratch, Assignment, LoopAnalysis, PseudoScratch};

use crate::coarsen::{CoarseLevel, Hierarchy};
use crate::partition::Partition;

/// Comparable quality of a partition at a given II; **lower is better**.
///
/// The ordering is lexicographic over, in priority order: functional-unit
/// capacity overflow, bus-bandwidth overflow, recurrence infeasibility,
/// register overflow, communication count, estimated schedule length and
/// load imbalance — i.e. first make the partition schedulable, then
/// minimize communications, then the critical path, then balance.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PartitionScore {
    key: (u32, u32, u8, u32, u32, i64, u32),
}

impl PartitionScore {
    /// Number of communications in the scored partition.
    #[must_use]
    pub fn comms(&self) -> u32 {
        self.key.4
    }

    /// Whether nothing rules the partition out at the scored II.
    #[must_use]
    pub fn feasible(&self) -> bool {
        let (cap, bus, rec, reg, ..) = self.key;
        cap == 0 && bus == 0 && rec == 0 && reg == 0
    }

    /// Estimated schedule length under the pseudo-schedule.
    #[must_use]
    pub fn est_length(&self) -> i64 {
        self.key.5
    }
}

/// Reusable state for refinement and scoring: the pseudo-schedule buffers,
/// a reusable [`Assignment`], and the delta-evaluation worklists (group
/// membership stamps, affected-producer lists, usage censuses).
///
/// One `RefineScratch` serves a whole compilation — every II of every mode
/// — via `cvliw_replicate::CompileContext`'s compile scratch.
#[derive(Clone, Debug)]
pub struct RefineScratch {
    pseudo: PseudoScratch,
    assignment: Assignment,
    /// Current-partition instance census per cluster and class.
    usage: Vec<[u32; 3]>,
    /// Node stamps marking membership of the group being scanned.
    in_group: Vec<bool>,
    /// Producers whose communication status the move can change.
    affected: Vec<NodeId>,
    /// Dedup stamps for building `affected` (one epoch per group).
    seen: Vec<u32>,
    /// Current epoch for `seen`.
    epoch: u32,
}

impl Default for RefineScratch {
    fn default() -> Self {
        RefineScratch {
            pseudo: PseudoScratch::default(),
            assignment: Assignment::from_partition(&[]),
            usage: Vec::new(),
            in_group: Vec::new(),
            affected: Vec::new(),
            seen: Vec::new(),
            epoch: 0,
        }
    }
}

/// Scores a partition with a pseudo-schedule (see [`PartitionScore`]).
///
/// One-shot convenience: computes a [`LoopAnalysis`] internally. Hot paths
/// use [`score_partition_scratch`].
#[must_use]
pub fn score_partition(
    ddg: &Ddg,
    part: &Partition,
    machine: &MachineConfig,
    ii: u32,
) -> PartitionScore {
    let analysis = LoopAnalysis::new(ddg, machine);
    score_partition_scratch(
        ddg,
        part,
        machine,
        ii,
        &analysis,
        &mut RefineScratch::default(),
    )
}

/// [`score_partition`] on a cached [`LoopAnalysis`] and a reusable
/// [`RefineScratch`] — allocation-free and bit-identical.
#[must_use]
pub fn score_partition_scratch(
    ddg: &Ddg,
    part: &Partition,
    machine: &MachineConfig,
    ii: u32,
    analysis: &LoopAnalysis,
    scratch: &mut RefineScratch,
) -> PartitionScore {
    scratch.assignment.set_from_partition(part.as_slice());
    let ps = pseudo_schedule_scratch(
        ddg,
        &scratch.assignment,
        machine,
        ii,
        analysis,
        &mut scratch.pseudo,
    );
    let bus_overflow = ps.ncoms.saturating_sub(machine.coms_capacity_per_ii(ii));
    let totals = scratch.pseudo.usage.iter().map(|u| u.iter().sum());
    let (min, max) = totals.fold((u32::MAX, 0u32), |(lo, hi), t: u32| (lo.min(t), hi.max(t)));
    let imbalance = max - min.min(max);
    PartitionScore {
        key: (
            ps.cap_overflow,
            bus_overflow,
            u8::from(!ps.recurrences_ok),
            ps.reg_overflow,
            ps.ncoms,
            if ps.recurrences_ok {
                ps.est_length
            } else {
                i64::MAX
            },
            imbalance,
        ),
    }
}

/// Maximum improvement passes per hierarchy level.
const MAX_PASSES: usize = 2;

/// Refines a partition by walking the hierarchy from coarse to fine,
/// greedily moving macro-nodes between clusters while the score improves.
#[must_use]
pub fn refine(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    hierarchy: &Hierarchy,
    initial: Partition,
) -> Partition {
    let analysis = LoopAnalysis::new(ddg, machine);
    refine_inner(
        ddg,
        machine,
        ii,
        hierarchy,
        initial,
        &analysis,
        &mut RefineScratch::default(),
    )
}

pub(crate) fn refine_inner(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    hierarchy: &Hierarchy,
    initial: Partition,
    analysis: &LoopAnalysis,
    scratch: &mut RefineScratch,
) -> Partition {
    let mut part = initial;
    // Skip the coarsest level: each of its macros is an entire cluster.
    for level in hierarchy.levels.iter().rev().skip(1) {
        part = refine_level(ddg, machine, ii, level, part, analysis, scratch);
    }
    part
}

/// The "Refine Partition" box of the paper's Figure 2: refinement at node
/// granularity only, used by the driver whenever it increases the II.
#[must_use]
pub fn refine_existing(ddg: &Ddg, machine: &MachineConfig, ii: u32, part: Partition) -> Partition {
    if machine.clusters() == 1 {
        return part;
    }
    let analysis = LoopAnalysis::new(ddg, machine);
    refine_existing_scratch(
        ddg,
        machine,
        ii,
        part,
        &analysis,
        &mut RefineScratch::default(),
    )
}

/// [`refine_existing`] on a cached [`LoopAnalysis`] (bit-identical results;
/// the II-invariant latency vector is read from the cache).
#[must_use]
pub fn refine_existing_with(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    part: Partition,
    analysis: &LoopAnalysis,
) -> Partition {
    refine_existing_scratch(
        ddg,
        machine,
        ii,
        part,
        analysis,
        &mut RefineScratch::default(),
    )
}

/// [`refine_existing_with`] on a persistent [`RefineScratch`] — the
/// driver's per-II entry point. Bit-identical to [`refine_existing`].
#[must_use]
pub fn refine_existing_scratch(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    part: Partition,
    analysis: &LoopAnalysis,
    scratch: &mut RefineScratch,
) -> Partition {
    if machine.clusters() == 1 {
        return part;
    }
    let identity = CoarseLevel {
        macro_of: (0..ddg.node_count()).collect(),
        n_macros: ddg.node_count(),
    };
    refine_level(ddg, machine, ii, &identity, part, analysis, scratch)
}

/// Whether producer `x` needs a bus under `part` with the nodes marked in
/// `in_group` re-homed to `target` — the exact [`Assignment::needs_comm`]
/// predicate evaluated without materializing the assignment.
fn needs_comm_moved(ddg: &Ddg, part: &Partition, in_group: &[bool], target: u8, x: NodeId) -> bool {
    if !ddg.kind(x).produces_value() {
        return false;
    }
    let cx = if in_group[x.index()] {
        target
    } else {
        part.cluster_of(x)
    };
    ddg.data_succs(x).iter().any(|&y| {
        let cy = if in_group[y.index()] {
            target
        } else {
            part.cluster_of(y)
        };
        cy != cx
    })
}

/// Per-cluster capacity overflow of one cluster under a usage census.
fn cluster_overflow(machine: &MachineConfig, ii: u32, cluster: u8, usage: &[u32; 3]) -> u32 {
    OpClass::ALL
        .iter()
        .map(|&class| {
            let cap = u32::from(machine.fu_count_in(cluster, class)) * ii;
            usage[class.index()].saturating_sub(cap)
        })
        .sum()
}

fn refine_level(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    level: &CoarseLevel,
    mut part: Partition,
    analysis: &LoopAnalysis,
    scratch: &mut RefineScratch,
) -> Partition {
    let groups = level.groups();
    let bus_cap = machine.coms_capacity_per_ii(ii);
    let mut best_score = score_partition_scratch(ddg, &part, machine, ii, analysis, scratch);
    // The cheap-delta base state of the *current* partition: instance
    // census and communication count, refreshed after every accepted move.
    let mut usage = std::mem::take(&mut scratch.usage);
    scratch.assignment.set_from_partition(part.as_slice());
    scratch
        .assignment
        .class_usage_into(ddg, machine.clusters(), &mut usage);
    let mut ncoms = scratch.assignment.comm_count(ddg);

    scratch.in_group.clear();
    scratch.in_group.resize(ddg.node_count(), false);
    scratch.seen.clear();
    scratch.seen.resize(ddg.node_count(), 0);

    // Only macros touching a cross-cluster data edge are move candidates.
    let is_boundary = |part: &Partition, group: &[usize]| {
        group.iter().any(|&i| {
            let n = NodeId::new(i as u32);
            let c = part.cluster_of(n);
            ddg.out_edges(n)
                .map(|e| e.dst)
                .chain(ddg.in_edges(n).map(|e| e.src))
                .any(|other| part.cluster_of(other) != c)
        })
    };

    for _ in 0..MAX_PASSES {
        let mut improved = false;
        // Boundary gating is an optimization for feasible partitions; an
        // infeasible one (e.g. fp work stranded in a cluster without fp
        // units on a heterogeneous machine) may need interior moves.
        let consider_all = !best_score.feasible();
        for group in &groups {
            if group.is_empty() || (!consider_all && !is_boundary(&part, group)) {
                continue;
            }
            let current = part.cluster_of(NodeId::new(group[0] as u32));

            // Group-invariant delta ingredients, shared by every target:
            // membership marks, the affected-producer list, the group's
            // class census and the communications counted under `part`.
            scratch.epoch += 1;
            let epoch = scratch.epoch;
            for &i in group {
                scratch.in_group[i] = true;
            }
            scratch.affected.clear();
            let mut group_census = [0u32; 3];
            for &i in group {
                let m = NodeId::new(i as u32);
                group_census[ddg.kind(m).class().index()] += 1;
                if scratch.seen[i] != epoch {
                    scratch.seen[i] = epoch;
                    scratch.affected.push(m);
                }
                for &p in ddg.data_preds(m) {
                    if scratch.seen[p.index()] != epoch {
                        scratch.seen[p.index()] = epoch;
                        scratch.affected.push(p);
                    }
                }
            }
            let before: u32 = scratch
                .affected
                .iter()
                .filter(|&&x| needs_comm_moved(ddg, &part, &scratch.in_group, current, x))
                .count() as u32;
            let cap_rest: u32 = (0..machine.clusters())
                .map(|c| cluster_overflow(machine, ii, c, &usage[c as usize]))
                .sum::<u32>()
                - cluster_overflow(machine, ii, current, &usage[current as usize]);
            let mut src_usage = usage[current as usize];
            for (slot, &g) in src_usage.iter_mut().zip(&group_census) {
                *slot -= g;
            }

            let mut best_move: Option<(u8, PartitionScore)> = None;
            for target in machine.cluster_ids() {
                if target == current {
                    continue;
                }
                // Lazy lexicographic rejection on the exact cheap prefix:
                // (capacity, bus). `thresh` is what the full score would
                // be compared against.
                let thresh = best_move.as_ref().map_or(&best_score, |(_, s)| s);
                let decided_worse = 'cheap: {
                    let mut dst_usage = usage[target as usize];
                    for (slot, &g) in dst_usage.iter_mut().zip(&group_census) {
                        *slot += g;
                    }
                    let cap = cap_rest
                        - cluster_overflow(machine, ii, target, &usage[target as usize])
                        + cluster_overflow(machine, ii, current, &src_usage)
                        + cluster_overflow(machine, ii, target, &dst_usage);
                    if cap != thresh.key.0 {
                        break 'cheap cap > thresh.key.0;
                    }
                    let after: u32 = scratch
                        .affected
                        .iter()
                        .filter(|&&x| needs_comm_moved(ddg, &part, &scratch.in_group, target, x))
                        .count() as u32;
                    let q_ncoms = ncoms - before + after;
                    let bus = q_ncoms.saturating_sub(bus_cap);
                    if bus != thresh.key.1 {
                        break 'cheap bus > thresh.key.1;
                    }
                    // Beyond (cap, bus) the cheap prefix ends: when the
                    // group touches no recurrence its rec component
                    // provably ties with the incumbent's (no cycle edge
                    // changed latency, and any pending best_move is a
                    // same-group candidate under the same invariance), so
                    // the decision always rests on the expensive
                    // register/length components — full score it is.
                    false
                };
                if decided_worse {
                    // Debug builds re-score the rejected move in full and
                    // assert the lazy prefix reached the same verdict —
                    // the delta arithmetic's equivalence proof obligation.
                    #[cfg(debug_assertions)]
                    {
                        for &i in group {
                            part.set_cluster(NodeId::new(i as u32), target);
                        }
                        let full =
                            score_partition_scratch(ddg, &part, machine, ii, analysis, scratch);
                        for &i in group {
                            part.set_cluster(NodeId::new(i as u32), current);
                        }
                        let thresh = best_move.as_ref().map_or(&best_score, |(_, s)| s);
                        debug_assert!(
                            full >= *thresh,
                            "lazy prefix rejected an improving move: {full:?} < {thresh:?}"
                        );
                    }
                    continue;
                }

                for &i in group {
                    part.set_cluster(NodeId::new(i as u32), target);
                }
                let score = score_partition_scratch(ddg, &part, machine, ii, analysis, scratch);
                let thresh = best_move.as_ref().map_or(&best_score, |(_, s)| s);
                if score < *thresh {
                    best_move = Some((target, score));
                }
                for &i in group {
                    part.set_cluster(NodeId::new(i as u32), current);
                }
            }
            for &i in group {
                scratch.in_group[i] = false;
            }
            if let Some((target, score)) = best_move {
                for &i in group {
                    part.set_cluster(NodeId::new(i as u32), target);
                }
                best_score = score;
                improved = true;
                scratch.assignment.set_from_partition(part.as_slice());
                scratch
                    .assignment
                    .class_usage_into(ddg, machine.clusters(), &mut usage);
                ncoms = scratch.assignment.comm_count(ddg);
            }
        }
        if !improved {
            break;
        }
    }
    scratch.usage = usage;
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarsen::coarsen;
    use cvliw_ddg::OpKind;

    fn machine(spec: &str) -> MachineConfig {
        MachineConfig::from_spec(spec).unwrap()
    }

    /// Two independent chains that obviously belong in separate clusters.
    fn two_chains() -> Ddg {
        let mut b = Ddg::builder();
        for _ in 0..2 {
            let x = b.add_node(OpKind::Load);
            let y = b.add_node(OpKind::FpMul);
            let z = b.add_node(OpKind::Store);
            b.data(x, y).data(y, z);
        }
        b.build().unwrap()
    }

    #[test]
    fn refinement_never_worsens_the_score() {
        let ddg = two_chains();
        let m = machine("2c1b2l64r");
        let h = coarsen(&ddg, &m, 2);
        let initial = h.initial_partition();
        let initial_score = score_partition(&ddg, &initial, &m, 2);
        let refined = refine(&ddg, &m, 2, &h, initial);
        let refined_score = score_partition(&ddg, &refined, &m, 2);
        assert!(refined_score <= initial_score);
    }

    #[test]
    fn bad_partition_gets_fixed() {
        // Deliberately split both chains across clusters: refinement should
        // remove all communications.
        let ddg = two_chains();
        let m = machine("2c1b2l64r");
        let bad = Partition::from_vec(vec![0, 1, 0, 1, 0, 1]);
        assert!(bad.comm_count(&ddg) > 0);
        let fixed = refine_existing(&ddg, &m, 2, bad);
        assert_eq!(
            fixed.comm_count(&ddg),
            0,
            "chains reunited: {:?}",
            fixed.as_slice()
        );
    }

    #[test]
    fn capacity_overflow_dominates_score() {
        let mut b = Ddg::builder();
        for _ in 0..4 {
            b.add_node(OpKind::Load);
        }
        let ddg = b.build().unwrap();
        let m = machine("4c1b2l64r"); // 1 mem port per cluster
        let packed = Partition::from_vec(vec![0, 0, 0, 0]);
        let spread = Partition::from_vec(vec![0, 1, 2, 3]);
        let s_packed = score_partition(&ddg, &packed, &m, 1);
        let s_spread = score_partition(&ddg, &spread, &m, 1);
        assert!(s_spread < s_packed);
        assert!(s_spread.feasible());
        assert!(!s_packed.feasible());
    }

    #[test]
    fn score_prefers_fewer_communications() {
        let ddg = two_chains();
        let m = machine("2c1b2l64r");
        let clean = Partition::from_vec(vec![0, 0, 0, 1, 1, 1]);
        let split = Partition::from_vec(vec![0, 0, 1, 1, 1, 1]);
        assert!(score_partition(&ddg, &clean, &m, 4) < score_partition(&ddg, &split, &m, 4));
    }

    #[test]
    fn single_cluster_refinement_is_identity() {
        let ddg = two_chains();
        let m = MachineConfig::unified(64);
        let p = Partition::single_cluster(ddg.node_count());
        assert_eq!(refine_existing(&ddg, &m, 2, p.clone()), p);
    }

    /// The lazy delta-scoring path must agree with a from-scratch score for
    /// every candidate it rejects or accepts: spot-check by comparing a
    /// full refinement pass against one driven through a dirty scratch.
    #[test]
    fn scratch_reuse_matches_fresh_refinement() {
        let ddg = two_chains();
        let m = machine("2c1b2l64r");
        let analysis = LoopAnalysis::new(&ddg, &m);
        let mut scratch = RefineScratch::default();
        for ii in 1..6 {
            let bad = Partition::from_vec(vec![0, 1, 0, 1, 0, 1]);
            let fresh = refine_existing(&ddg, &m, ii, bad.clone());
            let reused = refine_existing_scratch(&ddg, &m, ii, bad, &analysis, &mut scratch);
            assert_eq!(fresh, reused, "ii={ii}");
        }
    }
}
