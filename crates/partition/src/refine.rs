//! Pseudo-schedule-guided refinement of a partition (reference [2]).

use cvliw_ddg::{Ddg, NodeId};
use cvliw_machine::MachineConfig;
use cvliw_sched::{pseudo_schedule, pseudo_schedule_with, LoopAnalysis};

use crate::coarsen::{CoarseLevel, Hierarchy};
use crate::partition::Partition;

/// Comparable quality of a partition at a given II; **lower is better**.
///
/// The ordering is lexicographic over, in priority order: functional-unit
/// capacity overflow, bus-bandwidth overflow, recurrence infeasibility,
/// register overflow, communication count, estimated schedule length and
/// load imbalance — i.e. first make the partition schedulable, then
/// minimize communications, then the critical path, then balance.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PartitionScore {
    key: (u32, u32, u8, u32, u32, i64, u32),
}

impl PartitionScore {
    /// Number of communications in the scored partition.
    #[must_use]
    pub fn comms(&self) -> u32 {
        self.key.4
    }

    /// Whether nothing rules the partition out at the scored II.
    #[must_use]
    pub fn feasible(&self) -> bool {
        let (cap, bus, rec, reg, ..) = self.key;
        cap == 0 && bus == 0 && rec == 0 && reg == 0
    }

    /// Estimated schedule length under the pseudo-schedule.
    #[must_use]
    pub fn est_length(&self) -> i64 {
        self.key.5
    }
}

/// Scores a partition with a pseudo-schedule (see [`PartitionScore`]).
#[must_use]
pub fn score_partition(
    ddg: &Ddg,
    part: &Partition,
    machine: &MachineConfig,
    ii: u32,
) -> PartitionScore {
    score_partition_inner(ddg, part, machine, ii, None)
}

fn score_partition_inner(
    ddg: &Ddg,
    part: &Partition,
    machine: &MachineConfig,
    ii: u32,
    analysis: Option<&LoopAnalysis>,
) -> PartitionScore {
    let assignment = part.to_assignment();
    let ps = match analysis {
        Some(a) => pseudo_schedule_with(ddg, &assignment, machine, ii, a),
        None => pseudo_schedule(ddg, &assignment, machine, ii),
    };
    let bus_overflow = ps.ncoms.saturating_sub(machine.bus_coms_per_ii(ii));
    let usage = assignment.class_usage(ddg, machine.clusters());
    let totals: Vec<u32> = usage.iter().map(|u| u.iter().sum()).collect();
    let imbalance = totals.iter().max().unwrap_or(&0) - totals.iter().min().unwrap_or(&0);
    PartitionScore {
        key: (
            ps.cap_overflow,
            bus_overflow,
            u8::from(!ps.recurrences_ok),
            ps.reg_overflow,
            ps.ncoms,
            if ps.recurrences_ok {
                ps.est_length
            } else {
                i64::MAX
            },
            imbalance,
        ),
    }
}

/// Maximum improvement passes per hierarchy level.
const MAX_PASSES: usize = 2;

/// Refines a partition by walking the hierarchy from coarse to fine,
/// greedily moving macro-nodes between clusters while the score improves.
#[must_use]
pub fn refine(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    hierarchy: &Hierarchy,
    initial: Partition,
) -> Partition {
    refine_inner(ddg, machine, ii, hierarchy, initial, None)
}

pub(crate) fn refine_inner(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    hierarchy: &Hierarchy,
    initial: Partition,
    analysis: Option<&LoopAnalysis>,
) -> Partition {
    let mut part = initial;
    // Skip the coarsest level: each of its macros is an entire cluster.
    for level in hierarchy.levels.iter().rev().skip(1) {
        part = refine_level(ddg, machine, ii, level, part, analysis);
    }
    part
}

/// The "Refine Partition" box of the paper's Figure 2: refinement at node
/// granularity only, used by the driver whenever it increases the II.
#[must_use]
pub fn refine_existing(ddg: &Ddg, machine: &MachineConfig, ii: u32, part: Partition) -> Partition {
    refine_existing_inner(ddg, machine, ii, part, None)
}

/// [`refine_existing`] on a cached [`LoopAnalysis`] (bit-identical results;
/// the II-invariant latency vector is read from the cache).
#[must_use]
pub fn refine_existing_with(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    part: Partition,
    analysis: &LoopAnalysis,
) -> Partition {
    refine_existing_inner(ddg, machine, ii, part, Some(analysis))
}

fn refine_existing_inner(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    part: Partition,
    analysis: Option<&LoopAnalysis>,
) -> Partition {
    if machine.clusters() == 1 {
        return part;
    }
    let identity = CoarseLevel {
        macro_of: (0..ddg.node_count()).collect(),
        n_macros: ddg.node_count(),
    };
    refine_level(ddg, machine, ii, &identity, part, analysis)
}

fn refine_level(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    level: &CoarseLevel,
    mut part: Partition,
    analysis: Option<&LoopAnalysis>,
) -> Partition {
    let groups = level.groups();
    let mut best_score = score_partition_inner(ddg, &part, machine, ii, analysis);

    // Only macros touching a cross-cluster data edge are move candidates.
    let is_boundary = |part: &Partition, group: &[usize]| {
        group.iter().any(|&i| {
            let n = NodeId::new(i as u32);
            let c = part.cluster_of(n);
            ddg.out_edges(n)
                .map(|e| e.dst)
                .chain(ddg.in_edges(n).map(|e| e.src))
                .any(|other| part.cluster_of(other) != c)
        })
    };

    for _ in 0..MAX_PASSES {
        let mut improved = false;
        // Boundary gating is an optimization for feasible partitions; an
        // infeasible one (e.g. fp work stranded in a cluster without fp
        // units on a heterogeneous machine) may need interior moves.
        let consider_all = !best_score.feasible();
        for group in &groups {
            if group.is_empty() || (!consider_all && !is_boundary(&part, group)) {
                continue;
            }
            let current = part.cluster_of(NodeId::new(group[0] as u32));
            let mut best_move: Option<(u8, PartitionScore)> = None;
            for target in machine.cluster_ids() {
                if target == current {
                    continue;
                }
                for &i in group {
                    part.set_cluster(NodeId::new(i as u32), target);
                }
                let score = score_partition_inner(ddg, &part, machine, ii, analysis);
                if score < best_score && best_move.as_ref().is_none_or(|(_, s)| score < *s) {
                    best_move = Some((target, score.clone()));
                }
                for &i in group {
                    part.set_cluster(NodeId::new(i as u32), current);
                }
            }
            if let Some((target, score)) = best_move {
                for &i in group {
                    part.set_cluster(NodeId::new(i as u32), target);
                }
                best_score = score;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarsen::coarsen;
    use cvliw_ddg::OpKind;

    fn machine(spec: &str) -> MachineConfig {
        MachineConfig::from_spec(spec).unwrap()
    }

    /// Two independent chains that obviously belong in separate clusters.
    fn two_chains() -> Ddg {
        let mut b = Ddg::builder();
        for _ in 0..2 {
            let x = b.add_node(OpKind::Load);
            let y = b.add_node(OpKind::FpMul);
            let z = b.add_node(OpKind::Store);
            b.data(x, y).data(y, z);
        }
        b.build().unwrap()
    }

    #[test]
    fn refinement_never_worsens_the_score() {
        let ddg = two_chains();
        let m = machine("2c1b2l64r");
        let h = coarsen(&ddg, &m, 2);
        let initial = h.initial_partition();
        let initial_score = score_partition(&ddg, &initial, &m, 2);
        let refined = refine(&ddg, &m, 2, &h, initial);
        let refined_score = score_partition(&ddg, &refined, &m, 2);
        assert!(refined_score <= initial_score);
    }

    #[test]
    fn bad_partition_gets_fixed() {
        // Deliberately split both chains across clusters: refinement should
        // remove all communications.
        let ddg = two_chains();
        let m = machine("2c1b2l64r");
        let bad = Partition::from_vec(vec![0, 1, 0, 1, 0, 1]);
        assert!(bad.comm_count(&ddg) > 0);
        let fixed = refine_existing(&ddg, &m, 2, bad);
        assert_eq!(
            fixed.comm_count(&ddg),
            0,
            "chains reunited: {:?}",
            fixed.as_slice()
        );
    }

    #[test]
    fn capacity_overflow_dominates_score() {
        let mut b = Ddg::builder();
        for _ in 0..4 {
            b.add_node(OpKind::Load);
        }
        let ddg = b.build().unwrap();
        let m = machine("4c1b2l64r"); // 1 mem port per cluster
        let packed = Partition::from_vec(vec![0, 0, 0, 0]);
        let spread = Partition::from_vec(vec![0, 1, 2, 3]);
        let s_packed = score_partition(&ddg, &packed, &m, 1);
        let s_spread = score_partition(&ddg, &spread, &m, 1);
        assert!(s_spread < s_packed);
        assert!(s_spread.feasible());
        assert!(!s_packed.feasible());
    }

    #[test]
    fn score_prefers_fewer_communications() {
        let ddg = two_chains();
        let m = machine("2c1b2l64r");
        let clean = Partition::from_vec(vec![0, 0, 0, 1, 1, 1]);
        let split = Partition::from_vec(vec![0, 0, 1, 1, 1, 1]);
        assert!(score_partition(&ddg, &clean, &m, 4) < score_partition(&ddg, &split, &m, 4));
    }

    #[test]
    fn single_cluster_refinement_is_identity() {
        let ddg = two_chains();
        let m = MachineConfig::unified(64);
        let p = Partition::single_cluster(ddg.node_count());
        assert_eq!(refine_existing(&ddg, &m, 2, p.clone()), p);
    }
}
