//! Slack-based edge weights: the cost of paying a bus latency on a
//! dependence (reference [1] of the paper).

use cvliw_ddg::{rec_mii, scc_of_node, sccs, time_bounds, Ddg, Edge, TimeBounds};
use cvliw_machine::MachineConfig;
use cvliw_sched::LoopAnalysis;

/// Weight applied per bus-latency cycle to an edge inside a recurrence:
/// communications on cycles raise the RecMII directly, so they are treated
/// as (almost) uncuttable.
const RECURRENCE_PENALTY: u64 = 10;

/// Weight applied per cycle by which the bus latency exceeds an acyclic
/// edge's slack (each such cycle lengthens the critical path).
const SLACK_PENALTY: u64 = 2;

/// Base weight of any data edge (every cut consumes bus bandwidth).
const BASE_WEIGHT: u64 = 1;

/// Computes one weight per edge, aligned with `ddg.edges()` order.
///
/// Memory-ordering edges get weight 0: cutting them costs nothing because
/// the memory hierarchy is centralized. Data edges cost more the less slack
/// they have at the loop's MII-feasible II, and far more when they sit on a
/// recurrence.
#[must_use]
pub fn edge_weights(ddg: &Ddg, machine: &MachineConfig, ii: u32) -> Vec<u64> {
    let lat = machine.edge_latency(ddg);
    let feasible_ii = ii.max(rec_mii(ddg, &lat));
    let bounds =
        time_bounds(ddg, feasible_ii, &lat).expect("II at or above RecMII always has time bounds");

    let comps = sccs(ddg);
    let of = scc_of_node(ddg);
    let nontrivial: Vec<bool> = comps
        .iter()
        .map(|c| c.len() > 1 || ddg.out_edges(c[0]).any(|e| e.dst == c[0]))
        .collect();

    weights_core(ddg, machine, feasible_ii, &bounds, &of, &nontrivial, &lat)
}

/// [`edge_weights`] on a cached [`LoopAnalysis`]: the RecMII and SCC
/// decomposition are read from the cache instead of being recomputed, only
/// the II-dependent slack bounds are evaluated per call. Bit-identical to
/// the uncached variant.
#[must_use]
pub fn edge_weights_with(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    analysis: &LoopAnalysis,
) -> Vec<u64> {
    let lat = analysis.lat();
    let feasible_ii = ii.max(analysis.rec_mii());
    let bounds =
        time_bounds(ddg, feasible_ii, &lat).expect("II at or above RecMII always has time bounds");
    weights_core(
        ddg,
        machine,
        feasible_ii,
        &bounds,
        analysis.scc_of(),
        analysis.scc_recurrent(),
        &lat,
    )
}

fn weights_core(
    ddg: &Ddg,
    machine: &MachineConfig,
    feasible_ii: u32,
    bounds: &TimeBounds,
    of: &[usize],
    nontrivial: &[bool],
    lat: impl Fn(&Edge) -> u32,
) -> Vec<u64> {
    // The conservative scalar communication cost: the worst transfer
    // latency any cluster pair can pay (= the bus latency on shared-bus
    // machines, so the paper configurations score identically).
    let bus = u64::from(machine.max_transfer_latency());
    ddg.edges()
        .map(|e| {
            if !e.is_data() {
                return 0;
            }
            let mut w = BASE_WEIGHT;
            let same_scc = of[e.src.index()] == of[e.dst.index()];
            if same_scc && nontrivial[of[e.src.index()]] {
                w += RECURRENCE_PENALTY * bus;
            }
            let slack = bounds.alap[e.dst.index()] - bounds.asap[e.src.index()] - i64::from(lat(e))
                + i64::from(feasible_ii) * i64::from(e.distance);
            let shortfall = (i64::try_from(bus).expect("small") - slack).max(0) as u64;
            w + SLACK_PENALTY * shortfall
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvliw_ddg::OpKind;

    fn machine() -> MachineConfig {
        MachineConfig::from_spec("4c1b2l64r").unwrap()
    }

    #[test]
    fn mem_edges_are_free() {
        let mut b = Ddg::builder();
        let st = b.add_node(OpKind::Store);
        let ld = b.add_node(OpKind::Load);
        b.mem_dep(st, ld, 1);
        let ddg = b.build().unwrap();
        assert_eq!(edge_weights(&ddg, &machine(), 1), vec![0]);
    }

    #[test]
    fn recurrence_edges_outweigh_acyclic_edges() {
        let mut b = Ddg::builder();
        let x = b.add_node(OpKind::FpAdd);
        let y = b.add_node(OpKind::FpAdd);
        b.data(x, y).data_dist(y, x, 1); // recurrence
        let z = b.add_node(OpKind::FpAdd);
        b.data(y, z); // acyclic exit edge — wait, y is in the SCC, z outside
        let ddg = b.build().unwrap();
        let w = edge_weights(&ddg, &machine(), 6);
        assert!(
            w[0] > w[2],
            "cycle edge {} should outweigh exit edge {}",
            w[0],
            w[2]
        );
        assert!(w[1] > w[2]);
    }

    #[test]
    fn tight_edges_outweigh_slack_edges() {
        // diamond: a → (long chain | single short op) → sink. The short
        // op's edges have slack; the chain's do not.
        let mut b = Ddg::builder();
        let a = b.add_node(OpKind::Load);
        let c1 = b.add_node(OpKind::FpMul);
        let c2 = b.add_node(OpKind::FpMul);
        let short = b.add_node(OpKind::IntAdd);
        let sink = b.add_node(OpKind::Store);
        b.data(a, c1).data(c1, c2).data(c2, sink); // critical path
        b.data(a, short).data(short, sink); // slack path
        let ddg = b.build().unwrap();
        let w = edge_weights(&ddg, &machine(), 2);
        // edge 0 (a→c1, critical) heavier than edge 3 (a→short, slack)
        assert!(w[0] > w[3], "critical {} vs slack {}", w[0], w[3]);
    }

    #[test]
    fn weights_align_with_edges() {
        let mut b = Ddg::builder();
        let a = b.add_node(OpKind::Load);
        let c = b.add_node(OpKind::FpMul);
        b.data(a, c);
        let ddg = b.build().unwrap();
        let w = edge_weights(&ddg, &machine(), 1);
        assert_eq!(w.len(), ddg.edge_count());
        assert!(w[0] >= 1);
    }
}
