//! Greedy maximum-weight matching used by the coarsener.

/// Computes a matching over `n` vertices from weighted candidate pairs,
/// greedily taking the heaviest edges first (classic heavy-edge matching;
/// a ½-approximation of the maximum-weight matching, which is what
/// multilevel partitioners use in practice).
///
/// `edges` are `(a, b, weight)` with `a != b`; ties break on the vertex
/// indices so results are deterministic. Returns matched pairs.
#[must_use]
pub fn greedy_matching(n: usize, edges: &[(usize, usize, u64)]) -> Vec<(usize, usize)> {
    let mut sorted: Vec<&(usize, usize, u64)> = edges
        .iter()
        .filter(|(a, b, _)| a != b && *a < n && *b < n)
        .collect();
    sorted.sort_by(|x, y| (y.2, x.0, x.1).cmp(&(x.2, y.0, y.1)));
    let mut matched = vec![false; n];
    let mut pairs = Vec::new();
    for &&(a, b, _) in &sorted {
        if !matched[a] && !matched[b] {
            matched[a] = true;
            matched[b] = true;
            pairs.push((a.min(b), a.max(b)));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_heaviest_edges_first() {
        let edges = [(0, 1, 10), (1, 2, 20), (2, 3, 5)];
        let pairs = greedy_matching(4, &edges);
        assert!(pairs.contains(&(1, 2)));
        assert!(!pairs.contains(&(0, 1)), "0-1 blocked by matched 1");
        assert!(!pairs.contains(&(2, 3)), "2-3 blocked by matched 2");
    }

    #[test]
    fn matching_is_valid() {
        let edges = [(0, 1, 3), (2, 3, 3), (0, 2, 2), (1, 3, 2)];
        let pairs = greedy_matching(4, &edges);
        let mut seen = [0; 4];
        for (a, b) in &pairs {
            seen[*a] += 1;
            seen[*b] += 1;
        }
        assert!(
            seen.iter().all(|&s| s <= 1),
            "each vertex matched at most once"
        );
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn ignores_self_and_out_of_range_edges() {
        let edges = [(0, 0, 100), (0, 9, 100), (0, 1, 1)];
        let pairs = greedy_matching(2, &edges);
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn empty_input_gives_empty_matching() {
        assert!(greedy_matching(5, &[]).is_empty());
        assert!(greedy_matching(0, &[(0, 1, 1)]).is_empty());
    }

    #[test]
    fn deterministic_under_ties() {
        let edges = [(0, 1, 5), (2, 3, 5), (1, 2, 5)];
        let a = greedy_matching(4, &edges);
        let b = greedy_matching(4, &edges);
        assert_eq!(a, b);
    }
}
