//! IPC accounting under the paper's timing model.
//!
//! The paper's performance metric is IPC, computed from per-loop profiles
//! (`visits × iterations`) and the analytic `(N − 1 + SC)·II` cycle model.
//! IPC here counts **original program operations** per cycle: copies and
//! replicas are overhead, not work, so IPC is a pure inverse-time metric —
//! "25% more IPC" means the same program finished in 20% fewer cycles.
//! Executed-instruction overhead is reported separately (Figure 10).

/// Accumulates (operations, cycles) pairs across the loops of a program.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IpcAccumulator {
    ops: u64,
    cycles: u64,
}

impl IpcAccumulator {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        IpcAccumulator::default()
    }

    /// Adds raw operation and cycle counts.
    pub fn add(&mut self, ops: u64, cycles: u64) {
        self.ops += ops;
        self.cycles += cycles;
    }

    /// Adds one compiled loop: `ops_per_iter` original operations over
    /// `visits` × `iterations` with the given kernel parameters.
    pub fn add_loop(
        &mut self,
        visits: u64,
        iterations: u64,
        ops_per_iter: u32,
        ii: u32,
        stage_count: u32,
    ) {
        if iterations == 0 {
            return;
        }
        self.ops += visits * iterations * u64::from(ops_per_iter);
        self.cycles += visits * (iterations - 1 + u64::from(stage_count)) * u64::from(ii);
    }

    /// Total operations accumulated.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Total cycles accumulated.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions per cycle; `0.0` when no cycles were accumulated.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ops as f64 / self.cycles as f64
        }
    }
}

/// Harmonic mean, the paper's cross-benchmark aggregate (`HMEAN` in
/// Figure 7). Zero or negative entries are rejected.
///
/// # Panics
///
/// Panics if `values` is empty or contains a non-positive entry.
#[must_use]
pub fn harmonic_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "harmonic mean of nothing");
    assert!(
        values.iter().all(|&v| v > 0.0),
        "harmonic mean needs positive values"
    );
    values.len() as f64 / values.iter().map(|v| 1.0 / v).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_is_ops_over_cycles() {
        let mut acc = IpcAccumulator::new();
        acc.add(100, 50);
        assert_eq!(acc.ipc(), 2.0);
        assert_eq!(acc.ops(), 100);
        assert_eq!(acc.cycles(), 50);
    }

    #[test]
    fn empty_accumulator_has_zero_ipc() {
        assert_eq!(IpcAccumulator::new().ipc(), 0.0);
    }

    #[test]
    fn add_loop_uses_paper_formula() {
        let mut acc = IpcAccumulator::new();
        // 10 visits × 100 iterations × 8 ops; (100-1+3)*4 cycles per visit.
        acc.add_loop(10, 100, 8, 4, 3);
        assert_eq!(acc.ops(), 8_000);
        assert_eq!(acc.cycles(), 10 * 102 * 4);
        // Zero-iteration loops contribute nothing.
        acc.add_loop(5, 0, 8, 4, 3);
        assert_eq!(acc.ops(), 8_000);
    }

    #[test]
    fn lower_ii_raises_ipc() {
        let mut slow = IpcAccumulator::new();
        slow.add_loop(1, 1000, 10, 4, 2);
        let mut fast = IpcAccumulator::new();
        fast.add_loop(1, 1000, 10, 3, 3);
        assert!(fast.ipc() > slow.ipc());
    }

    #[test]
    fn harmonic_mean_matches_hand_value() {
        let hm = harmonic_mean(&[1.0, 2.0]);
        assert!((hm - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[3.0, 3.0, 3.0]), 3.0);
    }

    #[test]
    fn harmonic_mean_is_dominated_by_small_values() {
        let hm = harmonic_mean(&[0.1, 10.0, 10.0]);
        assert!(hm < 0.3, "{hm}");
    }

    #[test]
    #[should_panic(expected = "harmonic mean of nothing")]
    fn harmonic_mean_rejects_empty() {
        let _ = harmonic_mean(&[]);
    }
}
