//! Lockstep cycle-level execution of a modulo schedule.

use std::error::Error;
use std::fmt;

use cvliw_ddg::{Ddg, DepKind, NodeId};
use cvliw_machine::MachineConfig;
use cvliw_sched::Schedule;

use crate::value::{apply, live_in_value, operand_values, reference_values, Value};

/// Outcome of a simulation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimReport {
    /// Measured completion time: issue row of the last operation of the
    /// last iteration, plus one.
    pub makespan: u64,
    /// The paper's analytic `(N − 1 + SC)·II`; always ≥ `makespan` and
    /// within one II of it.
    pub texec_formula: u64,
    /// Functional-unit operations issued (instances × iterations).
    pub instructions_executed: u64,
    /// Bus copies issued.
    pub copies_executed: u64,
    /// Operand deliveries checked for timing and value.
    pub values_checked: u64,
}

/// A violation observed while executing the schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// Schedules built with the §5.1 zero-bus-latency relaxation are
    /// intentionally optimistic and cannot be executed.
    RelaxedSchedule,
    /// A value had not arrived when its consumer issued.
    LatencyViolated {
        /// Producer node.
        src: NodeId,
        /// Consumer node.
        dst: NodeId,
        /// Consumer cluster.
        cluster: u8,
        /// Iteration at which the violation occurred.
        iteration: u64,
    },
    /// A consumer observed a different value than the reference execution.
    ValueMismatch {
        /// The consuming node.
        node: NodeId,
        /// Consumer cluster.
        cluster: u8,
        /// Iteration at which the mismatch occurred.
        iteration: u64,
    },
    /// A consumer had no local instance and no copy to read.
    ValueUnavailable {
        /// Producer node.
        src: NodeId,
        /// Consumer node.
        dst: NodeId,
        /// Consumer cluster.
        cluster: u8,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RelaxedSchedule => {
                f.write_str("zero-bus-latency schedules cannot be simulated")
            }
            SimError::LatencyViolated {
                src,
                dst,
                cluster,
                iteration,
            } => write!(
                f,
                "iteration {iteration}: {dst} in cluster {cluster} issued before {src} arrived"
            ),
            SimError::ValueMismatch {
                node,
                cluster,
                iteration,
            } => write!(
                f,
                "iteration {iteration}: {node} in cluster {cluster} computed a wrong value"
            ),
            SimError::ValueUnavailable { src, dst, cluster } => {
                write!(f, "{dst} in cluster {cluster} has no way to read {src}")
            }
        }
    }
}

impl Error for SimError {}

/// Executes `iterations` iterations of a modulo schedule in lockstep,
/// checking that every operand arrives on time (through a local instance or
/// a bus copy) and carries the value the reference execution produces.
///
/// Register files rotate (as modulo scheduling assumes): each iteration's
/// value occupies its own rotated register, so overlapping lifetimes do not
/// clobber each other — the register *count* is checked statically by
/// [`Schedule::verify`] via MaxLive.
///
/// # Errors
///
/// Returns the first [`SimError`] encountered.
pub fn simulate(
    ddg: &Ddg,
    machine: &MachineConfig,
    schedule: &Schedule,
    iterations: u64,
) -> Result<SimReport, SimError> {
    if schedule.is_zero_bus_relaxed() {
        return Err(SimError::RelaxedSchedule);
    }
    let ii = i64::from(schedule.ii());
    let reference = reference_values(ddg, iterations);
    let mut values_checked = 0u64;

    for i in 0..iterations {
        let i_i64 = i as i64;
        for (&(v, c), &t_v) in schedule
            .instances()
            .collect::<Vec<_>>()
            .iter()
            .map(|x| (&x.0, &x.1))
        {
            let issue = t_v + i_i64 * ii;
            let mut operands: Vec<Value> = Vec::new();
            for e in ddg.in_edges(v) {
                let src_iter = i_i64 - i64::from(e.distance);
                match e.kind {
                    DepKind::Mem => {
                        if src_iter < 0 {
                            continue;
                        }
                        // Ordering against every instance of the producer.
                        for cu in schedule.instance_clusters(e.src).iter() {
                            let t_u = schedule.instance_cycle(e.src, cu).expect("instance exists");
                            let ready =
                                t_u + src_iter * ii + i64::from(machine.latency(ddg.kind(e.src)));
                            if ready > issue {
                                return Err(SimError::LatencyViolated {
                                    src: e.src,
                                    dst: v,
                                    cluster: c,
                                    iteration: i,
                                });
                            }
                        }
                    }
                    DepKind::Data => {
                        let value = if src_iter < 0 {
                            live_in_value(e.src, src_iter)
                        } else {
                            reference[src_iter as usize][e.src.index()]
                        };
                        operands.push(value);
                        if src_iter < 0 {
                            continue; // live-ins are ready before the loop
                        }
                        let ready = if schedule.instance_clusters(e.src).contains(c) {
                            let t_u = schedule.instance_cycle(e.src, c).expect("instance exists");
                            t_u + src_iter * ii + i64::from(machine.latency(ddg.kind(e.src)))
                        } else {
                            let Some(copy) = schedule.copy_of(e.src) else {
                                return Err(SimError::ValueUnavailable {
                                    src: e.src,
                                    dst: v,
                                    cluster: c,
                                });
                            };
                            // Delivery into this consumer's cluster:
                            // pair-dependent on point-to-point fabrics.
                            copy.cycle
                                + src_iter * ii
                                + i64::from(machine.transfer_latency(copy.source, c))
                        };
                        values_checked += 1;
                        if ready > issue {
                            return Err(SimError::LatencyViolated {
                                src: e.src,
                                dst: v,
                                cluster: c,
                                iteration: i,
                            });
                        }
                    }
                }
            }
            // Functional check: the instance recomputes the reference value.
            if ddg.kind(v).produces_value() {
                let expected = reference[i as usize][v.index()];
                debug_assert_eq!(
                    operands,
                    operand_values(ddg, v, i, &reference[..i as usize], &reference[i as usize]),
                );
                let got = apply(ddg.kind(v), v, &operands);
                if got != expected {
                    return Err(SimError::ValueMismatch {
                        node: v,
                        cluster: c,
                        iteration: i,
                    });
                }
            }
        }
    }

    let last_issue = schedule
        .instances()
        .map(|(_, t)| t)
        .chain(schedule.copies().map(|(_, cp)| cp.cycle))
        .max()
        .unwrap_or(0);
    let makespan = if iterations == 0 {
        0
    } else {
        u64::try_from(last_issue + (iterations as i64 - 1) * ii + 1).expect("non-negative")
    };
    Ok(SimReport {
        makespan,
        texec_formula: schedule.texec(iterations),
        instructions_executed: u64::from(schedule.op_count()) * iterations,
        copies_executed: u64::from(schedule.copy_count()) * iterations,
        values_checked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvliw_ddg::OpKind;
    use cvliw_sched::{schedule as build_schedule, Assignment, ScheduleRequest};

    fn machine(spec: &str) -> MachineConfig {
        MachineConfig::from_spec(spec).unwrap()
    }

    fn compile(ddg: &Ddg, m: &MachineConfig, part: &[u8], ii: u32) -> Schedule {
        let asg = Assignment::from_partition(part);
        build_schedule(&ScheduleRequest {
            ddg,
            machine: m,
            assignment: &asg,
            ii,
            zero_bus_dep_latency: false,
        })
        .unwrap()
    }

    #[test]
    fn clean_schedule_simulates() {
        let mut b = Ddg::builder();
        let ld = b.add_node(OpKind::Load);
        let m0 = b.add_node(OpKind::FpMul);
        let st = b.add_node(OpKind::Store);
        b.data(ld, m0).data(m0, st);
        let ddg = b.build().unwrap();
        let m = machine("2c1b2l64r");
        let s = compile(&ddg, &m, &[0, 0, 0], 2);
        let report = simulate(&ddg, &m, &s, 10).unwrap();
        assert_eq!(report.instructions_executed, 30);
        assert_eq!(report.copies_executed, 0);
        assert!(report.values_checked > 0);
        assert!(report.makespan <= report.texec_formula);
        assert!(report.texec_formula - report.makespan < u64::from(s.ii()));
    }

    #[test]
    fn cross_cluster_copies_deliver_values() {
        let mut b = Ddg::builder();
        let ld = b.add_node(OpKind::Load);
        let m0 = b.add_node(OpKind::FpMul);
        b.data(ld, m0);
        let ddg = b.build().unwrap();
        let m = machine("2c1b2l64r");
        let s = compile(&ddg, &m, &[0, 1], 2);
        assert_eq!(s.copy_count(), 1);
        let report = simulate(&ddg, &m, &s, 8).unwrap();
        assert_eq!(report.copies_executed, 8);
    }

    #[test]
    fn loop_carried_values_flow() {
        let mut b = Ddg::builder();
        let acc = b.add_node(OpKind::FpAdd);
        b.data_dist(acc, acc, 1);
        let ddg = b.build().unwrap();
        let m = machine("2c1b2l64r");
        let s = compile(&ddg, &m, &[0], 3);
        simulate(&ddg, &m, &s, 12).unwrap();
    }

    #[test]
    fn zero_iterations_is_trivial() {
        let mut b = Ddg::builder();
        let ld = b.add_node(OpKind::Load);
        let _ = ld;
        let ddg = b.build().unwrap();
        let m = machine("2c1b2l64r");
        let s = compile(&ddg, &m, &[0], 1);
        let r = simulate(&ddg, &m, &s, 0).unwrap();
        assert_eq!(r.makespan, 0);
        assert_eq!(r.texec_formula, 0);
    }

    #[test]
    fn relaxed_schedules_are_rejected() {
        let mut b = Ddg::builder();
        let ld = b.add_node(OpKind::Load);
        let m0 = b.add_node(OpKind::FpMul);
        b.data(ld, m0);
        let ddg = b.build().unwrap();
        let m = machine("2c1b2l64r");
        let asg = Assignment::from_partition(&[0, 1]);
        let s = build_schedule(&ScheduleRequest {
            ddg: &ddg,
            machine: &m,
            assignment: &asg,
            ii: 2,
            zero_bus_dep_latency: true,
        })
        .unwrap();
        assert_eq!(simulate(&ddg, &m, &s, 4), Err(SimError::RelaxedSchedule));
    }
}
