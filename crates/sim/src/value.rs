//! Deterministic functional semantics for DDG operations.
//!
//! Every operation computes a pure `u64` function of its kind, node id and
//! operand values (loads are pure functions of their address operands; the
//! memory hierarchy is centralized and cache accesses always hit, §4).
//! This is exactly what is needed to validate instruction replication: a
//! replica must compute the same value as the original, and a consumer fed
//! through a bus copy must observe the same value as one fed locally.

use cvliw_ddg::{Ddg, NodeId, OpKind};

/// The value type of the functional model.
pub type Value = u64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fold(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(FNV_PRIME)
}

/// The value an operand has before the loop starts: iteration `i - d`
/// with `i < d` reads a pre-loop live-in.
#[must_use]
pub fn live_in_value(node: NodeId, virtual_iteration: i64) -> Value {
    fold(
        fold(FNV_OFFSET, node.index() as u64),
        virtual_iteration as u64 ^ 0xabcd_ef01,
    )
}

/// Combines an operation with its operand values.
#[must_use]
pub fn apply(kind: OpKind, node: NodeId, operands: &[Value]) -> Value {
    let mut h = fold(FNV_OFFSET, node.index() as u64);
    h = fold(h, kind.mnemonic().len() as u64 ^ (kind as u64) << 8);
    for &v in operands {
        h = fold(h, v);
    }
    h
}

/// Reference execution of the loop body for `iterations` iterations with
/// unlimited resources: `result[i][n]` is the value node `n` produces in
/// iteration `i` (stores get 0).
///
/// Operand order is deterministic: incoming data edges in graph order.
#[must_use]
pub fn reference_values(ddg: &Ddg, iterations: u64) -> Vec<Vec<Value>> {
    let order = cvliw_ddg::topo_order(ddg);
    let n = ddg.node_count();
    let mut values: Vec<Vec<Value>> = Vec::with_capacity(iterations as usize);
    for i in 0..iterations {
        let mut row = vec![0u64; n];
        for &v in &order {
            if !ddg.kind(v).produces_value() {
                continue;
            }
            let operands = operand_values(ddg, v, i, &values, &row);
            row[v.index()] = apply(ddg.kind(v), v, &operands);
        }
        values.push(row);
    }
    values
}

/// The operand values node `v` reads in iteration `i`, given all earlier
/// rows and the partially computed current row.
#[must_use]
pub fn operand_values(
    ddg: &Ddg,
    v: NodeId,
    i: u64,
    earlier: &[Vec<Value>],
    current: &[Value],
) -> Vec<Value> {
    let mut ops = Vec::new();
    for e in ddg.in_edges(v) {
        if !e.is_data() {
            continue;
        }
        let src_iter = i as i64 - i64::from(e.distance);
        let value = if src_iter < 0 {
            live_in_value(e.src, src_iter)
        } else if (src_iter as u64) == i {
            current[e.src.index()]
        } else {
            earlier[src_iter as usize][e.src.index()]
        };
        ops.push(value);
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Ddg {
        let mut b = Ddg::builder();
        let ld = b.add_node(OpKind::Load);
        let m = b.add_node(OpKind::FpMul);
        let st = b.add_node(OpKind::Store);
        b.data(ld, m).data(m, st);
        b.build().unwrap()
    }

    #[test]
    fn reference_is_deterministic() {
        let ddg = chain();
        assert_eq!(reference_values(&ddg, 5), reference_values(&ddg, 5));
    }

    #[test]
    fn iterations_differ_via_live_ins() {
        // A loop-carried accumulator changes every iteration.
        let mut b = Ddg::builder();
        let acc = b.add_node(OpKind::FpAdd);
        b.data_dist(acc, acc, 1);
        let ddg = b.build().unwrap();
        let vals = reference_values(&ddg, 4);
        let col: Vec<u64> = vals.iter().map(|r| r[0]).collect();
        let mut dedup = col.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 4, "accumulator evolves: {col:?}");
    }

    #[test]
    fn stores_produce_zero() {
        let ddg = chain();
        let vals = reference_values(&ddg, 2);
        assert_eq!(vals[0][2], 0);
        assert_ne!(vals[0][1], 0);
    }

    #[test]
    fn apply_depends_on_all_inputs() {
        let n = NodeId::new(3);
        let base = apply(OpKind::FpAdd, n, &[1, 2]);
        assert_ne!(base, apply(OpKind::FpAdd, n, &[2, 1]));
        assert_ne!(base, apply(OpKind::FpMul, n, &[1, 2]));
        assert_ne!(base, apply(OpKind::FpAdd, NodeId::new(4), &[1, 2]));
    }

    #[test]
    fn distance_two_reads_two_back() {
        let mut b = Ddg::builder();
        let x = b.add_node(OpKind::FpAdd);
        let y = b.add_node(OpKind::FpMul);
        b.data_dist(x, y, 2);
        let ddg = b.build().unwrap();
        let vals = reference_values(&ddg, 5);
        // y at iteration 4 must read x at iteration 2.
        let expected = apply(OpKind::FpMul, y, &[vals[2][x.index()]]);
        assert_eq!(vals[4][y.index()], expected);
    }
}
