//! Cycle-level validation and performance accounting for clustered-VLIW
//! modulo schedules.
//!
//! The paper evaluates schedules analytically (`Texec = (N − 1 + SC)·II`
//! from profile data). This crate provides that accounting
//! ([`IpcAccumulator`], [`harmonic_mean`]) **and** a lockstep cycle
//! simulator ([`simulate`]) that executes a kernel with concrete values:
//! every operand must arrive on time — through a local (possibly
//! replicated) instance or over a bus copy — and must carry exactly the
//! value a reference execution of the original loop produces. A schedule
//! transformed by instruction replication therefore cannot silently change
//! program semantics without a test failing.
//!
//! # Example
//!
//! ```
//! use cvliw_ddg::{Ddg, OpKind};
//! use cvliw_machine::MachineConfig;
//! use cvliw_sched::{schedule, Assignment, ScheduleRequest};
//! use cvliw_sim::simulate;
//!
//! let mut b = Ddg::builder();
//! let ld = b.add_node(OpKind::Load);
//! let mul = b.add_node(OpKind::FpMul);
//! b.data(ld, mul);
//! let ddg = b.build()?;
//! let machine = MachineConfig::from_spec("2c1b2l64r")?;
//! let assignment = Assignment::from_partition(&[0, 1]);
//! let sched = schedule(&ScheduleRequest {
//!     ddg: &ddg, machine: &machine, assignment: &assignment,
//!     ii: 2, zero_bus_dep_latency: false,
//! })?;
//!
//! let report = simulate(&ddg, &machine, &sched, 16)?;
//! assert_eq!(report.copies_executed, 16);
//! assert!(report.makespan <= report.texec_formula);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cycle;
mod ipc;
mod value;

pub use cycle::{simulate, SimError, SimReport};
pub use ipc::{harmonic_mean, IpcAccumulator};
pub use value::{apply, live_in_value, operand_values, reference_values, Value};
