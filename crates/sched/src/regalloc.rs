//! Rotating-register allocation for modulo-scheduled loops.
//!
//! [`max_live`](crate::max_live) bounds how many registers a schedule
//! *needs*; this module performs the actual assignment, following the
//! rotating-register-file model modulo schedulers assume (Rau's iterative
//! modulo scheduling, the paper's reference [21]): the file rotates by one
//! register per iteration, so iteration `i` of a value allocated at base
//! `b` lives in physical register `b + i (mod R)` and overlapping lifetimes
//! of consecutive iterations never clobber each other.
//!
//! Geometrically each live range is a strip on the (register, kernel-slot)
//! torus: a lifetime of `L` cycles starting at cycle `def` covers
//! `⌊L / II⌋` whole registers (one per iteration in flight) plus a partial
//! arc of `L mod II` slots on the next. The allocator first-fit packs these
//! strips; the resulting register count is exact for the machine model and
//! always ≥ MaxLive, usually within one or two of it.

use cvliw_ddg::{Ddg, NodeId};
use cvliw_machine::MachineConfig;

use crate::regs::{live_ranges, Range};
use crate::schedule::Schedule;

/// Where one value lives in its cluster's rotating file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegAssignment {
    /// The value (DDG node) this register holds.
    pub value: NodeId,
    /// Base register of the allocated strip.
    pub base: u32,
    /// Registers occupied (`⌈L / II⌉` rounded up to at least 1, or the
    /// exact strip: `whole + (partial arc ? 1 : 0)`).
    pub width: u32,
}

/// The allocation of one cluster's register file.
#[derive(Clone, Debug, Default)]
pub struct ClusterAllocation {
    /// Per-value placements.
    pub assignments: Vec<RegAssignment>,
    /// Physical registers used (highest occupied index + 1).
    pub registers_used: u32,
}

/// A full per-cluster register allocation.
#[derive(Clone, Debug)]
pub struct RegisterAllocation {
    clusters: Vec<ClusterAllocation>,
}

impl RegisterAllocation {
    /// Allocation of one cluster.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    #[must_use]
    pub fn cluster(&self, cluster: u8) -> &ClusterAllocation {
        &self.clusters[cluster as usize]
    }

    /// Registers used per cluster.
    #[must_use]
    pub fn registers_used(&self) -> Vec<u32> {
        self.clusters.iter().map(|c| c.registers_used).collect()
    }

    /// The most registers any cluster uses.
    #[must_use]
    pub fn peak(&self) -> u32 {
        self.clusters
            .iter()
            .map(|c| c.registers_used)
            .max()
            .unwrap_or(0)
    }
}

/// Allocation failure: some cluster needs more registers than it has.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfRegisters {
    /// The cluster that overflowed.
    pub cluster: u8,
    /// Registers the allocator needed.
    pub needed: u32,
    /// Registers the machine provides per cluster.
    pub available: u32,
}

impl std::fmt::Display for OutOfRegisters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cluster {} needs {} rotating registers but has {}",
            self.cluster, self.needed, self.available
        )
    }
}

impl std::error::Error for OutOfRegisters {}

/// Assigns every live range of `schedule` a strip of rotating registers,
/// first-fit, per cluster.
///
/// # Errors
///
/// Returns [`OutOfRegisters`] when a cluster's file
/// ([`MachineConfig::regs_per_cluster`]) cannot hold its ranges. The
/// compilation driver admits schedules by the MaxLive bound, which is
/// necessary but not sufficient for first-fit: fragmentation can cost a
/// register or two over MaxLive (see the `alloc_close_to_maxlive` test),
/// so allocation may fail for schedules sitting within a register of the
/// file limit.
///
/// # Example
///
/// ```
/// use cvliw_ddg::{Ddg, OpKind};
/// use cvliw_machine::MachineConfig;
/// use cvliw_sched::{allocate_registers, schedule, Assignment, ScheduleRequest};
///
/// let mut b = Ddg::builder();
/// let ld = b.add_node(OpKind::Load);
/// let m = b.add_node(OpKind::FpMul);
/// let st = b.add_node(OpKind::Store);
/// b.data(ld, m).data(m, st);
/// let ddg = b.build()?;
/// let machine = MachineConfig::from_spec("2c1b2l64r")?;
/// let sched = schedule(&ScheduleRequest {
///     ddg: &ddg,
///     machine: &machine,
///     assignment: &Assignment::from_partition(&[0, 0, 0]),
///     ii: 1,
///     zero_bus_dep_latency: false,
/// })?;
///
/// let alloc = allocate_registers(&sched, &ddg, &machine)?;
/// // MaxLive for this chain at II=1 is 8; first-fit matches it here.
/// assert_eq!(alloc.registers_used()[0], 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn allocate_registers(
    schedule: &Schedule,
    ddg: &Ddg,
    machine: &MachineConfig,
) -> Result<RegisterAllocation, OutOfRegisters> {
    let ii = i64::from(schedule.ii());
    let ranges = live_ranges(schedule, ddg, machine);
    let mut clusters: Vec<ClusterAllocation> = (0..machine.clusters())
        .map(|_| ClusterAllocation::default())
        .collect();
    let mut files: Vec<RegFile> = (0..machine.clusters())
        .map(|_| RegFile::new(ii as usize))
        .collect();

    // Longest (widest) strips first: classic first-fit-decreasing.
    let mut order: Vec<&Range> = ranges.iter().filter(|r| r.span() > 0).collect();
    order.sort_unstable_by_key(|r| (std::cmp::Reverse(r.span()), r.value, r.cluster));

    for r in order {
        let file = &mut files[r.cluster as usize];
        let strip = Strip::of(r, ii);
        let base = file.first_fit(&strip);
        file.occupy(base, &strip);
        clusters[r.cluster as usize]
            .assignments
            .push(RegAssignment {
                value: r.value,
                base: base as u32,
                width: strip.width() as u32,
            });
        let used = &mut clusters[r.cluster as usize].registers_used;
        *used = (*used).max((base + strip.width()) as u32);
    }

    for (c, alloc) in clusters.iter().enumerate() {
        if alloc.registers_used > machine.regs_per_cluster() {
            return Err(OutOfRegisters {
                cluster: c as u8,
                needed: alloc.registers_used,
                available: machine.regs_per_cluster(),
            });
        }
    }
    Ok(RegisterAllocation { clusters })
}

/// A live range reduced to torus geometry: `whole` fully-covered registers
/// plus a partial arc `[arc_start, arc_start + arc_len)` (mod II) on the
/// register after them.
struct Strip {
    whole: usize,
    arc_start: usize,
    arc_len: usize,
}

impl Strip {
    fn of(r: &Range, ii: i64) -> Strip {
        let span = r.span();
        Strip {
            whole: (span / ii) as usize,
            arc_start: r.def.rem_euclid(ii) as usize,
            arc_len: (span % ii) as usize,
        }
    }

    fn width(&self) -> usize {
        self.whole + usize::from(self.arc_len > 0)
    }
}

/// Occupancy bitmap of one rotating file: `regs[r][slot]`.
struct RegFile {
    ii: usize,
    regs: Vec<Vec<bool>>,
}

impl RegFile {
    fn new(ii: usize) -> RegFile {
        RegFile {
            ii,
            regs: Vec::new(),
        }
    }

    fn grow_to(&mut self, n: usize) {
        while self.regs.len() < n {
            self.regs.push(vec![false; self.ii]);
        }
    }

    fn reg_empty(&self, r: usize) -> bool {
        self.regs.get(r).is_none_or(|row| row.iter().all(|&b| !b))
    }

    fn arc_free(&self, r: usize, start: usize, len: usize) -> bool {
        let Some(row) = self.regs.get(r) else {
            return true;
        };
        (0..len).all(|k| !row[(start + k) % self.ii])
    }

    fn fits(&self, base: usize, strip: &Strip) -> bool {
        (base..base + strip.whole).all(|r| self.reg_empty(r))
            && (strip.arc_len == 0
                || self.arc_free(base + strip.whole, strip.arc_start, strip.arc_len))
    }

    fn first_fit(&self, strip: &Strip) -> usize {
        (0..)
            .find(|&base| self.fits(base, strip))
            .expect("file grows on demand")
    }

    fn occupy(&mut self, base: usize, strip: &Strip) {
        self.grow_to(base + strip.width());
        for r in base..base + strip.whole {
            self.regs[r].iter_mut().for_each(|b| *b = true);
        }
        for k in 0..strip.arc_len {
            let slot = (strip.arc_start + k) % self.ii;
            self.regs[base + strip.whole][slot] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::Assignment;
    use crate::regs::max_live;
    use crate::schedule::{schedule, ScheduleRequest};
    use cvliw_ddg::OpKind;

    fn machine(spec: &str) -> MachineConfig {
        MachineConfig::from_spec(spec).unwrap()
    }

    fn sched(ddg: &Ddg, m: &MachineConfig, part: &[u8], ii: u32) -> Schedule {
        schedule(&ScheduleRequest {
            ddg,
            machine: m,
            assignment: &Assignment::from_partition(part),
            ii,
            zero_bus_dep_latency: false,
        })
        .unwrap()
    }

    fn chain() -> Ddg {
        let mut b = Ddg::builder();
        let ld = b.add_node(OpKind::Load);
        let m0 = b.add_node(OpKind::FpMul);
        let st = b.add_node(OpKind::Store);
        b.data(ld, m0).data(m0, st);
        b.build().unwrap()
    }

    #[test]
    fn allocation_covers_every_value_with_a_lifetime() {
        let ddg = chain();
        let m = machine("2c1b2l64r");
        let s = sched(&ddg, &m, &[0, 0, 0], 2);
        let alloc = allocate_registers(&s, &ddg, &m).unwrap();
        // load and fmul produce consumed values; the store produces none.
        assert_eq!(alloc.cluster(0).assignments.len(), 2);
        assert!(alloc.cluster(1).assignments.is_empty());
    }

    #[test]
    fn alloc_never_below_maxlive() {
        let ddg = chain();
        let m = machine("2c1b2l64r");
        for ii in 1..5 {
            let s = sched(&ddg, &m, &[0, 0, 0], ii);
            let alloc = allocate_registers(&s, &ddg, &m).unwrap();
            let pressure = max_live(&s, &ddg, &m);
            for (c, &p) in pressure.iter().enumerate() {
                assert!(
                    alloc.registers_used()[c] >= p,
                    "ii={ii} cluster {c}: {} < MaxLive {p}",
                    alloc.registers_used()[c]
                );
            }
        }
    }

    #[test]
    fn alloc_close_to_maxlive() {
        // First-fit-decreasing should not waste more than a couple of
        // registers over the MaxLive bound on a simple chain.
        let ddg = chain();
        let m = machine("2c1b2l64r");
        let s = sched(&ddg, &m, &[0, 0, 0], 1);
        let alloc = allocate_registers(&s, &ddg, &m).unwrap();
        let p = max_live(&s, &ddg, &m)[0];
        assert!(
            alloc.registers_used()[0] <= p + 2,
            "{} vs {p}",
            alloc.registers_used()[0]
        );
    }

    #[test]
    fn strips_never_overlap() {
        // Rebuild the occupancy from the assignments and check disjointness.
        let ddg = {
            let mut b = Ddg::builder();
            let iv = b.add_node(OpKind::IntAdd);
            b.data_dist(iv, iv, 1);
            for _ in 0..3 {
                let ld = b.add_node(OpKind::Load);
                let m0 = b.add_node(OpKind::FpMul);
                let st = b.add_node(OpKind::Store);
                b.data(iv, ld).data(ld, m0).data(m0, st);
            }
            b.build().unwrap()
        };
        let m = machine("2c1b2l64r");
        let s = sched(&ddg, &m, &[0; 10], 3);
        let alloc = allocate_registers(&s, &ddg, &m).unwrap();
        let ranges = live_ranges(&s, &ddg, &m);
        let ii = 3i64;
        let used = alloc.registers_used()[0] as usize;
        let mut occ = vec![vec![0u32; 3]; used];
        for a in &alloc.cluster(0).assignments {
            let r = ranges
                .iter()
                .find(|r| r.value == a.value && r.cluster == 0)
                .expect("assignment has a range");
            for off in 0..r.span() {
                let reg = a.base as usize + ((off) / ii) as usize;
                let slot = (r.def + off).rem_euclid(ii) as usize;
                occ[reg][slot] += 1;
            }
        }
        for (reg, row) in occ.iter().enumerate() {
            for (slot, &k) in row.iter().enumerate() {
                assert!(k <= 1, "register {reg} slot {slot} double-booked");
            }
        }
    }

    #[test]
    fn copy_destinations_get_registers_too() {
        let mut b = Ddg::builder();
        let ld = b.add_node(OpKind::Load);
        let m0 = b.add_node(OpKind::FpMul);
        b.data(ld, m0);
        let ddg = b.build().unwrap();
        let m = machine("4c1b2l64r");
        let s = sched(&ddg, &m, &[0, 1], 2);
        let alloc = allocate_registers(&s, &ddg, &m).unwrap();
        assert!(alloc.cluster(0).registers_used >= 1);
        assert!(
            alloc.cluster(1).registers_used >= 1,
            "copied value needs a register"
        );
    }

    #[test]
    fn overflow_is_reported() {
        // The scheduler itself refuses over-pressure schedules, so build
        // against a roomy file and allocate against a tiny one (II=1 chain
        // pressure is 8; the small machine has 4 registers).
        let ddg = chain();
        let roomy = machine("2c1b2l64r");
        let tiny = MachineConfig::from_spec("2c1b2l4r").unwrap();
        let s = sched(&ddg, &roomy, &[0, 0, 0], 1);
        let err = allocate_registers(&s, &ddg, &tiny).unwrap_err();
        assert_eq!(err.cluster, 0);
        assert!(err.needed > err.available);
        assert!(err.to_string().contains("rotating registers"));
    }

    #[test]
    fn zero_span_values_need_no_register() {
        // A load feeding only a store in another cluster via copy: its home
        // lifetime is just the latency; still allocated. But a store itself
        // never appears.
        let ddg = chain();
        let m = machine("2c1b2l64r");
        let s = sched(&ddg, &m, &[0, 0, 0], 2);
        let alloc = allocate_registers(&s, &ddg, &m).unwrap();
        for a in &alloc.cluster(0).assignments {
            assert!(ddg.kind(a.value).produces_value());
            assert!(a.width >= 1);
        }
    }
}
