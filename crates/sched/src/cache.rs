//! The II-invariant analysis cache.
//!
//! The driver's Figure-2 loop retries `partition → replicate → schedule`
//! at every candidate initiation interval, and the suite compiles the same
//! loop under five policies on the same machine. Most of the analysis work
//! those retries perform does not depend on the II or the policy at all —
//! it is a pure function of `(Ddg, MachineConfig)`:
//!
//! * per-node producer latencies and the dense per-edge latency vector,
//! * longest-path depth/height over the distance-0 subgraph,
//! * the SCC decomposition, which components carry recurrences, and each
//!   component's RecMII,
//! * the loop-wide RecMII / unclustered ResMII / MII triple,
//! * the operation census per functional-unit class, and
//! * the full swing-modulo-scheduling priority order plus the topological
//!   fallback order.
//!
//! [`LoopAnalysis`] computes all of it exactly once and is threaded **by
//! shared reference** through `mii`, partitioning, replication and the
//! scheduler, so an II bump or a policy switch reuses it instead of
//! recomputing. Construction calls the same functions the one-shot APIs
//! call, so cached and uncached paths are bit-identical by construction
//! (the workspace's determinism contract); the equivalence property test
//! in the root crate asserts exactly that.

use cvliw_ddg::{depth_height, rec_mii, scc_of_node, sccs, topo_order, Ddg, Edge, NodeId};
use cvliw_machine::MachineConfig;

use crate::mii::res_mii_unclustered;
use crate::order::{comp_rec_miis, is_recurrent_comp, sms_order_parts};

/// Every II-invariant artifact of one `(loop, machine)` pair.
///
/// Build it once per loop × machine and pass it by reference to the `_with`
/// variants of the pipeline entry points (`compile_loop_with`,
/// `schedule_with_analysis`, `partition_loop_with`, …). All accessors are
/// cheap slice reads.
#[derive(Clone, Debug)]
pub struct LoopAnalysis {
    node_lat: Vec<u32>,
    edge_lat: Vec<u32>,
    depth: Vec<i64>,
    height: Vec<i64>,
    sccs: Vec<Vec<NodeId>>,
    scc_of: Vec<usize>,
    scc_recurrent: Vec<bool>,
    scc_rec_mii: Vec<u32>,
    rec_mii: u32,
    res_mii: u32,
    mii: u32,
    count_by_class: [u32; 3],
    sms_order: Vec<NodeId>,
    topo_order: Vec<NodeId>,
}

impl LoopAnalysis {
    /// Computes every II-invariant artifact of `(ddg, machine)`.
    #[must_use]
    pub fn new(ddg: &Ddg, machine: &MachineConfig) -> Self {
        let node_lat: Vec<u32> = ddg
            .node_ids()
            .map(|n| machine.latency(ddg.kind(n)))
            .collect();
        let edge_lat: Vec<u32> = ddg.edges().map(|e| node_lat[e.src.index()]).collect();
        let lat = |e: &Edge| node_lat[e.src.index()];

        let (depth, height) = depth_height(ddg, lat);
        let comps = sccs(ddg);
        let scc_of = scc_of_node(ddg);
        let scc_recurrent: Vec<bool> = comps.iter().map(|c| is_recurrent_comp(ddg, c)).collect();
        let scc_rec_mii = comp_rec_miis(ddg, &comps, lat);

        let rec = rec_mii(ddg, lat);
        let res = res_mii_unclustered(ddg, machine);
        let order = sms_order_parts(ddg, &depth, &height, &comps, &scc_rec_mii);

        LoopAnalysis {
            node_lat,
            edge_lat,
            depth,
            height,
            sccs: comps,
            scc_of,
            scc_recurrent,
            scc_rec_mii,
            rec_mii: rec,
            res_mii: res,
            mii: res.max(rec),
            count_by_class: ddg.count_by_class(),
            sms_order: order,
            topo_order: topo_order(ddg),
        }
    }

    /// Latency of the value each node produces, indexed by node.
    #[must_use]
    pub fn node_lat(&self) -> &[u32] {
        &self.node_lat
    }

    /// Per-edge latencies, aligned with `ddg.edges()` order.
    #[must_use]
    pub fn edge_lat(&self) -> &[u32] {
        &self.edge_lat
    }

    /// The edge-latency closure over the cached vector — a drop-in for
    /// `MachineConfig::edge_latency` without the per-call kind lookup.
    pub fn lat(&self) -> impl Fn(&Edge) -> u32 + '_ {
        move |e: &Edge| self.node_lat[e.src.index()]
    }

    /// Longest latency-weighted path from any source to each node.
    #[must_use]
    pub fn depth(&self) -> &[i64] {
        &self.depth
    }

    /// Longest latency-weighted path from each node to any sink.
    #[must_use]
    pub fn height(&self) -> &[i64] {
        &self.height
    }

    /// The strongly connected components, as produced by `cvliw_ddg::sccs`.
    #[must_use]
    pub fn sccs(&self) -> &[Vec<NodeId>] {
        &self.sccs
    }

    /// Component index of each node in [`LoopAnalysis::sccs`].
    #[must_use]
    pub fn scc_of(&self) -> &[usize] {
        &self.scc_of
    }

    /// Whether each component carries a recurrence (size > 1 or self-loop).
    #[must_use]
    pub fn scc_recurrent(&self) -> &[bool] {
        &self.scc_recurrent
    }

    /// RecMII of each component (1 for non-recurrent components).
    #[must_use]
    pub fn scc_rec_mii(&self) -> &[u32] {
        &self.scc_rec_mii
    }

    /// The loop-wide recurrence-constrained MII.
    #[must_use]
    pub fn rec_mii(&self) -> u32 {
        self.rec_mii
    }

    /// The unclustered resource-constrained MII.
    #[must_use]
    pub fn res_mii(&self) -> u32 {
        self.res_mii
    }

    /// `max(ResMII, RecMII)` — what [`crate::mii`] computes from scratch.
    #[must_use]
    pub fn mii(&self) -> u32 {
        self.mii
    }

    /// Operations per functional-unit class (`[int, fp, mem]`).
    #[must_use]
    pub fn count_by_class(&self) -> &[u32; 3] {
        &self.count_by_class
    }

    /// The full swing-modulo-scheduling priority order.
    #[must_use]
    pub fn sms_order(&self) -> &[NodeId] {
        &self.sms_order
    }

    /// The topological fallback order of the distance-0 subgraph.
    #[must_use]
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo_order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mii, sms_order};
    use cvliw_ddg::OpKind;

    fn machine(spec: &str) -> MachineConfig {
        MachineConfig::from_spec(spec).unwrap()
    }

    /// A recurrence plus an independent chain, exercising every artifact.
    fn sample() -> Ddg {
        let mut b = Ddg::builder();
        let x = b.add_node(OpKind::FpAdd);
        let y = b.add_node(OpKind::FpMul);
        b.data(x, y).data_dist(y, x, 1);
        let ld = b.add_node(OpKind::Load);
        let st = b.add_node(OpKind::Store);
        b.data(ld, st);
        b.build().unwrap()
    }

    #[test]
    fn matches_one_shot_apis() {
        let ddg = sample();
        let m = machine("4c1b2l64r");
        let a = LoopAnalysis::new(&ddg, &m);
        assert_eq!(a.mii(), mii(&ddg, &m));
        assert_eq!(a.sms_order(), sms_order(&ddg, &m).as_slice());
        assert_eq!(a.topo_order(), cvliw_ddg::topo_order(&ddg).as_slice());
        assert_eq!(a.rec_mii(), cvliw_ddg::rec_mii(&ddg, m.edge_latency(&ddg)));
        assert_eq!(a.count_by_class(), &ddg.count_by_class());
        let lat = m.edge_latency(&ddg);
        let expect: Vec<u32> = ddg.edges().map(&lat).collect();
        assert_eq!(a.edge_lat(), expect.as_slice());
        let (depth, height) = cvliw_ddg::depth_height(&ddg, &lat);
        assert_eq!(a.depth(), depth.as_slice());
        assert_eq!(a.height(), height.as_slice());
    }

    #[test]
    fn scc_artifacts_are_aligned() {
        let ddg = sample();
        let a = LoopAnalysis::new(&ddg, &machine("4c1b2l64r"));
        assert_eq!(a.sccs().len(), a.scc_recurrent().len());
        assert_eq!(a.sccs().len(), a.scc_rec_mii().len());
        assert_eq!(a.scc_of().len(), ddg.node_count());
        // the fp ring is recurrent with RecMII 3+6=9; ld/st are trivial.
        let ring_comp = a.scc_of()[0];
        assert!(a.scc_recurrent()[ring_comp]);
        assert_eq!(a.scc_rec_mii()[ring_comp], 9);
        let ld_comp = a.scc_of()[2];
        assert!(!a.scc_recurrent()[ld_comp]);
        assert_eq!(a.scc_rec_mii()[ld_comp], 1);
        assert_eq!(a.rec_mii(), 9);
    }

    #[test]
    fn lat_closure_reads_the_cached_vector() {
        let ddg = sample();
        let m = machine("4c1b2l64r");
        let a = LoopAnalysis::new(&ddg, &m);
        let lat = a.lat();
        for (e, &expect) in ddg.edges().zip(a.edge_lat()) {
            assert_eq!(lat(e), expect);
        }
    }
}
