//! Modulo reservation tables for functional units and register buses.

use cvliw_ddg::OpClass;
use cvliw_machine::MachineConfig;

/// Modulo reservation table tracking functional-unit and bus occupancy of a
/// kernel with a given initiation interval.
///
/// Functional units are fully pipelined: an operation occupies one issue
/// slot of its class in its cluster at `cycle mod II`. Buses are **not**
/// pipelined (§3 of the paper: `bus_coms = floor(II/bus_lat)·nof_buses`): a
/// copy occupies one bus for `bus_lat` consecutive modulo slots.
#[derive(Clone, Debug)]
pub struct Mrt {
    ii: u32,
    /// Cycles one transfer occupies its bus (1 on pipelined-bus machines).
    bus_latency: u32,
    /// `fu[(cluster·3 + class)·slots + slot]` = issued ops; flat so a
    /// [`Mrt::reset`] between scheduling attempts touches one allocation.
    fu: Vec<u8>,
    /// `fu_capacity[cluster][class]` — per cluster, so heterogeneous
    /// machines (§2.1 extension) are handled natively.
    fu_capacity: Vec<[u8; 3]>,
    /// `bus[bus·slots + slot]` = busy flag.
    bus: Vec<bool>,
}

impl Mrt {
    /// An unsized table holding no reservations; must be [`Mrt::reset`]
    /// before use. Crate-internal: the scheduler scratch needs a value to
    /// hold between attempts, but a zero-II table would panic on every
    /// query, so it is never exposed.
    pub(crate) fn unset() -> Self {
        Mrt {
            ii: 0,
            bus_latency: 0,
            fu: Vec::new(),
            fu_capacity: Vec::new(),
            bus: Vec::new(),
        }
    }

    /// Creates an empty table for `machine` at initiation interval `ii`.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    #[must_use]
    pub fn new(machine: &MachineConfig, ii: u32) -> Self {
        let mut mrt = Mrt::unset();
        mrt.reset(machine, ii);
        mrt
    }

    /// Clears the table and resizes it for `machine` at `ii`, reusing the
    /// existing buffers. A table that is reset before each scheduling
    /// attempt behaves exactly like a freshly constructed one.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn reset(&mut self, machine: &MachineConfig, ii: u32) {
        assert!(ii > 0, "initiation interval must be positive");
        let slots = ii as usize;
        self.ii = ii;
        self.bus_latency = machine.bus_occupancy();
        self.fu.clear();
        self.fu.resize(machine.clusters() as usize * 3 * slots, 0);
        self.fu_capacity.clear();
        self.fu_capacity.extend(machine.cluster_ids().map(|c| {
            [
                machine.fu_count_in(c, OpClass::Int),
                machine.fu_count_in(c, OpClass::Fp),
                machine.fu_count_in(c, OpClass::Mem),
            ]
        }));
        self.bus.clear();
        self.bus.resize(machine.buses() as usize * slots, false);
    }

    /// Flat index of `(cluster, class, slot)` in the unit table.
    fn fu_index(&self, cluster: u8, class: OpClass, slot: usize) -> usize {
        (cluster as usize * 3 + class.index()) * self.ii as usize + slot
    }

    /// The initiation interval of this table.
    #[must_use]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    fn slot(&self, cycle: i64) -> usize {
        cycle.rem_euclid(i64::from(self.ii)) as usize
    }

    /// Whether a `class` operation can issue in `cluster` at (absolute)
    /// `cycle`.
    #[must_use]
    pub fn fu_free(&self, cluster: u8, class: OpClass, cycle: i64) -> bool {
        let slot = self.slot(cycle);
        self.fu[self.fu_index(cluster, class, slot)]
            < self.fu_capacity[cluster as usize][class.index()]
    }

    /// Reserves a `class` issue slot in `cluster` at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is full ([`Mrt::fu_free`] must be checked first).
    pub fn place_fu(&mut self, cluster: u8, class: OpClass, cycle: i64) {
        assert!(
            self.fu_free(cluster, class, cycle),
            "functional unit oversubscribed"
        );
        let idx = self.fu_index(cluster, class, self.slot(cycle));
        self.fu[idx] += 1;
    }

    /// Releases a previously reserved slot (used by backtracking tests).
    ///
    /// # Panics
    ///
    /// Panics if nothing was reserved there.
    pub fn remove_fu(&mut self, cluster: u8, class: OpClass, cycle: i64) {
        let idx = self.fu_index(cluster, class, self.slot(cycle));
        let v = &mut self.fu[idx];
        assert!(*v > 0, "no reservation to remove");
        *v -= 1;
    }

    /// Finds a bus able to carry a copy issued at `cycle` (occupying
    /// `bus_lat` consecutive modulo slots), if any.
    #[must_use]
    pub fn bus_available(&self, cycle: i64) -> Option<u8> {
        if self.bus_latency > self.ii {
            return None; // a transfer cannot even fit inside the kernel
        }
        let slots = self.ii as usize;
        'bus: for (b, busy) in self.bus.chunks_exact(slots).enumerate() {
            for k in 0..self.bus_latency {
                if busy[self.slot(cycle + i64::from(k))] {
                    continue 'bus;
                }
            }
            return Some(b as u8);
        }
        None
    }

    /// Reserves `bus` for a copy issued at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if any of the occupied slots is already busy.
    pub fn place_copy(&mut self, bus: u8, cycle: i64) {
        for k in 0..self.bus_latency {
            let slot = bus as usize * self.ii as usize + self.slot(cycle + i64::from(k));
            assert!(!self.bus[slot], "bus oversubscribed");
            self.bus[slot] = true;
        }
    }

    /// Number of copies that could still be placed if issued back to back
    /// (diagnostic; used in tests).
    #[must_use]
    pub fn free_bus_transfers(&self) -> u32 {
        if self.bus_latency == 0 || self.bus_latency > self.ii {
            return 0;
        }
        let per_bus = self.ii / self.bus_latency;
        self.bus
            .chunks_exact(self.ii as usize)
            .map(|busy| {
                let used = busy.iter().filter(|&&b| b).count() as u32;
                per_bus.saturating_sub(used.div_ceil(self.bus_latency))
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvliw_machine::MachineConfig;

    fn machine(spec: &str) -> MachineConfig {
        MachineConfig::from_spec(spec).unwrap()
    }

    #[test]
    fn fu_capacity_is_respected() {
        // 4c: one unit of each class per cluster.
        let m = machine("4c1b2l64r");
        let mut mrt = Mrt::new(&m, 2);
        assert!(mrt.fu_free(0, OpClass::Fp, 0));
        mrt.place_fu(0, OpClass::Fp, 0);
        assert!(!mrt.fu_free(0, OpClass::Fp, 0));
        // other slot, other cluster, other class all still free
        assert!(mrt.fu_free(0, OpClass::Fp, 1));
        assert!(mrt.fu_free(1, OpClass::Fp, 0));
        assert!(mrt.fu_free(0, OpClass::Int, 0));
    }

    #[test]
    fn modulo_wrapping() {
        let m = machine("4c1b2l64r");
        let mut mrt = Mrt::new(&m, 3);
        mrt.place_fu(0, OpClass::Int, 7); // slot 1
        assert!(!mrt.fu_free(0, OpClass::Int, 1));
        assert!(!mrt.fu_free(0, OpClass::Int, -2)); // -2 mod 3 == 1
        mrt.remove_fu(0, OpClass::Int, 4);
        assert!(mrt.fu_free(0, OpClass::Int, 1));
    }

    #[test]
    fn two_units_allow_two_ops() {
        let m = machine("2c1b2l64r");
        let mut mrt = Mrt::new(&m, 1);
        mrt.place_fu(0, OpClass::Mem, 0);
        assert!(mrt.fu_free(0, OpClass::Mem, 0));
        mrt.place_fu(0, OpClass::Mem, 0);
        assert!(!mrt.fu_free(0, OpClass::Mem, 0));
    }

    #[test]
    #[should_panic(expected = "oversubscribed")]
    fn overplacing_panics() {
        let m = machine("4c1b2l64r");
        let mut mrt = Mrt::new(&m, 1);
        mrt.place_fu(0, OpClass::Fp, 0);
        mrt.place_fu(0, OpClass::Fp, 0);
    }

    #[test]
    fn bus_occupies_latency_slots() {
        // 1 bus, 2-cycle latency, II=4 → capacity 2 transfers.
        let m = machine("2c1b2l64r");
        let mut mrt = Mrt::new(&m, 4);
        let b = mrt.bus_available(0).unwrap();
        mrt.place_copy(b, 0); // occupies slots 0,1
        assert!(mrt.bus_available(0).is_none());
        assert!(mrt.bus_available(1).is_none()); // would need slots 1,2
        let b2 = mrt.bus_available(2).unwrap(); // slots 2,3 free
        mrt.place_copy(b2, 2);
        assert!(mrt.bus_available(2).is_none());
        for t in 0..4 {
            assert!(mrt.bus_available(t).is_none());
        }
    }

    #[test]
    fn multiple_buses() {
        let m = machine("4c2b4l64r");
        let mut mrt = Mrt::new(&m, 4);
        let b0 = mrt.bus_available(0).unwrap();
        mrt.place_copy(b0, 0);
        let b1 = mrt.bus_available(0).unwrap();
        assert_ne!(b0, b1);
        mrt.place_copy(b1, 0);
        assert!(mrt.bus_available(0).is_none());
    }

    #[test]
    fn bus_latency_longer_than_ii_is_impossible() {
        let m = machine("4c2b4l64r"); // 4-cycle bus
        let mrt = Mrt::new(&m, 3);
        assert!(mrt.bus_available(0).is_none());
    }

    #[test]
    fn bus_wraps_modulo_ii() {
        let m = machine("2c1b2l64r"); // 2-cycle bus
        let mut mrt = Mrt::new(&m, 3);
        let b = mrt.bus_available(2).unwrap();
        mrt.place_copy(b, 2); // occupies slots 2 and 0
        assert!(mrt.bus_available(0).is_none()); // needs 0,1 but 0 busy
        assert!(mrt.bus_available(1).is_none()); // needs 1,2 but 2 busy
    }

    #[test]
    fn pipelined_buses_accept_back_to_back_copies() {
        // Same machine as `bus_occupies_latency_slots`, but pipelined: one
        // transfer per cycle, so II=4 carries four copies on one bus.
        let m = machine("2c1b2l64r").with_pipelined_buses();
        let mut mrt = Mrt::new(&m, 4);
        for t in 0..4 {
            let b = mrt.bus_available(t).expect("slot free at cycle {t}");
            mrt.place_copy(b, t);
        }
        assert!(mrt.bus_available(0).is_none(), "kernel now full");
    }

    #[test]
    fn unified_machine_has_no_buses() {
        let m = MachineConfig::unified(256);
        let mrt = Mrt::new(&m, 10);
        assert!(mrt.bus_available(0).is_none());
        assert_eq!(mrt.free_bus_transfers(), 0);
    }
}
