//! Modulo reservation tables for functional units and interconnect links.

use cvliw_ddg::OpClass;
use cvliw_machine::{Interconnect, MachineConfig};

use crate::assign::ClusterSet;

/// Modulo reservation table tracking functional-unit and interconnect-link
/// occupancy of a kernel with a given initiation interval.
///
/// Functional units are fully pipelined: an operation occupies one issue
/// slot of its class in its cluster at `cycle mod II`. Links are **not**
/// pipelined (§3 of the paper: `bus_coms = floor(II/bus_lat)·nof_buses`): a
/// copy occupies its link(s) for the transfer's occupancy in consecutive
/// modulo slots. On the paper's shared buses every copy takes any one bus
/// row; on point-to-point fabrics a copy books the dedicated `src → dst`
/// link of every destination it reaches, each with its own per-pair
/// occupancy.
#[derive(Clone, Debug)]
pub struct Mrt {
    ii: u32,
    clusters: u8,
    interconnect: Interconnect,
    /// `fu[(cluster·3 + class)·slots + slot]` = issued ops; flat so a
    /// [`Mrt::reset`] between scheduling attempts touches one allocation.
    fu: Vec<u8>,
    /// `fu_capacity[cluster][class]` — per cluster, so heterogeneous
    /// machines (§2.1 extension) are handled natively.
    fu_capacity: Vec<[u8; 3]>,
    /// Per-link transfer occupancy in cycles (uniform on shared buses,
    /// per-pair on point-to-point fabrics).
    link_occ: Vec<u32>,
    /// `links[link·slots + slot]` = busy flag.
    links: Vec<bool>,
}

impl Mrt {
    /// An unsized table holding no reservations; must be [`Mrt::reset`]
    /// before use. Crate-internal: the scheduler scratch needs a value to
    /// hold between attempts, but a zero-II table would panic on every
    /// query, so it is never exposed.
    pub(crate) fn unset() -> Self {
        Mrt {
            ii: 0,
            clusters: 0,
            interconnect: Interconnect::SharedBus {
                buses: 0,
                latency: 0,
                pipelined: false,
            },
            fu: Vec::new(),
            fu_capacity: Vec::new(),
            link_occ: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Creates an empty table for `machine` at initiation interval `ii`.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    #[must_use]
    pub fn new(machine: &MachineConfig, ii: u32) -> Self {
        let mut mrt = Mrt::unset();
        mrt.reset(machine, ii);
        mrt
    }

    /// Clears the table and resizes it for `machine` at `ii`, reusing the
    /// existing buffers. A table that is reset before each scheduling
    /// attempt behaves exactly like a freshly constructed one.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn reset(&mut self, machine: &MachineConfig, ii: u32) {
        assert!(ii > 0, "initiation interval must be positive");
        let slots = ii as usize;
        self.ii = ii;
        self.clusters = machine.clusters();
        self.interconnect = machine.interconnect();
        self.fu.clear();
        self.fu.resize(machine.clusters() as usize * 3 * slots, 0);
        self.fu_capacity.clear();
        self.fu_capacity.extend(machine.cluster_ids().map(|c| {
            [
                machine.fu_count_in(c, OpClass::Int),
                machine.fu_count_in(c, OpClass::Fp),
                machine.fu_count_in(c, OpClass::Mem),
            ]
        }));
        let n_links = machine.links() as usize;
        self.link_occ.clear();
        if self.interconnect.is_shared_bus() {
            self.link_occ.resize(n_links, machine.bus_occupancy());
        } else {
            self.link_occ.extend((0..n_links as u32).map(|l| {
                let (s, d) = self.interconnect.link_pair(self.clusters, l);
                machine.link_occupancy(s, d)
            }));
        }
        self.links.clear();
        self.links.resize(n_links * slots, false);
    }

    /// Flat index of `(cluster, class, slot)` in the unit table.
    fn fu_index(&self, cluster: u8, class: OpClass, slot: usize) -> usize {
        (cluster as usize * 3 + class.index()) * self.ii as usize + slot
    }

    /// The initiation interval of this table.
    #[must_use]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    fn slot(&self, cycle: i64) -> usize {
        cycle.rem_euclid(i64::from(self.ii)) as usize
    }

    /// Whether a `class` operation can issue in `cluster` at (absolute)
    /// `cycle`.
    #[must_use]
    pub fn fu_free(&self, cluster: u8, class: OpClass, cycle: i64) -> bool {
        let slot = self.slot(cycle);
        self.fu[self.fu_index(cluster, class, slot)]
            < self.fu_capacity[cluster as usize][class.index()]
    }

    /// Reserves a `class` issue slot in `cluster` at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is full ([`Mrt::fu_free`] must be checked first).
    pub fn place_fu(&mut self, cluster: u8, class: OpClass, cycle: i64) {
        assert!(
            self.fu_free(cluster, class, cycle),
            "functional unit oversubscribed"
        );
        let idx = self.fu_index(cluster, class, self.slot(cycle));
        self.fu[idx] += 1;
    }

    /// Releases a previously reserved slot (used by backtracking tests).
    ///
    /// # Panics
    ///
    /// Panics if nothing was reserved there.
    pub fn remove_fu(&mut self, cluster: u8, class: OpClass, cycle: i64) {
        let idx = self.fu_index(cluster, class, self.slot(cycle));
        let v = &mut self.fu[idx];
        assert!(*v > 0, "no reservation to remove");
        *v -= 1;
    }

    /// Whether one link is free for `occ` consecutive modulo slots from
    /// `cycle`.
    fn link_free(&self, link: usize, occ: u32, cycle: i64) -> bool {
        let slots = self.ii as usize;
        let row = &self.links[link * slots..(link + 1) * slots];
        (0..occ).all(|k| !row[self.slot(cycle + i64::from(k))])
    }

    /// Books one link for `occ` consecutive modulo slots from `cycle`.
    fn book_link(&mut self, link: usize, occ: u32, cycle: i64) {
        let slots = self.ii as usize;
        for k in 0..occ {
            let slot = link * slots + self.slot(cycle + i64::from(k));
            assert!(!self.links[slot], "link oversubscribed");
            self.links[slot] = true;
        }
    }

    /// Finds the fabric resource able to carry a copy issued at `cycle`
    /// from `source` to every cluster in `dests`, if any: the index of a
    /// free shared bus, or `0` on a point-to-point fabric when the
    /// dedicated `source → dest` link of **every** destination is free for
    /// its per-pair occupancy. Shared buses broadcast, so `source`/`dests`
    /// are ignored there.
    #[must_use]
    pub fn copy_available(&self, source: u8, dests: ClusterSet, cycle: i64) -> Option<u8> {
        if self.interconnect.is_shared_bus() {
            let occ = self.link_occ.first().copied().unwrap_or(0);
            if occ > self.ii {
                return None; // a transfer cannot even fit inside the kernel
            }
            (0..self.link_occ.len())
                .find(|&b| self.link_free(b, occ, cycle))
                .map(|b| b as u8)
        } else {
            if self.links.is_empty() {
                return None;
            }
            debug_assert!(!dests.is_empty(), "a copy must reach some cluster");
            for d in dests.iter() {
                let link = self.interconnect.link_of(self.clusters, source, d) as usize;
                let occ = self.link_occ[link];
                if occ > self.ii || !self.link_free(link, occ, cycle) {
                    return None;
                }
            }
            Some(0)
        }
    }

    /// Reserves the fabric for a copy issued at `cycle`: shared bus `bus`
    /// (as returned by [`Mrt::copy_available`]), or the per-destination
    /// links of a point-to-point fabric.
    ///
    /// # Panics
    ///
    /// Panics if any occupied slot is already busy.
    pub fn place_copy(&mut self, source: u8, dests: ClusterSet, bus: u8, cycle: i64) {
        if self.interconnect.is_shared_bus() {
            let occ = self.link_occ.first().copied().unwrap_or(0);
            self.book_link(bus as usize, occ, cycle);
        } else {
            for d in dests.iter() {
                let link = self.interconnect.link_of(self.clusters, source, d) as usize;
                self.book_link(link, self.link_occ[link], cycle);
            }
        }
    }

    /// Number of transfers that could still be placed if issued back to
    /// back (diagnostic; used in tests).
    #[must_use]
    pub fn free_link_transfers(&self) -> u32 {
        let slots = self.ii as usize;
        self.links
            .chunks_exact(slots.max(1))
            .zip(&self.link_occ)
            .map(|(busy, &occ)| {
                if occ == 0 || occ > self.ii {
                    return 0;
                }
                let used = busy.iter().filter(|&&b| b).count() as u32;
                (self.ii / occ).saturating_sub(used.div_ceil(occ))
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvliw_machine::MachineConfig;

    fn machine(spec: &str) -> MachineConfig {
        MachineConfig::from_spec(spec).unwrap()
    }

    /// Shorthand: a copy from cluster 0 to cluster 1.
    fn to1() -> ClusterSet {
        ClusterSet::single(1)
    }

    #[test]
    fn fu_capacity_is_respected() {
        // 4c: one unit of each class per cluster.
        let m = machine("4c1b2l64r");
        let mut mrt = Mrt::new(&m, 2);
        assert!(mrt.fu_free(0, OpClass::Fp, 0));
        mrt.place_fu(0, OpClass::Fp, 0);
        assert!(!mrt.fu_free(0, OpClass::Fp, 0));
        // other slot, other cluster, other class all still free
        assert!(mrt.fu_free(0, OpClass::Fp, 1));
        assert!(mrt.fu_free(1, OpClass::Fp, 0));
        assert!(mrt.fu_free(0, OpClass::Int, 0));
    }

    #[test]
    fn modulo_wrapping() {
        let m = machine("4c1b2l64r");
        let mut mrt = Mrt::new(&m, 3);
        mrt.place_fu(0, OpClass::Int, 7); // slot 1
        assert!(!mrt.fu_free(0, OpClass::Int, 1));
        assert!(!mrt.fu_free(0, OpClass::Int, -2)); // -2 mod 3 == 1
        mrt.remove_fu(0, OpClass::Int, 4);
        assert!(mrt.fu_free(0, OpClass::Int, 1));
    }

    #[test]
    fn two_units_allow_two_ops() {
        let m = machine("2c1b2l64r");
        let mut mrt = Mrt::new(&m, 1);
        mrt.place_fu(0, OpClass::Mem, 0);
        assert!(mrt.fu_free(0, OpClass::Mem, 0));
        mrt.place_fu(0, OpClass::Mem, 0);
        assert!(!mrt.fu_free(0, OpClass::Mem, 0));
    }

    #[test]
    #[should_panic(expected = "oversubscribed")]
    fn overplacing_panics() {
        let m = machine("4c1b2l64r");
        let mut mrt = Mrt::new(&m, 1);
        mrt.place_fu(0, OpClass::Fp, 0);
        mrt.place_fu(0, OpClass::Fp, 0);
    }

    #[test]
    fn bus_occupies_latency_slots() {
        // 1 bus, 2-cycle latency, II=4 → capacity 2 transfers.
        let m = machine("2c1b2l64r");
        let mut mrt = Mrt::new(&m, 4);
        let b = mrt.copy_available(0, to1(), 0).unwrap();
        mrt.place_copy(0, to1(), b, 0); // occupies slots 0,1
        assert!(mrt.copy_available(0, to1(), 0).is_none());
        assert!(mrt.copy_available(0, to1(), 1).is_none()); // would need slots 1,2
        let b2 = mrt.copy_available(0, to1(), 2).unwrap(); // slots 2,3 free
        mrt.place_copy(0, to1(), b2, 2);
        assert!(mrt.copy_available(0, to1(), 2).is_none());
        for t in 0..4 {
            assert!(mrt.copy_available(0, to1(), t).is_none());
        }
    }

    #[test]
    fn multiple_buses() {
        let m = machine("4c2b4l64r");
        let mut mrt = Mrt::new(&m, 4);
        let b0 = mrt.copy_available(0, to1(), 0).unwrap();
        mrt.place_copy(0, to1(), b0, 0);
        let b1 = mrt.copy_available(0, to1(), 0).unwrap();
        assert_ne!(b0, b1);
        mrt.place_copy(0, to1(), b1, 0);
        assert!(mrt.copy_available(0, to1(), 0).is_none());
    }

    #[test]
    fn bus_latency_longer_than_ii_is_impossible() {
        let m = machine("4c2b4l64r"); // 4-cycle bus
        let mrt = Mrt::new(&m, 3);
        assert!(mrt.copy_available(0, to1(), 0).is_none());
    }

    #[test]
    fn bus_wraps_modulo_ii() {
        let m = machine("2c1b2l64r"); // 2-cycle bus
        let mut mrt = Mrt::new(&m, 3);
        let b = mrt.copy_available(0, to1(), 2).unwrap();
        mrt.place_copy(0, to1(), b, 2); // occupies slots 2 and 0
        assert!(mrt.copy_available(0, to1(), 0).is_none()); // needs 0,1 but 0 busy
        assert!(mrt.copy_available(0, to1(), 1).is_none()); // needs 1,2 but 2 busy
    }

    #[test]
    fn pipelined_buses_accept_back_to_back_copies() {
        // Same machine as `bus_occupies_latency_slots`, but pipelined: one
        // transfer per cycle, so II=4 carries four copies on one bus.
        let m = machine("2c1b2l64r").with_pipelined_buses();
        let mut mrt = Mrt::new(&m, 4);
        for t in 0..4 {
            let b = mrt
                .copy_available(0, to1(), t)
                .expect("slot free at cycle {t}");
            mrt.place_copy(0, to1(), b, t);
        }
        assert!(mrt.copy_available(0, to1(), 0).is_none(), "kernel now full");
    }

    #[test]
    fn unified_machine_has_no_links() {
        let m = MachineConfig::unified(256);
        let mrt = Mrt::new(&m, 10);
        assert!(mrt.copy_available(0, to1(), 0).is_none());
        assert_eq!(mrt.free_link_transfers(), 0);
    }

    #[test]
    fn ptp_links_are_pair_dedicated() {
        // 4-cluster crossbar, 1-cycle links at II=1: every ordered pair
        // has its own link, so transfers to different destinations never
        // contend while same-pair transfers do.
        let m = machine("4c-xbar1l64r");
        let mut mrt = Mrt::new(&m, 1);
        mrt.place_copy(0, ClusterSet::single(1), 0, 0);
        assert!(mrt.copy_available(0, ClusterSet::single(1), 0).is_none());
        assert!(mrt.copy_available(0, ClusterSet::single(2), 0).is_some());
        assert!(mrt.copy_available(1, ClusterSet::single(0), 0).is_some());
    }

    #[test]
    fn ptp_broadcast_books_every_destination_link() {
        let m = machine("4c-xbar1l64r");
        let mut mrt = Mrt::new(&m, 1);
        let dests = {
            let mut s = ClusterSet::single(1);
            s.insert(2);
            s
        };
        mrt.place_copy(0, dests, 0, 0);
        assert!(mrt.copy_available(0, ClusterSet::single(1), 0).is_none());
        assert!(mrt.copy_available(0, ClusterSet::single(2), 0).is_none());
        assert!(mrt.copy_available(0, ClusterSet::single(3), 0).is_some());
    }

    #[test]
    fn ring_occupancy_scales_with_distance() {
        // 4-cluster ring, 1-cycle hops: 0→2 is two hops, occupying its
        // link for 2 cycles; at II=2 only one such transfer fits.
        let m = machine("4c-ring1l64r");
        let mut mrt = Mrt::new(&m, 2);
        let far = ClusterSet::single(2);
        assert!(mrt.copy_available(0, far, 0).is_some());
        mrt.place_copy(0, far, 0, 0);
        assert!(mrt.copy_available(0, far, 0).is_none());
        assert!(mrt.copy_available(0, far, 1).is_none());
        // Neighbouring transfers (1-cycle occupancy) still fit twice.
        let near = ClusterSet::single(1);
        mrt.place_copy(0, near, 0, 0);
        mrt.place_copy(0, near, 0, 1);
        assert!(mrt.copy_available(0, near, 0).is_none());
    }

    #[test]
    fn ring_transfer_longer_than_ii_is_impossible() {
        // 4-cluster ring with 2-cycle hops: 0→2 occupies 4 cycles.
        let m = machine("4c-ring2l64r");
        let mrt = Mrt::new(&m, 3);
        assert!(mrt.copy_available(0, ClusterSet::single(2), 0).is_none());
        assert!(mrt.copy_available(0, ClusterSet::single(1), 0).is_some());
    }

    #[test]
    fn free_link_transfers_counts_per_link_slots() {
        let m = machine("2c1b2l64r"); // 1 bus, occ 2, II=4 → 2 transfers
        let mut mrt = Mrt::new(&m, 4);
        assert_eq!(mrt.free_link_transfers(), 2);
        mrt.place_copy(0, to1(), 0, 0);
        assert_eq!(mrt.free_link_transfers(), 1);

        let x = machine("4c-xbar1l64r"); // 12 links, occ 1, II=2
        let mrt = Mrt::new(&x, 2);
        assert_eq!(mrt.free_link_transfers(), 24);
    }
}
