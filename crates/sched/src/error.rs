//! Scheduling failures and their attribution to II-increase causes.

use std::error::Error;
use std::fmt;

use cvliw_ddg::{NodeId, OpClass};

/// Why an II increase was needed — the categories of the paper's Figure 1,
/// plus an explicit `Resources` bucket for plain functional-unit conflicts
/// (the paper folds those into its scheduler's internals).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IiCause {
    /// Too many inter-cluster communications for the bus bandwidth.
    Bus,
    /// A recurrence does not fit: a node's legal issue window closed.
    Recurrence,
    /// Register pressure exceeded the per-cluster register file.
    Registers,
    /// No functional-unit slot available (cluster saturated).
    Resources,
}

impl IiCause {
    /// All causes in reporting order.
    pub const ALL: [IiCause; 4] = [
        IiCause::Bus,
        IiCause::Recurrence,
        IiCause::Registers,
        IiCause::Resources,
    ];

    /// Report label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            IiCause::Bus => "bus",
            IiCause::Recurrence => "recurrences",
            IiCause::Registers => "registers",
            IiCause::Resources => "resources",
        }
    }
}

impl fmt::Display for IiCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A failed attempt to schedule a loop at some initiation interval.
///
/// The driver reacts by increasing the II and refining the partition
/// (Figure 2 of the paper); [`ScheduleError::cause`] classifies the failure
/// for the Figure-1 statistics.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// More communications than the buses can carry at this II.
    Bus {
        /// Communications required by the assignment.
        needed: u32,
        /// `floor(II/bus_lat)·buses`.
        capacity: u32,
    },
    /// A node's issue window (bounded by scheduled predecessors *and*
    /// successors) contained no legal slot.
    Recurrence {
        /// The node that could not be placed.
        node: NodeId,
    },
    /// No functional-unit slot for this node anywhere in an open window.
    FuSlots {
        /// The node that could not be placed.
        node: NodeId,
        /// Its functional-unit class.
        class: OpClass,
        /// The saturated cluster.
        cluster: u8,
    },
    /// No bus slot for a copy operation anywhere in its window.
    CopySlots {
        /// The communicated value.
        value: NodeId,
    },
    /// MaxLive exceeded the register file of a cluster.
    Registers {
        /// The over-pressured cluster.
        cluster: u8,
        /// Estimated simultaneously-live values.
        maxlive: u32,
        /// Registers available in the cluster.
        available: u32,
    },
}

impl ScheduleError {
    /// The Figure-1 cause bucket of this failure.
    #[must_use]
    pub fn cause(&self) -> IiCause {
        match self {
            ScheduleError::Bus { .. } | ScheduleError::CopySlots { .. } => IiCause::Bus,
            ScheduleError::Recurrence { .. } => IiCause::Recurrence,
            ScheduleError::FuSlots { .. } => IiCause::Resources,
            ScheduleError::Registers { .. } => IiCause::Registers,
        }
    }
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Bus { needed, capacity } => {
                write!(
                    f,
                    "{needed} communications exceed bus capacity of {capacity} per II"
                )
            }
            ScheduleError::Recurrence { node } => {
                write!(
                    f,
                    "issue window of {node} closed: recurrence does not fit this II"
                )
            }
            ScheduleError::FuSlots {
                node,
                class,
                cluster,
            } => {
                write!(f, "no {class} slot for {node} in cluster {cluster}")
            }
            ScheduleError::CopySlots { value } => {
                write!(f, "no bus slot for the copy of {value}")
            }
            ScheduleError::Registers {
                cluster,
                maxlive,
                available,
            } => write!(
                f,
                "register pressure {maxlive} exceeds {available} registers in cluster {cluster}"
            ),
        }
    }
}

impl Error for ScheduleError {}

/// A violation found by [`crate::Schedule::verify`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// A node has no instance anywhere.
    MissingInstance {
        /// The uninstantiated node.
        node: NodeId,
    },
    /// A store was replicated (forbidden: §3.1).
    ReplicatedStore {
        /// The store.
        node: NodeId,
    },
    /// A dependence is violated (value not ready at consumer issue).
    LatencyViolated {
        /// Producer.
        src: NodeId,
        /// Consumer.
        dst: NodeId,
        /// Cluster of the consuming instance.
        cluster: u8,
    },
    /// A consumer has neither a local producer instance nor a copy to read.
    ValueUnavailable {
        /// Producer.
        src: NodeId,
        /// Consumer.
        dst: NodeId,
        /// Cluster of the consuming instance.
        cluster: u8,
    },
    /// A copy exists but its producer has no instance in the copy's source
    /// cluster.
    CopyWithoutSource {
        /// The copied value.
        value: NodeId,
    },
    /// More operations of a class issued in a cycle than the cluster has
    /// units.
    FuOversubscribed {
        /// Cluster index.
        cluster: u8,
        /// Functional-unit class.
        class: OpClass,
        /// Modulo slot with the conflict.
        slot: u32,
    },
    /// Two copies overlap on the same interconnect link (a shared bus, or
    /// a dedicated cluster-pair link on point-to-point fabrics).
    BusOversubscribed {
        /// Link index (bus index on shared-bus machines).
        bus: u32,
        /// Modulo slot with the conflict.
        slot: u32,
    },
    /// A copy was emitted for a machine without links, or with an invalid
    /// bus index.
    InvalidBus {
        /// The copied value.
        value: NodeId,
    },
    /// Register pressure exceeds the cluster's register file.
    RegisterPressure {
        /// Cluster index.
        cluster: u8,
        /// MaxLive measured.
        maxlive: u32,
        /// Registers available.
        available: u32,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::MissingInstance { node } => write!(f, "{node} has no instance"),
            VerifyError::ReplicatedStore { node } => write!(f, "store {node} is replicated"),
            VerifyError::LatencyViolated { src, dst, cluster } => {
                write!(f, "dependence {src} -> {dst} violated in cluster {cluster}")
            }
            VerifyError::ValueUnavailable { src, dst, cluster } => write!(
                f,
                "{dst} in cluster {cluster} cannot read {src}: no local instance and no copy"
            ),
            VerifyError::CopyWithoutSource { value } => {
                write!(f, "copy of {value} reads a cluster without an instance")
            }
            VerifyError::FuOversubscribed {
                cluster,
                class,
                slot,
            } => {
                write!(
                    f,
                    "too many {class} ops in cluster {cluster} at modulo slot {slot}"
                )
            }
            VerifyError::BusOversubscribed { bus, slot } => {
                write!(f, "link {bus} oversubscribed at modulo slot {slot}")
            }
            VerifyError::InvalidBus { value } => {
                write!(f, "copy of {value} uses an invalid bus")
            }
            VerifyError::RegisterPressure {
                cluster,
                maxlive,
                available,
            } => write!(
                f,
                "maxlive {maxlive} exceeds {available} registers in cluster {cluster}"
            ),
        }
    }
}

impl Error for VerifyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn causes_map_to_figure_1_buckets() {
        assert_eq!(
            ScheduleError::Bus {
                needed: 5,
                capacity: 2
            }
            .cause(),
            IiCause::Bus
        );
        assert_eq!(
            ScheduleError::CopySlots {
                value: NodeId::new(0)
            }
            .cause(),
            IiCause::Bus
        );
        assert_eq!(
            ScheduleError::Recurrence {
                node: NodeId::new(1)
            }
            .cause(),
            IiCause::Recurrence
        );
        assert_eq!(
            ScheduleError::Registers {
                cluster: 0,
                maxlive: 70,
                available: 64
            }
            .cause(),
            IiCause::Registers
        );
        assert_eq!(
            ScheduleError::FuSlots {
                node: NodeId::new(2),
                class: OpClass::Fp,
                cluster: 1
            }
            .cause(),
            IiCause::Resources
        );
    }

    #[test]
    fn displays_are_informative() {
        let e = ScheduleError::Bus {
            needed: 5,
            capacity: 2,
        };
        assert!(e.to_string().contains('5'));
        let v = VerifyError::RegisterPressure {
            cluster: 3,
            maxlive: 70,
            available: 64,
        };
        assert!(v.to_string().contains("cluster 3"));
    }
}
