//! The modulo scheduler and the [`Schedule`] it produces.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use cvliw_ddg::{Ddg, DepKind, NodeId};
use cvliw_machine::MachineConfig;

use crate::assign::{Assignment, ClusterSet};
use crate::cache::LoopAnalysis;
use crate::error::{ScheduleError, VerifyError};
use crate::mrt::Mrt;
use crate::order::sms_order;
use crate::regs::{max_live, max_live_scratch, RegScratch};

/// One schedulable operation: an instance of a DDG node in a concrete
/// cluster, or the bus copy of a communicated value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SchedOp {
    /// `(node, cluster)` instance.
    Instance(NodeId, u8),
    /// Bus copy broadcasting `node`'s value.
    Copy(NodeId),
}

/// Placement of a bus copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CopyPlacement {
    /// Issue cycle (absolute, within the flat one-iteration schedule).
    pub cycle: i64,
    /// Shared bus carrying the transfer; `0` on point-to-point fabrics,
    /// whose links are determined by `(source, destination)` pairs instead
    /// of chosen.
    pub bus: u8,
    /// Cluster whose instance the copy reads.
    pub source: u8,
}

/// A request to schedule one loop at a fixed initiation interval.
#[derive(Clone, Copy, Debug)]
pub struct ScheduleRequest<'a> {
    /// The loop body.
    pub ddg: &'a Ddg,
    /// Target machine.
    pub machine: &'a MachineConfig,
    /// Cluster assignment (possibly with replicated instances).
    pub assignment: &'a Assignment,
    /// Candidate initiation interval.
    pub ii: u32,
    /// §5.1 upper-bound study: treat the bus as zero-latency for
    /// *dependences* while still consuming bus bandwidth. Schedules built
    /// this way are intentionally optimistic and marked as such.
    pub zero_bus_dep_latency: bool,
}

/// A modulo schedule: issue cycles for every instance and every copy.
///
/// All cycles are absolute within the flat schedule of one iteration
/// (normalized so the earliest issue is cycle 0); the kernel slot of an
/// operation is its cycle modulo [`Schedule::ii`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    ii: u32,
    instances: BTreeMap<(NodeId, u8), i64>,
    copies: BTreeMap<NodeId, CopyPlacement>,
    length: u32,
    zero_bus_dep_latency: bool,
}

impl Schedule {
    /// The initiation interval.
    #[must_use]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Schedule length in issue rows (`max cycle − min cycle + 1`).
    #[must_use]
    pub fn length(&self) -> u32 {
        self.length
    }

    /// Stage count `SC = ceil(length / II)`.
    #[must_use]
    pub fn stage_count(&self) -> u32 {
        self.length.div_ceil(self.ii).max(1)
    }

    /// Execution cycles for `n` iterations: `(N − 1 + SC)·II` (paper §2.2);
    /// `0` when `n == 0`.
    #[must_use]
    pub fn texec(&self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        (n - 1 + u64::from(self.stage_count())) * u64::from(self.ii)
    }

    /// Whether this schedule was built with the §5.1 zero-bus-latency
    /// relaxation (its timing is optimistic and must not be simulated).
    #[must_use]
    pub fn is_zero_bus_relaxed(&self) -> bool {
        self.zero_bus_dep_latency
    }

    /// Issue cycle of the instance of `n` in `cluster`, if scheduled there.
    #[must_use]
    pub fn instance_cycle(&self, n: NodeId, cluster: u8) -> Option<i64> {
        self.instances.get(&(n, cluster)).copied()
    }

    /// All `(node, cluster) → cycle` placements in deterministic order.
    pub fn instances(&self) -> impl Iterator<Item = ((NodeId, u8), i64)> + '_ {
        self.instances.iter().map(|(&k, &v)| (k, v))
    }

    /// All copies in deterministic order.
    pub fn copies(&self) -> impl Iterator<Item = (NodeId, CopyPlacement)> + '_ {
        self.copies.iter().map(|(&k, &v)| (k, v))
    }

    /// The copy of `n`, if its value is communicated.
    #[must_use]
    pub fn copy_of(&self, n: NodeId) -> Option<CopyPlacement> {
        self.copies.get(&n).copied()
    }

    /// Clusters holding an instance of `n`.
    #[must_use]
    pub fn instance_clusters(&self, n: NodeId) -> ClusterSet {
        self.instances
            .range((n, 0)..=(n, u8::MAX))
            .map(|(&(_, c), _)| c)
            .collect()
    }

    /// Number of functional-unit operations in the kernel (instances,
    /// including replicas; excluding copies).
    #[must_use]
    pub fn op_count(&self) -> u32 {
        self.instances.len() as u32
    }

    /// Number of bus copies in the kernel.
    #[must_use]
    pub fn copy_count(&self) -> u32 {
        self.copies.len() as u32
    }

    /// Per-cluster register pressure (MaxLive) of the kernel.
    #[must_use]
    pub fn register_pressure(&self, ddg: &Ddg, machine: &MachineConfig) -> Vec<u32> {
        max_live(self, ddg, machine)
    }

    /// Checks the schedule against every machine and dependence constraint.
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError`] found: a node without instances, a
    /// replicated store, a violated latency, a value unavailable in a
    /// consumer's cluster, oversubscribed units or buses, or register
    /// pressure above the file size.
    pub fn verify(&self, ddg: &Ddg, machine: &MachineConfig) -> Result<(), VerifyError> {
        let ii = i64::from(self.ii);
        // The latency a consumer in `cluster` waits on a copy's delivery:
        // pair-dependent on point-to-point fabrics, the bus latency on the
        // paper's shared buses, zero under the §5.1 relaxation.
        let copy_dep_lat = |copy: &CopyPlacement, cluster: u8| -> i64 {
            if self.zero_bus_dep_latency {
                0
            } else {
                i64::from(machine.transfer_latency(copy.source, cluster))
            }
        };

        // Instances present, stores unique.
        for n in ddg.node_ids() {
            let clusters = self.instance_clusters(n);
            if clusters.is_empty() {
                return Err(VerifyError::MissingInstance { node: n });
            }
            if ddg.kind(n) == cvliw_ddg::OpKind::Store && clusters.len() > 1 {
                return Err(VerifyError::ReplicatedStore { node: n });
            }
        }

        // Copy sources exist and the fabric can carry them.
        for (&value, copy) in &self.copies {
            if !self.instance_clusters(value).contains(copy.source) {
                return Err(VerifyError::CopyWithoutSource { value });
            }
            let valid_resource = match machine.interconnect() {
                cvliw_machine::Interconnect::SharedBus { buses, .. } => copy.bus < buses,
                // Point-to-point links are pair-addressed, not chosen: the
                // fabric must exist and the bus field must be the
                // documented placeholder 0.
                cvliw_machine::Interconnect::PointToPoint { .. } => {
                    machine.links() > 0 && copy.bus == 0
                }
            };
            if !valid_resource {
                return Err(VerifyError::InvalidBus { value });
            }
            let t_src = self.instances[&(value, copy.source)];
            let lat = i64::from(machine.latency(ddg.kind(value)));
            if copy.cycle < t_src + lat {
                return Err(VerifyError::LatencyViolated {
                    src: value,
                    dst: value,
                    cluster: copy.source,
                });
            }
        }

        // Dependences.
        for e in ddg.edges() {
            let lat = i64::from(machine.latency(ddg.kind(e.src)));
            let dist = i64::from(e.distance) * ii;
            match e.kind {
                DepKind::Mem => {
                    for ((_, _), &t_src) in self.instances.range((e.src, 0)..=(e.src, u8::MAX)) {
                        for (&(_, c_dst), &t_dst) in
                            self.instances.range((e.dst, 0)..=(e.dst, u8::MAX))
                        {
                            if t_dst + dist < t_src + lat {
                                return Err(VerifyError::LatencyViolated {
                                    src: e.src,
                                    dst: e.dst,
                                    cluster: c_dst,
                                });
                            }
                        }
                    }
                }
                DepKind::Data => {
                    let src_clusters = self.instance_clusters(e.src);
                    for (&(_, c), &t_dst) in self.instances.range((e.dst, 0)..=(e.dst, u8::MAX)) {
                        if src_clusters.contains(c) {
                            let t_src = self.instances[&(e.src, c)];
                            if t_dst + dist < t_src + lat {
                                return Err(VerifyError::LatencyViolated {
                                    src: e.src,
                                    dst: e.dst,
                                    cluster: c,
                                });
                            }
                        } else {
                            let Some(copy) = self.copies.get(&e.src) else {
                                return Err(VerifyError::ValueUnavailable {
                                    src: e.src,
                                    dst: e.dst,
                                    cluster: c,
                                });
                            };
                            if t_dst + dist < copy.cycle + copy_dep_lat(copy, c) {
                                return Err(VerifyError::LatencyViolated {
                                    src: e.src,
                                    dst: e.dst,
                                    cluster: c,
                                });
                            }
                        }
                    }
                }
            }
        }

        // Functional units: one flat `(cluster, class, slot)` occupancy
        // table instead of a `Vec<[Vec<u32>; 3]>` per call.
        let slots = self.ii as usize;
        let mut fu = vec![0u32; machine.clusters() as usize * 3 * slots];
        for (&(n, c), &t) in &self.instances {
            let class = ddg.kind(n).class();
            let slot = t.rem_euclid(ii) as usize;
            let count = &mut fu[(c as usize * 3 + class.index()) * slots + slot];
            *count += 1;
            if *count > u32::from(machine.fu_count_in(c, class)) {
                return Err(VerifyError::FuOversubscribed {
                    cluster: c,
                    class,
                    slot: slot as u32,
                });
            }
        }

        // Interconnect links: a copy occupies its link(s) for the
        // transfer's occupancy (= latency on the paper's unpipelined
        // buses, 1 cycle on the pipelined variant, the per-pair occupancy
        // on point-to-point fabrics, where a broadcast books the dedicated
        // link of every destination). Same flat-table treatment as the
        // functional units.
        let mut link_table = vec![false; machine.links() as usize * slots];
        let mut book = |link: u32, occ: u32, cycle: i64| -> Result<(), VerifyError> {
            for k in 0..occ {
                let slot = (cycle + i64::from(k)).rem_euclid(ii) as usize;
                let cell = &mut link_table[link as usize * slots + slot];
                if *cell {
                    return Err(VerifyError::BusOversubscribed {
                        bus: link,
                        slot: slot as u32,
                    });
                }
                *cell = true;
            }
            Ok(())
        };
        for (&value, copy) in &self.copies {
            if machine.interconnect().is_shared_bus() {
                book(u32::from(copy.bus), machine.bus_occupancy(), copy.cycle)?;
            } else {
                // Destinations: every consumer cluster without an instance
                // of the value.
                let mut dests = ClusterSet::empty();
                let sources = self.instance_clusters(value);
                for e in ddg.out_edges(value) {
                    if !e.is_data() {
                        continue;
                    }
                    dests = dests.union(self.instance_clusters(e.dst).difference(sources));
                }
                for d in dests.iter() {
                    book(
                        machine.link_of(copy.source, d),
                        machine.link_occupancy(copy.source, d),
                        copy.cycle,
                    )?;
                }
            }
        }

        // Register pressure.
        let pressure = max_live(self, ddg, machine);
        for (c, &p) in pressure.iter().enumerate() {
            if p > machine.regs_per_cluster() {
                return Err(VerifyError::RegisterPressure {
                    cluster: c as u8,
                    maxlive: p,
                    available: machine.regs_per_cluster(),
                });
            }
        }
        Ok(())
    }

    /// Renders the kernel as a text table: one row per modulo slot, one
    /// column per cluster plus a bus column. The number after `@` is the
    /// operation's stage (absolute cycle divided by the II).
    #[must_use]
    pub fn render(&self, ddg: &Ddg) -> String {
        let mut rows: Vec<Vec<String>> = Vec::new();
        let ii = i64::from(self.ii);
        let clusters = 1 + self
            .instances
            .keys()
            .map(|&(_, c)| c as usize)
            .max()
            .unwrap_or(0);
        for slot in 0..self.ii {
            let mut row = vec![String::new(); clusters + 1];
            for (&(n, c), &t) in &self.instances {
                if t.rem_euclid(ii) == i64::from(slot) {
                    let cell = &mut row[c as usize];
                    if !cell.is_empty() {
                        cell.push_str("; ");
                    }
                    let _ = write!(cell, "{}@{}", ddg.display_label(n), t.div_euclid(ii));
                }
            }
            for (&n, copy) in &self.copies {
                if copy.cycle.rem_euclid(ii) == i64::from(slot) {
                    let cell = &mut row[clusters];
                    if !cell.is_empty() {
                        cell.push_str("; ");
                    }
                    let _ = write!(cell, "copy({})b{}", ddg.display_label(n), copy.bus);
                }
            }
            rows.push(row);
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "II={} length={} SC={}",
            self.ii,
            self.length,
            self.stage_count()
        );
        for (slot, row) in rows.iter().enumerate() {
            let _ = write!(out, "{slot:>3} |");
            for cell in row {
                let _ = write!(out, " {cell:<24}|");
            }
            out.push('\n');
        }
        out
    }
}

/// Which node ordering drives the backtracking-free placer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OrderStrategy {
    /// Swing modulo scheduling ([`sms_order`]): best schedule quality, but
    /// its alternating sweeps can sandwich a join node between already
    /// placed neighbours whose distance-0 window never opens, failing at
    /// every II.
    #[default]
    Swing,
    /// Topological order: when placing a node only its predecessors (and
    /// loop-carried successors, whose bound relaxes with the II) are
    /// scheduled, so placement always succeeds at a large enough II. Used
    /// as the driver's fallback.
    Topological,
}

/// Chooses the cluster a value's copy reads from (the shared
/// [`Assignment::copy_source`] rule).
fn copy_source(assignment: &Assignment, n: NodeId) -> u8 {
    assignment.copy_source(n)
}

/// The per-attempt operation arena: every schedulable op gets a compact
/// dense id (its index in `ops`), and all attempt-local state — dependence
/// arcs, placements, bus choices — lives in plain `Vec`s indexed by that
/// id instead of `BTreeMap<SchedOp, _>` lookups on the hot placement path.
///
/// The arena is a clear-and-reuse workspace: [`OpArena::reset`] empties it
/// without releasing its buffers, so the driver's II loop re-populates the
/// same allocations attempt after attempt (see [`SchedScratch`]).
#[derive(Clone, Debug, Default)]
struct OpArena {
    /// Ops in placement order; the index is the op's id.
    ops: Vec<SchedOp>,
    /// `node · clusters + cluster → id` (`u32::MAX` when absent).
    instance_id: Vec<u32>,
    /// `node → id` of the node's bus copy (`u32::MAX` when absent).
    copy_id: Vec<u32>,
    /// Incoming arcs per id: `(pred id, latency, distance)`.
    preds: Vec<Vec<(u32, i64, i64)>>,
    /// Outgoing arcs per id: `(succ id, latency, distance)`.
    succs: Vec<Vec<(u32, i64, i64)>>,
    clusters: usize,
}

impl OpArena {
    fn instance(&self, n: NodeId, c: u8) -> u32 {
        self.instance_id[n.index() * self.clusters + c as usize]
    }

    fn copy(&self, n: NodeId) -> u32 {
        self.copy_id[n.index()]
    }

    fn arc(&mut self, from: u32, to: u32, lat: i64, dist: i64) {
        self.preds[to as usize].push((from, lat, dist));
        self.succs[from as usize].push((to, lat, dist));
    }

    /// Empties the arena for `nodes` DDG nodes on `clusters` clusters,
    /// keeping every buffer's capacity.
    fn reset(&mut self, nodes: usize, clusters: usize) {
        self.ops.clear();
        self.instance_id.clear();
        self.instance_id.resize(nodes * clusters, u32::MAX);
        self.copy_id.clear();
        self.copy_id.resize(nodes, u32::MAX);
        self.clusters = clusters;
    }

    /// Clears the adjacency rows for `n_ops` operations, reusing the inner
    /// vectors' capacity.
    fn reset_arcs(&mut self, n_ops: usize) {
        for row in &mut self.preds {
            row.clear();
        }
        for row in &mut self.succs {
            row.clear();
        }
        if self.preds.len() < n_ops {
            self.preds.resize_with(n_ops, Vec::new);
            self.succs.resize_with(n_ops, Vec::new);
        }
    }
}

/// The scheduler's persistent per-compilation workspace: the operation
/// arena, the modulo reservation table, the placement arrays, the
/// communicated list and the MaxLive buffers. One `SchedScratch`, reset between
/// attempts, replaces the per-II allocations the attempt loop used to make;
/// results are bit-identical to the scratch-free entry points.
#[derive(Clone, Debug)]
pub struct SchedScratch {
    arena: OpArena,
    communicated: Vec<NodeId>,
    /// Per-node cluster ordering buffer (copy source first).
    cs: Vec<u8>,
    placed: Vec<i64>,
    bus_of: Vec<u8>,
    mrt: Mrt,
    regs: RegScratch,
}

impl Default for SchedScratch {
    fn default() -> Self {
        SchedScratch {
            arena: OpArena::default(),
            communicated: Vec::new(),
            cs: Vec::new(),
            placed: Vec::new(),
            bus_of: Vec::new(),
            // The scheduler resets the table for every attempt's machine
            // and II before any query, so the unsized state never leaks.
            mrt: Mrt::unset(),
            regs: RegScratch::default(),
        }
    }
}

/// Builds the arena in `scratch`: the operation list in the requested node
/// order, the dense id maps and the dependence arcs.
fn build_arena(req: &ScheduleRequest<'_>, node_order: &[NodeId], scratch: &mut SchedScratch) {
    let ddg = req.ddg;
    let asg = req.assignment;
    let machine = req.machine;
    let communicated = &scratch.communicated;
    let is_com = |n: NodeId| communicated.binary_search(&n).is_ok();

    let n = ddg.node_count();
    let clusters = machine.clusters() as usize;
    let arena = &mut scratch.arena;
    arena.reset(n, clusters);
    for &nd in node_order {
        let cs = &mut scratch.cs;
        cs.clear();
        cs.extend(asg.instances(nd).iter());
        let src = copy_source(asg, nd);
        cs.sort_by_key(|&c| (c != src, c));
        for &c in cs.iter() {
            arena.instance_id[nd.index() * clusters + c as usize] = arena.ops.len() as u32;
            arena.ops.push(SchedOp::Instance(nd, c));
        }
        if is_com(nd) {
            arena.copy_id[nd.index()] = arena.ops.len() as u32;
            arena.ops.push(SchedOp::Copy(nd));
        }
    }
    let n_ops = arena.ops.len();
    arena.reset_arcs(n_ops);

    for e in ddg.edges() {
        let lat = i64::from(machine.latency(ddg.kind(e.src)));
        let dist = i64::from(e.distance);
        match e.kind {
            DepKind::Mem => {
                for cu in asg.instances(e.src).iter() {
                    for cv in asg.instances(e.dst).iter() {
                        let (from, to) = (arena.instance(e.src, cu), arena.instance(e.dst, cv));
                        arena.arc(from, to, lat, dist);
                    }
                }
            }
            DepKind::Data => {
                let src_set = asg.instances(e.src);
                for c in asg.instances(e.dst).iter() {
                    let to = arena.instance(e.dst, c);
                    if src_set.contains(c) {
                        let from = arena.instance(e.src, c);
                        arena.arc(from, to, lat, dist);
                    } else {
                        debug_assert!(is_com(e.src), "missing value must be communicated");
                        let from = arena.copy(e.src);
                        // Delivery latency of the copy into this consumer's
                        // cluster: pair-dependent on point-to-point
                        // fabrics, the flat bus latency on shared buses.
                        let dep_lat = if req.zero_bus_dep_latency {
                            0
                        } else {
                            i64::from(machine.transfer_latency(copy_source(asg, e.src), c))
                        };
                        arena.arc(from, to, dep_lat, dist);
                    }
                }
            }
        }
    }
    for &nd in communicated {
        let src = copy_source(asg, nd);
        let lat = i64::from(machine.latency(ddg.kind(nd)));
        let (from, to) = (arena.instance(nd, src), arena.copy(nd));
        arena.arc(from, to, lat, 0);
    }
}

/// Modulo-schedules one loop at a fixed initiation interval.
///
/// Follows the paper's base scheduler (§2.3.2): operations are ordered with
/// the swing heuristic, then each is placed as close as possible to its
/// already-scheduled neighbours without backtracking. Copies occupy buses;
/// instances occupy functional units.
///
/// # Errors
///
/// Returns a [`ScheduleError`] describing why this II is insufficient; the
/// driver is expected to increase the II and retry (Figure 2 of the paper).
pub fn schedule(req: &ScheduleRequest<'_>) -> Result<Schedule, ScheduleError> {
    schedule_with(req, OrderStrategy::Swing)
}

/// [`schedule`] with an explicit ordering strategy (see [`OrderStrategy`]).
///
/// One-shot convenience: recomputes the node order from scratch. The
/// driver's II loop passes a cached order through
/// [`schedule_with_analysis`] instead.
///
/// # Errors
///
/// As for [`schedule`].
pub fn schedule_with(
    req: &ScheduleRequest<'_>,
    strategy: OrderStrategy,
) -> Result<Schedule, ScheduleError> {
    let node_order = match strategy {
        OrderStrategy::Swing => sms_order(req.ddg, req.machine),
        OrderStrategy::Topological => cvliw_ddg::topo_order(req.ddg),
    };
    schedule_ordered(req, &node_order)
}

/// [`schedule_with`] on a cached [`LoopAnalysis`]: the node order (and
/// everything it derives from — latencies, SCCs, depth/height) is read from
/// the cache instead of being recomputed per attempt. Produces bit-identical
/// schedules to the uncached entry points.
///
/// # Errors
///
/// As for [`schedule`].
pub fn schedule_with_analysis(
    req: &ScheduleRequest<'_>,
    strategy: OrderStrategy,
    analysis: &LoopAnalysis,
) -> Result<Schedule, ScheduleError> {
    schedule_with_scratch(req, strategy, analysis, &mut SchedScratch::default())
}

/// [`schedule_with_analysis`] on a persistent [`SchedScratch`]: the arena,
/// reservation table, placement arrays and MaxLive buffers are reused from
/// the previous attempt instead of being reallocated. Bit-identical
/// schedules — the scratch is fully reset before use.
///
/// # Errors
///
/// As for [`schedule`].
pub fn schedule_with_scratch(
    req: &ScheduleRequest<'_>,
    strategy: OrderStrategy,
    analysis: &LoopAnalysis,
    scratch: &mut SchedScratch,
) -> Result<Schedule, ScheduleError> {
    let node_order = match strategy {
        OrderStrategy::Swing => analysis.sms_order(),
        OrderStrategy::Topological => analysis.topo_order(),
    };
    schedule_ordered_scratch(req, node_order, scratch)
}

/// The placement core: modulo-schedules the assignment with operations
/// visited in `node_order`.
fn schedule_ordered(
    req: &ScheduleRequest<'_>,
    node_order: &[NodeId],
) -> Result<Schedule, ScheduleError> {
    schedule_ordered_scratch(req, node_order, &mut SchedScratch::default())
}

/// [`schedule_ordered`] with every attempt-local buffer drawn from
/// `scratch`.
fn schedule_ordered_scratch(
    req: &ScheduleRequest<'_>,
    node_order: &[NodeId],
    scratch: &mut SchedScratch,
) -> Result<Schedule, ScheduleError> {
    let machine = req.machine;
    let ii = req.ii;
    assert!(ii > 0, "initiation interval must be positive");

    // Aggregate bandwidth check (IIpart ≤ II in the paper's driver):
    // exact on shared buses; a sound necessary condition on point-to-point
    // fabrics, where each copy books at least one link slot.
    req.assignment
        .communicated_into(req.ddg, &mut scratch.communicated);
    let needed = scratch.communicated.len() as u32;
    let capacity = machine.coms_capacity_per_ii(ii);
    if needed > capacity {
        return Err(ScheduleError::Bus { needed, capacity });
    }

    build_arena(req, node_order, scratch);
    let arena = &scratch.arena;
    let n_ops = arena.ops.len();

    let mrt = &mut scratch.mrt;
    mrt.reset(machine, ii);
    /// Sentinel for "not placed yet" in the dense placement array.
    const UNPLACED: i64 = i64::MIN;
    scratch.placed.clear();
    scratch.placed.resize(n_ops, UNPLACED);
    let placed = &mut scratch.placed;
    scratch.bus_of.clear();
    scratch.bus_of.resize(n_ops, 0);
    let bus_of = &mut scratch.bus_of;
    let ii_i = i64::from(ii);

    // Whether the fabric needs (source, destinations) per copy: shared
    // buses broadcast from any source, point-to-point links are
    // pair-addressed.
    let pair_addressed = !machine.interconnect().is_shared_bus();

    for id in 0..n_ops {
        let op = arena.ops[id];
        // The copy's routing, resolved once per operation (not per slot).
        let (copy_src, copy_dests) = match op {
            SchedOp::Copy(n) if pair_addressed => (
                copy_source(req.assignment, n),
                req.assignment.missing_consumer_clusters(req.ddg, n),
            ),
            _ => (0, ClusterSet::empty()),
        };
        let mut estart: Option<i64> = None;
        let mut lstart: Option<i64> = None;
        // Whether the binding bound flows through a bus copy: a closed
        // window then signals communication latency, not a recurrence.
        let mut bound_by_copy = matches!(op, SchedOp::Copy(_));
        for &(p, lat, dist) in &arena.preds[id] {
            let tp = placed[p as usize];
            if tp != UNPLACED {
                let bound = tp + lat - ii_i * dist;
                if estart.is_none_or(|e| bound > e) {
                    estart = Some(bound);
                    if matches!(arena.ops[p as usize], SchedOp::Copy(_)) {
                        bound_by_copy = true;
                    }
                }
            }
        }
        for &(s, lat, dist) in &arena.succs[id] {
            let ts = placed[s as usize];
            if ts != UNPLACED {
                let bound = ts - lat + ii_i * dist;
                if lstart.is_none_or(|l| bound < l) {
                    lstart = Some(bound);
                    if matches!(arena.ops[s as usize], SchedOp::Copy(_)) {
                        bound_by_copy = true;
                    }
                }
            }
        }

        let candidates: std::ops::Range<i64> = match (estart, lstart) {
            (Some(e), Some(l)) => {
                if l < e {
                    return Err(window_closed(op, bound_by_copy));
                }
                e..l.min(e + ii_i - 1) + 1
            }
            (Some(e), None) => e..e + ii_i,
            (None, Some(l)) => l - ii_i + 1..l + 1,
            (None, None) => 0..ii_i,
        };
        // The unbounded-from-above case walks downward from `l`.
        let downward = estart.is_none() && lstart.is_some();
        let doubly_bounded = estart.is_some() && lstart.is_some();

        let mut done = false;
        let mut try_slot = |t: i64| -> bool {
            match op {
                SchedOp::Instance(n, c) => {
                    let class = req.ddg.kind(n).class();
                    if mrt.fu_free(c, class, t) {
                        mrt.place_fu(c, class, t);
                        placed[id] = t;
                        return true;
                    }
                }
                SchedOp::Copy(_) => {
                    if let Some(bus) = mrt.copy_available(copy_src, copy_dests, t) {
                        mrt.place_copy(copy_src, copy_dests, bus, t);
                        placed[id] = t;
                        bus_of[id] = bus;
                        return true;
                    }
                }
            }
            false
        };
        if downward {
            for t in candidates.rev() {
                if try_slot(t) {
                    done = true;
                    break;
                }
            }
        } else {
            for t in candidates {
                if try_slot(t) {
                    done = true;
                    break;
                }
            }
        }
        if !done {
            return Err(if doubly_bounded {
                window_closed(op, bound_by_copy)
            } else {
                match op {
                    SchedOp::Instance(n, c) => ScheduleError::FuSlots {
                        node: n,
                        class: req.ddg.kind(n).class(),
                        cluster: c,
                    },
                    SchedOp::Copy(n) => ScheduleError::CopySlots { value: n },
                }
            });
        }
    }

    // Normalize to cycle 0 and assemble.
    let min_t = placed.iter().copied().min().unwrap_or(0);
    let max_t = placed.iter().copied().max().unwrap_or(0);
    let mut instances = BTreeMap::new();
    let mut copies = BTreeMap::new();
    for (id, &t) in placed.iter().enumerate() {
        let t = t - min_t;
        match arena.ops[id] {
            SchedOp::Instance(n, c) => {
                instances.insert((n, c), t);
            }
            SchedOp::Copy(n) => {
                copies.insert(
                    n,
                    CopyPlacement {
                        cycle: t,
                        bus: bus_of[id],
                        source: copy_source(req.assignment, n),
                    },
                );
            }
        }
    }
    let sched = Schedule {
        ii,
        instances,
        copies,
        length: u32::try_from(max_t - min_t + 1).expect("schedule length fits u32"),
        zero_bus_dep_latency: req.zero_bus_dep_latency,
    };

    // Register-pressure gate (the third Figure-1 cause).
    let pressure = max_live_scratch(&sched, req.ddg, machine, &mut scratch.regs);
    for (c, &p) in pressure.iter().enumerate() {
        if p > machine.regs_per_cluster() {
            return Err(ScheduleError::Registers {
                cluster: c as u8,
                maxlive: p,
                available: machine.regs_per_cluster(),
            });
        }
    }
    Ok(sched)
}

/// Classifies an empty issue window: when the binding bound flows through
/// a bus copy (or the operation *is* a copy), the communication latency is
/// at fault — Figure 1 counts those as "bus"; otherwise a recurrence does
/// not fit the II.
fn window_closed(op: SchedOp, bound_by_copy: bool) -> ScheduleError {
    match op {
        _ if bound_by_copy => ScheduleError::CopySlots {
            value: match op {
                SchedOp::Instance(n, _) | SchedOp::Copy(n) => n,
            },
        },
        SchedOp::Instance(n, _) => ScheduleError::Recurrence { node: n },
        SchedOp::Copy(n) => ScheduleError::CopySlots { value: n },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvliw_ddg::OpKind;

    fn machine(spec: &str) -> MachineConfig {
        MachineConfig::from_spec(spec).unwrap()
    }

    /// load → fmul → store, all in cluster 0.
    fn chain_single_cluster() -> (Ddg, Assignment) {
        let mut b = Ddg::builder();
        let ld = b.add_node(OpKind::Load);
        let m = b.add_node(OpKind::FpMul);
        let st = b.add_node(OpKind::Store);
        b.data(ld, m).data(m, st);
        (b.build().unwrap(), Assignment::from_partition(&[0, 0, 0]))
    }

    fn request<'a>(
        ddg: &'a Ddg,
        machine: &'a MachineConfig,
        asg: &'a Assignment,
        ii: u32,
    ) -> ScheduleRequest<'a> {
        ScheduleRequest {
            ddg,
            machine,
            assignment: asg,
            ii,
            zero_bus_dep_latency: false,
        }
    }

    #[test]
    fn schedules_chain_at_res_mii() {
        // Two memory ops on a 1-port cluster force II ≥ 2.
        let (ddg, asg) = chain_single_cluster();
        let m = machine("4c1b2l64r");
        assert!(matches!(
            schedule(&request(&ddg, &m, &asg, 1)),
            Err(ScheduleError::FuSlots { .. })
        ));
        let s = schedule(&request(&ddg, &m, &asg, 2)).unwrap();
        assert_eq!(s.ii(), 2);
        // load at 0 (slot 0), fmul at 2, store earliest at 8 but slot 0 is
        // taken by the load → cycle 9; length 10.
        assert_eq!(s.length(), 10);
        assert_eq!(s.stage_count(), 5);
        s.verify(&ddg, &m).unwrap();
        assert_eq!(s.copy_count(), 0);
        assert_eq!(s.op_count(), 3);
    }

    #[test]
    fn texec_formula() {
        let (ddg, asg) = chain_single_cluster();
        let m = machine("4c1b2l64r");
        let s = schedule(&request(&ddg, &m, &asg, 2)).unwrap();
        let sc = u64::from(s.stage_count());
        assert_eq!(s.texec(100), (100 - 1 + sc) * 2);
        assert_eq!(s.texec(0), 0);
        assert_eq!(s.texec(1), sc * 2);
    }

    #[test]
    fn cross_cluster_inserts_copy() {
        let mut b = Ddg::builder();
        let ld = b.add_node(OpKind::Load);
        let m0 = b.add_node(OpKind::FpMul);
        b.data(ld, m0);
        let ddg = b.build().unwrap();
        let asg = Assignment::from_partition(&[0, 1]);
        let m = machine("4c1b2l64r");
        let s = schedule(&request(&ddg, &m, &asg, 2)).unwrap();
        assert_eq!(s.copy_count(), 1);
        let copy = s.copy_of(NodeId::new(0)).unwrap();
        assert_eq!(copy.source, 0);
        // copy waits for the load (lat 2), consumer waits bus latency 2.
        let t_ld = s.instance_cycle(NodeId::new(0), 0).unwrap();
        let t_m0 = s.instance_cycle(NodeId::new(1), 1).unwrap();
        assert!(copy.cycle >= t_ld + 2);
        assert!(t_m0 >= copy.cycle + 2);
        s.verify(&ddg, &m).unwrap();
    }

    #[test]
    fn bus_capacity_rejects_too_many_coms() {
        // Two communicated values but II=2 with a 2-cycle bus fits only 1.
        let mut b = Ddg::builder();
        let p0 = b.add_node(OpKind::IntAdd);
        let p1 = b.add_node(OpKind::IntAdd);
        let c0 = b.add_node(OpKind::FpAdd);
        let c1 = b.add_node(OpKind::FpAdd);
        b.data(p0, c0).data(p1, c1);
        let ddg = b.build().unwrap();
        let asg = Assignment::from_partition(&[0, 0, 1, 1]);
        let m = machine("4c1b2l64r");
        let err = schedule(&request(&ddg, &m, &asg, 2)).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::Bus {
                needed: 2,
                capacity: 1
            }
        );
        assert_eq!(err.cause(), crate::error::IiCause::Bus);
        // II=4 fits both.
        let s = schedule(&request(&ddg, &m, &asg, 4)).unwrap();
        assert_eq!(s.copy_count(), 2);
        s.verify(&ddg, &m).unwrap();
    }

    #[test]
    fn fu_saturation_fails_with_resources() {
        // 3 independent loads in one cluster with 1 mem port at II=2.
        let mut b = Ddg::builder();
        for _ in 0..3 {
            b.add_node(OpKind::Load);
        }
        let ddg = b.build().unwrap();
        let asg = Assignment::from_partition(&[0, 0, 0]);
        let m = machine("4c1b2l64r");
        let err = schedule(&request(&ddg, &m, &asg, 2)).unwrap_err();
        assert!(matches!(err, ScheduleError::FuSlots { .. }));
        assert!(schedule(&request(&ddg, &m, &asg, 3)).is_ok());
    }

    #[test]
    fn recurrence_window_fails_below_recmii_effects() {
        // fadd ring with distance 1: RecMII = 9 (3 fadds of latency 3).
        let mut b = Ddg::builder();
        let x = b.add_node(OpKind::FpAdd);
        let y = b.add_node(OpKind::FpAdd);
        let z = b.add_node(OpKind::FpAdd);
        b.data(x, y).data(y, z).data_dist(z, x, 1);
        let ddg = b.build().unwrap();
        let asg = Assignment::from_partition(&[0, 0, 0]);
        let m = machine("4c1b2l64r");
        let err = schedule(&request(&ddg, &m, &asg, 8)).unwrap_err();
        assert_eq!(err.cause(), crate::error::IiCause::Recurrence);
        let s = schedule(&request(&ddg, &m, &asg, 9)).unwrap();
        s.verify(&ddg, &m).unwrap();
    }

    #[test]
    fn replicated_instance_schedules_in_both_clusters() {
        let mut b = Ddg::builder();
        let ld = b.add_node(OpKind::Load);
        let m0 = b.add_node(OpKind::FpMul);
        let m1 = b.add_node(OpKind::FpMul);
        b.data(ld, m0).data(ld, m1);
        let ddg = b.build().unwrap();
        let mut asg = Assignment::from_partition(&[0, 0, 1]);
        asg.add_instance(NodeId::new(0), 1);
        let m = machine("4c1b2l64r");
        let s = schedule(&request(&ddg, &m, &asg, 1)).unwrap();
        assert_eq!(s.copy_count(), 0, "replication removed the communication");
        assert_eq!(s.instance_clusters(NodeId::new(0)).len(), 2);
        s.verify(&ddg, &m).unwrap();
    }

    #[test]
    fn zero_bus_mode_shortens_but_still_uses_bandwidth() {
        let mut b = Ddg::builder();
        let ld = b.add_node(OpKind::Load);
        let m0 = b.add_node(OpKind::FpMul);
        b.data(ld, m0);
        let ddg = b.build().unwrap();
        let asg = Assignment::from_partition(&[0, 1]);
        let m = machine("4c1b2l64r");
        let normal = schedule(&request(&ddg, &m, &asg, 2)).unwrap();
        let mut req = request(&ddg, &m, &asg, 2);
        req.zero_bus_dep_latency = true;
        let relaxed = schedule(&req).unwrap();
        assert!(relaxed.is_zero_bus_relaxed());
        assert!(relaxed.length() <= normal.length());
        assert_eq!(relaxed.copy_count(), 1, "bandwidth still consumed");
        relaxed.verify(&ddg, &m).unwrap();
    }

    #[test]
    fn verify_catches_tampered_latency() {
        let (ddg, asg) = chain_single_cluster();
        let m = machine("4c1b2l64r");
        let s = schedule(&request(&ddg, &m, &asg, 2)).unwrap();
        let mut bad = s.clone();
        // Move the store to cycle 0: violates the fmul → store latency.
        bad.instances.insert((NodeId::new(2), 0), 0);
        assert!(matches!(
            bad.verify(&ddg, &m),
            Err(VerifyError::LatencyViolated { .. }) | Err(VerifyError::FuOversubscribed { .. })
        ));
    }

    #[test]
    fn verify_catches_missing_copy() {
        let mut b = Ddg::builder();
        let ld = b.add_node(OpKind::Load);
        let m0 = b.add_node(OpKind::FpMul);
        b.data(ld, m0);
        let ddg = b.build().unwrap();
        let asg = Assignment::from_partition(&[0, 1]);
        let m = machine("4c1b2l64r");
        let s = schedule(&request(&ddg, &m, &asg, 2)).unwrap();
        let mut bad = s.clone();
        bad.copies.clear();
        assert!(matches!(
            bad.verify(&ddg, &m),
            Err(VerifyError::ValueUnavailable { .. })
        ));
    }

    /// The ISSUE-5 oversubscription property: on **every** topology
    /// variant, double-booking one link in an otherwise valid schedule
    /// must be caught by [`Schedule::verify`].
    ///
    /// Construction: `k` independent producer→consumer pairs all crossing
    /// the same cluster pair `0 → 1`, scheduled at the first feasible II
    /// (so every copy is legally placed), then tampered: the second copy
    /// is re-timed onto the first copy's modulo slot and bus, and its
    /// consumer pushed later by whole IIs (slot-invariant, so functional
    /// units and every latency stay legal — the *only* remaining defect is
    /// the double-booked link).
    mod oversubscription {
        use super::*;
        use proptest::prelude::*;

        fn cross_pairs(k: usize) -> (Ddg, Assignment) {
            let mut b = Ddg::builder();
            let mut part = Vec::new();
            for _ in 0..k {
                let p = b.add_node(OpKind::IntAdd);
                let c = b.add_node(OpKind::FpAdd);
                b.data(p, c);
                part.extend([0u8, 1u8]);
            }
            (b.build().unwrap(), Assignment::from_partition(&part))
        }

        fn first_feasible(ddg: &Ddg, m: &MachineConfig, asg: &Assignment) -> Schedule {
            for ii in 1..=64 {
                if let Ok(s) = schedule(&ScheduleRequest {
                    ddg,
                    machine: m,
                    assignment: asg,
                    ii,
                    zero_bus_dep_latency: false,
                }) {
                    return s;
                }
            }
            panic!("no feasible II up to 64");
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            #[test]
            fn verify_rejects_a_double_booked_link(
                spec_idx in 0usize..6,
                k in 2usize..=4,
            ) {
                let spec = [
                    "2c1b2l64r",
                    "4c2b4l64r",
                    "4c-ring1l64r",
                    "4c-ring2l64r",
                    "4c-xbar1l64r",
                    "2c-xbar2l64r",
                ][spec_idx];
                let m = MachineConfig::from_spec(spec).unwrap();
                let (ddg, asg) = cross_pairs(k);
                let sched = first_feasible(&ddg, &m, &asg);
                prop_assert_eq!(sched.copy_count(), k as u32);
                sched.verify(&ddg, &m).expect("pristine schedule verifies");

                let ii = i64::from(sched.ii());
                let values: Vec<NodeId> = sched.copies.keys().copied().collect();
                let (v1, v2) = (values[0], values[1]);
                let c1 = sched.copies[&v1];
                let c2 = sched.copies[&v2];

                let mut bad = sched.clone();
                // Re-time copy 2 onto copy 1's modulo slot (never earlier
                // than its own legal cycle) and the same bus.
                let delta = (c1.cycle - c2.cycle).rem_euclid(ii);
                let tampered = bad.copies.get_mut(&v2).unwrap();
                tampered.cycle = c2.cycle + delta;
                tampered.bus = c1.bus;
                // Push copy 2's consumer later by whole IIs so its read
                // still follows the delivery (same modulo slot → same
                // functional-unit booking).
                let consumer = ddg
                    .out_edges(v2)
                    .find(|e| e.is_data())
                    .map(|e| e.dst)
                    .unwrap();
                let t = bad.instances[&(consumer, 1)];
                bad.instances.insert((consumer, 1), t + 2 * ii);
                bad.length += u32::try_from(2 * ii).unwrap();

                prop_assert!(
                    matches!(
                        bad.verify(&ddg, &m),
                        Err(VerifyError::BusOversubscribed { .. })
                    ),
                    "{spec}: tampered schedule must fail with an oversubscribed link, got {:?}",
                    bad.verify(&ddg, &m)
                );
            }
        }
    }

    #[test]
    fn render_contains_kernel_shape() {
        let (ddg, asg) = chain_single_cluster();
        let m = machine("4c1b2l64r");
        let s = schedule(&request(&ddg, &m, &asg, 2)).unwrap();
        let text = s.render(&ddg);
        assert!(text.contains("II=2"));
        assert!(text.contains("load"));
    }
}
