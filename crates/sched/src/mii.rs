//! Minimum initiation interval bounds.

use cvliw_ddg::{rec_mii, Ddg, OpClass};
use cvliw_machine::MachineConfig;

use crate::assign::Assignment;

/// Resource-constrained MII of the whole (unclustered) machine:
/// `max over classes ceil(ops / total units)`.
#[must_use]
pub fn res_mii_unclustered(ddg: &Ddg, machine: &MachineConfig) -> u32 {
    let counts = ddg.count_by_class();
    OpClass::ALL
        .iter()
        .map(|&class| {
            let units = machine.total_fu(class).max(1);
            counts[class.index()].div_ceil(units)
        })
        .max()
        .unwrap_or(1)
        .max(1)
}

/// Resource-constrained MII of a concrete assignment: the most loaded
/// (cluster, class) pair determines how many cycles each iteration needs.
/// Replicated instances count in every cluster holding them.
#[must_use]
pub fn res_mii_assigned(ddg: &Ddg, assignment: &Assignment, machine: &MachineConfig) -> u32 {
    let usage = assignment.class_usage(ddg, machine.clusters());
    let mut bound = 1;
    for (c, per_cluster) in usage.iter().enumerate() {
        for class in OpClass::ALL {
            let units = u32::from(machine.fu_count_in(c as u8, class)).max(1);
            bound = bound.max(per_cluster[class.index()].div_ceil(units));
        }
    }
    bound
}

/// The interconnect-induced lower bound of a partition (the paper's
/// `IIpart`, generalized to every [`cvliw_machine::Interconnect`]): the
/// smallest II whose aggregate link bandwidth carries all communications,
/// or `u32::MAX` when the machine has no links but communication is
/// required.
#[must_use]
pub fn ii_part(ddg: &Ddg, assignment: &Assignment, machine: &MachineConfig) -> u32 {
    let ncoms = assignment.comm_count(ddg);
    machine.min_ii_for_coms(ncoms).unwrap_or(u32::MAX)
}

/// The overall MII used to seed the driver loop:
/// `max(ResMII, RecMII)` on the unclustered machine (communications are a
/// property of the partition, not of the loop, so they do not contribute —
/// exactly why Figure 1 attributes II growth beyond MII mostly to the bus).
#[must_use]
pub fn mii(ddg: &Ddg, machine: &MachineConfig) -> u32 {
    let rec = rec_mii(ddg, machine.edge_latency(ddg));
    res_mii_unclustered(ddg, machine).max(rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvliw_ddg::OpKind;

    fn machine(spec: &str) -> MachineConfig {
        MachineConfig::from_spec(spec).unwrap()
    }

    /// Six independent fp adds and two loads.
    fn wide_ddg() -> Ddg {
        let mut b = Ddg::builder();
        for _ in 0..6 {
            b.add_node(OpKind::FpAdd);
        }
        for _ in 0..2 {
            b.add_node(OpKind::Load);
        }
        b.build().unwrap()
    }

    #[test]
    fn unclustered_res_mii_uses_total_units() {
        let ddg = wide_ddg();
        // 6 fp ops over 4 fp units → 2.
        assert_eq!(res_mii_unclustered(&ddg, &machine("4c1b2l64r")), 2);
        assert_eq!(res_mii_unclustered(&ddg, &machine("2c1b2l64r")), 2);
    }

    #[test]
    fn assigned_res_mii_sees_imbalance() {
        let ddg = wide_ddg();
        // 1 fp unit per cluster; all 6 fp ops in cluster 0 → 6 cycles there.
        let m = machine("4c1b2l64r");
        let asg = Assignment::from_partition(&[0, 0, 0, 0, 0, 0, 1, 1]);
        assert_eq!(res_mii_assigned(&ddg, &asg, &m), 6);
        // balanced: 2,2,1,1 → 2.
        let asg = Assignment::from_partition(&[0, 0, 1, 1, 2, 3, 0, 1]);
        assert_eq!(res_mii_assigned(&ddg, &asg, &m), 2);
    }

    #[test]
    fn replication_raises_assigned_res_mii() {
        let mut b = Ddg::builder();
        let ld = b.add_node(OpKind::Load);
        let m0 = b.add_node(OpKind::FpMul);
        let m1 = b.add_node(OpKind::FpMul);
        b.data(ld, m0).data(ld, m1);
        let ddg = b.build().unwrap();
        let m = machine("4c1b2l64r");
        let mut asg = Assignment::from_partition(&[0, 0, 1]);
        assert_eq!(res_mii_assigned(&ddg, &asg, &m), 1);
        asg.add_instance(NodeIdExt::nid(0), 1);
        // cluster 1 now has a load replica + its own fp mul: still 1 per class.
        assert_eq!(res_mii_assigned(&ddg, &asg, &m), 1);
    }

    /// Tiny helper so tests read naturally.
    struct NodeIdExt;
    impl NodeIdExt {
        fn nid(i: u32) -> cvliw_ddg::NodeId {
            cvliw_ddg::NodeId::new(i)
        }
    }

    #[test]
    fn ii_part_matches_bus_formula() {
        let mut b = Ddg::builder();
        let ld = b.add_node(OpKind::Load);
        let consumers: Vec<_> = (0..3).map(|_| b.add_node(OpKind::FpAdd)).collect();
        for &c in &consumers {
            b.data(ld, c);
        }
        // three producers each communicated
        let p1 = b.add_node(OpKind::IntAdd);
        let p2 = b.add_node(OpKind::IntAdd);
        b.data(p1, consumers[0]).data(p2, consumers[1]);
        let ddg = b.build().unwrap();
        // ld, p1, p2 in cluster 0; consumers spread out → 3 communications.
        let asg = Assignment::from_partition(&[0, 1, 2, 3, 0, 0]);
        assert_eq!(asg.comm_count(&ddg), 3);
        let m = machine("4c1b2l64r"); // 1 bus, 2-cycle latency
        assert_eq!(ii_part(&ddg, &asg, &m), 6); // 2 * ceil(3/1)
        let m = machine("4c2b2l64r");
        assert_eq!(ii_part(&ddg, &asg, &m), 4); // 2 * ceil(3/2)
    }

    #[test]
    fn ii_part_without_buses_is_infinite() {
        let mut b = Ddg::builder();
        let a = b.add_node(OpKind::FpAdd);
        let c = b.add_node(OpKind::FpAdd);
        b.data(a, c);
        let ddg = b.build().unwrap();
        let asg = Assignment::from_partition(&[0, 1]);
        let mut unified = MachineConfig::unified(64);
        // hand-build a bus-less 2-cluster machine by abusing unified: not
        // possible through the public API, so emulate with clusters=1 where
        // the partition cannot cross — instead check unified accepts.
        assert_eq!(
            ii_part(&ddg, &Assignment::from_partition(&[0, 0]), &unified),
            0
        );
        // And a clustered machine sees the communication.
        let m = machine("2c1b2l64r");
        assert_eq!(ii_part(&ddg, &asg, &m), 2);
        let _ = &mut unified;
    }

    #[test]
    fn mii_combines_resources_and_recurrences() {
        // Recurrence: fp add self-loop distance 1 → RecMII = 3 under Table 1.
        let mut b = Ddg::builder();
        let a = b.add_node(OpKind::FpAdd);
        b.data_dist(a, a, 1);
        let ddg = b.build().unwrap();
        let m = machine("4c1b2l64r");
        assert_eq!(mii(&ddg, &m), 3);
        // Resources dominate: 9 loads on 4 mem ports → 3 > rec 1.
        let mut b = Ddg::builder();
        for _ in 0..9 {
            b.add_node(OpKind::Load);
        }
        let ddg = b.build().unwrap();
        assert_eq!(mii(&ddg, &m), 3);
    }
}
