//! Pseudo-schedules: the cheap schedule estimates that guide partition
//! refinement (reference [2] of the paper).
//!
//! A pseudo-schedule does not allocate slots; it answers, for a candidate
//! partition at a candidate II: would the buses cope, do the per-cluster
//! resource capacities hold, do the recurrences still fit once bus latency
//! is added to cross-cluster dependences, roughly how long would one
//! iteration be, and how hard would it press on the register files.

use cvliw_ddg::{time_bounds, Ddg, OpClass};
use cvliw_machine::MachineConfig;

use crate::assign::Assignment;
use crate::cache::LoopAnalysis;

/// Estimated properties of scheduling `assignment` at a given II.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PseudoSchedule {
    /// Communications implied by the assignment.
    pub ncoms: u32,
    /// Whether bus bandwidth fits `ncoms` at this II.
    pub bus_ok: bool,
    /// Total instance excess over `units·II`, summed over (cluster, class).
    pub cap_overflow: u32,
    /// Whether recurrences remain feasible with bus latency added to every
    /// cross-cluster data dependence.
    pub recurrences_ok: bool,
    /// Estimated issue-span of one iteration (critical path with
    /// communication latencies); `i64::MAX` when `recurrences_ok` is false.
    pub est_length: i64,
    /// Estimated register-file excess summed over clusters.
    pub reg_overflow: u32,
}

impl PseudoSchedule {
    /// Whether nothing rules this partition out at this II.
    #[must_use]
    pub fn feasible(&self) -> bool {
        self.bus_ok && self.cap_overflow == 0 && self.recurrences_ok && self.reg_overflow == 0
    }
}

/// Builds the pseudo-schedule estimate of an assignment.
#[must_use]
pub fn pseudo_schedule(
    ddg: &Ddg,
    assignment: &Assignment,
    machine: &MachineConfig,
    ii: u32,
) -> PseudoSchedule {
    pseudo_schedule_core(ddg, assignment, machine, ii, |n| {
        machine.latency(ddg.kind(n))
    })
}

/// [`pseudo_schedule`] on a cached [`LoopAnalysis`]: producer latencies are
/// read from the cache's dense vector instead of being looked up per edge.
/// Bit-identical to the uncached variant.
#[must_use]
pub fn pseudo_schedule_with(
    ddg: &Ddg,
    assignment: &Assignment,
    machine: &MachineConfig,
    ii: u32,
    analysis: &LoopAnalysis,
) -> PseudoSchedule {
    pseudo_schedule_core(ddg, assignment, machine, ii, |n| {
        analysis.node_lat()[n.index()]
    })
}

fn pseudo_schedule_core(
    ddg: &Ddg,
    assignment: &Assignment,
    machine: &MachineConfig,
    ii: u32,
    base_lat: impl Fn(cvliw_ddg::NodeId) -> u32,
) -> PseudoSchedule {
    let ncoms = assignment.comm_count(ddg);
    let bus_ok = ncoms <= machine.bus_coms_per_ii(ii);

    // Capacity: every (cluster, class) must fit its instances in units·II.
    let usage = assignment.class_usage(ddg, machine.clusters());
    let mut cap_overflow = 0u32;
    for (c, per_cluster) in usage.iter().enumerate() {
        for class in OpClass::ALL {
            let cap = u32::from(machine.fu_count_in(c as u8, class)) * ii;
            cap_overflow += per_cluster[class.index()].saturating_sub(cap);
        }
    }

    // Critical path with communication latencies: a data edge whose
    // consumer lives in a cluster without the producer pays the bus.
    let lat = |e: &cvliw_ddg::Edge| {
        let base = base_lat(e.src);
        if e.is_data()
            && !assignment
                .instances(e.dst)
                .difference(assignment.instances(e.src))
                .is_empty()
        {
            base + machine.bus_latency()
        } else {
            base
        }
    };
    let (recurrences_ok, est_length, asap) = match time_bounds(ddg, ii, lat) {
        Some(tb) => (true, tb.length, Some(tb.asap)),
        None => (false, i64::MAX, None),
    };

    // Register estimate: each value's lifetime spans from its definition to
    // its furthest consumer (plus iteration distance); overlapped copies
    // cost ceil(lifetime / II) registers in each cluster holding it.
    let reg_overflow = match &asap {
        None => 0,
        Some(asap) => {
            let mut est = vec![0u64; machine.clusters() as usize];
            for n in ddg.node_ids() {
                if !ddg.kind(n).produces_value() {
                    continue;
                }
                let def = asap[n.index()];
                let mut last = def + i64::from(base_lat(n));
                for e in ddg.out_edges(n) {
                    if e.is_data() {
                        last =
                            last.max(asap[e.dst.index()] + i64::from(ii) * i64::from(e.distance));
                    }
                }
                let span = u64::try_from((last - def).max(1)).expect("non-negative");
                let regs = span.div_ceil(u64::from(ii));
                for c in assignment.instances(n).iter() {
                    est[c as usize] += regs;
                }
            }
            est.iter()
                .map(|&e| {
                    u32::try_from(e.saturating_sub(u64::from(machine.regs_per_cluster())))
                        .unwrap_or(u32::MAX)
                })
                .sum()
        }
    };

    PseudoSchedule {
        ncoms,
        bus_ok,
        cap_overflow,
        recurrences_ok,
        est_length,
        reg_overflow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvliw_ddg::OpKind;

    fn machine(spec: &str) -> MachineConfig {
        MachineConfig::from_spec(spec).unwrap()
    }

    fn two_chain() -> Ddg {
        let mut b = Ddg::builder();
        let ld = b.add_node(OpKind::Load);
        let m0 = b.add_node(OpKind::FpMul);
        let m1 = b.add_node(OpKind::FpMul);
        b.data(ld, m0).data(m0, m1);
        b.build().unwrap()
    }

    #[test]
    fn single_cluster_has_no_comm_cost() {
        let ddg = two_chain();
        let m = machine("4c1b2l64r");
        let asg = Assignment::from_partition(&[0, 0, 0]);
        let ps = pseudo_schedule(&ddg, &asg, &m, 2);
        assert_eq!(ps.ncoms, 0);
        assert!(ps.bus_ok && ps.recurrences_ok);
        assert_eq!(ps.est_length, 8); // 2 + 6
        assert!(ps.feasible());
    }

    #[test]
    fn cross_cluster_pays_bus_latency() {
        let ddg = two_chain();
        let m = machine("4c1b2l64r");
        let split = Assignment::from_partition(&[0, 1, 1]);
        let ps = pseudo_schedule(&ddg, &split, &m, 2);
        assert_eq!(ps.ncoms, 1);
        assert_eq!(ps.est_length, 10); // +2 bus on the load edge
    }

    #[test]
    fn capacity_overflow_detected() {
        let mut b = Ddg::builder();
        for _ in 0..5 {
            b.add_node(OpKind::Load);
        }
        let ddg = b.build().unwrap();
        let m = machine("4c1b2l64r"); // 1 mem port per cluster
        let asg = Assignment::from_partition(&[0, 0, 0, 0, 0]);
        let ps = pseudo_schedule(&ddg, &asg, &m, 2);
        assert_eq!(ps.cap_overflow, 3); // 5 loads − 2 slots
        assert!(!ps.feasible());
    }

    #[test]
    fn bus_overflow_detected() {
        let mut b = Ddg::builder();
        let p0 = b.add_node(OpKind::IntAdd);
        let p1 = b.add_node(OpKind::IntAdd);
        let c0 = b.add_node(OpKind::FpAdd);
        let c1 = b.add_node(OpKind::FpAdd);
        b.data(p0, c0).data(p1, c1);
        let ddg = b.build().unwrap();
        let m = machine("4c1b2l64r");
        let asg = Assignment::from_partition(&[0, 0, 1, 1]);
        let ps = pseudo_schedule(&ddg, &asg, &m, 2);
        assert_eq!(ps.ncoms, 2);
        assert!(!ps.bus_ok);
        let ps4 = pseudo_schedule(&ddg, &asg, &m, 4);
        assert!(ps4.bus_ok);
    }

    #[test]
    fn recurrence_with_communication_can_become_infeasible() {
        // Ring of 2 fp adds, distance 1 → RecMII 6 locally; splitting it
        // across clusters adds 2×2 bus cycles → needs II ≥ 10.
        let mut b = Ddg::builder();
        let x = b.add_node(OpKind::FpAdd);
        let y = b.add_node(OpKind::FpAdd);
        b.data(x, y).data_dist(y, x, 1);
        let ddg = b.build().unwrap();
        let m = machine("4c1b2l64r");
        let local = Assignment::from_partition(&[0, 0]);
        assert!(pseudo_schedule(&ddg, &local, &m, 6).recurrences_ok);
        let split = Assignment::from_partition(&[0, 1]);
        assert!(!pseudo_schedule(&ddg, &split, &m, 6).recurrences_ok);
        assert!(pseudo_schedule(&ddg, &split, &m, 10).recurrences_ok);
    }

    #[test]
    fn replication_avoids_cross_latency() {
        let ddg = two_chain();
        let m = machine("4c1b2l64r");
        let mut asg = Assignment::from_partition(&[0, 0, 1]);
        let before = pseudo_schedule(&ddg, &asg, &m, 4);
        assert_eq!(before.ncoms, 1);
        // replicate the producer chain into cluster 1
        asg.add_instance(cvliw_ddg::NodeId::new(0), 1);
        asg.add_instance(cvliw_ddg::NodeId::new(1), 1);
        let after = pseudo_schedule(&ddg, &asg, &m, 4);
        assert_eq!(after.ncoms, 0);
        assert!(after.est_length < before.est_length);
    }
}
