//! Pseudo-schedules: the cheap schedule estimates that guide partition
//! refinement (reference [2] of the paper).
//!
//! A pseudo-schedule does not allocate slots; it answers, for a candidate
//! partition at a candidate II: would the buses cope, do the per-cluster
//! resource capacities hold, do the recurrences still fit once bus latency
//! is added to cross-cluster dependences, roughly how long would one
//! iteration be, and how hard would it press on the register files.

use cvliw_ddg::{asap_times_into, time_bounds, Ddg, OpClass};
use cvliw_machine::MachineConfig;

use crate::assign::{Assignment, ClusterSet};
use crate::cache::LoopAnalysis;

/// The communication penalty a cross-cluster data edge pays: the uniform
/// transfer latency where the fabric has one (shared buses, crossbars),
/// otherwise the worst per-pair latency from the value's copy source to
/// the consumer clusters still missing it. `missing` must be non-empty;
/// `uniform` is [`MachineConfig::uniform_transfer_latency`], hoisted by
/// the caller so per-edge evaluation stays allocation-free.
pub fn comm_penalty(
    machine: &MachineConfig,
    assignment: &Assignment,
    src: cvliw_ddg::NodeId,
    missing: ClusterSet,
    uniform: Option<u32>,
) -> u32 {
    match uniform {
        Some(lat) => lat,
        None => {
            let from = assignment.copy_source(src);
            missing
                .iter()
                .map(|c| machine.transfer_latency(from, c))
                .max()
                .unwrap_or(0)
        }
    }
}

/// Reusable buffers for [`pseudo_schedule_scratch`]: the per-edge
/// communication-adjusted latency vector, the ASAP issue times, the
/// per-cluster class usage and the per-cluster register estimate.
///
/// Partition refinement scores hundreds of candidate partitions per II, and
/// every score needs all four buffers; holding them in a scratch that lives
/// for the whole compilation (see `cvliw_replicate::CompileContext`) makes
/// a score allocation-free.
#[derive(Clone, Debug, Default)]
pub struct PseudoScratch {
    /// Communication-adjusted per-edge latencies (`ddg.edges()` order).
    pub edge_lat: Vec<u32>,
    /// ASAP issue times per node.
    pub asap: Vec<i64>,
    /// Instance counts per cluster and class.
    pub usage: Vec<[u32; 3]>,
    /// Estimated rotating registers per cluster.
    pub est: Vec<u64>,
}

/// Estimated properties of scheduling `assignment` at a given II.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PseudoSchedule {
    /// Communications implied by the assignment.
    pub ncoms: u32,
    /// Whether bus bandwidth fits `ncoms` at this II.
    pub bus_ok: bool,
    /// Total instance excess over `units·II`, summed over (cluster, class).
    pub cap_overflow: u32,
    /// Whether recurrences remain feasible with bus latency added to every
    /// cross-cluster data dependence.
    pub recurrences_ok: bool,
    /// Estimated issue-span of one iteration (critical path with
    /// communication latencies); `i64::MAX` when `recurrences_ok` is false.
    pub est_length: i64,
    /// Estimated register-file excess summed over clusters.
    pub reg_overflow: u32,
}

impl PseudoSchedule {
    /// Whether nothing rules this partition out at this II.
    #[must_use]
    pub fn feasible(&self) -> bool {
        self.bus_ok && self.cap_overflow == 0 && self.recurrences_ok && self.reg_overflow == 0
    }
}

/// Builds the pseudo-schedule estimate of an assignment.
#[must_use]
pub fn pseudo_schedule(
    ddg: &Ddg,
    assignment: &Assignment,
    machine: &MachineConfig,
    ii: u32,
) -> PseudoSchedule {
    pseudo_schedule_core(ddg, assignment, machine, ii, |n| {
        machine.latency(ddg.kind(n))
    })
}

/// [`pseudo_schedule`] on a cached [`LoopAnalysis`]: producer latencies are
/// read from the cache's dense vector instead of being looked up per edge.
/// Bit-identical to the uncached variant.
#[must_use]
pub fn pseudo_schedule_with(
    ddg: &Ddg,
    assignment: &Assignment,
    machine: &MachineConfig,
    ii: u32,
    analysis: &LoopAnalysis,
) -> PseudoSchedule {
    pseudo_schedule_core(ddg, assignment, machine, ii, |n| {
        analysis.node_lat()[n.index()]
    })
}

/// [`pseudo_schedule_with`] into caller-owned scratch buffers — the
/// allocation-free scoring path of partition refinement. Bit-identical
/// results: the comm-adjusted latencies, the ASAP fixpoint (same relaxation
/// order and pass bound as [`time_bounds`]) and the register estimate are
/// the same computations, just written into reused storage, and the ALAP
/// sweep — whose output no score reads — is skipped.
#[must_use]
pub fn pseudo_schedule_scratch(
    ddg: &Ddg,
    assignment: &Assignment,
    machine: &MachineConfig,
    ii: u32,
    analysis: &LoopAnalysis,
    scratch: &mut PseudoScratch,
) -> PseudoSchedule {
    let ncoms = assignment.comm_count(ddg);
    let bus_ok = ncoms <= machine.coms_capacity_per_ii(ii);

    assignment.class_usage_into(ddg, machine.clusters(), &mut scratch.usage);
    let mut cap_overflow = 0u32;
    for (c, per_cluster) in scratch.usage.iter().enumerate() {
        for class in OpClass::ALL {
            let cap = u32::from(machine.fu_count_in(c as u8, class)) * ii;
            cap_overflow += per_cluster[class.index()].saturating_sub(cap);
        }
    }

    // Communication-adjusted per-edge latencies, from the cached base
    // vector (aligned with `ddg.edges()`).
    let base = analysis.edge_lat();
    let uniform = machine.uniform_transfer_latency();
    scratch.edge_lat.clear();
    scratch
        .edge_lat
        .extend(ddg.edges().zip(base).map(|(e, &lat)| {
            if !e.is_data() {
                return lat;
            }
            let missing = assignment
                .instances(e.dst)
                .difference(assignment.instances(e.src));
            if missing.is_empty() {
                lat
            } else {
                lat + comm_penalty(machine, assignment, e.src, missing, uniform)
            }
        }));

    let (recurrences_ok, est_length) =
        match asap_times_into(ddg, ii, &scratch.edge_lat, &mut scratch.asap) {
            Some(length) => (true, length),
            None => (false, i64::MAX),
        };

    let reg_overflow = if recurrences_ok {
        let asap = &scratch.asap;
        let est = &mut scratch.est;
        est.clear();
        est.resize(machine.clusters() as usize, 0);
        for n in ddg.node_ids() {
            if !ddg.kind(n).produces_value() {
                continue;
            }
            let def = asap[n.index()];
            let mut last = def + i64::from(analysis.node_lat()[n.index()]);
            for e in ddg.out_edges(n) {
                if e.is_data() {
                    last = last.max(asap[e.dst.index()] + i64::from(ii) * i64::from(e.distance));
                }
            }
            let span = u64::try_from((last - def).max(1)).expect("non-negative");
            let regs = span.div_ceil(u64::from(ii));
            for c in assignment.instances(n).iter() {
                est[c as usize] += regs;
            }
        }
        est.iter()
            .map(|&e| {
                u32::try_from(e.saturating_sub(u64::from(machine.regs_per_cluster())))
                    .unwrap_or(u32::MAX)
            })
            .sum()
    } else {
        0
    };

    PseudoSchedule {
        ncoms,
        bus_ok,
        cap_overflow,
        recurrences_ok,
        est_length,
        reg_overflow,
    }
}

fn pseudo_schedule_core(
    ddg: &Ddg,
    assignment: &Assignment,
    machine: &MachineConfig,
    ii: u32,
    base_lat: impl Fn(cvliw_ddg::NodeId) -> u32,
) -> PseudoSchedule {
    let ncoms = assignment.comm_count(ddg);
    let bus_ok = ncoms <= machine.coms_capacity_per_ii(ii);

    // Capacity: every (cluster, class) must fit its instances in units·II.
    let usage = assignment.class_usage(ddg, machine.clusters());
    let mut cap_overflow = 0u32;
    for (c, per_cluster) in usage.iter().enumerate() {
        for class in OpClass::ALL {
            let cap = u32::from(machine.fu_count_in(c as u8, class)) * ii;
            cap_overflow += per_cluster[class.index()].saturating_sub(cap);
        }
    }

    // Critical path with communication latencies: a data edge whose
    // consumer lives in a cluster without the producer pays the transfer.
    let uniform = machine.uniform_transfer_latency();
    let lat = |e: &cvliw_ddg::Edge| {
        let base = base_lat(e.src);
        if !e.is_data() {
            return base;
        }
        let missing = assignment
            .instances(e.dst)
            .difference(assignment.instances(e.src));
        if missing.is_empty() {
            base
        } else {
            base + comm_penalty(machine, assignment, e.src, missing, uniform)
        }
    };
    let (recurrences_ok, est_length, asap) = match time_bounds(ddg, ii, lat) {
        Some(tb) => (true, tb.length, Some(tb.asap)),
        None => (false, i64::MAX, None),
    };

    // Register estimate: each value's lifetime spans from its definition to
    // its furthest consumer (plus iteration distance); overlapped copies
    // cost ceil(lifetime / II) registers in each cluster holding it.
    let reg_overflow = match &asap {
        None => 0,
        Some(asap) => {
            let mut est = vec![0u64; machine.clusters() as usize];
            for n in ddg.node_ids() {
                if !ddg.kind(n).produces_value() {
                    continue;
                }
                let def = asap[n.index()];
                let mut last = def + i64::from(base_lat(n));
                for e in ddg.out_edges(n) {
                    if e.is_data() {
                        last =
                            last.max(asap[e.dst.index()] + i64::from(ii) * i64::from(e.distance));
                    }
                }
                let span = u64::try_from((last - def).max(1)).expect("non-negative");
                let regs = span.div_ceil(u64::from(ii));
                for c in assignment.instances(n).iter() {
                    est[c as usize] += regs;
                }
            }
            est.iter()
                .map(|&e| {
                    u32::try_from(e.saturating_sub(u64::from(machine.regs_per_cluster())))
                        .unwrap_or(u32::MAX)
                })
                .sum()
        }
    };

    PseudoSchedule {
        ncoms,
        bus_ok,
        cap_overflow,
        recurrences_ok,
        est_length,
        reg_overflow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvliw_ddg::OpKind;

    fn machine(spec: &str) -> MachineConfig {
        MachineConfig::from_spec(spec).unwrap()
    }

    fn two_chain() -> Ddg {
        let mut b = Ddg::builder();
        let ld = b.add_node(OpKind::Load);
        let m0 = b.add_node(OpKind::FpMul);
        let m1 = b.add_node(OpKind::FpMul);
        b.data(ld, m0).data(m0, m1);
        b.build().unwrap()
    }

    #[test]
    fn single_cluster_has_no_comm_cost() {
        let ddg = two_chain();
        let m = machine("4c1b2l64r");
        let asg = Assignment::from_partition(&[0, 0, 0]);
        let ps = pseudo_schedule(&ddg, &asg, &m, 2);
        assert_eq!(ps.ncoms, 0);
        assert!(ps.bus_ok && ps.recurrences_ok);
        assert_eq!(ps.est_length, 8); // 2 + 6
        assert!(ps.feasible());
    }

    #[test]
    fn cross_cluster_pays_bus_latency() {
        let ddg = two_chain();
        let m = machine("4c1b2l64r");
        let split = Assignment::from_partition(&[0, 1, 1]);
        let ps = pseudo_schedule(&ddg, &split, &m, 2);
        assert_eq!(ps.ncoms, 1);
        assert_eq!(ps.est_length, 10); // +2 bus on the load edge
    }

    #[test]
    fn capacity_overflow_detected() {
        let mut b = Ddg::builder();
        for _ in 0..5 {
            b.add_node(OpKind::Load);
        }
        let ddg = b.build().unwrap();
        let m = machine("4c1b2l64r"); // 1 mem port per cluster
        let asg = Assignment::from_partition(&[0, 0, 0, 0, 0]);
        let ps = pseudo_schedule(&ddg, &asg, &m, 2);
        assert_eq!(ps.cap_overflow, 3); // 5 loads − 2 slots
        assert!(!ps.feasible());
    }

    #[test]
    fn bus_overflow_detected() {
        let mut b = Ddg::builder();
        let p0 = b.add_node(OpKind::IntAdd);
        let p1 = b.add_node(OpKind::IntAdd);
        let c0 = b.add_node(OpKind::FpAdd);
        let c1 = b.add_node(OpKind::FpAdd);
        b.data(p0, c0).data(p1, c1);
        let ddg = b.build().unwrap();
        let m = machine("4c1b2l64r");
        let asg = Assignment::from_partition(&[0, 0, 1, 1]);
        let ps = pseudo_schedule(&ddg, &asg, &m, 2);
        assert_eq!(ps.ncoms, 2);
        assert!(!ps.bus_ok);
        let ps4 = pseudo_schedule(&ddg, &asg, &m, 4);
        assert!(ps4.bus_ok);
    }

    #[test]
    fn recurrence_with_communication_can_become_infeasible() {
        // Ring of 2 fp adds, distance 1 → RecMII 6 locally; splitting it
        // across clusters adds 2×2 bus cycles → needs II ≥ 10.
        let mut b = Ddg::builder();
        let x = b.add_node(OpKind::FpAdd);
        let y = b.add_node(OpKind::FpAdd);
        b.data(x, y).data_dist(y, x, 1);
        let ddg = b.build().unwrap();
        let m = machine("4c1b2l64r");
        let local = Assignment::from_partition(&[0, 0]);
        assert!(pseudo_schedule(&ddg, &local, &m, 6).recurrences_ok);
        let split = Assignment::from_partition(&[0, 1]);
        assert!(!pseudo_schedule(&ddg, &split, &m, 6).recurrences_ok);
        assert!(pseudo_schedule(&ddg, &split, &m, 10).recurrences_ok);
    }

    #[test]
    fn replication_avoids_cross_latency() {
        let ddg = two_chain();
        let m = machine("4c1b2l64r");
        let mut asg = Assignment::from_partition(&[0, 0, 1]);
        let before = pseudo_schedule(&ddg, &asg, &m, 4);
        assert_eq!(before.ncoms, 1);
        // replicate the producer chain into cluster 1
        asg.add_instance(cvliw_ddg::NodeId::new(0), 1);
        asg.add_instance(cvliw_ddg::NodeId::new(1), 1);
        let after = pseudo_schedule(&ddg, &asg, &m, 4);
        assert_eq!(after.ncoms, 0);
        assert!(after.est_length < before.est_length);
    }
}
