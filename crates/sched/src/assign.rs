//! Cluster assignments: which clusters hold an instance of each operation.
//!
//! A plain partition maps every node to exactly one cluster. Instruction
//! replication generalizes this: a node may have **instances** in several
//! clusters (paper §3), and an instance may even disappear from its original
//! cluster when it becomes useless there (§3.2). [`Assignment`] captures
//! both with a per-node [`ClusterSet`].

use std::fmt;

use cvliw_ddg::{Ddg, NodeId, OpClass};

/// A small set of cluster indices, stored as a bitmask (up to 32 clusters).
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterSet(u32);

impl ClusterSet {
    /// The empty set.
    #[must_use]
    pub fn empty() -> Self {
        ClusterSet(0)
    }

    /// The set containing a single cluster.
    #[must_use]
    pub fn single(cluster: u8) -> Self {
        debug_assert!(cluster < 32);
        ClusterSet(1 << cluster)
    }

    /// The set of all clusters `0..n`.
    #[must_use]
    pub fn all(n: u8) -> Self {
        debug_assert!(n <= 32);
        if n as u32 == 32 {
            ClusterSet(u32::MAX)
        } else {
            ClusterSet((1u32 << n) - 1)
        }
    }

    /// Whether the set contains `cluster`.
    #[must_use]
    pub fn contains(self, cluster: u8) -> bool {
        cluster < 32 && self.0 & (1 << cluster) != 0
    }

    /// Adds a cluster (no-op if present).
    pub fn insert(&mut self, cluster: u8) {
        debug_assert!(cluster < 32);
        self.0 |= 1 << cluster;
    }

    /// Removes a cluster (no-op if absent).
    pub fn remove(&mut self, cluster: u8) {
        debug_assert!(cluster < 32);
        self.0 &= !(1 << cluster);
    }

    /// Number of clusters in the set.
    #[must_use]
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: Self) -> Self {
        ClusterSet(self.0 | other.0)
    }

    /// Set difference (`self \ other`).
    #[must_use]
    pub fn difference(self, other: Self) -> Self {
        ClusterSet(self.0 & !other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(self, other: Self) -> Self {
        ClusterSet(self.0 & other.0)
    }

    /// Iterates over the clusters in ascending order.
    pub fn iter(self) -> impl Iterator<Item = u8> {
        (0..32u8).filter(move |&c| self.contains(c))
    }
}

impl FromIterator<u8> for ClusterSet {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        let mut s = ClusterSet::empty();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

impl fmt::Debug for ClusterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for ClusterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

/// Which clusters hold an instance of each operation of a loop.
///
/// Created from a partition (one cluster per node); the replication pass
/// then adds and removes instances. The **home** cluster of a node is the
/// cluster the partitioner chose — when a value is communicated, its bus
/// copy always reads from the home instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    instances: Vec<ClusterSet>,
    home: Vec<u8>,
}

impl Assignment {
    /// Builds a single-instance assignment from a partition (node index →
    /// cluster).
    #[must_use]
    pub fn from_partition(cluster_of: &[u8]) -> Self {
        Assignment {
            instances: cluster_of.iter().map(|&c| ClusterSet::single(c)).collect(),
            home: cluster_of.to_vec(),
        }
    }

    /// Rewrites this assignment in place from a partition, reusing the
    /// existing buffers — the clear-and-reuse twin of
    /// [`Assignment::from_partition`] for the compile scratch, where a fresh
    /// single-instance assignment is needed at every candidate II.
    pub fn set_from_partition(&mut self, cluster_of: &[u8]) {
        self.instances.clear();
        self.instances
            .extend(cluster_of.iter().map(|&c| ClusterSet::single(c)));
        self.home.clear();
        self.home.extend_from_slice(cluster_of);
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.instances.len()
    }

    /// The clusters holding an instance of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    #[must_use]
    pub fn instances(&self, n: NodeId) -> ClusterSet {
        self.instances[n.index()]
    }

    /// The per-node instance sets as a slice indexed by node — the
    /// borrow-don't-copy access the replication engine's liveness queries
    /// use.
    #[must_use]
    pub fn instance_sets(&self) -> &[ClusterSet] {
        &self.instances
    }

    /// Overwrites this assignment with a copy of `other`, reusing the
    /// existing buffers (the replication engine rebuilds a hypothetical
    /// assignment once per candidate plan).
    pub fn copy_from(&mut self, other: &Assignment) {
        self.instances.clone_from(&other.instances);
        self.home.clone_from(&other.home);
    }

    /// The cluster the partitioner originally assigned `n` to.
    #[must_use]
    pub fn home(&self, n: NodeId) -> u8 {
        self.home[n.index()]
    }

    /// The cluster a bus copy of `n`'s value reads from: the home cluster
    /// if an instance still lives there, otherwise the lowest-numbered
    /// instance cluster (falling back to the home for nodes with no
    /// instances at all, which no legal configuration produces). This is
    /// the single source of the copy-source rule — the scheduler's bus
    /// sources and the liveness analysis's anchors must agree on it.
    #[must_use]
    pub fn copy_source(&self, n: NodeId) -> u8 {
        let home = self.home(n);
        if self.instances(n).contains(home) {
            home
        } else {
            self.instances(n).iter().next().unwrap_or(home)
        }
    }

    /// Adds an instance of `n` in `cluster`.
    pub fn add_instance(&mut self, n: NodeId, cluster: u8) {
        self.instances[n.index()].insert(cluster);
    }

    /// Removes the instance of `n` in `cluster` (no-op if absent).
    pub fn remove_instance(&mut self, n: NodeId, cluster: u8) {
        self.instances[n.index()].remove(cluster);
    }

    /// Whether every node still has exactly one instance.
    #[must_use]
    pub fn is_singleton(&self) -> bool {
        self.instances.iter().all(|s| s.len() == 1)
    }

    /// Total number of instances across all nodes.
    #[must_use]
    pub fn instance_count(&self) -> u32 {
        self.instances.iter().map(|s| s.len()).sum()
    }

    /// Whether the value of `n` must be communicated over a bus: some
    /// consumer instance lives in a cluster with no local instance of `n`.
    #[must_use]
    pub fn needs_comm(&self, ddg: &Ddg, n: NodeId) -> bool {
        if !ddg.kind(n).produces_value() {
            return false;
        }
        let mine = self.instances(n);
        ddg.out_edges(n)
            .filter(|e| e.is_data())
            .any(|e| !self.instances(e.dst).difference(mine).is_empty())
    }

    /// All values that must be communicated, in node order (the paper's
    /// `nof_coms` is the length of this list).
    #[must_use]
    pub fn communicated(&self, ddg: &Ddg) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.communicated_into(ddg, &mut out);
        out
    }

    /// [`Assignment::communicated`] into a caller-owned buffer (cleared
    /// first) — the replication engine recomputes this list after every
    /// committed plan, so the scratch path reuses one allocation.
    pub fn communicated_into(&self, ddg: &Ddg, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(ddg.node_ids().filter(|&n| self.needs_comm(ddg, n)));
    }

    /// Number of communicated values (allocation-free; equals
    /// `communicated(ddg).len()`).
    #[must_use]
    pub fn comm_count(&self, ddg: &Ddg) -> u32 {
        ddg.node_ids().filter(|&n| self.needs_comm(ddg, n)).count() as u32
    }

    /// The clusters that need the value of `n` but hold no instance of it
    /// (the clusters a replication of `n`'s subgraph must target).
    #[must_use]
    pub fn missing_consumer_clusters(&self, ddg: &Ddg, n: NodeId) -> ClusterSet {
        let mine = self.instances(n);
        let mut needed = ClusterSet::empty();
        for e in ddg.out_edges(n) {
            if e.is_data() {
                needed = needed.union(self.instances(e.dst).difference(mine));
            }
        }
        needed
    }

    /// Instance counts per cluster and functional-unit class:
    /// `usage[cluster][class.index()]`.
    #[must_use]
    pub fn class_usage(&self, ddg: &Ddg, clusters: u8) -> Vec<[u32; 3]> {
        let mut usage = Vec::new();
        self.class_usage_into(ddg, clusters, &mut usage);
        usage
    }

    /// [`Assignment::class_usage`] into a caller-owned buffer (cleared
    /// first).
    pub fn class_usage_into(&self, ddg: &Ddg, clusters: u8, usage: &mut Vec<[u32; 3]>) {
        usage.clear();
        usage.resize(clusters as usize, [0u32; 3]);
        for n in ddg.node_ids() {
            let class = ddg.kind(n).class().index();
            for c in self.instances(n).iter() {
                usage[c as usize][class] += 1;
            }
        }
    }

    /// Instance count of one class in one cluster.
    #[must_use]
    pub fn usage_of(&self, ddg: &Ddg, cluster: u8, class: OpClass) -> u32 {
        let mut count = 0;
        for n in ddg.node_ids() {
            if ddg.kind(n).class() == class && self.instances(n).contains(cluster) {
                count += 1;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvliw_ddg::OpKind;

    #[test]
    fn cluster_set_basics() {
        let mut s = ClusterSet::empty();
        assert!(s.is_empty());
        s.insert(2);
        s.insert(0);
        assert_eq!(s.len(), 2);
        assert!(s.contains(0) && s.contains(2) && !s.contains(1));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2]);
        s.remove(0);
        assert_eq!(s, ClusterSet::single(2));
        assert_eq!(s.to_string(), "{2}");
    }

    #[test]
    fn cluster_set_algebra() {
        let a: ClusterSet = [0u8, 1].into_iter().collect();
        let b: ClusterSet = [1u8, 2].into_iter().collect();
        assert_eq!(a.union(b), ClusterSet::all(3));
        assert_eq!(a.difference(b), ClusterSet::single(0));
        assert_eq!(a.intersection(b), ClusterSet::single(1));
        assert_eq!(ClusterSet::all(4).len(), 4);
    }

    /// load → {mulA in cluster 0, mulB in cluster 1}.
    fn fanout() -> (Ddg, Assignment) {
        let mut b = Ddg::builder();
        let ld = b.add_node(OpKind::Load);
        let ma = b.add_node(OpKind::FpMul);
        let mb = b.add_node(OpKind::FpMul);
        b.data(ld, ma).data(ld, mb);
        let ddg = b.build().unwrap();
        let asg = Assignment::from_partition(&[0, 0, 1]);
        (ddg, asg)
    }

    #[test]
    fn communication_is_detected() {
        let (ddg, asg) = fanout();
        let ld = NodeId::new(0);
        assert!(asg.needs_comm(&ddg, ld));
        assert_eq!(asg.communicated(&ddg), vec![ld]);
        assert_eq!(asg.comm_count(&ddg), 1);
        assert_eq!(
            asg.missing_consumer_clusters(&ddg, ld),
            ClusterSet::single(1)
        );
    }

    #[test]
    fn replication_removes_communication() {
        let (ddg, mut asg) = fanout();
        let ld = NodeId::new(0);
        asg.add_instance(ld, 1);
        assert!(!asg.needs_comm(&ddg, ld));
        assert_eq!(asg.comm_count(&ddg), 0);
        assert!(!asg.is_singleton());
        assert_eq!(asg.instance_count(), 4);
        assert_eq!(asg.home(ld), 0);
    }

    #[test]
    fn stores_never_communicate() {
        let mut b = Ddg::builder();
        let st = b.add_node(OpKind::Store);
        let ld = b.add_node(OpKind::Load);
        b.mem_dep(st, ld, 1);
        let ddg = b.build().unwrap();
        let asg = Assignment::from_partition(&[0, 1]);
        assert_eq!(asg.comm_count(&ddg), 0);
    }

    #[test]
    fn class_usage_counts_instances() {
        let (ddg, mut asg) = fanout();
        asg.add_instance(NodeId::new(0), 1);
        let usage = asg.class_usage(&ddg, 2);
        assert_eq!(usage[0], [0, 1, 1]); // mulA + load
        assert_eq!(usage[1], [0, 1, 1]); // mulB + load replica
        assert_eq!(asg.usage_of(&ddg, 1, OpClass::Mem), 1);
    }

    #[test]
    fn same_cluster_needs_no_comm() {
        let mut b = Ddg::builder();
        let a = b.add_node(OpKind::FpAdd);
        let c = b.add_node(OpKind::FpAdd);
        b.data(a, c);
        let ddg = b.build().unwrap();
        let asg = Assignment::from_partition(&[1, 1]);
        assert_eq!(asg.comm_count(&ddg), 0);
    }
}
