//! Register pressure (MaxLive) of a modulo schedule.
//!
//! A value born each iteration stays live from its definition to its last
//! read; in a modulo schedule lifetimes of consecutive iterations overlap,
//! so the pressure at kernel slot `m` counts every iteration whose copy of
//! the value is live at `m`. A schedule is only accepted when the MaxLive of
//! each cluster fits its register file (the "registers" cause of Figure 1).

use cvliw_ddg::{Ddg, NodeId};
use cvliw_machine::MachineConfig;

use crate::schedule::Schedule;

/// A live range in one cluster: `(def_cycle, last_use_cycle]`.
///
/// Produced by [`live_ranges`]; consumed by MaxLive ([`max_live`]) and by
/// the rotating register allocator (`crate::regalloc`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Range {
    /// The node whose value this range holds.
    pub value: NodeId,
    /// The cluster whose register file holds it.
    pub cluster: u8,
    /// Definition cycle (issue of the instance, or of the bus copy for
    /// ranges in copy-destination clusters).
    pub def: i64,
    /// Last cycle at which the value is read in this cluster.
    pub last_use: i64,
}

impl Range {
    /// Lifetime in cycles (zero for a value that is never read locally).
    #[must_use]
    pub fn span(&self) -> i64 {
        (self.last_use - self.def).max(0)
    }
}

/// Reusable buffers for [`max_live_scratch`]: the collected live ranges,
/// the flat per-(cluster, slot) pressure table and the per-cluster peaks.
/// One scratch serves every scheduling attempt of a compilation.
#[derive(Clone, Debug, Default)]
pub struct RegScratch {
    ranges: Vec<Range>,
    /// `pressure[cluster·ii + slot]`.
    pressure: Vec<u32>,
    peaks: Vec<u32>,
}

/// Collects every register live range of a schedule (see [`max_live`] for
/// the accounting rules).
#[must_use]
pub fn live_ranges(schedule: &Schedule, ddg: &Ddg, machine: &MachineConfig) -> Vec<Range> {
    let mut ranges = Vec::new();
    collect_ranges_into(schedule, ddg, machine, &mut ranges);
    ranges
}

/// Computes the per-cluster MaxLive of a schedule.
///
/// Values accounted:
/// * every instance of a value-producing node owns a register in its
///   cluster from issue to its last local read (including the read by its
///   bus copy, when it is the copy's source);
/// * every bus copy owns a register in each **destination** cluster (a
///   cluster whose consumers have no local instance) from the copy's issue
///   to the last read there — the transfer itself is counted conservatively
///   as part of the lifetime.
#[must_use]
pub fn max_live(schedule: &Schedule, ddg: &Ddg, machine: &MachineConfig) -> Vec<u32> {
    let mut scratch = RegScratch::default();
    max_live_scratch(schedule, ddg, machine, &mut scratch);
    scratch.peaks
}

/// [`max_live`] into caller-owned buffers; returns the per-cluster peaks as
/// a slice of the scratch. Bit-identical to [`max_live`].
pub fn max_live_scratch<'s>(
    schedule: &Schedule,
    ddg: &Ddg,
    machine: &MachineConfig,
    scratch: &'s mut RegScratch,
) -> &'s [u32] {
    collect_ranges_into(schedule, ddg, machine, &mut scratch.ranges);
    let ii = i64::from(schedule.ii());
    let clusters = machine.clusters() as usize;
    let slots = ii as usize;
    scratch.pressure.clear();
    scratch.pressure.resize(clusters * slots, 0);
    for r in &scratch.ranges {
        let span = (r.last_use - r.def).max(0);
        let full_wraps = span / ii;
        let rem = span % ii;
        let row = &mut scratch.pressure[r.cluster as usize * slots..][..slots];
        if full_wraps > 0 {
            for slot in row.iter_mut() {
                *slot += u32::try_from(full_wraps).expect("span fits u32");
            }
        }
        for off in 1..=rem {
            let slot = (r.def + off).rem_euclid(ii) as usize;
            row[slot] += 1;
        }
    }
    scratch.peaks.clear();
    scratch.peaks.extend(
        scratch
            .pressure
            .chunks_exact(slots)
            .map(|row| row.iter().copied().max().unwrap_or(0)),
    );
    &scratch.peaks
}

fn collect_ranges_into(
    schedule: &Schedule,
    ddg: &Ddg,
    machine: &MachineConfig,
    ranges: &mut Vec<Range>,
) {
    let ii = i64::from(schedule.ii());
    ranges.clear();

    for n in ddg.node_ids() {
        if !ddg.kind(n).produces_value() {
            continue;
        }
        let instance_set = schedule.instance_clusters(n);
        let copy = schedule.copy_of(n);

        // Local instances.
        for c in instance_set.iter() {
            let def = schedule.instance_cycle(n, c).expect("instance exists");
            let mut last_use = def + i64::from(machine.latency(ddg.kind(n)));
            for e in ddg.out_edges(n) {
                if !e.is_data() {
                    continue;
                }
                if let Some(t) = schedule.instance_cycle(e.dst, c) {
                    last_use = last_use.max(t + ii * i64::from(e.distance));
                }
            }
            if let Some(cp) = copy {
                if cp.source == c {
                    last_use = last_use.max(cp.cycle);
                }
            }
            ranges.push(Range {
                value: n,
                cluster: c,
                def,
                last_use,
            });
        }

        // Copy destinations.
        if let Some(cp) = copy {
            let mut dest_last: Vec<(u8, i64)> = Vec::new();
            for e in ddg.out_edges(n) {
                if !e.is_data() {
                    continue;
                }
                for c in schedule.instance_clusters(e.dst).iter() {
                    if instance_set.contains(c) {
                        continue; // consumer reads the local instance
                    }
                    let t = schedule.instance_cycle(e.dst, c).expect("instance exists")
                        + ii * i64::from(e.distance);
                    match dest_last.iter_mut().find(|(dc, _)| *dc == c) {
                        Some((_, last)) => *last = (*last).max(t),
                        None => dest_last.push((c, t)),
                    }
                }
            }
            for (c, last_use) in dest_last {
                ranges.push(Range {
                    value: n,
                    cluster: c,
                    def: cp.cycle,
                    last_use,
                });
            }
        }
    }
}

/// Convenience wrapper: the highest pressure across all clusters.
#[must_use]
pub fn peak_pressure(schedule: &Schedule, ddg: &Ddg, machine: &MachineConfig) -> u32 {
    max_live(schedule, ddg, machine)
        .into_iter()
        .max()
        .unwrap_or(0)
}

/// Returns the last-use-based lifetime (in cycles) of node `n`'s value in
/// its home cluster, if scheduled. Exposed for diagnostics and tests.
#[must_use]
pub fn lifetime_of(
    schedule: &Schedule,
    ddg: &Ddg,
    machine: &MachineConfig,
    n: NodeId,
) -> Option<i64> {
    if !ddg.kind(n).produces_value() {
        return None;
    }
    let ii = i64::from(schedule.ii());
    let c = schedule.instance_clusters(n).iter().next()?;
    let def = schedule.instance_cycle(n, c)?;
    let mut last = def + i64::from(machine.latency(ddg.kind(n)));
    for e in ddg.out_edges(n) {
        if !e.is_data() {
            continue;
        }
        if let Some(t) = schedule.instance_cycle(e.dst, c) {
            last = last.max(t + ii * i64::from(e.distance));
        }
    }
    if let Some(cp) = schedule.copy_of(n) {
        if cp.source == c {
            last = last.max(cp.cycle);
        }
    }
    Some(last - def)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::Assignment;
    use crate::schedule::{schedule, ScheduleRequest};
    use cvliw_ddg::OpKind;

    fn machine(spec: &str) -> MachineConfig {
        MachineConfig::from_spec(spec).unwrap()
    }

    fn sched(ddg: &Ddg, m: &MachineConfig, part: &[u8], ii: u32) -> Schedule {
        let asg = Assignment::from_partition(part);
        schedule(&ScheduleRequest {
            ddg,
            machine: m,
            assignment: &asg,
            ii,
            zero_bus_dep_latency: false,
        })
        .unwrap()
    }

    #[test]
    fn chain_pressure_counts_overlap() {
        // load → fmul → store at II=1 on a 2-port cluster: the load's value
        // is live 2 cycles (born, consumed by fmul at +2), fmul's 6 →
        // MaxLive = 8 overlapping iterations.
        let mut b = Ddg::builder();
        let ld = b.add_node(OpKind::Load);
        let m0 = b.add_node(OpKind::FpMul);
        let st = b.add_node(OpKind::Store);
        b.data(ld, m0).data(m0, st);
        let ddg = b.build().unwrap();
        let m = machine("2c1b2l64r");
        let s = sched(&ddg, &m, &[0, 0, 0], 1);
        let p = max_live(&s, &ddg, &m);
        assert_eq!(p.len(), 2);
        assert_eq!(p[0], 8); // 2 (load live) + 6 (fmul live)
        assert_eq!(p[1], 0);
    }

    #[test]
    fn larger_ii_reduces_pressure() {
        let mut b = Ddg::builder();
        let ld = b.add_node(OpKind::Load);
        let m0 = b.add_node(OpKind::FpMul);
        let st = b.add_node(OpKind::Store);
        b.data(ld, m0).data(m0, st);
        let ddg = b.build().unwrap();
        let m = machine("2c1b2l64r");
        let p1 = max_live(&sched(&ddg, &m, &[0, 0, 0], 1), &ddg, &m)[0];
        let p4 = max_live(&sched(&ddg, &m, &[0, 0, 0], 4), &ddg, &m)[0];
        assert!(p4 < p1, "pressure {p4} should drop below {p1}");
    }

    #[test]
    fn copy_destination_holds_a_register() {
        let mut b = Ddg::builder();
        let ld = b.add_node(OpKind::Load);
        let m0 = b.add_node(OpKind::FpMul);
        b.data(ld, m0);
        let ddg = b.build().unwrap();
        let m = machine("4c1b2l64r");
        let s = sched(&ddg, &m, &[0, 1], 2);
        let p = max_live(&s, &ddg, &m);
        assert!(p[0] >= 1, "source cluster holds the load value");
        assert!(p[1] >= 1, "destination cluster holds the copied value");
    }

    #[test]
    fn lifetime_includes_loop_carried_uses() {
        // acc = acc + x: accumulator lives a full iteration.
        let mut b = Ddg::builder();
        let acc = b.add_node(OpKind::FpAdd);
        b.data_dist(acc, acc, 1);
        let ddg = b.build().unwrap();
        let m = machine("4c1b2l64r");
        let s = sched(&ddg, &m, &[0], 3);
        let life = lifetime_of(&s, &ddg, &m, NodeId::new(0)).unwrap();
        assert_eq!(life, 3); // self use next iteration: def + ii
    }

    #[test]
    fn stores_have_no_lifetime() {
        let mut b = Ddg::builder();
        let ld = b.add_node(OpKind::Load);
        let st = b.add_node(OpKind::Store);
        b.data(ld, st);
        let ddg = b.build().unwrap();
        let m = machine("2c1b2l64r");
        let s = sched(&ddg, &m, &[0, 0], 1);
        assert_eq!(lifetime_of(&s, &ddg, &m, NodeId::new(1)), None);
    }
}
