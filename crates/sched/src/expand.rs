//! Software-pipeline expansion: prologue / kernel / epilogue generation.
//!
//! A modulo schedule describes *one* iteration laid over a kernel of `II`
//! cycles; real code needs the pipeline filled and drained. This module
//! expands a [`Schedule`] into the flat code a compiler would emit:
//!
//! * a **prologue** of `(SC − 1) · II` rows that ramps the pipeline up,
//! * a **kernel** of `II` rows executed `N − SC + 1` times,
//! * an **epilogue** of `(SC − 1) · II` rows that drains it,
//!
//! where `SC = ⌈length / II⌉` is the stage count. The expansion is the
//! concrete object behind the paper's execution model (`Texec =
//! (N − 1 + SC) · II`, §2.2) and behind the §5.1 observation that loops
//! with short trip counts (applu's `N ≈ 4`) spend most of their time in
//! the prologue/epilogue rather than the kernel.

use cvliw_ddg::Ddg;

use crate::schedule::{SchedOp, Schedule};

/// One operation issue in an expanded listing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExpandedOp {
    /// The instance or copy being issued.
    pub op: SchedOp,
    /// The loop iteration this issue belongs to (0-based).
    pub iteration: u64,
}

/// A fully expanded execution trace of a software-pipelined loop.
#[derive(Clone, Debug)]
pub struct Expansion {
    ii: u32,
    stage_count: u32,
    iterations: u64,
    /// `rows[cycle]` = operations issued at that absolute cycle.
    rows: Vec<Vec<ExpandedOp>>,
}

impl Expansion {
    /// Total rows (cycles), equal to the paper's `(N − 1 + SC) · II` for
    /// `N ≥ 1`.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.rows.len() as u64
    }

    /// The rows of the trace.
    #[must_use]
    pub fn rows(&self) -> &[Vec<ExpandedOp>] {
        &self.rows
    }

    /// Number of operations issued over the whole trace.
    #[must_use]
    pub fn issued_ops(&self) -> u64 {
        self.rows.iter().map(|r| r.len() as u64).sum()
    }

    /// The absolute cycle at which the pipeline is first full (the kernel's
    /// steady state): `(SC − 1) · II`. Equals `cycles()` when the trip
    /// count is too small to ever fill the pipeline (`N < SC`).
    #[must_use]
    pub fn steady_state_start(&self) -> u64 {
        (u64::from(self.stage_count) - 1) * u64::from(self.ii)
    }

    /// Cycles spent with the pipeline full. Zero when `N < SC` — the §5.1
    /// situation where prologue and epilogue dominate.
    #[must_use]
    pub fn steady_cycles(&self) -> u64 {
        if self.iterations < u64::from(self.stage_count) {
            return 0;
        }
        (self.iterations - u64::from(self.stage_count) + 1) * u64::from(self.ii)
    }

    /// Fraction of the execution spent in the filled pipeline; the §5.1
    /// proxy for "does the II dominate this loop's runtime?".
    #[must_use]
    pub fn steady_fraction(&self) -> f64 {
        if self.cycles() == 0 {
            return 0.0;
        }
        self.steady_cycles() as f64 / self.cycles() as f64
    }
}

/// Expands `schedule` into the flat issue trace of `iterations` iterations.
///
/// Row `t + i·II` holds every operation scheduled at flat cycle `t` for
/// iteration `i`; trailing rows up to `Texec` are drain cycles (results
/// still in flight). For `iterations == 0` the trace is empty.
///
/// # Example
///
/// ```
/// use cvliw_ddg::{Ddg, OpKind};
/// use cvliw_machine::MachineConfig;
/// use cvliw_sched::{expand, schedule, Assignment, ScheduleRequest};
///
/// let mut b = Ddg::builder();
/// let ld = b.add_node(OpKind::Load);
/// let m = b.add_node(OpKind::FpMul);
/// let st = b.add_node(OpKind::Store);
/// b.data(ld, m).data(m, st);
/// let ddg = b.build()?;
/// let machine = MachineConfig::from_spec("2c1b2l64r")?;
/// let sched = schedule(&ScheduleRequest {
///     ddg: &ddg,
///     machine: &machine,
///     assignment: &Assignment::from_partition(&[0, 0, 0]),
///     ii: 2,
///     zero_bus_dep_latency: false,
/// })?;
///
/// let trace = expand(&sched, 10);
/// assert_eq!(trace.cycles(), sched.texec(10)); // (N-1+SC)·II
/// assert_eq!(trace.issued_ops(), 30);          // 3 ops × 10 iterations
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn expand(schedule: &Schedule, iterations: u64) -> Expansion {
    let ii = schedule.ii();
    let stage_count = schedule.stage_count();
    let mut rows: Vec<Vec<ExpandedOp>> =
        vec![Vec::new(); usize::try_from(schedule.texec(iterations)).expect("trace fits")];
    for i in 0..iterations {
        let base = i * u64::from(ii);
        for ((n, c), t) in schedule.instances() {
            let cycle = base + u64::try_from(t).expect("normalized cycles are non-negative");
            rows[usize::try_from(cycle).expect("within trace")].push(ExpandedOp {
                op: SchedOp::Instance(n, c),
                iteration: i,
            });
        }
        for (n, copy) in schedule.copies() {
            let cycle =
                base + u64::try_from(copy.cycle).expect("normalized cycles are non-negative");
            rows[usize::try_from(cycle).expect("within trace")].push(ExpandedOp {
                op: SchedOp::Copy(n),
                iteration: i,
            });
        }
    }
    for row in &mut rows {
        row.sort_unstable_by_key(|e| (e.op, e.iteration));
    }
    Expansion {
        ii,
        stage_count,
        iterations,
        rows,
    }
}

/// The static shape of the emitted code: how many rows (VLIW instructions)
/// the prologue, kernel and epilogue occupy, and how many operation slots
/// they contain. This is the code-size currency of the paper's DSP
/// motivation (related work holds unrolling's code growth against it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodeShape {
    /// Rows before the steady state: `(SC − 1) · II`.
    pub prologue_rows: u64,
    /// Kernel rows: `II`.
    pub kernel_rows: u64,
    /// Rows after the last kernel issue: `(SC − 1) · II`.
    pub epilogue_rows: u64,
    /// Operation issues in the prologue.
    pub prologue_ops: u64,
    /// Operation issues in one kernel repetition.
    pub kernel_ops: u64,
    /// Operation issues in the epilogue.
    pub epilogue_ops: u64,
}

impl CodeShape {
    /// Total static rows emitted.
    #[must_use]
    pub fn total_rows(&self) -> u64 {
        self.prologue_rows + self.kernel_rows + self.epilogue_rows
    }

    /// Total static operation slots emitted.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.prologue_ops + self.kernel_ops + self.epilogue_ops
    }
}

/// Computes the static prologue/kernel/epilogue shape of a schedule.
///
/// Identity: `prologue_ops + epilogue_ops == (SC − 1) · kernel_ops` — the
/// ramp-up and drain together issue exactly the iterations the kernel has
/// not yet (or no longer) covered.
#[must_use]
pub fn code_shape(schedule: &Schedule) -> CodeShape {
    let ii = u64::from(schedule.ii());
    let sc = u64::from(schedule.stage_count());
    let per_iter = u64::from(schedule.op_count() + schedule.copy_count());

    // Expand exactly SC iterations: rows [0, (SC-1)·II) are the prologue
    // and rows [(SC-1)·II, SC·II) are the first steady-state kernel block.
    let trace = expand(schedule, sc);
    let prologue_rows = (sc - 1) * ii;
    let prologue_ops: u64 = trace
        .rows()
        .iter()
        .take(usize::try_from(prologue_rows).expect("fits"))
        .map(|r| r.len() as u64)
        .sum();
    let kernel_ops: u64 = trace
        .rows()
        .iter()
        .skip(usize::try_from(prologue_rows).expect("fits"))
        .take(usize::try_from(ii).expect("fits"))
        .map(|r| r.len() as u64)
        .sum();
    debug_assert_eq!(
        kernel_ops, per_iter,
        "a full kernel issues one whole iteration"
    );
    CodeShape {
        prologue_rows,
        kernel_rows: ii,
        epilogue_rows: prologue_rows,
        prologue_ops,
        kernel_ops,
        epilogue_ops: (sc - 1) * per_iter - prologue_ops,
    }
}

/// Renders an expansion as text, one row per cycle, marking the prologue,
/// steady-state and drain regions.
#[must_use]
pub fn render_expansion(trace: &Expansion, ddg: &Ddg) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let steady = trace.steady_state_start();
    let steady_end = steady + trace.steady_cycles();
    let _ = writeln!(
        out,
        "{} iterations, {} cycles ({} steady, {:.0}%)",
        trace.iterations,
        trace.cycles(),
        trace.steady_cycles(),
        100.0 * trace.steady_fraction()
    );
    for (cycle, row) in trace.rows().iter().enumerate() {
        let cycle = cycle as u64;
        let region = if cycle < steady {
            "fill "
        } else if cycle < steady_end {
            "steady"
        } else {
            "drain"
        };
        let _ = write!(out, "{cycle:>4} {region:<6}|");
        for e in row {
            match e.op {
                SchedOp::Instance(n, c) => {
                    let _ = write!(out, " {}#{}.c{}", ddg.display_label(n), e.iteration, c);
                }
                SchedOp::Copy(n) => {
                    let _ = write!(out, " copy({})#{}", ddg.display_label(n), e.iteration);
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{schedule, ScheduleRequest};
    use crate::Assignment;
    use cvliw_ddg::OpKind;
    use cvliw_machine::MachineConfig;

    fn pipelined_schedule() -> (Ddg, Schedule) {
        // A chain long enough to span several stages at II=2.
        let mut b = Ddg::builder();
        let ld = b.add_labeled(OpKind::Load, "x");
        let m0 = b.add_labeled(OpKind::FpMul, "m0");
        let m1 = b.add_labeled(OpKind::FpMul, "m1");
        let st = b.add_labeled(OpKind::Store, "s");
        b.data(ld, m0).data(m0, m1).data(m1, st);
        let ddg = b.build().unwrap();
        let machine = MachineConfig::from_spec("2c1b2l64r").unwrap();
        let sched = schedule(&ScheduleRequest {
            ddg: &ddg,
            machine: &machine,
            assignment: &Assignment::from_partition(&[0, 0, 0, 0]),
            ii: 2,
            zero_bus_dep_latency: false,
        })
        .unwrap();
        assert!(sched.stage_count() >= 3, "test needs a deep pipeline");
        (ddg, sched)
    }

    #[test]
    fn trace_length_matches_the_paper_formula() {
        let (_, sched) = pipelined_schedule();
        for n in [1u64, 2, 3, 4, 10, 33] {
            let trace = expand(&sched, n);
            assert_eq!(trace.cycles(), sched.texec(n), "n={n}");
        }
    }

    #[test]
    fn every_iteration_issues_every_op() {
        let (_, sched) = pipelined_schedule();
        let n = 7;
        let trace = expand(&sched, n);
        assert_eq!(
            trace.issued_ops(),
            n * u64::from(sched.op_count() + sched.copy_count())
        );
        // Each iteration index appears exactly op_count times.
        let mut per_iter = vec![0u64; n as usize];
        for row in trace.rows() {
            for e in row {
                per_iter[e.iteration as usize] += 1;
            }
        }
        assert!(per_iter.iter().all(|&k| k == u64::from(sched.op_count())));
    }

    #[test]
    fn zero_iterations_is_empty() {
        let (_, sched) = pipelined_schedule();
        let trace = expand(&sched, 0);
        assert_eq!(trace.cycles(), 0);
        assert_eq!(trace.issued_ops(), 0);
        assert_eq!(trace.steady_cycles(), 0);
    }

    #[test]
    fn short_trip_counts_never_reach_steady_state() {
        let (_, sched) = pipelined_schedule();
        let sc = u64::from(sched.stage_count());
        let short = expand(&sched, sc - 1);
        assert_eq!(short.steady_cycles(), 0);
        assert_eq!(short.steady_fraction(), 0.0);
        let long = expand(&sched, 100);
        assert!(
            long.steady_fraction() > 0.8,
            "got {}",
            long.steady_fraction()
        );
    }

    #[test]
    fn steady_state_rows_repeat_the_kernel() {
        let (_, sched) = pipelined_schedule();
        let trace = expand(&sched, 12);
        let ii = u64::from(sched.ii());
        let start = trace.steady_state_start();
        // Two consecutive steady-state kernel blocks issue the same ops
        // shifted by exactly one iteration.
        for r in 0..ii {
            let a = &trace.rows()[(start + r) as usize];
            let b = &trace.rows()[(start + ii + r) as usize];
            assert_eq!(a.len(), b.len(), "row {r}");
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.op, y.op);
                assert_eq!(x.iteration + 1, y.iteration);
            }
        }
    }

    #[test]
    fn code_shape_identity_holds() {
        let (_, sched) = pipelined_schedule();
        let shape = code_shape(&sched);
        let per_iter = u64::from(sched.op_count() + sched.copy_count());
        assert_eq!(shape.kernel_ops, per_iter);
        assert_eq!(
            shape.prologue_ops + shape.epilogue_ops,
            (u64::from(sched.stage_count()) - 1) * per_iter,
            "ramp-up plus drain covers the non-kernel iterations"
        );
        assert_eq!(shape.prologue_rows, shape.epilogue_rows);
        assert_eq!(shape.kernel_rows, u64::from(sched.ii()));
        assert_eq!(
            shape.total_rows(),
            (2 * (u64::from(sched.stage_count()) - 1) + 1) * u64::from(sched.ii())
        );
        assert!(shape.total_ops() >= per_iter);
    }

    #[test]
    fn render_marks_regions() {
        let (ddg, sched) = pipelined_schedule();
        let text = render_expansion(&expand(&sched, 8), &ddg);
        assert!(text.contains("fill"), "{text}");
        assert!(text.contains("steady"), "{text}");
        assert!(text.contains("drain"), "{text}");
        assert!(text.contains("x#0"), "{text}");
    }
}
