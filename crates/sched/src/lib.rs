//! Modulo scheduling for clustered VLIW machines.
//!
//! This crate implements the scheduling substrate of the MICRO-36 2003
//! instruction-replication paper:
//!
//! * [`mii`]/[`res_mii_assigned`]/[`ii_part`] — the initiation-interval
//!   lower bounds (resources, recurrences, bus bandwidth);
//! * [`sms_order`] — the swing-modulo-scheduling node ordering (the paper's
//!   reference \[18\]);
//! * [`Assignment`]/[`ClusterSet`] — which clusters hold an instance of
//!   each operation (the representation instruction replication
//!   manipulates);
//! * [`schedule`] — the backtracking-free placement engine with modulo
//!   reservation tables ([`Mrt`]) for functional units and register buses,
//!   producing a verifiable [`Schedule`];
//! * [`max_live`] — register-pressure measurement, the third cause of
//!   Figure 1;
//! * [`pseudo_schedule`] — the cheap estimates guiding partition refinement
//!   (the paper's reference \[2\]).
//!
//! # Example
//!
//! Schedule a two-cluster loop whose producer value crosses clusters:
//!
//! ```
//! use cvliw_ddg::{Ddg, OpKind};
//! use cvliw_machine::MachineConfig;
//! use cvliw_sched::{schedule, Assignment, ScheduleRequest};
//!
//! let mut b = Ddg::builder();
//! let ld = b.add_node(OpKind::Load);
//! let mul = b.add_node(OpKind::FpMul);
//! b.data(ld, mul);
//! let ddg = b.build()?;
//!
//! let machine = MachineConfig::from_spec("2c1b2l64r")?;
//! let assignment = Assignment::from_partition(&[0, 1]);
//! let sched = schedule(&ScheduleRequest {
//!     ddg: &ddg,
//!     machine: &machine,
//!     assignment: &assignment,
//!     ii: 2,
//!     zero_bus_dep_latency: false,
//! })?;
//! assert_eq!(sched.copy_count(), 1); // the load's value is communicated
//! sched.verify(&ddg, &machine)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assign;
mod cache;
mod error;
mod expand;
mod mii;
mod mrt;
mod order;
mod pseudo;
mod regalloc;
mod regs;
mod schedule;

pub use assign::{Assignment, ClusterSet};
pub use cache::LoopAnalysis;
pub use error::{IiCause, ScheduleError, VerifyError};
pub use expand::{code_shape, expand, render_expansion, CodeShape, ExpandedOp, Expansion};
pub use mii::{ii_part, mii, res_mii_assigned, res_mii_unclustered};
pub use mrt::Mrt;
pub use order::{neighbor_adjacency_ratio, sms_order};
pub use pseudo::{
    comm_penalty, pseudo_schedule, pseudo_schedule_scratch, pseudo_schedule_with, PseudoSchedule,
    PseudoScratch,
};
pub use regalloc::{
    allocate_registers, ClusterAllocation, OutOfRegisters, RegAssignment, RegisterAllocation,
};
pub use regs::{
    lifetime_of, live_ranges, max_live, max_live_scratch, peak_pressure, Range, RegScratch,
};
pub use schedule::{
    schedule, schedule_with, schedule_with_analysis, schedule_with_scratch, CopyPlacement,
    OrderStrategy, SchedOp, SchedScratch, Schedule, ScheduleRequest,
};
