//! Node ordering for modulo scheduling, following Swing Modulo Scheduling
//! (Llosa et al., PACT'96 — reference [18] of the paper).
//!
//! The ordering walks the DDG so that every node is placed while at least
//! one of its neighbours is already ordered (keeping issue windows tight and
//! register lifetimes short), gives priority to the most critical
//! recurrences, and alternates top-down/bottom-up sweeps.

use std::collections::BTreeSet;

use cvliw_ddg::{depth_height, sccs, Ddg, Edge, NodeId};
use cvliw_machine::MachineConfig;

/// Computes the swing-modulo-scheduling order of all nodes.
///
/// Recurrences are processed in decreasing RecMII order, each together with
/// the nodes on paths connecting it to the already-ordered subgraph; the
/// remaining (non-recurrent) nodes come last. Within a group the classic
/// alternating height/depth sweep is used. Ties break on node index, so the
/// result is deterministic.
///
/// One-shot convenience: recomputes every ingredient (latencies, SCCs,
/// depth/height) from scratch. The driver's II loop instead computes the
/// order once per (loop, machine) through [`crate::LoopAnalysis`], which
/// calls the same internals on its cached artifacts.
#[must_use]
pub fn sms_order(ddg: &Ddg, machine: &MachineConfig) -> Vec<NodeId> {
    let node_lat: Vec<u32> = ddg
        .node_ids()
        .map(|n| machine.latency(ddg.kind(n)))
        .collect();
    let lat = |e: &Edge| node_lat[e.src.index()];
    let (depth, height) = depth_height(ddg, lat);
    let comps = sccs(ddg);
    let comp_rec_mii = comp_rec_miis(ddg, &comps, lat);
    sms_order_parts(ddg, &depth, &height, &comps, &comp_rec_mii)
}

/// Whether a strongly connected component carries a recurrence: more than
/// one node, or a single node with a loop-carried self-dependence.
pub(crate) fn is_recurrent_comp(ddg: &Ddg, comp: &[NodeId]) -> bool {
    comp.len() > 1 || ddg.out_edges(comp[0]).any(|e| e.dst == comp[0])
}

/// RecMII of every component of `comps`, aligned by index; trivial
/// (non-recurrent) components report 1, the floor any II satisfies.
pub(crate) fn comp_rec_miis(
    ddg: &Ddg,
    comps: &[Vec<NodeId>],
    lat: impl Fn(&Edge) -> u32,
) -> Vec<u32> {
    comps
        .iter()
        .map(|c| {
            if is_recurrent_comp(ddg, c) {
                scc_rec_mii(ddg, c, &lat)
            } else {
                1
            }
        })
        .collect()
}

/// The ordering core on precomputed artifacts: depth/height per node and
/// the SCC decomposition with each component's RecMII.
pub(crate) fn sms_order_parts(
    ddg: &Ddg,
    depth: &[i64],
    height: &[i64],
    comps: &[Vec<NodeId>],
    comp_rec_mii: &[u32],
) -> Vec<NodeId> {
    let n = ddg.node_count();
    let groups = priority_groups(ddg, comps, comp_rec_mii);

    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    let mut ordered = vec![false; n];

    for group in groups {
        order_group(ddg, &group, depth, height, &mut order, &mut ordered);
    }
    debug_assert_eq!(order.len(), n);
    order
}

/// Direction of the current sweep.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Sweep {
    TopDown,
    BottomUp,
}

fn order_group(
    ddg: &Ddg,
    group: &BTreeSet<NodeId>,
    depth: &[i64],
    height: &[i64],
    order: &mut Vec<NodeId>,
    ordered: &mut [bool],
) {
    let in_group_unordered =
        |n: NodeId, ordered: &[bool]| group.contains(&n) && !ordered[n.index()];

    let remaining = |ordered: &[bool]| {
        group
            .iter()
            .copied()
            .filter(|n| !ordered[n.index()])
            .count()
    };

    while remaining(ordered) > 0 {
        // Seed the ready set from nodes adjacent to the ordered prefix.
        let mut ready: BTreeSet<NodeId> = BTreeSet::new();
        let mut sweep = Sweep::TopDown;
        for &o in order.iter() {
            for e in ddg.out_edges(o) {
                if in_group_unordered(e.dst, ordered) {
                    ready.insert(e.dst);
                }
            }
        }
        if ready.is_empty() {
            for &o in order.iter() {
                for e in ddg.in_edges(o) {
                    if in_group_unordered(e.src, ordered) {
                        ready.insert(e.src);
                    }
                }
            }
            if !ready.is_empty() {
                sweep = Sweep::BottomUp;
            }
        }
        if ready.is_empty() {
            // Fresh component: start from the highest node (max height).
            let seed = group
                .iter()
                .copied()
                .filter(|n| !ordered[n.index()])
                .max_by_key(|n| (height[n.index()], std::cmp::Reverse(n.index())))
                .expect("non-empty remaining group");
            ready.insert(seed);
            sweep = Sweep::TopDown;
        }

        // Alternate sweeps until this group's connected region is exhausted.
        loop {
            while let Some(v) = pick(&ready, sweep, depth, height) {
                ready.remove(&v);
                if ordered[v.index()] {
                    continue;
                }
                ordered[v.index()] = true;
                order.push(v);
                let next: Box<dyn Iterator<Item = &Edge>> = match sweep {
                    Sweep::TopDown => Box::new(ddg.out_edges(v)),
                    Sweep::BottomUp => Box::new(ddg.in_edges(v)),
                };
                for e in next {
                    let w = if sweep == Sweep::TopDown {
                        e.dst
                    } else {
                        e.src
                    };
                    if in_group_unordered(w, ordered) {
                        ready.insert(w);
                    }
                }
            }
            // Switch direction: collect unordered group nodes adjacent to
            // anything ordered so far, on the opposite side.
            sweep = match sweep {
                Sweep::TopDown => Sweep::BottomUp,
                Sweep::BottomUp => Sweep::TopDown,
            };
            for &o in order.iter() {
                let adj: Box<dyn Iterator<Item = &Edge>> = match sweep {
                    Sweep::TopDown => Box::new(ddg.out_edges(o)),
                    Sweep::BottomUp => Box::new(ddg.in_edges(o)),
                };
                for e in adj {
                    let w = if sweep == Sweep::TopDown {
                        e.dst
                    } else {
                        e.src
                    };
                    if in_group_unordered(w, ordered) {
                        ready.insert(w);
                    }
                }
            }
            ready.retain(|v| !ordered[v.index()]);
            if ready.is_empty() {
                break;
            }
        }
    }
}

/// Picks the next node of the ready set: highest height when sweeping
/// top-down, highest depth when sweeping bottom-up; ties break on the other
/// metric and then on node index.
fn pick(ready: &BTreeSet<NodeId>, sweep: Sweep, depth: &[i64], height: &[i64]) -> Option<NodeId> {
    ready.iter().copied().max_by_key(|n| {
        let (primary, secondary) = match sweep {
            Sweep::TopDown => (height[n.index()], depth[n.index()]),
            Sweep::BottomUp => (depth[n.index()], height[n.index()]),
        };
        (primary, secondary, std::cmp::Reverse(n.index()))
    })
}

/// Builds the ordered list of node groups: each non-trivial SCC in
/// decreasing RecMII order together with the nodes on paths connecting it
/// to previously grouped nodes, then everything else. The per-component
/// RecMIIs arrive precomputed ([`comp_rec_miis`]) so a schedule attempt
/// never re-runs the binary searches.
fn priority_groups(
    ddg: &Ddg,
    comps: &[Vec<NodeId>],
    comp_rec_mii: &[u32],
) -> Vec<BTreeSet<NodeId>> {
    let mut recurrent: Vec<(u32, Vec<NodeId>)> = comps
        .iter()
        .zip(comp_rec_mii)
        .filter(|(c, _)| is_recurrent_comp(ddg, c))
        .map(|(c, &mii)| (mii, c.clone()))
        .collect();
    recurrent.sort_by_key(|(mii, c)| (std::cmp::Reverse(*mii), c[0].index()));

    let ancestors = reachability(ddg, true);
    let descendants = reachability(ddg, false);

    let mut grouped = vec![false; ddg.node_count()];
    let mut groups: Vec<BTreeSet<NodeId>> = Vec::new();
    for (_, comp) in recurrent {
        let mut group: BTreeSet<NodeId> = BTreeSet::new();
        for &v in &comp {
            if !grouped[v.index()] {
                group.insert(v);
            }
        }
        // Nodes on paths between earlier groups and this SCC.
        for prev in groups.iter() {
            for &p in prev {
                for &v in &comp {
                    for mid in ddg.node_ids() {
                        if grouped[mid.index()] || group.contains(&mid) {
                            continue;
                        }
                        let on_path = (descendants[p.index()].contains(&mid)
                            && ancestors[v.index()].contains(&mid))
                            || (descendants[v.index()].contains(&mid)
                                && ancestors[p.index()].contains(&mid));
                        if on_path {
                            group.insert(mid);
                        }
                    }
                }
            }
        }
        for &v in &group {
            grouped[v.index()] = true;
        }
        if !group.is_empty() {
            groups.push(group);
        }
    }
    let rest: BTreeSet<NodeId> = ddg.node_ids().filter(|n| !grouped[n.index()]).collect();
    if !rest.is_empty() {
        groups.push(rest);
    }
    groups
}

/// RecMII of a single strongly connected component, by binary search over
/// the feasibility of its internal edges.
fn scc_rec_mii(ddg: &Ddg, comp: &[NodeId], lat: impl Fn(&Edge) -> u32) -> u32 {
    let inside = |n: NodeId| comp.binary_search(&n).is_ok();
    // Build feasibility check over internal edges only by inflating the
    // latency function: external edges get distance-covered weight 0.
    let feasible = |ii: u32| -> bool {
        // Bellman-Ford on comp nodes only.
        let index_of = |n: NodeId| comp.binary_search(&n).expect("internal node");
        let mut t = vec![0i64; comp.len()];
        for pass in 0..=comp.len() {
            let mut changed = false;
            for &u in comp {
                for e in ddg.out_edges(u) {
                    if !inside(e.dst) {
                        continue;
                    }
                    let w = i64::from(lat(e)) - i64::from(ii) * i64::from(e.distance);
                    let cand = t[index_of(u)] + w;
                    if cand > t[index_of(e.dst)] {
                        t[index_of(e.dst)] = cand;
                        changed = true;
                    }
                }
            }
            if !changed {
                return true;
            }
            if pass == comp.len() {
                return false;
            }
        }
        true
    };
    let mut ub = 1u32;
    for &u in comp {
        for e in ddg.out_edges(u) {
            if inside(e.dst) {
                ub += lat(e);
            }
        }
    }
    if feasible(1) {
        return 1;
    }
    let (mut lo, mut hi) = (1u32, ub);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if feasible(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// For each node, the set of nodes that can reach it (`backward == true`)
/// or that it can reach (`backward == false`), excluding itself unless on a
/// cycle.
fn reachability(ddg: &Ddg, backward: bool) -> Vec<BTreeSet<NodeId>> {
    let n = ddg.node_count();
    let mut sets = vec![BTreeSet::new(); n];
    for start in ddg.node_ids() {
        let mut stack = vec![start];
        let mut seen = vec![false; n];
        while let Some(v) = stack.pop() {
            let edges: Box<dyn Iterator<Item = &Edge>> = if backward {
                Box::new(ddg.in_edges(v))
            } else {
                Box::new(ddg.out_edges(v))
            };
            for e in edges {
                let w = if backward { e.src } else { e.dst };
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    stack.push(w);
                }
            }
        }
        for (i, &was_seen) in seen.iter().enumerate() {
            if was_seen {
                sets[start.index()].insert(NodeId::new(i as u32));
            }
        }
    }
    sets
}

/// Sanity helper used by tests: fraction of non-seed nodes that are
/// adjacent to an earlier node in the order (1.0 for connected graphs).
#[must_use]
pub fn neighbor_adjacency_ratio(ddg: &Ddg, order: &[NodeId]) -> f64 {
    if order.len() <= 1 {
        return 1.0;
    }
    let mut placed = vec![false; ddg.node_count()];
    placed[order[0].index()] = true;
    let mut adjacent = 0usize;
    let mut seeds = 1usize; // first node is always a seed
    for &v in &order[1..] {
        let has_neighbor = ddg
            .in_edges(v)
            .map(|e| e.src)
            .chain(ddg.out_edges(v).map(|e| e.dst))
            .any(|w| placed[w.index()]);
        if has_neighbor {
            adjacent += 1;
        } else {
            seeds += 1;
        }
        placed[v.index()] = true;
    }
    let _ = seeds;
    adjacent as f64 / (order.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvliw_ddg::OpKind;

    fn machine() -> MachineConfig {
        MachineConfig::from_spec("4c1b2l64r").unwrap()
    }

    #[test]
    fn order_is_a_permutation() {
        let mut b = Ddg::builder();
        let nodes: Vec<_> = (0..8).map(|_| b.add_node(OpKind::FpAdd)).collect();
        for w in nodes.windows(2) {
            b.data(w[0], w[1]);
        }
        b.data_dist(nodes[7], nodes[0], 1);
        let ddg = b.build().unwrap();
        let mut order = sms_order(&ddg, &machine());
        assert_eq!(order.len(), 8);
        order.sort_unstable();
        order.dedup();
        assert_eq!(order.len(), 8);
    }

    #[test]
    fn connected_graph_orders_adjacently() {
        // Diamond with a tail: every non-first node should touch the
        // ordered prefix.
        let mut b = Ddg::builder();
        let a = b.add_node(OpKind::Load);
        let l = b.add_node(OpKind::FpMul);
        let r = b.add_node(OpKind::FpAdd);
        let j = b.add_node(OpKind::FpAdd);
        let s = b.add_node(OpKind::Store);
        b.data(a, l).data(a, r).data(l, j).data(r, j).data(j, s);
        let ddg = b.build().unwrap();
        let order = sms_order(&ddg, &machine());
        assert_eq!(neighbor_adjacency_ratio(&ddg, &order), 1.0);
    }

    #[test]
    fn recurrence_nodes_come_first() {
        // A long-latency recurrence and an independent cheap chain: the
        // recurrence (higher RecMII) must be ordered before the chain.
        let mut b = Ddg::builder();
        let chain0 = b.add_node(OpKind::IntAdd);
        let chain1 = b.add_node(OpKind::IntAdd);
        b.data(chain0, chain1);
        let rec0 = b.add_node(OpKind::FpDiv);
        let rec1 = b.add_node(OpKind::FpAdd);
        b.data(rec0, rec1).data_dist(rec1, rec0, 1);
        let ddg = b.build().unwrap();
        let order = sms_order(&ddg, &machine());
        let pos = |n: NodeId| order.iter().position(|&o| o == n).unwrap();
        assert!(pos(rec0) < pos(chain0));
        assert!(pos(rec1) < pos(chain0));
    }

    #[test]
    fn higher_recmii_scc_ordered_earlier() {
        let mut b = Ddg::builder();
        // slow recurrence: fdiv self-loop (RecMII 18)
        let slow = b.add_node(OpKind::FpDiv);
        b.data_dist(slow, slow, 1);
        // fast recurrence: int add self-loop (RecMII 1)
        let fast = b.add_node(OpKind::IntAdd);
        b.data_dist(fast, fast, 1);
        let ddg = b.build().unwrap();
        let order = sms_order(&ddg, &machine());
        assert_eq!(order[0], slow);
        assert_eq!(order[1], fast);
    }

    #[test]
    fn path_nodes_join_recurrence_groups() {
        // rec1 → bridge → rec2: the bridge should be ordered with the
        // second recurrence group, before any leftover node.
        let mut b = Ddg::builder();
        let r1 = b.add_node(OpKind::FpDiv);
        b.data_dist(r1, r1, 1);
        let bridge = b.add_node(OpKind::FpAdd);
        let r2a = b.add_node(OpKind::FpMul);
        let r2b = b.add_node(OpKind::FpAdd);
        b.data(r1, bridge)
            .data(bridge, r2a)
            .data(r2a, r2b)
            .data_dist(r2b, r2a, 1);
        let leftover = b.add_node(OpKind::Load);
        let _ = leftover;
        let ddg = b.build().unwrap();
        let order = sms_order(&ddg, &machine());
        let pos = |n: NodeId| order.iter().position(|&o| o == n).unwrap();
        assert!(pos(bridge) < pos(leftover));
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn deterministic_across_calls() {
        let mut b = Ddg::builder();
        let nodes: Vec<_> = (0..12)
            .map(|i| {
                b.add_node(if i % 3 == 0 {
                    OpKind::Load
                } else {
                    OpKind::FpAdd
                })
            })
            .collect();
        for i in 1..nodes.len() {
            b.data(nodes[i / 2], nodes[i]);
        }
        let ddg = b.build().unwrap();
        let o1 = sms_order(&ddg, &machine());
        let o2 = sms_order(&ddg, &machine());
        assert_eq!(o1, o2);
    }

    #[test]
    fn disconnected_components_are_all_ordered() {
        let mut b = Ddg::builder();
        for _ in 0..5 {
            b.add_node(OpKind::Load);
        }
        let ddg = b.build().unwrap();
        let order = sms_order(&ddg, &machine());
        assert_eq!(order.len(), 5);
    }
}
