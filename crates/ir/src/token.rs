//! Tokenizer for the loop-IR text format.
//!
//! The lexer is newline-sensitive: statements are terminated by line ends,
//! so [`Token::Newline`] is a real token (consecutive newlines collapse into
//! one). Comments run from `//` or `#` to the end of the line.

use std::fmt;

use crate::error::{ParseError, ParseErrorKind, Pos};

/// One lexical token together with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Position of the token's first character.
    pub pos: Pos,
}

/// Lexical tokens of the loop-IR grammar.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// An identifier or keyword (`loop`, `mem`, labels, mnemonics).
    Ident(String),
    /// An unsigned decimal integer (iteration distances).
    Number(u64),
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `@`
    At,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `->`
    Arrow,
    /// One or more line ends.
    Newline,
    /// End of input.
    Eof,
}

impl Token {
    /// A short human-readable rendering for error messages.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("`{s}`"),
            Token::Number(n) => format!("number `{n}`"),
            Token::Colon => "`:`".to_string(),
            Token::Comma => "`,`".to_string(),
            Token::At => "`@`".to_string(),
            Token::LBrace => "`{`".to_string(),
            Token::RBrace => "`}`".to_string(),
            Token::Arrow => "`->`".to_string(),
            Token::Newline => "end of line".to_string(),
            Token::Eof => "end of input".to_string(),
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// Splits `source` into tokens.
///
/// # Errors
///
/// Returns [`ParseError`] with [`ParseErrorKind::UnexpectedChar`] on any
/// character outside the grammar, or [`ParseErrorKind::DistanceOverflow`] on
/// an integer larger than `u32::MAX` (distances are 32-bit).
pub fn lex(source: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let mut chars = source.chars().peekable();

    let push = |token: Token, pos: Pos, out: &mut Vec<Spanned>| {
        // Collapse consecutive newlines.
        if token == Token::Newline
            && matches!(
                out.last(),
                None | Some(Spanned {
                    token: Token::Newline,
                    ..
                })
            )
        {
            return;
        }
        out.push(Spanned { token, pos });
    };

    while let Some(&c) = chars.peek() {
        let pos = Pos { line, col };
        match c {
            '\n' => {
                chars.next();
                push(Token::Newline, pos, &mut out);
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                chars.next();
                col += 1;
            }
            '#' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    chars.next();
                    col += 1;
                }
            }
            '/' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'/') {
                    while let Some(&c) = chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        chars.next();
                        col += 1;
                    }
                } else {
                    return Err(ParseError::new(
                        pos,
                        ParseErrorKind::UnexpectedChar { found: '/' },
                    ));
                }
            }
            ':' => {
                chars.next();
                col += 1;
                push(Token::Colon, pos, &mut out);
            }
            ',' => {
                chars.next();
                col += 1;
                push(Token::Comma, pos, &mut out);
            }
            '@' => {
                chars.next();
                col += 1;
                push(Token::At, pos, &mut out);
            }
            '{' => {
                chars.next();
                col += 1;
                push(Token::LBrace, pos, &mut out);
            }
            '}' => {
                chars.next();
                col += 1;
                push(Token::RBrace, pos, &mut out);
            }
            '-' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'>') {
                    chars.next();
                    col += 1;
                    push(Token::Arrow, pos, &mut out);
                } else {
                    return Err(ParseError::new(
                        pos,
                        ParseErrorKind::UnexpectedChar { found: '-' },
                    ));
                }
            }
            c if c.is_ascii_digit() => {
                let mut value: u64 = 0;
                while let Some(&d) = chars.peek() {
                    let Some(digit) = d.to_digit(10) else { break };
                    chars.next();
                    col += 1;
                    value = value.saturating_mul(10).saturating_add(u64::from(digit));
                    if value > u64::from(u32::MAX) {
                        return Err(ParseError::new(pos, ParseErrorKind::DistanceOverflow));
                    }
                }
                push(Token::Number(value), pos, &mut out);
            }
            c if is_ident_start(c) => {
                let mut ident = String::new();
                while let Some(&d) = chars.peek() {
                    if !is_ident_continue(d) {
                        break;
                    }
                    ident.push(d);
                    chars.next();
                    col += 1;
                }
                push(Token::Ident(ident), pos, &mut out);
            }
            other => {
                return Err(ParseError::new(
                    pos,
                    ParseErrorKind::UnexpectedChar { found: other },
                ));
            }
        }
    }
    out.push(Spanned {
        token: Token::Eof,
        pos: Pos { line, col },
    });
    Ok(out)
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == '.' || c == '$'
}

fn is_ident_continue(c: char) -> bool {
    is_ident_start(c) || c.is_ascii_digit()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_a_node_statement() {
        assert_eq!(
            kinds("acc: fadd m, acc@1"),
            vec![
                Token::Ident("acc".into()),
                Token::Colon,
                Token::Ident("fadd".into()),
                Token::Ident("m".into()),
                Token::Comma,
                Token::Ident("acc".into()),
                Token::At,
                Token::Number(1),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lexes_arrow_and_braces() {
        assert_eq!(
            kinds("loop l { mem a -> b @2 }"),
            vec![
                Token::Ident("loop".into()),
                Token::Ident("l".into()),
                Token::LBrace,
                Token::Ident("mem".into()),
                Token::Ident("a".into()),
                Token::Arrow,
                Token::Ident("b".into()),
                Token::At,
                Token::Number(2),
                Token::RBrace,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn newlines_collapse_and_leading_newlines_vanish() {
        assert_eq!(
            kinds("\n\n a \n\n\n b \n"),
            vec![
                Token::Ident("a".into()),
                Token::Newline,
                Token::Ident("b".into()),
                Token::Newline,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn comments_run_to_end_of_line() {
        assert_eq!(
            kinds("a // hi : , @\nb # also { }"),
            vec![
                Token::Ident("a".into()),
                Token::Newline,
                Token::Ident("b".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let toks = lex("ab\n  cd").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 1, col: 3 }); // newline
        assert_eq!(toks[2].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn bare_minus_is_rejected() {
        let err = lex("a - b").unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::UnexpectedChar { found: '-' }
        ));
        assert_eq!(err.pos, Pos { line: 1, col: 3 });
    }

    #[test]
    fn bare_slash_is_rejected() {
        assert!(lex("a / b").is_err());
    }

    #[test]
    fn unknown_character_is_rejected_with_position() {
        let err = lex("x: load [a]").unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::UnexpectedChar { found: '[' }
        ));
    }

    #[test]
    fn distance_overflow_is_rejected() {
        assert!(matches!(
            lex("4294967296").unwrap_err().kind,
            ParseErrorKind::DistanceOverflow
        ));
        assert_eq!(
            kinds("4294967295"),
            vec![Token::Number(4_294_967_295), Token::Eof]
        );
    }

    #[test]
    fn identifiers_allow_dots_underscores_digits() {
        assert_eq!(
            kinds("_x.1 $t0"),
            vec![
                Token::Ident("_x.1".into()),
                Token::Ident("$t0".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn token_descriptions_are_informative() {
        assert_eq!(Token::Arrow.describe(), "`->`");
        assert_eq!(Token::Ident("x".into()).describe(), "`x`");
        assert_eq!(Token::Number(3).to_string(), "number `3`");
    }
}
