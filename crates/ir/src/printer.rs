//! Pretty-printer: turn a [`Ddg`] back into parseable loop-IR text.

use std::collections::HashSet;
use std::fmt::Write as _;

use cvliw_ddg::{Ddg, DepKind, NodeId};

/// Renders `ddg` as a `loop name { ... }` definition that
/// [`crate::parse_loop`] accepts and that reconstructs the same graph
/// structure (same operation kinds and the same dependence multiset).
///
/// Nodes print in id order. Each node keeps its own label when it is a
/// usable identifier; nodes without labels (or with clashing ones) get
/// positional names. Distances of zero are omitted.
///
/// # Example
///
/// ```
/// use cvliw_ddg::{Ddg, OpKind};
///
/// let mut b = Ddg::builder();
/// let x = b.add_labeled(OpKind::Load, "x");
/// let y = b.add_labeled(OpKind::FpMul, "y");
/// b.data(x, y);
/// let ddg = b.build()?;
///
/// let text = cvliw_ir::print_loop("scale", &ddg);
/// let back = cvliw_ir::parse_loop(&text)?;
/// assert!(cvliw_ir::same_structure(&ddg, &back.ddg));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn print_loop(name: &str, ddg: &Ddg) -> String {
    let labels = label_map(ddg);
    let width = labels.iter().map(|l| l.len()).max().unwrap_or(0);

    let mut out = String::new();
    let _ = writeln!(out, "loop {} {{", sanitize_name(name));
    for n in ddg.node_ids() {
        let label = &labels[n.index()];
        let _ = write!(
            out,
            "    {label}:{:pad$} {}",
            "",
            ddg.kind(n),
            pad = width - label.len()
        );
        let mut first = true;
        for e in ddg.in_edges(n).filter(|e| e.kind == DepKind::Data) {
            let sep = if first { " " } else { ", " };
            first = false;
            let _ = write!(out, "{sep}{}", operand(&labels, e.src, e.distance));
        }
        out.push('\n');
    }
    for e in ddg.edges().filter(|e| e.kind == DepKind::Mem) {
        let _ = write!(
            out,
            "    mem {} -> {}",
            labels[e.src.index()],
            labels[e.dst.index()]
        );
        if e.distance > 0 {
            let _ = write!(out, " @{}", e.distance);
        }
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

fn operand(labels: &[String], src: NodeId, distance: u32) -> String {
    if distance == 0 {
        labels[src.index()].clone()
    } else {
        format!("{}@{distance}", labels[src.index()])
    }
}

/// Picks one printable, unique label per node.
fn label_map(ddg: &Ddg) -> Vec<String> {
    let mut used: HashSet<String> = HashSet::new();
    let mut labels = vec![String::new(); ddg.node_count()];
    // First pass: keep the node's own label when usable and not yet taken.
    for n in ddg.node_ids() {
        if let Some(l) = ddg.node(n).label() {
            if is_usable_label(l) && !used.contains(l) {
                labels[n.index()] = l.to_string();
                used.insert(l.to_string());
            }
        }
    }
    // Second pass: positional names for the rest.
    for n in ddg.node_ids() {
        if labels[n.index()].is_empty() {
            let mut candidate = format!("n{}", n.index());
            while used.contains(&candidate) {
                candidate.push('_');
            }
            used.insert(candidate.clone());
            labels[n.index()] = candidate;
        }
    }
    labels
}

/// Whether a label can stand at the start of a statement unambiguously.
fn is_usable_label(s: &str) -> bool {
    if s == "mem" || s == "loop" || s.is_empty() {
        return false;
    }
    let mut chars = s.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    let start_ok = first.is_ascii_alphabetic() || first == '_' || first == '.' || first == '$';
    start_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$')
}

/// Makes an arbitrary string usable as a loop name.
fn sanitize_name(name: &str) -> String {
    if is_usable_label(name) {
        return name.to_string();
    }
    let mut cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() || cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        cleaned = format!("l_{cleaned}");
    }
    while !is_usable_label(&cleaned) {
        cleaned.push('_'); // reserved words (`mem`, `loop`)
    }
    cleaned
}

/// Whether two graphs have the same structure: equal node count, the same
/// [`cvliw_ddg::OpKind`] at every node index, and the same multiset of
/// `(src, dst, kind, distance)` dependences.
///
/// Labels are ignored — this is the equivalence [`print_loop`] preserves.
#[must_use]
pub fn same_structure(a: &Ddg, b: &Ddg) -> bool {
    if a.node_count() != b.node_count() || a.edge_count() != b.edge_count() {
        return false;
    }
    if a.node_ids()
        .zip(b.node_ids())
        .any(|(x, y)| a.kind(x) != b.kind(y))
    {
        return false;
    }
    let key = |ddg: &Ddg| {
        let mut edges: Vec<(u32, u32, bool, u32)> = ddg
            .edges()
            .map(|e| {
                (
                    e.src.index() as u32,
                    e.dst.index() as u32,
                    e.kind == DepKind::Data,
                    e.distance,
                )
            })
            .collect();
        edges.sort_unstable();
        edges
    };
    key(a) == key(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_loop;
    use cvliw_ddg::OpKind;

    fn labeled_loop() -> Ddg {
        let mut b = Ddg::builder();
        let i = b.add_labeled(OpKind::IntAdd, "i");
        b.data_dist(i, i, 1);
        let x = b.add_labeled(OpKind::Load, "x");
        let y = b.add_labeled(OpKind::FpMul, "y");
        let s = b.add_labeled(OpKind::Store, "s");
        b.data(i, x).data(x, y).data(x, y).data(y, s).data(i, s);
        b.edge(s, x, DepKind::Mem, 2);
        b.build().unwrap()
    }

    #[test]
    fn prints_and_reparses_a_labeled_loop() {
        let ddg = labeled_loop();
        let text = print_loop("kernel", &ddg);
        let back = parse_loop(&text).unwrap();
        assert_eq!(back.name, "kernel");
        assert!(
            same_structure(&ddg, &back.ddg),
            "round-trip changed the graph:\n{text}"
        );
    }

    #[test]
    fn printed_text_mentions_everything() {
        let text = print_loop("kernel", &labeled_loop());
        assert!(text.contains("i@1"), "{text}");
        assert!(text.contains("mem s -> x @2"), "{text}");
        assert!(
            text.contains("x, x"),
            "duplicate operands must survive: {text}"
        );
    }

    #[test]
    fn unlabeled_nodes_get_positional_names() {
        let mut b = Ddg::builder();
        let a = b.add_node(OpKind::Load);
        let c = b.add_node(OpKind::FpAdd);
        b.data(a, c);
        let ddg = b.build().unwrap();
        let text = print_loop("anon", &ddg);
        assert!(text.contains("n0: load"), "{text}");
        assert!(text.contains("n1: fadd n0"), "{text}");
        assert!(same_structure(&ddg, &parse_loop(&text).unwrap().ddg));
    }

    #[test]
    fn reserved_and_clashing_labels_are_replaced() {
        let mut b = Ddg::builder();
        let m = b.add_labeled(OpKind::Load, "mem"); // reserved word
        let l = b.add_labeled(OpKind::Load, "dup");
        let d = b.add_labeled(OpKind::FpAdd, "dup"); // clash
        b.data(m, d).data(l, d);
        let ddg = b.build().unwrap();
        let text = print_loop("tricky", &ddg);
        let back = parse_loop(&text).unwrap();
        assert!(same_structure(&ddg, &back.ddg), "{text}");
    }

    #[test]
    fn positional_name_collision_with_user_label_is_avoided() {
        let mut b = Ddg::builder();
        // The *second* node (index 1) is unlabeled and would become `n1`,
        // but a user label already owns that name.
        let n1 = b.add_labeled(OpKind::Load, "n1");
        let anon = b.add_node(OpKind::FpAdd);
        b.data(n1, anon);
        let ddg = b.build().unwrap();
        let text = print_loop("clash", &ddg);
        assert!(
            same_structure(&ddg, &parse_loop(&text).unwrap().ddg),
            "{text}"
        );
    }

    #[test]
    fn loop_names_are_sanitized() {
        assert_eq!(sanitize_name("ok_name"), "ok_name");
        assert_eq!(sanitize_name("has space"), "has_space");
        assert_eq!(sanitize_name("7up"), "l_7up");
        assert_eq!(sanitize_name(""), "l_");
        assert_eq!(sanitize_name("mem"), "mem_"); // reserved word gets a suffix
        assert_eq!(sanitize_name("loop"), "loop_");
    }

    #[test]
    fn same_structure_distinguishes_graphs() {
        let ddg = labeled_loop();
        let mut b = Ddg::builder();
        let a = b.add_node(OpKind::Load);
        let c = b.add_node(OpKind::FpAdd);
        b.data(a, c);
        let other = b.build().unwrap();
        assert!(!same_structure(&ddg, &other));
        assert!(same_structure(&ddg, &ddg.clone()));
    }
}
