//! Recursive-descent parser for the loop-IR text format.
//!
//! The grammar (newline-terminated statements, `//` and `#` comments):
//!
//! ```text
//! module    := { loopdef }
//! loopdef   := "loop" IDENT "{" { stmt } "}"
//! stmt      := node_stmt | mem_stmt
//! node_stmt := LABEL ":" MNEMONIC [ operand { "," operand } ]
//! operand   := LABEL [ "@" DISTANCE ]
//! mem_stmt  := "mem" LABEL "->" LABEL [ "@" DISTANCE ]
//! ```
//!
//! Operands may reference labels defined later in the loop (necessary for
//! recurrences such as `acc: fadd m, acc@1`), so resolution happens in a
//! second pass over the collected statements.

use std::collections::HashMap;

use cvliw_ddg::{Ddg, DepKind, NodeId, OpKind};

use crate::error::{ParseError, ParseErrorKind, Pos};
use crate::token::{lex, Spanned, Token};

/// A named loop parsed from text.
#[derive(Clone, Debug)]
pub struct NamedLoop {
    /// The loop's name (the identifier after the `loop` keyword).
    pub name: String,
    /// The validated graph. Every node carries its source label.
    pub ddg: Ddg,
}

/// An ordered collection of named loops parsed from one source text.
#[derive(Clone, Debug)]
pub struct LoopModule {
    loops: Vec<NamedLoop>,
}

impl LoopModule {
    /// The loops in definition order.
    #[must_use]
    pub fn loops(&self) -> &[NamedLoop] {
        &self.loops
    }

    /// Looks a loop up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&NamedLoop> {
        self.loops.iter().find(|l| l.name == name)
    }

    /// Number of loops in the module.
    #[must_use]
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Whether the module holds no loops (never true for parsed modules).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }
}

impl IntoIterator for LoopModule {
    type Item = NamedLoop;
    type IntoIter = std::vec::IntoIter<NamedLoop>;

    fn into_iter(self) -> Self::IntoIter {
        self.loops.into_iter()
    }
}

/// Parses a whole module (one or more `loop name { ... }` definitions).
///
/// # Errors
///
/// Returns a [`ParseError`] carrying the source position of the first
/// problem: lexical errors, grammar violations, unknown mnemonics,
/// duplicate or undefined labels, duplicate loop names, or graph-invariant
/// violations (store used as a register operand, same-iteration cycles).
///
/// # Example
///
/// ```
/// let module = cvliw_ir::parse_module(
///     "loop scale {
///          i:  iadd i@1
///          x:  load i
///          y:  fmul x, x
///          s:  store y, i
///      }",
/// )?;
/// assert_eq!(module.loops()[0].name, "scale");
/// assert_eq!(module.loops()[0].ddg.node_count(), 4);
/// # Ok::<(), cvliw_ir::ParseError>(())
/// ```
pub fn parse_module(source: &str) -> Result<LoopModule, ParseError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, at: 0 };
    let mut loops = Vec::new();
    loop {
        p.skip_newlines();
        if p.peek() == &Token::Eof {
            break;
        }
        let l = p.parse_loop()?;
        if loops
            .iter()
            .any(|existing: &NamedLoop| existing.name == l.name)
        {
            return Err(ParseError::new(
                p.prev_pos(),
                ParseErrorKind::DuplicateLoopName { name: l.name },
            ));
        }
        loops.push(l);
    }
    if loops.is_empty() {
        return Err(ParseError::new(
            Pos { line: 1, col: 1 },
            ParseErrorKind::EmptyModule,
        ));
    }
    Ok(LoopModule { loops })
}

/// Parses a source that must contain exactly one loop and returns it.
///
/// # Errors
///
/// Everything [`parse_module`] rejects, plus sources with more than one
/// loop (reported as an unexpected `loop` token).
pub fn parse_loop(source: &str) -> Result<NamedLoop, ParseError> {
    let module = parse_module(source)?;
    if module.len() > 1 {
        return Err(ParseError::new(
            Pos { line: 1, col: 1 },
            ParseErrorKind::UnexpectedToken {
                expected: "exactly one loop",
                found: format!("{} loops", module.len()),
            },
        ));
    }
    let mut loops = module.loops;
    Ok(loops.remove(0))
}

/// One operand reference, pre-resolution.
struct OperandRef {
    label: String,
    distance: u32,
    pos: Pos,
}

/// One `label: mnemonic operands` statement, pre-resolution.
struct NodeStmt {
    label: String,
    kind: OpKind,
    operands: Vec<OperandRef>,
    pos: Pos,
}

/// One `mem a -> b [@d]` statement, pre-resolution.
struct MemStmt {
    src: OperandRef,
    dst: OperandRef,
    distance: u32,
}

struct Parser {
    tokens: Vec<Spanned>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.at].token
    }

    fn pos(&self) -> Pos {
        self.tokens[self.at].pos
    }

    fn prev_pos(&self) -> Pos {
        self.tokens[self.at.saturating_sub(1)].pos
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.at].token.clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn skip_newlines(&mut self) {
        while self.peek() == &Token::Newline {
            self.bump();
        }
    }

    fn error(&self, expected: &'static str) -> ParseError {
        ParseError::new(
            self.pos(),
            ParseErrorKind::UnexpectedToken {
                expected,
                found: self.peek().describe(),
            },
        )
    }

    fn expect_ident(&mut self, expected: &'static str) -> Result<(String, Pos), ParseError> {
        let pos = self.pos();
        match self.bump() {
            Token::Ident(s) => Ok((s, pos)),
            other => Err(ParseError::new(
                pos,
                ParseErrorKind::UnexpectedToken {
                    expected,
                    found: other.describe(),
                },
            )),
        }
    }

    fn expect(&mut self, want: &Token, expected: &'static str) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.error(expected))
        }
    }

    /// Parses `@ NUMBER` if present; defaults to distance 0.
    fn parse_distance(&mut self) -> Result<u32, ParseError> {
        if self.peek() != &Token::At {
            return Ok(0);
        }
        self.bump();
        let pos = self.pos();
        match self.bump() {
            // The lexer guarantees the number fits in u32.
            Token::Number(n) => Ok(n as u32),
            other => Err(ParseError::new(
                pos,
                ParseErrorKind::UnexpectedToken {
                    expected: "an iteration distance",
                    found: other.describe(),
                },
            )),
        }
    }

    fn parse_operand(&mut self) -> Result<OperandRef, ParseError> {
        let (label, pos) = self.expect_ident("an operand label")?;
        let distance = self.parse_distance()?;
        Ok(OperandRef {
            label,
            distance,
            pos,
        })
    }

    fn parse_loop(&mut self) -> Result<NamedLoop, ParseError> {
        let (kw, pos) = self.expect_ident("the `loop` keyword")?;
        if kw != "loop" {
            return Err(ParseError::new(
                pos,
                ParseErrorKind::UnexpectedToken {
                    expected: "the `loop` keyword",
                    found: format!("`{kw}`"),
                },
            ));
        }
        let (name, _) = self.expect_ident("a loop name")?;
        self.skip_newlines();
        self.expect(&Token::LBrace, "`{`")?;

        let mut nodes: Vec<NodeStmt> = Vec::new();
        let mut mems: Vec<MemStmt> = Vec::new();
        loop {
            self.skip_newlines();
            match self.peek() {
                Token::RBrace => {
                    self.bump();
                    break;
                }
                Token::Eof => return Err(self.error("`}` or a statement")),
                Token::Ident(id) if id == "mem" => {
                    self.bump();
                    let (src_label, src_pos) = self.expect_ident("a source label")?;
                    self.expect(&Token::Arrow, "`->`")?;
                    let (dst_label, dst_pos) = self.expect_ident("a destination label")?;
                    let distance = self.parse_distance()?;
                    mems.push(MemStmt {
                        src: OperandRef {
                            label: src_label,
                            distance: 0,
                            pos: src_pos,
                        },
                        dst: OperandRef {
                            label: dst_label,
                            distance: 0,
                            pos: dst_pos,
                        },
                        distance,
                    });
                }
                Token::Ident(_) => nodes.push(self.parse_node_stmt()?),
                _ => return Err(self.error("a statement label or `}`")),
            }
            // A statement ends at a newline or just before the brace.
            match self.peek() {
                Token::Newline => {
                    self.bump();
                }
                Token::RBrace | Token::Eof => {}
                _ => return Err(self.error("end of statement")),
            }
        }

        build_loop(name, nodes, mems)
    }

    fn parse_node_stmt(&mut self) -> Result<NodeStmt, ParseError> {
        let (label, pos) = self.expect_ident("a statement label")?;
        self.expect(&Token::Colon, "`:`")?;
        let (mnemonic, mpos) = self.expect_ident("an operation mnemonic")?;
        let Some(kind) = OpKind::from_mnemonic(&mnemonic) else {
            return Err(ParseError::new(
                mpos,
                ParseErrorKind::UnknownMnemonic { mnemonic },
            ));
        };
        let mut operands = Vec::new();
        if matches!(self.peek(), Token::Ident(_)) {
            operands.push(self.parse_operand()?);
            while self.peek() == &Token::Comma {
                self.bump();
                operands.push(self.parse_operand()?);
            }
        }
        Ok(NodeStmt {
            label,
            kind,
            operands,
            pos,
        })
    }
}

/// Second pass: resolve labels and assemble the [`Ddg`].
fn build_loop(
    name: String,
    nodes: Vec<NodeStmt>,
    mems: Vec<MemStmt>,
) -> Result<NamedLoop, ParseError> {
    let mut builder = Ddg::builder();
    let mut by_label: HashMap<&str, NodeId> = HashMap::with_capacity(nodes.len());
    for stmt in &nodes {
        if by_label.contains_key(stmt.label.as_str()) {
            return Err(ParseError::new(
                stmt.pos,
                ParseErrorKind::DuplicateLabel {
                    label: stmt.label.clone(),
                },
            ));
        }
        let id = builder.add_labeled(stmt.kind, stmt.label.clone());
        by_label.insert(stmt.label.as_str(), id);
    }

    let resolve = |operand: &OperandRef| -> Result<NodeId, ParseError> {
        by_label
            .get(operand.label.as_str())
            .copied()
            .ok_or_else(|| {
                ParseError::new(
                    operand.pos,
                    ParseErrorKind::UndefinedLabel {
                        label: operand.label.clone(),
                    },
                )
            })
    };

    let mut first_pos = Pos { line: 1, col: 1 };
    for stmt in &nodes {
        first_pos = first_pos.min(stmt.pos);
        let dst = by_label[stmt.label.as_str()];
        for operand in &stmt.operands {
            let src = resolve(operand)?;
            builder.edge(src, dst, DepKind::Data, operand.distance);
        }
    }
    for mem in &mems {
        let src = resolve(&mem.src)?;
        let dst = resolve(&mem.dst)?;
        builder.edge(src, dst, DepKind::Mem, mem.distance);
    }

    let ddg = builder
        .build()
        .map_err(|source| ParseError::new(first_pos, ParseErrorKind::Graph { source }))?;
    Ok(NamedLoop { name, ddg })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvliw_ddg::OpClass;

    const FIR: &str = "
        // one tap of a FIR filter
        loop fir {
            i:   iadd  i@1
            a:   iadd  i
            x:   load  a
            c:   load  a
            m:   fmul  x, c
            acc: fadd  m, acc@1
            s:   store acc, a
        }";

    #[test]
    fn parses_the_fir_loop() {
        let l = parse_loop(FIR).unwrap();
        assert_eq!(l.name, "fir");
        assert_eq!(l.ddg.node_count(), 7);
        assert_eq!(l.ddg.edge_count(), 10);
        assert_eq!(l.ddg.count_by_class(), [2, 2, 3]);
        let acc = l.ddg.find_by_label("acc").unwrap();
        assert!(l.ddg.in_edges(acc).any(|e| e.src == acc && e.distance == 1));
    }

    #[test]
    fn forward_references_resolve() {
        // `x` consumes `y` defined two lines later.
        let l = parse_loop("loop f { x: fadd y@1\n y: fmul z\n z: load }").unwrap();
        assert_eq!(l.ddg.node_count(), 3);
        let x = l.ddg.find_by_label("x").unwrap();
        let y = l.ddg.find_by_label("y").unwrap();
        assert_eq!(l.ddg.data_preds(x), vec![y]);
    }

    #[test]
    fn mem_edges_parse_with_and_without_distance() {
        let l = parse_loop("loop f { v: load\n s: store v\n mem s -> v @1\n mem v -> s }").unwrap();
        let s = l.ddg.find_by_label("s").unwrap();
        let v = l.ddg.find_by_label("v").unwrap();
        // `mem s -> v @1`: distance binds to the edge, not the endpoint.
        assert!(l
            .ddg
            .out_edges(s)
            .any(|e| e.kind == DepKind::Mem && e.dst == v && e.distance == 1));
        // `mem v -> s`: distance defaults to 0.
        assert!(l
            .ddg
            .out_edges(v)
            .any(|e| e.kind == DepKind::Mem && e.dst == s && e.distance == 0));
    }

    #[test]
    fn mem_endpoints_reject_at_distances() {
        // The distance belongs to the edge; `a@1 -> b` is ill-formed.
        let err = parse_loop("loop f { a: load\n b: load\n mem a@1 -> b }").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnexpectedToken { .. }));
    }

    #[test]
    fn module_with_two_loops() {
        let m = parse_module("loop a { x: load }\nloop b { y: fadd }").unwrap();
        assert_eq!(m.len(), 2);
        assert!(m.get("a").is_some());
        assert!(m.get("b").is_some());
        assert!(m.get("c").is_none());
        assert!(!m.is_empty());
        let names: Vec<String> = m.into_iter().map(|l| l.name).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn duplicate_loop_names_are_rejected() {
        let err = parse_module("loop a { x: load }\nloop a { y: load }").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::DuplicateLoopName { .. }));
    }

    #[test]
    fn duplicate_labels_are_rejected_with_position() {
        let err = parse_loop("loop f { x: load\n x: fadd }").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::DuplicateLabel { ref label } if label == "x"));
        assert_eq!(err.pos.line, 2);
    }

    #[test]
    fn undefined_operand_is_rejected() {
        let err = parse_loop("loop f { x: fadd ghost }").unwrap_err();
        assert!(
            matches!(err.kind, ParseErrorKind::UndefinedLabel { ref label } if label == "ghost")
        );
    }

    #[test]
    fn unknown_mnemonic_is_rejected() {
        let err = parse_loop("loop f { x: vfma a }").unwrap_err();
        assert!(
            matches!(err.kind, ParseErrorKind::UnknownMnemonic { ref mnemonic } if mnemonic == "vfma")
        );
    }

    #[test]
    fn store_operand_is_a_graph_error() {
        let err = parse_loop("loop f { s: store\n x: fadd s }").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Graph { .. }));
        assert!(err.to_string().contains("invalid graph"));
    }

    #[test]
    fn zero_distance_cycle_is_a_graph_error() {
        let err = parse_loop("loop f { a: fadd b\n b: fadd a }").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Graph { .. }));
    }

    #[test]
    fn missing_brace_is_reported() {
        let err = parse_loop("loop f { x: load").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnexpectedToken { .. }));
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn missing_colon_is_reported() {
        let err = parse_loop("loop f { x load }").unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::UnexpectedToken {
                expected: "`:`",
                ..
            }
        ));
    }

    #[test]
    fn statements_must_be_newline_separated() {
        let err = parse_loop("loop f { x: load y: fadd }").unwrap_err();
        // `y` parses as an operand of the load; the stray `:` then fails.
        assert!(matches!(err.kind, ParseErrorKind::UnexpectedToken { .. }));
    }

    #[test]
    fn empty_module_is_rejected() {
        assert!(matches!(
            parse_module("  \n// nothing\n").unwrap_err().kind,
            ParseErrorKind::EmptyModule
        ));
    }

    #[test]
    fn parse_loop_rejects_multi_loop_sources() {
        assert!(parse_loop("loop a { x: load }\nloop b { y: load }").is_err());
    }

    #[test]
    fn nullary_nodes_need_no_operands() {
        let l = parse_loop("loop f { x: load\n y: load }").unwrap();
        assert_eq!(l.ddg.edge_count(), 0);
        assert_eq!(l.ddg.count_of_class(OpClass::Mem), 2);
    }

    #[test]
    fn duplicate_operands_make_two_edges() {
        let l = parse_loop("loop f { x: load\n sq: fmul x, x }").unwrap();
        let sq = l.ddg.find_by_label("sq").unwrap();
        assert_eq!(l.ddg.in_edges(sq).count(), 2);
    }
}
