//! A textual format for `cvliw` loop data-dependence graphs.
//!
//! The paper's evaluation pipeline starts from compiler IR (the Ictineo
//! research compiler); this crate is the workspace's equivalent front door:
//! a small assembly-like language in which loop bodies can be written by
//! hand, stored in files, and fed to the scheduler — plus a pretty-printer
//! so any programmatically built [`Ddg`] can be dumped back out.
//!
//! # The format
//!
//! ```text
//! // one tap of a FIR filter (comments: `//` or `#`)
//! loop fir {
//!     i:   iadd  i@1        # induction variable, reads itself 1 iter back
//!     a:   iadd  i
//!     x:   load  a
//!     c:   load  a
//!     m:   fmul  x, c
//!     acc: fadd  m, acc@1   # reduction: loop-carried distance 1
//!     s:   store acc, a
//!     mem  s -> x @1        # memory-ordering edge (no register value)
//! }
//! ```
//!
//! * One statement per line: `label: mnemonic operand, operand, ...`.
//! * Operands name the producing statement; `@k` marks a value produced
//!   `k` iterations earlier (default `0`). Forward references are allowed —
//!   recurrences need them.
//! * Mnemonics are the [`cvliw_ddg::OpKind`] mnemonics: `iadd`, `imul`,
//!   `idiv`, `fadd`, `fmul`, `fabs`, `fdiv`, `fsqrt`, `load`, `store`.
//! * `mem a -> b [@k]` adds a memory-ordering dependence.
//!
//! # Example
//!
//! ```
//! use cvliw_ir::{parse_loop, print_loop, same_structure};
//!
//! let l = parse_loop(
//!     "loop saxpy {
//!          i: iadd  i@1
//!          x: load  i
//!          y: load  i
//!          m: fmul  x, y
//!          s: store m, i
//!      }",
//! )?;
//! assert_eq!(l.ddg.node_count(), 5);
//!
//! // Printing produces text that parses back to the same structure.
//! let text = print_loop(&l.name, &l.ddg);
//! assert!(same_structure(&l.ddg, &parse_loop(&text)?.ddg));
//! # Ok::<(), cvliw_ir::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod parser;
mod printer;
mod token;

pub use error::{ParseError, ParseErrorKind, Pos};
pub use parser::{parse_loop, parse_module, LoopModule, NamedLoop};
pub use printer::{print_loop, same_structure};

// Re-exported so `cvliw-ir` is usable on its own.
pub use cvliw_ddg::Ddg;
