//! Parse errors with source positions.

use std::error::Error;
use std::fmt;

use cvliw_ddg::DdgError;

/// A position in the source text (1-based line and column).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Why parsing a loop module failed.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// A character the lexer does not know.
    UnexpectedChar {
        /// The offending character.
        found: char,
    },
    /// A token other than the expected one.
    UnexpectedToken {
        /// What the parser was looking for.
        expected: &'static str,
        /// A rendering of what it found instead.
        found: String,
    },
    /// An operation mnemonic that names no [`cvliw_ddg::OpKind`].
    UnknownMnemonic {
        /// The unknown mnemonic.
        mnemonic: String,
    },
    /// The same label defined twice inside one loop.
    DuplicateLabel {
        /// The repeated label.
        label: String,
    },
    /// An operand or `mem` endpoint that no statement defines.
    UndefinedLabel {
        /// The unresolved label.
        label: String,
    },
    /// Two loops in the module share a name.
    DuplicateLoopName {
        /// The repeated loop name.
        name: String,
    },
    /// An iteration distance that does not fit in `u32`.
    DistanceOverflow,
    /// The module contained no loops.
    EmptyModule,
    /// The assembled graph violated a DDG invariant (e.g. a store used as a
    /// register operand, or a same-iteration dependence cycle).
    Graph {
        /// The underlying graph error.
        source: DdgError,
    },
}

/// Error produced by [`crate::parse_module`] and friends.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Where in the source the problem was noticed.
    pub pos: Pos,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

impl ParseError {
    pub(crate) fn new(pos: Pos, kind: ParseErrorKind) -> Self {
        ParseError { pos, kind }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.pos)?;
        match &self.kind {
            ParseErrorKind::UnexpectedChar { found } => {
                write!(f, "unexpected character `{found}`")
            }
            ParseErrorKind::UnexpectedToken { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            ParseErrorKind::UnknownMnemonic { mnemonic } => {
                write!(f, "unknown operation mnemonic `{mnemonic}`")
            }
            ParseErrorKind::DuplicateLabel { label } => {
                write!(f, "label `{label}` is defined more than once")
            }
            ParseErrorKind::UndefinedLabel { label } => {
                write!(f, "label `{label}` is not defined in this loop")
            }
            ParseErrorKind::DuplicateLoopName { name } => {
                write!(f, "loop `{name}` is defined more than once")
            }
            ParseErrorKind::DistanceOverflow => {
                write!(f, "iteration distance does not fit in 32 bits")
            }
            ParseErrorKind::EmptyModule => write!(f, "source contains no loops"),
            ParseErrorKind::Graph { source } => write!(f, "invalid graph: {source}"),
        }
    }
}

impl Error for ParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.kind {
            ParseErrorKind::Graph { source } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position_and_message() {
        let e = ParseError::new(
            Pos { line: 3, col: 7 },
            ParseErrorKind::UnknownMnemonic {
                mnemonic: "vfma".into(),
            },
        );
        assert_eq!(e.to_string(), "3:7: unknown operation mnemonic `vfma`");
    }

    #[test]
    fn graph_errors_expose_a_source() {
        let e = ParseError::new(
            Pos::default(),
            ParseErrorKind::Graph {
                source: DdgError::Empty,
            },
        );
        assert!(Error::source(&e).is_some());
        let e = ParseError::new(Pos::default(), ParseErrorKind::EmptyModule);
        assert!(Error::source(&e).is_none());
    }

    #[test]
    fn positions_order_lexicographically() {
        let a = Pos { line: 1, col: 9 };
        let b = Pos { line: 2, col: 1 };
        assert!(a < b);
        assert_eq!(b.to_string(), "2:1");
    }
}
