//! Property tests: printing any valid DDG yields text that parses back to a
//! structurally identical graph, and parsing never panics on junk.

use cvliw_ddg::{Ddg, DepKind, OpKind};
use cvliw_ir::{parse_loop, parse_module, print_loop, same_structure};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = OpKind> {
    prop::sample::select(OpKind::ALL.to_vec())
}

/// Labels that stress the printer: empty, reserved, clashing, non-ASCII.
fn arb_label() -> impl Strategy<Value = Option<String>> {
    prop_oneof![
        3 => Just(None),
        2 => "[a-z][a-z0-9_]{0,6}".prop_map(Some),
        1 => Just(Some("mem".to_string())),
        1 => Just(Some("loop".to_string())),
        1 => Just(Some("n1".to_string())),
        1 => Just(Some("has space".to_string())),
        1 => Just(Some("λ".to_string())),
    ]
}

/// A random valid graph: distance-0 data edges only flow from lower to
/// higher indices (guaranteeing the acyclic invariant) and never leave a
/// store; loop-carried and memory edges are unrestricted in direction.
fn arb_ddg() -> impl Strategy<Value = Ddg> {
    let nodes = prop::collection::vec((arb_kind(), arb_label()), 1..12);
    nodes
        .prop_flat_map(|nodes| {
            let n = nodes.len();
            let edges = prop::collection::vec((0..n, 0..n, 0u32..3, prop::bool::ANY), 0..(3 * n));
            (Just(nodes), edges)
        })
        .prop_map(|(nodes, edges)| {
            let mut b = Ddg::builder();
            let mut ids = Vec::with_capacity(nodes.len());
            let mut kinds = Vec::with_capacity(nodes.len());
            for (kind, label) in nodes {
                let id = match label {
                    Some(l) => b.add_labeled(kind, l),
                    None => b.add_node(kind),
                };
                ids.push(id);
                kinds.push(kind);
            }
            for (src, dst, dist, is_mem) in edges {
                let (s, d) = (ids[src], ids[dst]);
                if is_mem {
                    // Memory edges: any direction, but distance 0 requires
                    // forward direction to stay acyclic and src != dst.
                    if dist > 0 {
                        b.edge(s, d, DepKind::Mem, dist);
                    } else if src < dst {
                        b.edge(s, d, DepKind::Mem, 0);
                    }
                } else if kinds[src].produces_value() {
                    if dist > 0 {
                        b.edge(s, d, DepKind::Data, dist);
                    } else if src < dst {
                        b.edge(s, d, DepKind::Data, 0);
                    }
                }
            }
            b.build().expect("construction preserves all invariants")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_round_trips(ddg in arb_ddg(), name in ".*") {
        let text = print_loop(&name, &ddg);
        let back = parse_loop(&text).unwrap_or_else(|e| {
            panic!("printed text failed to parse: {e}\n---\n{text}")
        });
        prop_assert!(
            same_structure(&ddg, &back.ddg),
            "round-trip changed the structure:\n{}", text
        );
    }

    #[test]
    fn printing_twice_is_stable(ddg in arb_ddg()) {
        // print → parse → print must be a fixed point: the second print
        // uses the labels the first one chose.
        let once = print_loop("fixed", &ddg);
        let back = parse_loop(&once).unwrap();
        let twice = print_loop("fixed", &back.ddg);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn parser_never_panics_on_junk(src in ".{0,200}") {
        let _ = parse_module(&src);
    }

    #[test]
    fn parser_never_panics_on_tokenish_junk(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "loop", "mem", "{", "}", ":", ",", "@", "->", "\n",
                "x", "y", "fadd", "load", "store", "1", "99",
            ]),
            0..40,
        )
    ) {
        let src = words.join(" ");
        let _ = parse_module(&src);
    }
}

#[test]
fn example_file_round_trips() {
    let source = "
        loop tomcatv_inner {
            i:    iadd  i@1
            ax:   iadd  i
            ay:   iadd  i
            x:    load  ax
            y:    load  ay
            rx:   fmul  x, y
            ry:   fadd  rx, ry@1
            d:    fdiv  ry, rx
            sx:   store d, ax
            mem   sx -> x @1
        }";
    let l = parse_loop(source).unwrap();
    assert_eq!(l.ddg.node_count(), 9);
    let text = print_loop(&l.name, &l.ddg);
    let back = parse_loop(&text).unwrap();
    assert!(same_structure(&l.ddg, &back.ddg));
    assert_eq!(back.name, "tomcatv_inner");
}
