//! Hand-written kernels used by examples, tests and documentation.

use cvliw_ddg::{Ddg, NodeId, OpKind};

/// `y[i] = Σ_k c[k] · x[i+k]` with the taps unrolled: one load per tap, a
/// multiply, and an add-reduction chain ending in a store. A classic DSP
/// kernel for the VLIW machines the paper's introduction motivates.
///
/// # Panics
///
/// Panics if `taps == 0`.
#[must_use]
pub fn fir(taps: usize) -> Ddg {
    assert!(taps > 0, "a FIR filter needs at least one tap");
    let mut b = Ddg::builder();
    let iv = b.add_labeled(OpKind::IntAdd, "iv");
    b.data_dist(iv, iv, 1);
    let mut acc: Option<NodeId> = None;
    for k in 0..taps {
        let addr = b.add_labeled(OpKind::IntAdd, format!("addr{k}"));
        b.data(iv, addr);
        let x = b.add_labeled(OpKind::Load, format!("x{k}"));
        b.data(addr, x);
        let c = b.add_labeled(OpKind::Load, format!("c{k}"));
        let prod = b.add_labeled(OpKind::FpMul, format!("p{k}"));
        b.data(x, prod).data(c, prod);
        acc = Some(match acc {
            None => prod,
            Some(a) => {
                let sum = b.add_labeled(OpKind::FpAdd, format!("s{k}"));
                b.data(a, sum).data(prod, sum);
                sum
            }
        });
    }
    let st = b.add_labeled(OpKind::Store, "y");
    b.data(acc.expect("taps > 0"), st).data(iv, st);
    b.build().expect("FIR kernel is a valid loop body")
}

/// `y[i] = a·x[i] + y[i]` — daxpy, with `a` loaded each iteration.
#[must_use]
pub fn daxpy() -> Ddg {
    let mut b = Ddg::builder();
    let iv = b.add_labeled(OpKind::IntAdd, "iv");
    b.data_dist(iv, iv, 1);
    let a = b.add_labeled(OpKind::Load, "a");
    let x = b.add_labeled(OpKind::Load, "x");
    let y = b.add_labeled(OpKind::Load, "y");
    b.data(iv, x).data(iv, y);
    let ax = b.add_labeled(OpKind::FpMul, "a*x");
    b.data(a, ax).data(x, ax);
    let sum = b.add_labeled(OpKind::FpAdd, "a*x+y");
    b.data(ax, sum).data(y, sum);
    let st = b.add_labeled(OpKind::Store, "y'");
    b.data(sum, st).data(iv, st);
    b.build().expect("daxpy is a valid loop body")
}

/// `acc += x[i] · y[i]` — a dot product whose accumulator is a loop-carried
/// recurrence (RecMII = fp-add latency).
#[must_use]
pub fn dot_product() -> Ddg {
    let mut b = Ddg::builder();
    let iv = b.add_labeled(OpKind::IntAdd, "iv");
    b.data_dist(iv, iv, 1);
    let x = b.add_labeled(OpKind::Load, "x");
    let y = b.add_labeled(OpKind::Load, "y");
    b.data(iv, x).data(iv, y);
    let prod = b.add_labeled(OpKind::FpMul, "x*y");
    b.data(x, prod).data(y, prod);
    let acc = b.add_labeled(OpKind::FpAdd, "acc");
    b.data(prod, acc);
    b.data_dist(acc, acc, 1);
    b.build().expect("dot product is a valid loop body")
}

/// A five-point 2-D stencil: five loads, four weighted additions, one
/// store. Communication-friendly on two clusters, tight on four.
#[must_use]
pub fn stencil5() -> Ddg {
    let mut b = Ddg::builder();
    let iv = b.add_labeled(OpKind::IntAdd, "iv");
    b.data_dist(iv, iv, 1);
    let center = b.add_labeled(OpKind::Load, "c");
    b.data(iv, center);
    let mut sum = center;
    for name in ["n", "s", "e", "w"] {
        let addr = b.add_labeled(OpKind::IntAdd, format!("addr_{name}"));
        b.data(iv, addr);
        let ld = b.add_labeled(OpKind::Load, name);
        b.data(addr, ld);
        let add = b.add_labeled(OpKind::FpAdd, format!("sum_{name}"));
        b.data(sum, add).data(ld, add);
        sum = add;
    }
    let scale = b.add_labeled(OpKind::FpMul, "scale");
    b.data(sum, scale);
    let st = b.add_labeled(OpKind::Store, "out");
    b.data(scale, st).data(iv, st);
    b.build().expect("stencil is a valid loop body")
}

/// Complex multiply-accumulate: `(ar+i·ai)·(br+i·bi)` summed into memory —
/// two coupled multiply trees sharing four loads, a structure that splits
/// badly across clusters without replication.
#[must_use]
pub fn complex_mac() -> Ddg {
    let mut b = Ddg::builder();
    let iv = b.add_labeled(OpKind::IntAdd, "iv");
    b.data_dist(iv, iv, 1);
    let loads: Vec<NodeId> = ["ar", "ai", "br", "bi"]
        .iter()
        .map(|n| {
            let ld = b.add_labeled(OpKind::Load, *n);
            b.data(iv, ld);
            ld
        })
        .collect();
    let (ar, ai, br, bi) = (loads[0], loads[1], loads[2], loads[3]);
    let rr = b.add_labeled(OpKind::FpMul, "ar*br");
    b.data(ar, rr).data(br, rr);
    let ii_ = b.add_labeled(OpKind::FpMul, "ai*bi");
    b.data(ai, ii_).data(bi, ii_);
    let ri = b.add_labeled(OpKind::FpMul, "ar*bi");
    b.data(ar, ri).data(bi, ri);
    let ir = b.add_labeled(OpKind::FpMul, "ai*br");
    b.data(ai, ir).data(br, ir);
    let re = b.add_labeled(OpKind::FpAdd, "re");
    b.data(rr, re).data(ii_, re);
    let im = b.add_labeled(OpKind::FpAdd, "im");
    b.data(ri, im).data(ir, im);
    let st_re = b.add_labeled(OpKind::Store, "out_re");
    b.data(re, st_re).data(iv, st_re);
    let st_im = b.add_labeled(OpKind::Store, "out_im");
    b.data(im, st_im).data(iv, st_im);
    b.build().expect("complex MAC is a valid loop body")
}

/// All hand-written kernels with their names.
#[must_use]
pub fn all() -> Vec<(&'static str, Ddg)> {
    vec![
        ("fir8", fir(8)),
        ("daxpy", daxpy()),
        ("dot_product", dot_product()),
        ("stencil5", stencil5()),
        ("complex_mac", complex_mac()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_are_valid() {
        for (name, ddg) in all() {
            assert!(ddg.node_count() > 3, "{name}");
            assert!(ddg.edge_count() > 2, "{name}");
        }
    }

    #[test]
    fn fir_scales_with_taps() {
        assert!(fir(16).node_count() > fir(4).node_count());
        // taps loads ×2, muls, adds: 4 taps → 4 addr + 8 loads + 4 muls +
        // 3 adds + iv + store = 21
        assert_eq!(fir(4).node_count(), 21);
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn fir_zero_taps_panics() {
        let _ = fir(0);
    }

    #[test]
    fn dot_product_has_recurrence() {
        let ddg = dot_product();
        let acc = ddg.find_by_label("acc").unwrap();
        assert!(ddg.out_edges(acc).any(|e| e.dst == acc && e.distance == 1));
    }

    #[test]
    fn complex_mac_shares_loads() {
        let ddg = complex_mac();
        let ar = ddg.find_by_label("ar").unwrap();
        assert_eq!(
            ddg.data_succs(ar).len(),
            2,
            "each load feeds two multiplies"
        );
    }
}
