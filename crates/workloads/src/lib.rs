//! Synthetic SPECfp95-like workloads for clustered-VLIW scheduling
//! research.
//!
//! The paper evaluates on 678 innermost loops from SPECfp95, modulo
//! scheduled and weighted by profile data (visit counts × trip counts).
//! Neither the benchmarks nor the Ictineo compiler that extracted the loops
//! are available, so this crate generates a deterministic, seeded stand-in
//! suite whose *structure* follows what the paper reports about each
//! program (see `DESIGN.md` for the substitution argument):
//!
//! * communication-bound programs (su2cor, tomcatv, swim) get wide,
//!   cross-coupled floating-point chains hanging off shared integer
//!   address computations — the paper's "integer instructions in the upper
//!   levels of the DDG that appear in multiple subgraphs";
//! * mgrid generates nearly decoupled chains, so a good partitioner needs
//!   almost no communications (Figure 8);
//! * applu runs its loops for ~4 iterations per visit (its II barely
//!   matters — Figure 9's discussion);
//! * fpppp has very large loop bodies.
//!
//! [`suite`] returns all ten programs (678 loops); [`program`] builds one;
//! [`kernels`] contains hand-written kernels (FIR, daxpy, dot product,
//! stencils) used by examples and tests.
//!
//! # Example
//!
//! ```
//! use cvliw_workloads::{program, suite_loop_count};
//!
//! let mgrid = program("mgrid").expect("known benchmark");
//! assert!(!mgrid.loops.is_empty());
//! assert_eq!(suite_loop_count(), 678);
//! // Deterministic: rebuilding gives the same graphs.
//! let again = program("mgrid").unwrap();
//! assert_eq!(mgrid.loops[0].ddg.node_count(), again.loops[0].ddg.node_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
pub mod kernels;
mod profile;
mod programs;

pub use generator::{generate_loop, GeneratorParams};
pub use profile::LoopProfile;
pub use programs::{
    program, program_names, program_subset, suite, suite_loop_count, suite_subset, suite_with_salt,
    BenchmarkProgram, WorkloadLoop,
};
