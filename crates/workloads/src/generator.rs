//! The seeded loop-body generator.

use cvliw_ddg::{Ddg, DdgError, NodeId, OpKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Structural knobs of the generator; every probability is in `[0, 1]`.
///
/// A generated loop body is a layered graph: a small set of integer
/// address/induction computations at the top, `chains` floating-point
/// dependence chains in the middle (fed by loads), and stores at the
/// bottom. `coupling` cross-links the chains — the single most important
/// knob for communication pressure on a clustered machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeneratorParams {
    /// Number of floating-point chains (min, max).
    pub chains: (usize, usize),
    /// Operations per chain (min, max).
    pub depth: (usize, usize),
    /// Probability that a chain operation takes a second operand from an
    /// earlier node of a *different* chain.
    pub coupling: f64,
    /// Probability a memory access reuses a shared address node instead of
    /// deriving its own.
    pub shared_addr: f64,
    /// Probability a chain is a loop-carried recurrence.
    pub recurrence: f64,
    /// Probability a chain operation is a multiply (otherwise an add);
    /// divides appear with `div` probability.
    pub mul: f64,
    /// Probability a chain operation is a divide.
    pub div: f64,
    /// Probability a chain ends in a store.
    pub store: f64,
    /// Probability of a loop-carried store→load aliasing dependence per
    /// chain.
    pub mem_alias: f64,
    /// Trip count range (iterations per visit).
    pub trips: (u64, u64),
    /// Visit count range.
    pub visits: (u64, u64),
}

impl GeneratorParams {
    /// A mid-sized, moderately coupled default (used by tests).
    #[must_use]
    pub fn medium() -> Self {
        GeneratorParams {
            chains: (3, 6),
            depth: (3, 6),
            coupling: 0.2,
            shared_addr: 0.7,
            recurrence: 0.1,
            mul: 0.45,
            div: 0.02,
            store: 0.8,
            // SPECfp95 innermost loops are essentially memory-disambiguated;
            // a cross-iteration store→load alias serializes iterations, so
            // keep it a rare event.
            mem_alias: 0.01,
            trips: (50, 400),
            visits: (10, 100),
        }
    }
}

/// Output of [`generate_loop`]: the body plus its sampled profile numbers.
#[derive(Clone, Debug)]
pub struct GeneratedLoop {
    /// The loop body.
    pub ddg: Ddg,
    /// Sampled iterations per visit.
    pub trip_count: u64,
    /// Sampled visit count.
    pub visits: u64,
}

/// Generates one loop body from a seed. The same `(seed, params)` pair
/// always produces the same graph.
///
/// # Errors
///
/// Propagates [`DdgError`] if the generated graph fails validation (which
/// would indicate a generator bug; the construction is layered and thus
/// acyclic at distance 0).
pub fn generate_loop(seed: u64, params: &GeneratorParams) -> Result<GeneratedLoop, DdgError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Ddg::builder();

    // Induction variable + shared address computations (the "upper level
    // integer instructions" of §4).
    let iv = b.add_labeled(OpKind::IntAdd, "iv");
    b.data_dist(iv, iv, 1);
    let n_chains = rng.random_range(params.chains.0..=params.chains.1);
    let n_addr = (n_chains / 2).max(1);
    let mut addr_nodes = Vec::with_capacity(n_addr);
    for i in 0..n_addr {
        let a = b.add_labeled(OpKind::IntAdd, format!("addr{i}"));
        b.data(iv, a);
        addr_nodes.push(a);
    }

    let mut all_fp: Vec<NodeId> = Vec::new(); // earlier chain ops, coupling sources
    let mut loads: Vec<NodeId> = Vec::new();
    let mut stores: Vec<NodeId> = Vec::new();

    for chain in 0..n_chains {
        // Address for this chain's memory traffic.
        let addr = if rng.random_bool(params.shared_addr) {
            addr_nodes[rng.random_range(0..addr_nodes.len())]
        } else {
            let a = b.add_labeled(OpKind::IntAdd, format!("addr_c{chain}"));
            b.data(iv, a);
            a
        };

        let ld = b.add_labeled(OpKind::Load, format!("ld{chain}"));
        b.data(addr, ld);
        loads.push(ld);

        let depth = rng.random_range(params.depth.0..=params.depth.1);
        let mut prev = ld;
        let mut first_fp = None;
        for op in 0..depth {
            let kind = if rng.random_bool(params.div) {
                OpKind::FpDiv
            } else if rng.random_bool(params.mul) {
                OpKind::FpMul
            } else {
                OpKind::FpAdd
            };
            let node = b.add_labeled(kind, format!("c{chain}_{op}"));
            b.data(prev, node);
            if first_fp.is_none() {
                first_fp = Some(node);
            }
            // Cross-chain coupling: a second operand from an earlier chain.
            if !all_fp.is_empty() && rng.random_bool(params.coupling) {
                let other = all_fp[rng.random_range(0..all_fp.len())];
                b.data(other, node);
            }
            all_fp.push(node);
            prev = node;
        }

        // Loop-carried recurrence: the chain's last value feeds its first
        // fp op in a later iteration.
        if let Some(first) = first_fp {
            if rng.random_bool(params.recurrence) {
                let dist = rng.random_range(1..=2);
                b.data_dist(prev, first, dist);
            }
        }

        if rng.random_bool(params.store) {
            let st = b.add_labeled(OpKind::Store, format!("st{chain}"));
            b.data(prev, st);
            b.data(addr, st);
            stores.push(st);
        }
    }

    // Occasional loop-carried aliasing between a store and a load.
    for _ in 0..n_chains {
        if !stores.is_empty() && !loads.is_empty() && rng.random_bool(params.mem_alias) {
            let st = stores[rng.random_range(0..stores.len())];
            let ld = loads[rng.random_range(0..loads.len())];
            b.mem_dep(st, ld, rng.random_range(1..=2));
        }
    }

    let trip_count = rng.random_range(params.trips.0..=params.trips.1);
    let visits = rng.random_range(params.visits.0..=params.visits.1);
    Ok(GeneratedLoop {
        ddg: b.build()?,
        trip_count,
        visits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let p = GeneratorParams::medium();
        let a = generate_loop(42, &p).unwrap();
        let b = generate_loop(42, &p).unwrap();
        assert_eq!(a.ddg.node_count(), b.ddg.node_count());
        assert_eq!(a.ddg.edge_count(), b.ddg.edge_count());
        assert_eq!(a.trip_count, b.trip_count);
        assert_eq!(a.visits, b.visits);
    }

    #[test]
    fn different_seeds_differ() {
        let p = GeneratorParams::medium();
        let sizes: Vec<usize> = (0..16)
            .map(|s| generate_loop(s, &p).unwrap().ddg.node_count())
            .collect();
        let first = sizes[0];
        assert!(sizes.iter().any(|&s| s != first), "some variation expected");
    }

    #[test]
    fn bodies_are_valid_and_sized() {
        let p = GeneratorParams::medium();
        for seed in 0..50 {
            let g = generate_loop(seed, &p).unwrap();
            // at least iv + 1 addr + chains*(load+1 op)
            assert!(g.ddg.node_count() >= 2 + p.chains.0 * 2);
            assert!(g.trip_count >= p.trips.0 && g.trip_count <= p.trips.1);
        }
    }

    #[test]
    fn coupling_zero_gives_independent_chains() {
        let mut p = GeneratorParams::medium();
        p.coupling = 0.0;
        p.shared_addr = 0.0;
        p.mem_alias = 0.0;
        let g = generate_loop(7, &p).unwrap();
        // Without coupling/shared addresses, each fp node has at most one
        // fp predecessor: chains are pure.
        for n in g.ddg.node_ids() {
            if g.ddg.kind(n).is_fp() {
                let fp_preds = g
                    .ddg
                    .data_preds(n)
                    .iter()
                    .filter(|&&p| g.ddg.kind(p).is_fp())
                    .count();
                assert!(fp_preds <= 1);
            }
        }
    }

    #[test]
    fn high_coupling_cross_links_chains() {
        let mut p = GeneratorParams::medium();
        p.coupling = 0.9;
        p.chains = (6, 6);
        p.depth = (4, 4);
        let g = generate_loop(11, &p).unwrap();
        let cross = g
            .ddg
            .node_ids()
            .filter(|&n| g.ddg.kind(n).is_fp() && g.ddg.data_preds(n).len() >= 2)
            .count();
        assert!(cross >= 3, "expected several coupled ops, got {cross}");
    }

    #[test]
    fn stores_never_feed_data_edges() {
        let p = GeneratorParams::medium();
        for seed in 0..20 {
            let g = generate_loop(seed, &p).unwrap();
            for e in g.ddg.edges() {
                if e.is_data() {
                    assert!(g.ddg.kind(e.src).produces_value());
                }
            }
        }
    }
}
