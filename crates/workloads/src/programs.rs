//! The ten named benchmark programs and the 678-loop suite.

use cvliw_ddg::Ddg;

use crate::generator::{generate_loop, GeneratorParams};
use crate::profile::LoopProfile;

/// One innermost loop with its profile.
#[derive(Clone, Debug)]
pub struct WorkloadLoop {
    /// `"<program>.<index>"`.
    pub name: String,
    /// The loop body.
    pub ddg: Ddg,
    /// Visits × iterations profile.
    pub profile: LoopProfile,
}

impl WorkloadLoop {
    /// Dynamic operations this loop contributes to its program.
    #[must_use]
    pub fn dynamic_ops(&self) -> u64 {
        self.profile.dynamic_ops(self.ddg.node_count() as u32)
    }
}

/// A benchmark program: a named collection of loops.
#[derive(Clone, Debug)]
pub struct BenchmarkProgram {
    /// SPECfp95-style program name.
    pub name: &'static str,
    /// Its modulo-schedulable innermost loops.
    pub loops: Vec<WorkloadLoop>,
}

impl BenchmarkProgram {
    /// Total dynamic operations across all loops.
    #[must_use]
    pub fn dynamic_ops(&self) -> u64 {
        self.loops.iter().map(WorkloadLoop::dynamic_ops).sum()
    }
}

/// Per-program structure: (name, loop count, params, seed base).
///
/// Loop counts sum to 678, the paper's suite size. The structural knobs
/// encode what §4 reports per program; see the crate docs.
///
/// The knobs are calibrated against the vendored `rand` stream
/// (SplitMix64, see `vendor/README.md`): the qualitative per-program
/// shapes asserted in `tests/paper_shapes.rs` depend on the exact loops
/// these seeds draw, so changing the RNG or any parameter here re-rolls
/// every synthetic loop and those thresholds must be re-checked.
fn spec() -> [(&'static str, usize, GeneratorParams); 10] {
    let base = GeneratorParams::medium();
    [
        (
            // Strongly coupled mesh-generation kernels: the paper's 65%
            // speedup case. Few, large, communication-bound loops.
            "tomcatv",
            6,
            GeneratorParams {
                chains: (7, 11),
                depth: (4, 8),
                coupling: 0.50,
                shared_addr: 0.9,
                recurrence: 0.05,
                trips: (120, 260),
                visits: (300, 800),
                ..base
            },
        ),
        (
            // Shallow-water stencils: wide, coupled, long trip counts (50%).
            "swim",
            10,
            GeneratorParams {
                chains: (6, 10),
                depth: (3, 7),
                coupling: 0.45,
                shared_addr: 0.85,
                recurrence: 0.04,
                trips: (300, 1000),
                visits: (100, 400),
                ..base
            },
        ),
        (
            // Quantum-chromodynamics updates: the 70% headline case.
            "su2cor",
            70,
            GeneratorParams {
                chains: (7, 12),
                depth: (3, 6),
                coupling: 0.65,
                shared_addr: 0.95,
                recurrence: 0.06,
                trips: (40, 200),
                visits: (50, 300),
                ..base
            },
        ),
        (
            "hydro2d",
            90,
            GeneratorParams {
                chains: (4, 7),
                depth: (3, 6),
                coupling: 0.22,
                shared_addr: 0.7,
                recurrence: 0.10,
                trips: (60, 400),
                visits: (30, 200),
                ..base
            },
        ),
        (
            // Multigrid: near-independent chains off a handful of shared
            // addresses; clustering costs little (Figure 8), so replication
            // has nothing to win. `shared_addr` is the knob that keeps the
            // drawn loops compute-bound rather than bus-bound under the
            // vendored RNG stream.
            "mgrid",
            14,
            GeneratorParams {
                chains: (4, 8),
                depth: (4, 7),
                coupling: 0.02,
                shared_addr: 0.95,
                recurrence: 0.03,
                trips: (100, 500),
                visits: (100, 500),
                ..base
            },
        ),
        (
            // SSOR solver: moderate coupling but trip counts around 4
            // (Figure 9's discussion): the II hardly shows in the IPC.
            "applu",
            60,
            GeneratorParams {
                chains: (4, 6),
                depth: (6, 9),
                coupling: 0.20,
                shared_addr: 0.8,
                recurrence: 0.08,
                trips: (3, 5),
                visits: (5_000, 20_000),
                ..base
            },
        ),
        (
            "turb3d",
            30,
            GeneratorParams {
                chains: (3, 6),
                depth: (3, 6),
                coupling: 0.11,
                shared_addr: 0.6,
                recurrence: 0.12,
                trips: (30, 120),
                visits: (50, 300),
                ..base
            },
        ),
        (
            "apsi",
            110,
            GeneratorParams {
                chains: (3, 6),
                depth: (2, 5),
                coupling: 0.15,
                shared_addr: 0.6,
                recurrence: 0.12,
                div: 0.04,
                trips: (20, 120),
                visits: (30, 200),
                ..base
            },
        ),
        (
            // Huge straight-line bodies.
            "fpppp",
            12,
            GeneratorParams {
                chains: (10, 16),
                depth: (5, 10),
                coupling: 0.20,
                shared_addr: 0.7,
                recurrence: 0.02,
                trips: (5, 60),
                visits: (200, 1_000),
                ..base
            },
        ),
        (
            "wave5",
            276,
            GeneratorParams {
                chains: (3, 6),
                depth: (2, 5),
                coupling: 0.12,
                shared_addr: 0.65,
                recurrence: 0.09,
                trips: (30, 250),
                visits: (20, 150),
                ..base
            },
        ),
    ]
}

/// The benchmark program names, in the paper's plotting order.
#[must_use]
pub fn program_names() -> [&'static str; 10] {
    [
        "tomcatv", "swim", "su2cor", "hydro2d", "mgrid", "applu", "turb3d", "apsi", "fpppp",
        "wave5",
    ]
}

/// Number of loops in the full suite (the paper's 678).
#[must_use]
pub fn suite_loop_count() -> usize {
    spec().iter().map(|(_, n, _)| n).sum()
}

/// Stable per-program seed base derived from the name.
fn seed_base(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

fn build(name: &'static str, count: usize, params: &GeneratorParams) -> BenchmarkProgram {
    build_salted(name, count, params, 0)
}

fn build_salted(
    name: &'static str,
    count: usize,
    params: &GeneratorParams,
    salt: u64,
) -> BenchmarkProgram {
    let base = seed_base(name) ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let loops = (0..count)
        .map(|i| {
            let g = generate_loop(base.wrapping_add(i as u64), params)
                .expect("generator produces valid loops");
            WorkloadLoop {
                name: format!("{name}.{i}"),
                ddg: g.ddg,
                profile: LoopProfile::new(g.visits, g.trip_count),
            }
        })
        .collect();
    BenchmarkProgram { name, loops }
}

/// Builds one named program, or `None` for an unknown name.
#[must_use]
pub fn program(name: &str) -> Option<BenchmarkProgram> {
    spec()
        .into_iter()
        .find(|(n, _, _)| *n == name)
        .map(|(n, count, params)| build(n, count, &params))
}

/// Builds one named program capped at `max_loops` loops, or `None` for an
/// unknown name. The capped prefix draws the same loops as the full
/// program, so a suite sharded one program at a time (the `cvliw_exp`
/// worker pool) sees exactly the loops [`suite_subset`] would produce.
#[must_use]
pub fn program_subset(name: &str, max_loops: usize) -> Option<BenchmarkProgram> {
    spec()
        .into_iter()
        .find(|(n, _, _)| *n == name)
        .map(|(n, count, params)| build(n, count.min(max_loops), &params))
}

/// Builds the whole 678-loop suite.
#[must_use]
pub fn suite() -> Vec<BenchmarkProgram> {
    spec()
        .into_iter()
        .map(|(n, count, params)| build(n, count, &params))
        .collect()
}

/// Builds the suite with at most `max_loops` loops per program — used to
/// keep tests fast while exercising every program's character.
#[must_use]
pub fn suite_subset(max_loops: usize) -> Vec<BenchmarkProgram> {
    spec()
        .into_iter()
        .map(|(n, count, params)| build(n, count.min(max_loops), &params))
        .collect()
}

/// Builds a re-seeded variant of the suite: same per-program structural
/// knobs and loop counts, different random draws. Salt `0` is [`suite`]
/// itself. Used by the seed-sensitivity ablation to show the paper-shape
/// conclusions are not an artifact of one random suite.
#[must_use]
pub fn suite_with_salt(salt: u64, max_loops: usize) -> Vec<BenchmarkProgram> {
    spec()
        .into_iter()
        .map(|(n, count, params)| build_salted(n, count.min(max_loops), &params, salt))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn salted_suites_differ_but_keep_shape() {
        let a = suite_with_salt(0, 3);
        let b = suite_with_salt(1, 3);
        assert_eq!(a.len(), b.len());
        // Salt 0 is the default suite.
        let plain = suite_subset(3);
        for (x, y) in a.iter().zip(&plain) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.loops.len(), y.loops.len());
            for (lx, ly) in x.loops.iter().zip(&y.loops) {
                assert_eq!(lx.ddg.node_count(), ly.ddg.node_count());
                assert_eq!(lx.profile, ly.profile);
            }
        }
        // A different salt redraws at least some loops.
        let differs = a.iter().zip(&b).any(|(x, y)| {
            x.loops
                .iter()
                .zip(&y.loops)
                .any(|(lx, ly)| lx.ddg.node_count() != ly.ddg.node_count())
        });
        assert!(differs, "salting must change the random draws");
    }

    #[test]
    fn suite_has_678_loops() {
        assert_eq!(suite_loop_count(), 678);
    }

    #[test]
    fn programs_are_deterministic() {
        let a = program("su2cor").unwrap();
        let b = program("su2cor").unwrap();
        assert_eq!(a.loops.len(), b.loops.len());
        for (x, y) in a.loops.iter().zip(&b.loops) {
            assert_eq!(x.ddg.node_count(), y.ddg.node_count());
            assert_eq!(x.profile, y.profile);
        }
    }

    #[test]
    fn unknown_program_is_none() {
        assert!(program("gcc").is_none());
    }

    #[test]
    fn all_names_build() {
        for name in program_names() {
            let p = program(name).unwrap();
            assert!(!p.loops.is_empty(), "{name} has loops");
            assert!(p.dynamic_ops() > 0);
        }
    }

    #[test]
    fn applu_has_short_trips() {
        let applu = program("applu").unwrap();
        for l in &applu.loops {
            assert!(
                l.profile.iterations <= 5,
                "{} trips {}",
                l.name,
                l.profile.iterations
            );
        }
    }

    #[test]
    fn fpppp_has_large_bodies() {
        let fpppp = program("fpppp").unwrap();
        let avg: usize = fpppp
            .loops
            .iter()
            .map(|l| l.ddg.node_count())
            .sum::<usize>()
            / fpppp.loops.len();
        let wave5 = program("wave5").unwrap();
        let avg_w: usize = wave5
            .loops
            .iter()
            .map(|l| l.ddg.node_count())
            .sum::<usize>()
            / wave5.loops.len();
        assert!(avg > 2 * avg_w, "fpppp {avg} vs wave5 {avg_w}");
    }

    #[test]
    fn program_subset_matches_suite_subset() {
        let whole = suite_subset(2);
        for p in &whole {
            let alone = program_subset(p.name, 2).unwrap();
            assert_eq!(alone.loops.len(), p.loops.len());
            for (a, b) in alone.loops.iter().zip(&p.loops) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.ddg.node_count(), b.ddg.node_count());
                assert_eq!(a.profile, b.profile);
            }
        }
        assert!(program_subset("gcc", 2).is_none());
    }

    #[test]
    fn subset_caps_loop_counts() {
        let sub = suite_subset(3);
        assert_eq!(sub.len(), 10);
        assert!(sub.iter().all(|p| p.loops.len() <= 3));
    }
}
