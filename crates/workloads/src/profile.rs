//! Loop profiles: how often a loop runs and for how many iterations.

/// Profile data of one innermost loop, as the paper obtains through
/// profiling (§4: "it is necessary to know the number of times each loop
/// is executed and the average number of iterations").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LoopProfile {
    /// How many times control enters the loop.
    pub visits: u64,
    /// Average iterations per visit.
    pub iterations: u64,
}

impl LoopProfile {
    /// Creates a profile.
    #[must_use]
    pub fn new(visits: u64, iterations: u64) -> Self {
        LoopProfile { visits, iterations }
    }

    /// Total iterations across all visits.
    #[must_use]
    pub fn total_iterations(&self) -> u64 {
        self.visits * self.iterations
    }

    /// Dynamic operations executed given a per-iteration operation count.
    #[must_use]
    pub fn dynamic_ops(&self, ops_per_iter: u32) -> u64 {
        self.total_iterations() * u64::from(ops_per_iter)
    }

    /// Execution cycles under the paper's timing model for a kernel with
    /// the given II and stage count: `visits · (N − 1 + SC) · II`.
    #[must_use]
    pub fn cycles(&self, ii: u32, stage_count: u32) -> u64 {
        if self.iterations == 0 {
            return 0;
        }
        self.visits * (self.iterations - 1 + u64::from(stage_count)) * u64::from(ii)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_multiply() {
        let p = LoopProfile::new(10, 100);
        assert_eq!(p.total_iterations(), 1000);
        assert_eq!(p.dynamic_ops(7), 7000);
    }

    #[test]
    fn cycles_follow_the_paper_formula() {
        let p = LoopProfile::new(3, 50);
        // per visit: (50 - 1 + 4) * 2 cycles
        assert_eq!(p.cycles(2, 4), 3 * 53 * 2);
        assert_eq!(LoopProfile::new(5, 0).cycles(2, 4), 0);
    }

    #[test]
    fn short_trip_counts_amplify_stage_cost() {
        // applu's situation: N=4 makes the prolog/epilog share huge.
        let short = LoopProfile::new(1000, 4);
        // Heavy kernel: (4-1+2)*10 per visit. Light kernel: (4-1+6)*8 per
        // visit — a smaller II does NOT pay off if the stage count balloons.
        let kernel_heavy = short.cycles(10, 2);
        let kernel_light = short.cycles(8, 6);
        assert!(kernel_light > kernel_heavy);
    }
}
