//! Instance liveness: which instances are useful, which are removable.
//!
//! This generalizes the paper's Figure-5 algorithm for finding removable
//! instructions. An instance `(node, cluster)` is **live** when its value is
//! observable: it feeds a live consumer instance in the same cluster, it is
//! the source its bus copy reads from, it is a store (a side effect), or it
//! is the home instance of a live-out value (a producer with no consumers
//! at all). Everything else is dead and can be removed from the schedule,
//! freeing resources (§3.2).
//!
//! The paper's subtle cases fall out naturally:
//!
//! * a node whose value is still communicated keeps its source instance —
//!   its copy is effectively an in-cluster child (so, in Figure 3, `D`
//!   cannot be removed when `S_E` is replicated, but becomes removable once
//!   `S_D` itself is);
//! * instructions that were removable can stop being removable when new
//!   replicas appear in their cluster, and vice versa (§3.4).

use std::collections::BTreeSet;

use cvliw_ddg::{Ddg, NodeId};
use cvliw_sched::{Assignment, ClusterSet};

/// A hypothetical instance configuration to run liveness over.
#[derive(Clone, Debug)]
pub struct InstanceView {
    /// Clusters holding an instance of each node (indexed by node).
    pub instances: Vec<ClusterSet>,
    /// Values still communicated over a bus.
    pub coms: BTreeSet<NodeId>,
    /// Source cluster each communicated value is read from.
    pub com_source: Vec<u8>,
}

impl InstanceView {
    /// Captures the current state of an assignment.
    #[must_use]
    pub fn from_assignment(ddg: &Ddg, assignment: &Assignment, coms: &BTreeSet<NodeId>) -> Self {
        InstanceView {
            instances: ddg.node_ids().map(|n| assignment.instances(n)).collect(),
            coms: coms.clone(),
            com_source: ddg.node_ids().map(|n| assignment.copy_source(n)).collect(),
        }
    }
}

/// Marks every node sitting on a dependence cycle (a non-trivial SCC or a
/// self-loop) — the recurrence anchors of the Figure-5 liveness rule.
/// Equals `analysis.scc_recurrent()[analysis.scc_of()[n]]` for a cached
/// `LoopAnalysis`; the replication engine fills its scratch from whichever
/// source is at hand so the SCC decomposition is not recomputed per plan.
pub(crate) fn on_cycle_into(ddg: &Ddg, on_cycle: &mut Vec<bool>) {
    on_cycle.clear();
    on_cycle.resize(ddg.node_count(), false);
    for comp in &cvliw_ddg::sccs(ddg) {
        let cyclic = comp.len() > 1 || ddg.out_edges(comp[0]).any(|e| e.dst == comp[0]);
        if cyclic {
            for &node in comp {
                on_cycle[node.index()] = true;
            }
        }
    }
}

/// The borrowed ingredients of a liveness query: instance sets, the sorted
/// communicated list and each communicated value's copy-source cluster.
/// [`InstanceView`] owns the same data; the scratch paths borrow it
/// straight from an [`Assignment`] instead of copying.
#[derive(Clone, Copy)]
pub(crate) struct ViewRef<'a> {
    /// Clusters holding an instance of each node (indexed by node).
    pub instances: &'a [ClusterSet],
    /// Values still communicated, sorted by node id.
    pub coms: &'a [NodeId],
    /// Source cluster each communicated value is read from.
    pub com_source: &'a [u8],
}

/// [`live_instances`] over borrowed state and caller-owned buffers; `live`
/// receives the result. Bit-identical to the owning entry point.
pub(crate) fn live_instances_into(
    ddg: &Ddg,
    view: ViewRef<'_>,
    on_cycle: &[bool],
    live: &mut Vec<ClusterSet>,
    worklist: &mut Vec<(NodeId, u8)>,
) {
    let n = ddg.node_count();
    live.clear();
    live.resize(n, ClusterSet::empty());
    worklist.clear();

    let anchor = |node: NodeId,
                  cluster: u8,
                  live: &mut Vec<ClusterSet>,
                  worklist: &mut Vec<(NodeId, u8)>| {
        if view.instances[node.index()].contains(cluster) && !live[node.index()].contains(cluster) {
            live[node.index()].insert(cluster);
            worklist.push((node, cluster));
        }
    };

    for node in ddg.node_ids() {
        let kind = ddg.kind(node);
        if kind == cvliw_ddg::OpKind::Store || !ddg.has_data_succs(node) || on_cycle[node.index()] {
            for c in view.instances[node.index()].iter() {
                anchor(node, c, live, worklist);
            }
        } else if view.coms.binary_search(&node).is_ok() {
            anchor(node, view.com_source[node.index()], live, worklist);
        }
    }

    while let Some((node, cluster)) = worklist.pop() {
        for e in ddg.in_edges(node) {
            if !e.is_data() {
                continue;
            }
            let p = e.src;
            if view.instances[p.index()].contains(cluster) && !live[p.index()].contains(cluster) {
                live[p.index()].insert(cluster);
                worklist.push((p, cluster));
            }
        }
    }
}

/// [`dead_instances`] over borrowed state and caller-owned buffers; `dead`
/// receives the result. Bit-identical to the owning entry point.
pub(crate) fn dead_instances_into(
    ddg: &Ddg,
    view: ViewRef<'_>,
    on_cycle: &[bool],
    live: &mut Vec<ClusterSet>,
    worklist: &mut Vec<(NodeId, u8)>,
    dead: &mut Vec<(NodeId, u8)>,
) {
    live_instances_into(ddg, view, on_cycle, live, worklist);
    dead.clear();
    for node in ddg.node_ids() {
        for c in view.instances[node.index()]
            .difference(live[node.index()])
            .iter()
        {
            dead.push((node, c));
        }
    }
}

/// Computes the live instances of a configuration.
///
/// Anchors (always live): store instances, the source instance of every
/// communicated value, the instances of any producer without data
/// consumers (a live-out value), and the instances of every node on a
/// dependence cycle (recurrence values — accumulators — are observable
/// after the loop; the paper's Figure-5 rule likewise never removes them).
/// Liveness then propagates backwards along same-cluster data dependences:
/// the producer instance a live consumer reads locally is live.
///
/// These anchors guarantee every node keeps at least one live instance:
/// walking any dependence chain downwards ends at a store, a leaf or a
/// recurrence, all anchored; a node whose live consumer sits in another
/// cluster is communicated and anchored at its source.
#[must_use]
pub fn live_instances(ddg: &Ddg, view: &InstanceView) -> Vec<ClusterSet> {
    let mut on_cycle = Vec::new();
    on_cycle_into(ddg, &mut on_cycle);
    let coms: Vec<NodeId> = view.coms.iter().copied().collect();
    let mut live = Vec::new();
    let mut worklist = Vec::new();
    live_instances_into(
        ddg,
        ViewRef {
            instances: &view.instances,
            coms: &coms,
            com_source: &view.com_source,
        },
        &on_cycle,
        &mut live,
        &mut worklist,
    );
    live
}

/// The dead (removable) instances of a configuration: every existing
/// instance that [`live_instances`] does not mark live.
#[must_use]
pub fn dead_instances(ddg: &Ddg, view: &InstanceView) -> Vec<(NodeId, u8)> {
    let live = live_instances(ddg, view);
    let mut dead = Vec::new();
    for node in ddg.node_ids() {
        for c in view.instances[node.index()]
            .difference(live[node.index()])
            .iter()
        {
            dead.push((node, c));
        }
    }
    dead
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvliw_ddg::OpKind;

    fn view(ddg: &Ddg, parts: &[u8], coms: &[u32]) -> InstanceView {
        let asg = Assignment::from_partition(parts);
        let coms: BTreeSet<NodeId> = coms.iter().map(|&i| NodeId::new(i)).collect();
        InstanceView::from_assignment(ddg, &asg, &coms)
    }

    #[test]
    fn stores_and_their_feeders_are_live() {
        let mut b = Ddg::builder();
        let ld = b.add_node(OpKind::Load);
        let m = b.add_node(OpKind::FpMul);
        let st = b.add_node(OpKind::Store);
        b.data(ld, m).data(m, st);
        let ddg = b.build().unwrap();
        let v = view(&ddg, &[0, 0, 0], &[]);
        assert!(dead_instances(&ddg, &v).is_empty());
    }

    #[test]
    fn unconsumed_producer_is_live_out() {
        let mut b = Ddg::builder();
        let a = b.add_node(OpKind::FpAdd);
        let _ = a;
        let ddg = b.build().unwrap();
        let v = view(&ddg, &[0], &[]);
        assert!(dead_instances(&ddg, &v).is_empty());
    }

    #[test]
    fn communicated_value_keeps_its_source() {
        // producer in cluster 0, consumer in cluster 1 → com keeps n0@0.
        let mut b = Ddg::builder();
        let p = b.add_node(OpKind::FpAdd);
        let c = b.add_node(OpKind::FpAdd);
        b.data(p, c);
        let ddg = b.build().unwrap();
        let v = view(&ddg, &[0, 1], &[0]);
        assert!(dead_instances(&ddg, &v).is_empty());
    }

    #[test]
    fn replicated_producer_original_dies_when_unread() {
        // E-like case: producer replicated next to both consumers; original
        // instance no longer communicated and has no local readers.
        let mut b = Ddg::builder();
        let e = b.add_node(OpKind::FpAdd);
        let j = b.add_node(OpKind::FpAdd);
        let g = b.add_node(OpKind::FpAdd);
        b.data(e, j).data(e, g);
        let ddg = b.build().unwrap();
        let asg = {
            let mut a = Assignment::from_partition(&[2, 1, 3]);
            a.add_instance(e, 1);
            a.add_instance(e, 3);
            a
        };
        let v = InstanceView::from_assignment(&ddg, &asg, &BTreeSet::new());
        let dead = dead_instances(&ddg, &v);
        assert_eq!(dead, vec![(e, 2)]);
    }

    #[test]
    fn communicated_replica_source_survives() {
        // Same as above but the value still communicated (e.g. a third
        // consumer elsewhere): the source instance must survive.
        let mut b = Ddg::builder();
        let e = b.add_node(OpKind::FpAdd);
        let j = b.add_node(OpKind::FpAdd);
        let g = b.add_node(OpKind::FpAdd);
        let k = b.add_node(OpKind::FpAdd);
        b.data(e, j).data(e, g).data(e, k);
        let ddg = b.build().unwrap();
        let mut asg = Assignment::from_partition(&[2, 1, 3, 0]);
        asg.add_instance(e, 1);
        asg.add_instance(e, 3);
        let coms: BTreeSet<NodeId> = [e].into_iter().collect();
        let v = InstanceView::from_assignment(&ddg, &asg, &coms);
        assert!(dead_instances(&ddg, &v).is_empty());
    }

    #[test]
    fn dead_chains_cascade() {
        // a → b → c(store in another cluster via copy is NOT how stores
        // work; instead): a → b, b communicated… here: a and b in cluster 0,
        // consumer moved entirely to cluster 1 with replicas a', b' — the
        // originals both die.
        let mut b_ = Ddg::builder();
        let a = b_.add_node(OpKind::IntAdd);
        let b = b_.add_node(OpKind::IntMul);
        let c = b_.add_node(OpKind::Store);
        b_.data(a, b).data(b, c);
        let ddg = b_.build().unwrap();
        let mut asg = Assignment::from_partition(&[0, 0, 1]);
        asg.add_instance(a, 1);
        asg.add_instance(b, 1);
        let v = InstanceView::from_assignment(&ddg, &asg, &BTreeSet::new());
        let dead = dead_instances(&ddg, &v);
        assert_eq!(dead, vec![(a, 0), (b, 0)]);
    }

    #[test]
    fn closed_recurrence_chain_is_anchored() {
        // An accumulator ring that feeds nothing else (its value is only
        // observable after the loop): every instance must stay live — the
        // regression that once removed entire store-less recurrence chains.
        let mut b = Ddg::builder();
        let x = b.add_node(OpKind::FpAdd);
        let y = b.add_node(OpKind::FpMul);
        let z = b.add_node(OpKind::FpAdd);
        b.data(x, y).data(y, z).data_dist(z, x, 1);
        let ddg = b.build().unwrap();
        let v = view(&ddg, &[0, 0, 0], &[]);
        assert!(dead_instances(&ddg, &v).is_empty());
    }

    #[test]
    fn every_node_keeps_an_instance_after_removal() {
        // A communicated chain plus a recurrence: removing communications
        // must never leave a node with zero instances.
        let mut b = Ddg::builder();
        let acc = b.add_node(OpKind::FpAdd);
        b.data_dist(acc, acc, 1);
        let p = b.add_node(OpKind::IntAdd);
        let c = b.add_node(OpKind::Store);
        b.data(p, c).data(p, acc);
        let ddg = b.build().unwrap();
        let mut asg = Assignment::from_partition(&[0, 1, 2]);
        asg.add_instance(p, 2);
        asg.add_instance(p, 0);
        let v = InstanceView::from_assignment(&ddg, &asg, &BTreeSet::new());
        let live = live_instances(&ddg, &v);
        for n in ddg.node_ids() {
            assert!(!live[n.index()].is_empty(), "{n} lost all instances");
        }
    }

    #[test]
    fn local_consumer_keeps_partial_chain() {
        // b has a local consumer in cluster 0, so only nothing dies even
        // though b is also replicated into cluster 1.
        let mut b_ = Ddg::builder();
        let a = b_.add_node(OpKind::IntAdd);
        let b = b_.add_node(OpKind::IntMul);
        let local = b_.add_node(OpKind::Store);
        let remote = b_.add_node(OpKind::Store);
        b_.data(a, b).data(b, local).data(b, remote);
        let ddg = b_.build().unwrap();
        let mut asg = Assignment::from_partition(&[0, 0, 0, 1]);
        asg.add_instance(a, 1);
        asg.add_instance(b, 1);
        let v = InstanceView::from_assignment(&ddg, &asg, &BTreeSet::new());
        assert!(dead_instances(&ddg, &v).is_empty());
    }
}
