//! The replication selection loop (§3.3–§3.4): greedily replicate the
//! lightest subgraph until the bus is no longer oversubscribed.

use std::collections::BTreeSet;

use cvliw_ddg::{Ddg, NodeId};
use cvliw_machine::MachineConfig;
use cvliw_sched::{Assignment, ClusterSet, LoopAnalysis};

use crate::liveness::{always_anchor_into, dead_instances_dense, on_cycle_into, DenseViewRef};
use crate::plan::{
    plan_fits_dense, plan_weight_dense, share_counts_dense, PlanArena, PlanRef, ReplicationPlan,
};

/// The replication engine's persistent workspace: the recurrence and
/// always-anchor slices the liveness queries run on, the dense
/// [`PlanArena`], the usage/extra/freed censuses and the share table. One
/// scratch serves every engine run of a compilation (every II of every
/// replicating mode); [`ReplicationEngine::run_scratch`] resets what each
/// run needs and produces bit-identical outcomes to
/// [`ReplicationEngine::run`].
#[derive(Clone, Debug, Default)]
pub struct EngineScratch {
    on_cycle: Vec<bool>,
    always_anchor: Vec<bool>,
    /// Fingerprint of the loop `on_cycle`/`always_anchor` were computed
    /// for (see [`fingerprint`]), so a scratch accidentally reused across
    /// loops recomputes instead of anchoring liveness on a stale
    /// recurrence set.
    on_cycle_for: Option<u64>,
    arena: PlanArena,
    share: Vec<u32>,
    usage: Vec<[u32; 3]>,
    extra: Vec<[u32; 3]>,
    freed: Vec<[u32; 3]>,
    com_src: Vec<u8>,
    live: Vec<ClusterSet>,
    worklist: Vec<(NodeId, u8)>,
    dead: Vec<(NodeId, u8)>,
    coms_buf: Vec<NodeId>,
}

impl EngineScratch {
    /// Seeds the recurrence-membership and always-anchor slices for `ddg`
    /// from its cached [`LoopAnalysis`] instead of recomputing the SCC
    /// decomposition on first use. `analysis` must have been built for
    /// `ddg`; the engine re-checks the loop fingerprint on every run, so a
    /// scratch handed a *different* loop falls back to recomputing instead
    /// of anchoring liveness on stale recurrences.
    pub fn prepare(&mut self, ddg: &Ddg, analysis: &LoopAnalysis) {
        debug_assert_eq!(ddg.node_count(), analysis.scc_of().len());
        self.on_cycle.clear();
        self.on_cycle.extend(
            analysis
                .scc_of()
                .iter()
                .map(|&c| analysis.scc_recurrent()[c]),
        );
        always_anchor_into(ddg, &self.on_cycle, &mut self.always_anchor);
        self.on_cycle_for = Some(fingerprint(ddg));
    }

    fn ensure_on_cycle(&mut self, ddg: &Ddg) {
        if self.on_cycle_for != Some(fingerprint(ddg)) {
            on_cycle_into(ddg, &mut self.on_cycle);
            always_anchor_into(ddg, &self.on_cycle, &mut self.always_anchor);
            self.on_cycle_for = Some(fingerprint(ddg));
        }
    }
}

/// Identity of a loop for scratch-staleness checks: an FNV-1a hash over
/// the node count and every edge's endpoints, distance and kind — the
/// exact inputs `on_cycle` is a function of. Content-based (addresses
/// would be unsound under allocator reuse), and cheaper than the Tarjan
/// pass it guards.
fn fingerprint(ddg: &Ddg) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(PRIME);
    };
    mix(ddg.node_count() as u64);
    for e in ddg.edges() {
        mix(u64::from(e.src.index() as u32));
        mix(u64::from(e.dst.index() as u32));
        mix(u64::from(e.distance));
        mix(e.is_data() as u64);
    }
    h
}

/// Counters describing what a replication pass did to one loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Communications implied by the partition before replication.
    pub initial_coms: u32,
    /// Communications remaining afterwards.
    pub final_coms: u32,
    /// Instances created, per functional-unit class (`[int, fp, mem]`).
    pub added_by_class: [u32; 3],
    /// Distinct subgraph replications committed.
    pub subgraphs_replicated: u32,
    /// Instances removed because they became useless (§3.2).
    pub removed_instances: u32,
    /// Instances removed, per functional-unit class (`[int, fp, mem]`).
    pub removed_by_class: [u32; 3],
}

impl ReplicationStats {
    /// Total instances created.
    #[must_use]
    pub fn added_instances(&self) -> u32 {
        self.added_by_class.iter().sum()
    }

    /// Communications removed.
    #[must_use]
    pub fn removed_coms(&self) -> u32 {
        self.initial_coms - self.final_coms
    }

    /// Net instances added per class (added − removed; negative values are
    /// clamped to zero for reporting).
    #[must_use]
    pub fn net_added_by_class(&self) -> [u32; 3] {
        let mut net = [0u32; 3];
        for (slot, (&added, &removed)) in net
            .iter_mut()
            .zip(self.added_by_class.iter().zip(&self.removed_by_class))
        {
            *slot = added.saturating_sub(removed);
        }
        net
    }
}

/// Result of running the replication engine at one II.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicationOutcome {
    /// Bus bandwidth now fits every remaining communication.
    Fits,
    /// Resource constraints stopped replication early; the paper's driver
    /// reacts by increasing the II and refining the partition.
    Stuck {
        /// Communications still exceeding bus bandwidth.
        remaining_extra: u32,
    },
}

/// The iterative replication engine of §3.
///
/// Holds the evolving multi-instance [`Assignment`] plus the set of values
/// still communicated, recomputing every plan and weight after each commit
/// (the §3.4 updates: subgraphs grow, shrink and change target clusters as
/// replicas appear).
#[derive(Clone, Debug)]
pub struct ReplicationEngine<'a> {
    ddg: &'a Ddg,
    machine: &'a MachineConfig,
    ii: u32,
    assignment: Assignment,
    coms: BTreeSet<NodeId>,
    stats: ReplicationStats,
    /// Lazily (re)built [`PlanArena`] behind [`ReplicationEngine::plans`],
    /// invalidated by every commit.
    cache: PlanArena,
    cache_valid: bool,
    /// Weights aligned with `cache`'s plan order.
    cached_weights: Vec<f64>,
    weights_valid: bool,
    /// Whether the assignment is known to hold no dead instance — true
    /// after a commit whose removals left the communication set unchanged
    /// (the liveness anchors are then exactly the ones the commit's dead
    /// pass already settled). Gates the arena's region-only fast path.
    settled: bool,
}

impl<'a> ReplicationEngine<'a> {
    /// Creates an engine over a partition-derived assignment at `ii`.
    #[must_use]
    pub fn new(ddg: &'a Ddg, machine: &'a MachineConfig, ii: u32, assignment: Assignment) -> Self {
        let coms: BTreeSet<NodeId> = assignment.communicated(ddg).into_iter().collect();
        let stats = ReplicationStats {
            initial_coms: coms.len() as u32,
            final_coms: coms.len() as u32,
            ..ReplicationStats::default()
        };
        ReplicationEngine {
            ddg,
            machine,
            ii,
            assignment,
            coms,
            stats,
            cache: PlanArena::default(),
            cache_valid: false,
            cached_weights: Vec::new(),
            weights_valid: false,
            settled: false,
        }
    }

    /// Communications exceeding bus bandwidth at the current II
    /// (`extra_coms = nof_coms − bus_coms`, §3).
    #[must_use]
    pub fn extra_coms(&self) -> u32 {
        (self.coms.len() as u32).saturating_sub(self.machine.coms_capacity_per_ii(self.ii))
    }

    fn refresh_plans(&mut self) {
        if self.cache_valid {
            return;
        }
        let mut on_cycle = Vec::new();
        on_cycle_into(self.ddg, &mut on_cycle);
        let mut anchor = Vec::new();
        always_anchor_into(self.ddg, &on_cycle, &mut anchor);
        let coms: Vec<NodeId> = self.coms.iter().copied().collect();
        let clean = self
            .cache
            .build(self.ddg, &self.assignment, &coms, &anchor, self.settled);
        self.settled = clean;
        self.cache_valid = true;
        self.weights_valid = false;
    }

    fn refresh_weights(&mut self) {
        self.refresh_plans();
        if self.weights_valid {
            return;
        }
        let mut share = Vec::new();
        share_counts_dense(
            &self.cache,
            self.ddg.node_count(),
            self.machine.clusters(),
            &mut share,
        );
        let mut usage = Vec::new();
        self.assignment
            .class_usage_into(self.ddg, self.machine.clusters(), &mut usage);
        let mut extra = Vec::new();
        self.cached_weights.clear();
        for i in 0..self.cache.len() {
            self.cached_weights.push(plan_weight_dense(
                self.ddg,
                self.machine,
                self.ii,
                &usage,
                &mut extra,
                &share,
                self.cache.get(i),
            ));
        }
        self.weights_valid = true;
    }

    /// The current plans of every remaining communication, in ascending
    /// value order — a borrowed view into the engine's [`PlanArena`],
    /// rebuilt lazily after commits instead of allocating maps per call.
    pub fn plans(&mut self) -> &PlanArena {
        self.refresh_plans();
        &self.cache
    }

    /// The current plan removing the communication of `com`, if any.
    pub fn plan_of(&mut self, com: NodeId) -> Option<PlanRef<'_>> {
        self.refresh_plans();
        self.cache.by_com(com)
    }

    /// The §3.3 weights of the current plans, aligned with the plan order
    /// of [`ReplicationEngine::plans`].
    pub fn weights(&mut self) -> &[f64] {
        self.refresh_weights();
        &self.cached_weights
    }

    /// The §3.3 weight of `com`'s current plan, if `com` is communicated.
    pub fn weight_of(&mut self, com: NodeId) -> Option<f64> {
        self.refresh_weights();
        self.cache
            .by_com(com)
            .map(|p| self.cached_weights[p.index()])
    }

    /// Runs the greedy loop: while communications exceed bus bandwidth,
    /// commit the feasible plan with the lowest weight; stop when the bus
    /// fits or no plan fits the remaining resources (no over-replication,
    /// §3.3).
    pub fn run(&mut self) -> ReplicationOutcome {
        self.run_scratch(&mut EngineScratch::default())
    }

    /// [`ReplicationEngine::run`] on a persistent [`EngineScratch`]: the
    /// plan arena, the liveness anchors and every census and worklist are
    /// reused across engine runs. Bit-identical outcomes, assignments and
    /// statistics — the arena builds plans in the same ascending-value
    /// order the map oracle iterates, and every weight is the same
    /// arithmetic in the same order.
    pub fn run_scratch(&mut self, scratch: &mut EngineScratch) -> ReplicationOutcome {
        scratch.ensure_on_cycle(self.ddg);
        while self.extra_coms() > 0 {
            let EngineScratch {
                always_anchor,
                arena,
                share,
                usage,
                extra,
                freed,
                com_src,
                live,
                worklist,
                dead,
                coms_buf,
                ..
            } = scratch;
            coms_buf.clear();
            coms_buf.extend(self.coms.iter().copied());
            let clean = arena.build(
                self.ddg,
                &self.assignment,
                coms_buf,
                always_anchor,
                self.settled,
            );
            self.settled = clean;
            share_counts_dense(arena, self.ddg.node_count(), self.machine.clusters(), share);
            self.assignment
                .class_usage_into(self.ddg, self.machine.clusters(), usage);
            let mut best: Option<(f64, u32, NodeId)> = None;
            let mut best_idx = usize::MAX;
            for (i, plan) in arena.iter().enumerate() {
                if !plan_fits_dense(self.ddg, self.machine, self.ii, usage, extra, freed, plan) {
                    continue;
                }
                let w =
                    plan_weight_dense(self.ddg, self.machine, self.ii, usage, extra, share, plan);
                let key = (w, plan.added_instances(), plan.com());
                // Ties break on fewer added instances, then node id.
                if best.as_ref().is_none_or(|b| key < *b) {
                    best = Some(key);
                    best_idx = i;
                }
            }
            if best.is_none() {
                return ReplicationOutcome::Stuck {
                    remaining_extra: self.extra_coms(),
                };
            }
            let plan = arena.get(best_idx);
            self.commit_dense(
                plan.com(),
                plan.adds(),
                always_anchor,
                com_src,
                live,
                worklist,
                dead,
                coms_buf,
            );
        }
        ReplicationOutcome::Fits
    }

    /// Applies one plan: create its instances, drop the communication,
    /// remove instances that became dead, refresh statistics.
    pub fn commit(&mut self, plan: &ReplicationPlan) {
        let mut on_cycle = Vec::new();
        on_cycle_into(self.ddg, &mut on_cycle);
        let mut always_anchor = Vec::new();
        always_anchor_into(self.ddg, &on_cycle, &mut always_anchor);
        let adds: Vec<(NodeId, ClusterSet)> = plan.adds.iter().map(|(&n, &set)| (n, set)).collect();
        self.commit_dense(
            plan.com,
            &adds,
            &always_anchor,
            &mut Vec::new(),
            &mut Vec::new(),
            &mut Vec::new(),
            &mut Vec::new(),
            &mut Vec::new(),
        );
    }

    /// [`ReplicationEngine::commit`] over caller-owned buffers and a
    /// dense adds slice (ascending by node, matching map iteration).
    #[allow(clippy::too_many_arguments)]
    fn commit_dense(
        &mut self,
        com: NodeId,
        adds: &[(NodeId, ClusterSet)],
        always_anchor: &[bool],
        com_src: &mut Vec<u8>,
        live: &mut Vec<ClusterSet>,
        worklist: &mut Vec<(NodeId, u8)>,
        dead: &mut Vec<(NodeId, u8)>,
        coms_buf: &mut Vec<NodeId>,
    ) {
        for &(n, set) in adds {
            for c in set.iter() {
                debug_assert!(!self.assignment.instances(n).contains(c));
                self.assignment.add_instance(n, c);
                self.stats.added_by_class[self.ddg.kind(n).class().index()] += 1;
            }
        }
        self.stats.subgraphs_replicated += 1;

        // The communication set can only shrink (side removals may satisfy
        // other communications too); recompute from scratch.
        self.assignment.communicated_into(self.ddg, coms_buf);
        self.coms.clear();
        self.coms.extend(coms_buf.iter().copied());
        debug_assert!(!self.coms.contains(&com));

        // Remove dead instances (§3.2).
        com_src.clear();
        com_src.extend(coms_buf.iter().map(|&v| self.assignment.copy_source(v)));
        dead_instances_dense(
            self.ddg,
            DenseViewRef {
                instances: self.assignment.instance_sets(),
                coms: coms_buf,
                com_src,
            },
            always_anchor,
            live,
            worklist,
            dead,
        );
        for &(n, c) in dead.iter() {
            self.assignment.remove_instance(n, c);
            self.stats.removed_instances += 1;
            self.stats.removed_by_class[self.ddg.kind(n).class().index()] += 1;
        }
        // Removals can alter the communication set further; settle. If it
        // is unchanged, the liveness anchors still match the dead pass
        // above, so the surviving instances are all provably live (dead
        // removals never sat on a live instance's anchor chain) — the next
        // plan build may take the region-only fast path.
        self.assignment.communicated_into(self.ddg, coms_buf);
        self.settled = self.coms.len() == coms_buf.len()
            && self.coms.iter().zip(coms_buf.iter()).all(|(a, b)| a == b);
        self.coms.clear();
        self.coms.extend(coms_buf.iter().copied());
        self.stats.final_coms = self.coms.len() as u32;
        self.cache_valid = false;
        self.weights_valid = false;
    }

    /// The values still communicated.
    #[must_use]
    pub fn communicated(&self) -> &BTreeSet<NodeId> {
        &self.coms
    }

    /// The loop body being replicated.
    #[must_use]
    pub fn ddg(&self) -> &Ddg {
        self.ddg
    }

    /// The target machine.
    #[must_use]
    pub fn machine(&self) -> &MachineConfig {
        self.machine
    }

    /// The initiation interval replication is working at.
    #[must_use]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Read access to the evolving assignment.
    #[must_use]
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// Consumes the engine, returning the final assignment and statistics.
    #[must_use]
    pub fn into_parts(self) -> (Assignment, ReplicationStats) {
        (self.assignment, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvliw_ddg::OpKind;

    fn machine(spec: &str) -> MachineConfig {
        MachineConfig::from_spec(spec).unwrap()
    }

    /// Two independent producer → remote-consumer pairs: 2 communications.
    fn two_coms() -> (Ddg, Assignment) {
        let mut b = Ddg::builder();
        let p0 = b.add_node(OpKind::IntAdd);
        let c0 = b.add_node(OpKind::Store);
        let p1 = b.add_node(OpKind::IntAdd);
        let c1 = b.add_node(OpKind::Store);
        b.data(p0, c0).data(p1, c1);
        let ddg = b.build().unwrap();
        (ddg, Assignment::from_partition(&[0, 1, 0, 2]))
    }

    #[test]
    fn engine_replicates_exactly_extra_coms() {
        let (ddg, asg) = two_coms();
        let m = machine("4c1b2l64r");
        // II = 2 → bus capacity 1 → extra = 1: exactly one replication.
        let mut engine = ReplicationEngine::new(&ddg, &m, 2, asg);
        assert_eq!(engine.extra_coms(), 1);
        assert_eq!(engine.run(), ReplicationOutcome::Fits);
        let (_, stats) = engine.into_parts();
        assert_eq!(stats.removed_coms(), 1, "no over-replication");
        assert_eq!(stats.final_coms, 1);
        assert_eq!(stats.added_by_class, [1, 0, 0]);
        // the dead original producer instance was cleaned up
        assert_eq!(stats.removed_instances, 1);
    }

    #[test]
    fn engine_removes_all_when_bus_has_no_room() {
        let (ddg, asg) = two_coms();
        let m = machine("4c1b2l64r");
        // II = 1 → capacity 0 → both communications must go.
        let mut engine = ReplicationEngine::new(&ddg, &m, 1, asg);
        assert_eq!(engine.extra_coms(), 2);
        assert_eq!(engine.run(), ReplicationOutcome::Fits);
        assert!(engine.communicated().is_empty());
    }

    #[test]
    fn engine_no_ops_when_bus_fits() {
        let (ddg, asg) = two_coms();
        let m = machine("4c2b2l64r");
        // II = 2, 2 buses → capacity 2 → nothing to do.
        let mut engine = ReplicationEngine::new(&ddg, &m, 2, asg);
        assert_eq!(engine.extra_coms(), 0);
        assert_eq!(engine.run(), ReplicationOutcome::Fits);
        let (asg2, stats) = engine.into_parts();
        assert_eq!(stats.added_instances(), 0);
        assert!(asg2.is_singleton());
    }

    #[test]
    fn engine_gets_stuck_when_nothing_fits() {
        // Producer chains too large for the target cluster's capacity:
        // 2 int ops must move into a cluster whose int unit has capacity
        // II·1 = 1 and already holds 1 int op.
        let mut b = Ddg::builder();
        let a = b.add_node(OpKind::IntAdd);
        let p = b.add_node(OpKind::IntMul);
        let local = b.add_node(OpKind::IntAdd); // fills cluster 1's int slot
        let c = b.add_node(OpKind::Store);
        b.data(a, p).data(p, c).data(local, c);
        let ddg = b.build().unwrap();
        let asg = Assignment::from_partition(&[0, 0, 1, 1]);
        let m = machine("4c1b2l64r");
        let mut engine = ReplicationEngine::new(&ddg, &m, 1, asg);
        assert_eq!(engine.extra_coms(), 1);
        assert_eq!(
            engine.run(),
            ReplicationOutcome::Stuck { remaining_extra: 1 }
        );
    }

    #[test]
    fn weights_prefer_cheaper_subgraphs() {
        // com A needs 1 replica; com B needs a 3-node chain: A is lighter.
        let mut b = Ddg::builder();
        let a = b.add_node(OpKind::IntAdd);
        let ca = b.add_node(OpKind::Store);
        let x = b.add_node(OpKind::IntAdd);
        let y = b.add_node(OpKind::IntAdd);
        let z = b.add_node(OpKind::IntMul);
        let cz = b.add_node(OpKind::Store);
        b.data(a, ca).data(x, y).data(y, z).data(z, cz);
        let ddg = b.build().unwrap();
        let asg = Assignment::from_partition(&[0, 1, 0, 0, 0, 2]);
        let m = machine("4c1b2l64r");
        let mut engine = ReplicationEngine::new(&ddg, &m, 4, asg);
        let wa = engine.weight_of(a).unwrap();
        let wz = engine.weight_of(z).unwrap();
        assert!(wa < wz, "single-node subgraph is lighter");
    }

    #[test]
    fn commit_updates_other_plans() {
        // After removing one communication, the other plan's subgraph can
        // grow to include the freshly replicated nodes (Figure 6, S_J).
        let mut b = Ddg::builder();
        let e = b.add_node(OpKind::IntAdd);
        let j = b.add_node(OpKind::IntMul);
        let ce = b.add_node(OpKind::Store); // remote consumer of e
        let cj = b.add_node(OpKind::Store); // remote consumer of j
        b.data(e, j).data(e, ce).data(j, cj);
        let ddg = b.build().unwrap();
        // e, j in cluster 0; ce in 1; cj in 2.
        let asg = Assignment::from_partition(&[0, 0, 1, 2]);
        let m = machine("4c1b2l64r");
        let mut engine = ReplicationEngine::new(&ddg, &m, 8, asg);
        // S_j excludes e while e is communicated.
        let before_j: Vec<NodeId> = engine.plan_of(j).unwrap().subgraph().collect();
        assert_eq!(before_j, vec![j]);
        let plan_e = engine.plan_of(e).unwrap().to_plan();
        engine.commit(&plan_e);
        // e is no longer a communication: S_j must now pull it.
        let after_j: Vec<NodeId> = engine.plan_of(j).unwrap().subgraph().collect();
        assert_eq!(after_j, vec![e, j]);
    }
}
