//! Replication for **acyclic** code — the transfer the paper's §6 suggests:
//! "heuristics proposed in this paper to reduce scheduling length can be
//! also applied to acyclic code".
//!
//! A basic block (or superblock) has no initiation interval; the only
//! objective is schedule length. Communications hurt exactly as in
//! Figure 11: a bus hop on the critical path stretches the schedule, and
//! replicating the producer into the consumer's cluster removes the hop.
//! This module provides a cluster-aware list scheduler for DAGs
//! ([`schedule_acyclic`]) and the greedy critical-path replication pass
//! ([`replicate_for_acyclic_length`]); the paper's Figure 11 (length 4 → 3
//! by copying `A` into one cluster) is reproduced in the tests.

use std::collections::BTreeMap;

use cvliw_ddg::{topo_order, Ddg, NodeId, OpKind};
use cvliw_machine::MachineConfig;
use cvliw_sched::Assignment;

/// One scheduled transfer of a value over the interconnect.
#[derive(Clone, Copy, Debug)]
struct CopyIssue {
    /// Issue cycle of the (first) transfer.
    cycle: u32,
    /// Shared bus carrying it (0 on point-to-point fabrics).
    bus: u8,
    /// Cluster the transfer reads from.
    source: u8,
}

/// A schedule for one acyclic region.
#[derive(Clone, Debug)]
pub struct AcyclicSchedule {
    instances: BTreeMap<(NodeId, u8), u32>,
    copies: BTreeMap<NodeId, CopyIssue>,
    /// Point-to-point fabrics deliver per destination: the cycle a value
    /// becomes readable in a cluster (empty on shared-bus machines, whose
    /// copies broadcast).
    ptp_ready: BTreeMap<(NodeId, u8), u32>,
    length: u32,
}

impl AcyclicSchedule {
    /// Completion time of the region: `max(issue + latency)` over all
    /// instances and copies.
    #[must_use]
    pub fn length(&self) -> u32 {
        self.length
    }

    /// Issue cycle of an instance, if scheduled.
    #[must_use]
    pub fn instance_cycle(&self, n: NodeId, cluster: u8) -> Option<u32> {
        self.instances.get(&(n, cluster)).copied()
    }

    /// Issue cycle and bus of the (first) copy of `n`, if any.
    #[must_use]
    pub fn copy_of(&self, n: NodeId) -> Option<(u32, u8)> {
        self.copies.get(&n).map(|c| (c.cycle, c.bus))
    }

    /// Cluster the (first) copy of `n` reads from, if any.
    #[must_use]
    pub fn copy_source_of(&self, n: NodeId) -> Option<u8> {
        self.copies.get(&n).map(|c| c.source)
    }

    /// Number of bus copies in the region.
    #[must_use]
    pub fn copy_count(&self) -> u32 {
        self.copies.len() as u32
    }

    /// Number of scheduled functional-unit operations.
    #[must_use]
    pub fn op_count(&self) -> u32 {
        self.instances.len() as u32
    }
}

/// Why an acyclic region failed to schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AcyclicError {
    /// The region contains a loop-carried edge; acyclic scheduling is for
    /// straight-line regions only.
    LoopCarriedEdge {
        /// Producer of the offending dependence.
        src: NodeId,
        /// Consumer of the offending dependence.
        dst: NodeId,
    },
    /// A value must cross clusters but the machine has no interconnect
    /// links.
    NoBus {
        /// The value that cannot travel.
        value: NodeId,
    },
}

impl std::fmt::Display for AcyclicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AcyclicError::LoopCarriedEdge { src, dst } => {
                write!(
                    f,
                    "loop-carried dependence {src} -> {dst} in an acyclic region"
                )
            }
            AcyclicError::NoBus { value } => {
                write!(
                    f,
                    "value {value} crosses clusters but the machine has no links"
                )
            }
        }
    }
}

impl std::error::Error for AcyclicError {}

/// List-schedules a DAG for a clustered machine under a (possibly
/// multi-instance) assignment: operations issue in topological order at the
/// earliest cycle where their operands have arrived and a functional unit
/// of their class is free; cross-cluster reads go through a bus copy
/// scheduled on the earliest bus slot after the producer completes.
///
/// # Errors
///
/// [`AcyclicError::LoopCarriedEdge`] if any edge has distance > 0,
/// [`AcyclicError::NoBus`] if communication is needed on a bus-less
/// machine.
pub fn schedule_acyclic(
    ddg: &Ddg,
    machine: &MachineConfig,
    assignment: &Assignment,
) -> Result<AcyclicSchedule, AcyclicError> {
    if let Some(e) = ddg.edges().find(|e| e.distance > 0) {
        return Err(AcyclicError::LoopCarriedEdge {
            src: e.src,
            dst: e.dst,
        });
    }

    let mut fu_busy: Vec<[Vec<u32>; 3]> =
        vec![[Vec::new(), Vec::new(), Vec::new()]; machine.clusters() as usize];
    // One busy row per interconnect link: the shared buses, or the
    // dedicated per-pair links of a point-to-point fabric.
    let mut link_busy: Vec<Vec<bool>> = vec![Vec::new(); machine.links() as usize];
    let mut out = AcyclicSchedule {
        instances: BTreeMap::new(),
        copies: BTreeMap::new(),
        ptp_ready: BTreeMap::new(),
        length: 0,
    };

    let fu_free = |busy: &mut Vec<[Vec<u32>; 3]>,
                   machine: &MachineConfig,
                   c: u8,
                   class: usize,
                   from: u32|
     -> u32 {
        let cap = u32::from(machine.fu_counts_in(c).of(cvliw_ddg::OpClass::ALL[class]));
        let row = &mut busy[c as usize][class];
        let mut t = from as usize;
        loop {
            if row.len() <= t {
                row.resize(t + 1, 0);
            }
            if row[t] < cap {
                row[t] += 1;
                return t as u32;
            }
            t += 1;
        }
    };

    // Books `occ` cycles on one link row at the earliest free slot ≥
    // `from`, returning the issue cycle.
    fn book_link(row: &mut Vec<bool>, from: u32, occ: usize) -> u32 {
        let mut t = from as usize;
        loop {
            if row.len() < t + occ {
                row.resize(t + occ, false);
            }
            if row[t..t + occ].iter().all(|&x| !x) {
                row[t..t + occ].iter_mut().for_each(|x| *x = true);
                return t as u32;
            }
            t += 1;
        }
    }

    // The cycle at which `n`'s value becomes readable in cluster `c`,
    // inserting an interconnect transfer on demand. Returns `None` for a
    // NoBus failure.
    fn value_ready_in(
        ddg: &Ddg,
        machine: &MachineConfig,
        out: &mut AcyclicSchedule,
        link_busy: &mut [Vec<bool>],
        n: NodeId,
        c: u8,
    ) -> Result<u32, AcyclicError> {
        // Local instance?
        let local: Option<u32> = out
            .instances
            .iter()
            .filter(|&(&(m, mc), _)| m == n && mc == c)
            .map(|(_, &t)| t + machine.latency(ddg.kind(n)))
            .min();
        if let Some(t) = local {
            return Ok(t);
        }
        let shared = machine.interconnect().is_shared_bus();
        // Existing delivery? Shared buses broadcast (one copy serves every
        // cluster); point-to-point transfers are per destination.
        if shared {
            if let Some(copy) = out.copies.get(&n) {
                return Ok(copy.cycle + machine.bus_latency());
            }
        } else if let Some(&ready) = out.ptp_ready.get(&(n, c)) {
            return Ok(ready);
        }
        // Schedule a new transfer after the earliest instance completes.
        if machine.links() == 0 {
            return Err(AcyclicError::NoBus { value: n });
        }
        let (src_done, source) = out
            .instances
            .iter()
            .filter(|&(&(m, _), _)| m == n)
            .map(|(&(_, mc), &t)| (t + machine.latency(ddg.kind(n)), mc))
            .min()
            .expect("producer scheduled before consumers (topological order)");
        if shared {
            // Earliest bus able to carry the broadcast.
            let lat = machine.bus_latency() as usize;
            let mut t = src_done as usize;
            loop {
                for (b, busy) in link_busy.iter_mut().enumerate() {
                    if busy.len() < t + lat {
                        busy.resize(t + lat, false);
                    }
                    if busy[t..t + lat].iter().all(|&x| !x) {
                        busy[t..t + lat].iter_mut().for_each(|x| *x = true);
                        out.copies.insert(
                            n,
                            CopyIssue {
                                cycle: t as u32,
                                bus: b as u8,
                                source,
                            },
                        );
                        out.length = out.length.max((t + lat) as u32);
                        return Ok((t as u32) + machine.bus_latency());
                    }
                }
                t += 1;
            }
        } else {
            // The dedicated `source → c` link, at its per-pair occupancy.
            let link = machine.link_of(source, c) as usize;
            let occ = machine.link_occupancy(source, c) as usize;
            let t = book_link(&mut link_busy[link], src_done, occ);
            let ready = t + machine.transfer_latency(source, c);
            out.copies.entry(n).or_insert(CopyIssue {
                cycle: t,
                bus: 0,
                source,
            });
            out.ptp_ready.insert((n, c), ready);
            out.length = out.length.max(ready);
            Ok(ready)
        }
    }

    for n in topo_order(ddg) {
        for c in assignment.instances(n).iter() {
            let mut ready = 0u32;
            for e in ddg.in_edges(n) {
                let arrival = if e.is_data() {
                    value_ready_in(ddg, machine, &mut out, &mut link_busy, e.src, c)?
                } else {
                    // Memory ordering: after every instance of the producer
                    // completes, regardless of cluster (centralized cache).
                    out.instances
                        .iter()
                        .filter(|&(&(m, _), _)| m == e.src)
                        .map(|(_, &t)| t + machine.latency(ddg.kind(e.src)))
                        .max()
                        .unwrap_or(0)
                };
                ready = ready.max(arrival);
            }
            let class = ddg.kind(n).class().index();
            let t = fu_free(&mut fu_busy, machine, c, class, ready);
            out.instances.insert((n, c), t);
            out.length = out.length.max(t + machine.latency(ddg.kind(n)));
        }
    }
    Ok(out)
}

/// The §5.1 heuristic transferred to acyclic code: while a cross-cluster
/// dependence sits on the critical path, replicate the producer into the
/// consuming cluster (capacity permitting) and reschedule; keep the copy
/// only if the schedule got shorter. Stores are never replicated.
///
/// Returns the improved assignment and its schedule.
///
/// # Errors
///
/// Propagates [`schedule_acyclic`]'s errors on the initial assignment.
pub fn replicate_for_acyclic_length(
    ddg: &Ddg,
    machine: &MachineConfig,
    assignment: Assignment,
) -> Result<(Assignment, AcyclicSchedule), AcyclicError> {
    let mut best_asg = assignment;
    let mut best = schedule_acyclic(ddg, machine, &best_asg)?;

    for _round in 0..ddg.node_count() {
        let Some((p, c)) = critical_bus_hop(ddg, machine, &best_asg, &best) else {
            break;
        };

        let mut trial = best_asg.clone();
        trial.add_instance(p, c);
        match schedule_acyclic(ddg, machine, &trial) {
            Ok(s) if s.length() < best.length() => {
                best_asg = trial;
                best = s;
            }
            _ => break, // no improvement (or failure): stop greedily
        }
    }
    Ok((best_asg, best))
}

/// Walks the critical paths of `sched` backwards through **binding**
/// operands (those whose arrival equals the consumer's issue cycle) and
/// returns the first dependence that crossed the bus: the producer to
/// replicate and the cluster to replicate it into.
fn critical_bus_hop(
    ddg: &Ddg,
    machine: &MachineConfig,
    assignment: &Assignment,
    sched: &AcyclicSchedule,
) -> Option<(NodeId, u8)> {
    let mut stack: Vec<(NodeId, u8, u32)> = sched
        .instances
        .iter()
        .filter(|&(&(n, _), &t)| t + machine.latency(ddg.kind(n)) == sched.length())
        .map(|(&(n, c), &t)| (n, c, t))
        .collect();
    let mut seen = std::collections::BTreeSet::new();
    while let Some((n, c, t_n)) = stack.pop() {
        if !seen.insert((n, c)) {
            continue;
        }
        for &p in ddg.data_preds(n) {
            if p == n || ddg.kind(p) == OpKind::Store {
                continue;
            }
            if assignment.instances(p).contains(c) {
                let t_p = sched.instance_cycle(p, c).expect("instance scheduled");
                if t_p + machine.latency(ddg.kind(p)) == t_n {
                    stack.push((p, c, t_p)); // binding local operand
                }
            } else if machine.interconnect().is_shared_bus() {
                if let Some((tc, _)) = sched.copy_of(p) {
                    if tc + machine.bus_latency() == t_n {
                        return Some((p, c)); // binding bus hop: replicate here
                    }
                }
            } else if sched.ptp_ready.get(&(p, c)) == Some(&t_n) {
                return Some((p, c)); // binding link hop: replicate here
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvliw_machine::{FuCounts, LatencyTable};

    /// The paper's Figure 11: `A` in cluster 2 feeds `D → E` in cluster 1
    /// and `F` in cluster 3; `A → B → C` stay in cluster 2. With unit
    /// latencies and a 1-cycle bus the left schedule is 4 cycles; after
    /// replicating `A` into cluster 1 only, it is 3.
    fn figure_11() -> (Ddg, Assignment, MachineConfig) {
        let mut b = Ddg::builder();
        let a = b.add_labeled(OpKind::IntAdd, "A");
        let bb = b.add_labeled(OpKind::IntAdd, "B");
        let c = b.add_labeled(OpKind::IntAdd, "C");
        let d = b.add_labeled(OpKind::IntAdd, "D");
        let e = b.add_labeled(OpKind::IntAdd, "E");
        let f = b.add_labeled(OpKind::IntAdd, "F");
        b.data(a, bb).data(bb, c).data(a, d).data(d, e).data(a, f);
        let ddg = b.build().unwrap();
        // Clusters: D,E → 0; A,B,C → 1; F → 2.
        let asg = Assignment::from_partition(&[1, 1, 1, 0, 0, 2]);
        let machine = MachineConfig::heterogeneous(
            vec![
                FuCounts {
                    int: 2,
                    fp: 0,
                    mem: 0
                };
                3
            ],
            1,
            1,
            64,
            LatencyTable::UNIT,
        )
        .unwrap();
        (ddg, asg, machine)
    }

    #[test]
    fn figure_11_baseline_length_is_four() {
        let (ddg, asg, m) = figure_11();
        let s = schedule_acyclic(&ddg, &m, &asg).unwrap();
        // A@0; copy@1 (1 cycle); D@2; E@3 → completes at 4.
        assert_eq!(s.length(), 4, "left side of Figure 11");
        assert_eq!(s.copy_count(), 1, "one communication of A");
    }

    #[test]
    fn figure_11_replication_reaches_three() {
        let (ddg, asg, m) = figure_11();
        let (improved, s) = replicate_for_acyclic_length(&ddg, &m, asg).unwrap();
        assert_eq!(s.length(), 3, "right side of Figure 11");
        let a = ddg.find_by_label("A").unwrap();
        assert!(
            improved.instances(a).len() >= 2,
            "A replicated into cluster 0"
        );
        // The copy of A may remain for cluster 2's F — the paper's point:
        // replicate only where it helps the critical path.
        assert!(s.copy_count() <= 1);
    }

    #[test]
    fn loop_carried_edges_are_rejected() {
        let mut b = Ddg::builder();
        let x = b.add_node(OpKind::FpAdd);
        b.data_dist(x, x, 1);
        let ddg = b.build().unwrap();
        let m = MachineConfig::from_spec("2c1b2l64r").unwrap();
        let asg = Assignment::from_partition(&[0]);
        assert!(matches!(
            schedule_acyclic(&ddg, &m, &asg),
            Err(AcyclicError::LoopCarriedEdge { .. })
        ));
    }

    #[test]
    fn no_bus_is_reported() {
        let mut b = Ddg::builder();
        let x = b.add_node(OpKind::IntAdd);
        let y = b.add_node(OpKind::IntAdd);
        b.data(x, y);
        let ddg = b.build().unwrap();
        // Two clusters, zero buses.
        let m = MachineConfig::heterogeneous(
            vec![
                FuCounts {
                    int: 1,
                    fp: 1,
                    mem: 1
                };
                2
            ],
            0,
            1,
            64,
            LatencyTable::UNIT,
        )
        .unwrap();
        let asg = Assignment::from_partition(&[0, 1]);
        assert!(matches!(
            schedule_acyclic(&ddg, &m, &asg),
            Err(AcyclicError::NoBus { .. })
        ));
    }

    #[test]
    fn dependences_and_resources_are_respected() {
        // Two parallel chains on one 1-wide cluster: issue slots serialize.
        let mut b = Ddg::builder();
        let x0 = b.add_node(OpKind::IntAdd);
        let x1 = b.add_node(OpKind::IntAdd);
        let y0 = b.add_node(OpKind::IntAdd);
        let y1 = b.add_node(OpKind::IntAdd);
        b.data(x0, y0).data(x1, y1);
        let ddg = b.build().unwrap();
        let m = MachineConfig::heterogeneous(
            vec![FuCounts {
                int: 1,
                fp: 0,
                mem: 0,
            }],
            0,
            1,
            64,
            LatencyTable::UNIT,
        )
        .unwrap();
        let asg = Assignment::from_partition(&[0, 0, 0, 0]);
        let s = schedule_acyclic(&ddg, &m, &asg).unwrap();
        // 4 unit ops, 1 unit per cycle → length exactly 4.
        assert_eq!(s.length(), 4);
        // Consumers issue strictly after their producers complete.
        for e in ddg.edges() {
            let tp = s.instance_cycle(e.src, 0).unwrap();
            let tc = s.instance_cycle(e.dst, 0).unwrap();
            assert!(tc > tp, "{} -> {}", e.src, e.dst);
        }
    }

    #[test]
    fn mem_ordering_serializes_against_all_instances() {
        let mut b = Ddg::builder();
        let st = b.add_node(OpKind::Store);
        let ld = b.add_node(OpKind::Load);
        b.mem_dep(st, ld, 0);
        let ddg = b.build().unwrap();
        let m = MachineConfig::from_spec("2c1b2l64r").unwrap();
        let asg = Assignment::from_partition(&[0, 1]);
        let s = schedule_acyclic(&ddg, &m, &asg).unwrap();
        let t_st = s.instance_cycle(cvliw_ddg::NodeId::new(0), 0).unwrap();
        let t_ld = s.instance_cycle(cvliw_ddg::NodeId::new(1), 1).unwrap();
        // Load waits for the store's 2-cycle latency, with no bus copy
        // (memory is centralized).
        assert!(t_ld >= t_st + 2);
        assert_eq!(s.copy_count(), 0);
    }

    #[test]
    fn point_to_point_fabrics_schedule_and_replicate() {
        // The Figure-11 DDG on ring and crossbar machines: every value
        // still arrives (per-destination link transfers), and critical
        // link hops are still replicated away when it helps.
        for spec in ["4c-ring1l64r", "4c-xbar1l64r"] {
            let mut b = Ddg::builder();
            let a = b.add_labeled(OpKind::IntAdd, "A");
            let bb = b.add_node(OpKind::IntAdd);
            let c = b.add_node(OpKind::IntAdd);
            let d = b.add_node(OpKind::IntAdd);
            let e = b.add_node(OpKind::IntAdd);
            let f = b.add_node(OpKind::IntAdd);
            b.data(a, bb).data(bb, c).data(a, d).data(d, e).data(a, f);
            let ddg = b.build().unwrap();
            let asg = Assignment::from_partition(&[1, 1, 1, 0, 0, 2]);
            let m = MachineConfig::from_spec(spec).unwrap();
            let before = schedule_acyclic(&ddg, &m, &asg).unwrap();
            assert!(before.copy_count() >= 1, "{spec}: A crosses clusters");
            // Consumers issue only after their transfer delivered, and the
            // transfer reads a cluster actually holding the producer.
            let a_id = ddg.find_by_label("A").unwrap();
            let t_d = before.instance_cycle(NodeId::new(3), 0).unwrap();
            let ready = before.ptp_ready[&(a_id, 0)];
            assert!(t_d >= ready, "{spec}: D waits for A's transfer");
            let src = before.copy_source_of(a_id).unwrap();
            assert!(asg.instances(a_id).contains(src), "{spec}: valid source");

            let (improved, after) = replicate_for_acyclic_length(&ddg, &m, asg).unwrap();
            assert!(after.length() <= before.length(), "{spec}");
            let _ = improved;
        }
    }

    #[test]
    fn replication_is_a_no_op_when_nothing_crosses() {
        let mut b = Ddg::builder();
        let x = b.add_node(OpKind::IntAdd);
        let y = b.add_node(OpKind::IntAdd);
        b.data(x, y);
        let ddg = b.build().unwrap();
        let m = MachineConfig::from_spec("2c1b2l64r").unwrap();
        let asg = Assignment::from_partition(&[0, 0]);
        let before = schedule_acyclic(&ddg, &m, &asg).unwrap().length();
        let (improved, s) = replicate_for_acyclic_length(&ddg, &m, asg).unwrap();
        assert_eq!(s.length(), before);
        assert_eq!(improved.instance_count(), 2);
    }
}
