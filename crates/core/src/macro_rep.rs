//! §5.2: replicating macro-nodes for multiple communications at once.
//!
//! The paper explored replicating whole macro-nodes from the coarsening
//! hierarchy so one replication removes several communications, and found
//! it ineffective: "too many unnecessary instructions were replicated".
//! This module implements that alternative so the ablation benchmark can
//! reproduce the comparison.

use std::collections::BTreeSet;

use cvliw_ddg::{Ddg, NodeId, OpClass, OpKind};
use cvliw_machine::MachineConfig;
use cvliw_partition::{coarsen, Partition};
use cvliw_sched::{Assignment, ClusterSet};

use crate::engine::ReplicationStats;
use crate::liveness::{dead_instances, InstanceView};

/// Replicates coarsening macro-nodes instead of per-communication
/// subgraphs: for each macro containing communicated values, copy the whole
/// macro into every cluster those values are needed in, as long as it fits.
///
/// Returns the resulting assignment and the same statistics the §3 engine
/// reports, so the two strategies compare directly.
#[must_use]
pub fn macro_replicate(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    partition: &Partition,
) -> (Assignment, ReplicationStats) {
    let mut assignment = partition.to_assignment();
    let mut coms: BTreeSet<NodeId> = assignment.communicated(ddg).into_iter().collect();
    let mut stats = ReplicationStats {
        initial_coms: coms.len() as u32,
        final_coms: coms.len() as u32,
        ..ReplicationStats::default()
    };

    let hierarchy = coarsen(ddg, machine, ii);
    // Work at a mid level: coarse enough that macros bundle several
    // operations, fine enough that they are not whole clusters.
    let level = &hierarchy.levels[hierarchy.levels.len() / 2];

    for group in level.groups() {
        if (coms.len() as u32) <= machine.coms_capacity_per_ii(ii) {
            break; // bus fits: stop, as the §3 engine would
        }
        let members: Vec<NodeId> = group.iter().map(|&i| NodeId::new(i as u32)).collect();
        // Clusters that need any value produced inside this macro.
        let mut targets = ClusterSet::empty();
        let mut macro_coms = 0u32;
        for &n in &members {
            if coms.contains(&n) {
                macro_coms += 1;
                targets = targets.union(assignment.missing_consumer_clusters(ddg, n));
            }
        }
        if macro_coms == 0 || targets.is_empty() {
            continue;
        }

        // Candidate adds: every non-store member lacking an instance in a
        // target cluster (stores are never replicated).
        let mut adds: Vec<(NodeId, u8)> = Vec::new();
        for &n in &members {
            if ddg.kind(n) == OpKind::Store {
                continue;
            }
            for c in targets.iter() {
                if !assignment.instances(n).contains(c) {
                    adds.push((n, c));
                }
            }
        }
        if adds.is_empty() {
            continue;
        }

        // Capacity check.
        let usage = assignment.class_usage(ddg, machine.clusters());
        let mut extra_ops = vec![[0u32; 3]; machine.clusters() as usize];
        for &(n, c) in &adds {
            extra_ops[c as usize][ddg.kind(n).class().index()] += 1;
        }
        let fits = (0..machine.clusters() as usize).all(|c| {
            OpClass::ALL.iter().all(|&class| {
                usage[c][class.index()] + extra_ops[c][class.index()]
                    <= u32::from(machine.fu_count_in(c as u8, class)) * ii
            })
        });
        if !fits {
            continue;
        }

        // Commit only if at least one communication disappears.
        let mut candidate = assignment.clone();
        for &(n, c) in &adds {
            candidate.add_instance(n, c);
        }
        let new_coms: BTreeSet<NodeId> = candidate.communicated(ddg).into_iter().collect();
        if new_coms.len() >= coms.len() {
            continue;
        }
        for &(n, _) in &adds {
            stats.added_by_class[ddg.kind(n).class().index()] += 1;
        }
        stats.subgraphs_replicated += 1;
        assignment = candidate;
        coms = new_coms;
        let view = InstanceView::from_assignment(ddg, &assignment, &coms);
        for (n, c) in dead_instances(ddg, &view) {
            assignment.remove_instance(n, c);
            stats.removed_instances += 1;
            stats.removed_by_class[ddg.kind(n).class().index()] += 1;
        }
        coms = assignment.communicated(ddg).into_iter().collect();
    }

    stats.final_coms = coms.len() as u32;
    (assignment, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ReplicationEngine;

    /// A producer pair in one macro feeding two remote clusters.
    fn case() -> (Ddg, Partition) {
        let mut b = Ddg::builder();
        let x = b.add_node(OpKind::IntAdd);
        let y = b.add_node(OpKind::IntMul);
        b.data(x, y);
        let c0 = b.add_node(OpKind::Store);
        let c1 = b.add_node(OpKind::Store);
        b.data(y, c0).data(x, c1);
        let ddg = b.build().unwrap();
        let part = Partition::from_vec(vec![0, 0, 1, 2]);
        (ddg, part)
    }

    #[test]
    fn macro_replication_removes_communications() {
        let (ddg, part) = case();
        let m = MachineConfig::from_spec("4c1b2l64r").unwrap();
        // II=2: capacity 1, two coms → work needed.
        let (asg, stats) = macro_replicate(&ddg, &m, 2, &part);
        assert!(stats.final_coms <= stats.initial_coms);
        assert!(asg.comm_count(&ddg) == stats.final_coms);
    }

    #[test]
    fn macro_replication_is_no_op_when_bus_fits() {
        let (ddg, part) = case();
        let m = MachineConfig::from_spec("4c2b2l64r").unwrap();
        let (_, stats) = macro_replicate(&ddg, &m, 2, &part);
        assert_eq!(stats.added_instances(), 0);
    }

    #[test]
    fn macro_replication_costs_at_least_as_much_as_subgraphs() {
        let (ddg, part) = case();
        let m = MachineConfig::from_spec("4c1b2l64r").unwrap();
        let (_, macro_stats) = macro_replicate(&ddg, &m, 2, &part);
        let mut engine = ReplicationEngine::new(&ddg, &m, 2, part.to_assignment());
        engine.run();
        let (_, fine_stats) = engine.into_parts();
        if macro_stats.removed_coms() >= fine_stats.removed_coms() {
            assert!(
                macro_stats.added_instances() >= fine_stats.added_instances(),
                "the paper's finding: macro replication wastes instructions"
            );
        }
    }
}
