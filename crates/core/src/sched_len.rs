//! §5.1: replicate to reduce the schedule length.
//!
//! For loops with small trip counts the prolog/epilog dominates execution
//! time, so shaving the schedule length matters more than the II. The
//! extension finds communication edges on the critical path of one
//! iteration and copies the producer's subgraph into just the consumer's
//! cluster (Figure 11) — without necessarily removing the communication —
//! whenever that shortens the estimated schedule and fits the resources.

use cvliw_ddg::{time_bounds, Ddg, NodeId, OpClass};
use cvliw_machine::MachineConfig;
use cvliw_sched::{Assignment, ClusterSet, LoopAnalysis};

use crate::liveness::{always_anchor_into, dead_instances_dense, on_cycle_into, DenseViewRef};

/// Upper bound on extension rounds; each round commits one replication.
const MAX_ROUNDS: usize = 8;

/// The assignment-adjusted edge latency: the producer's base latency, plus
/// the transfer cost when some consumer instance lives in a cluster
/// without the producer (pair-dependent on point-to-point fabrics, the
/// flat bus latency on shared buses). `base_lat` is either a machine
/// lookup or the cached vector.
fn comm_lat<'a>(
    machine: &'a MachineConfig,
    assignment: &'a Assignment,
    base_lat: &'a impl Fn(NodeId) -> u32,
) -> impl Fn(&cvliw_ddg::Edge) -> u32 + 'a {
    let uniform = machine.uniform_transfer_latency();
    move |e: &cvliw_ddg::Edge| {
        let base = base_lat(e.src);
        if !e.is_data() {
            return base;
        }
        let missing = assignment
            .instances(e.dst)
            .difference(assignment.instances(e.src));
        if missing.is_empty() {
            base
        } else {
            base + cvliw_sched::comm_penalty(machine, assignment, e.src, missing, uniform)
        }
    }
}

/// Estimated critical-path length of one iteration (issue span) with bus
/// latency charged on cross-cluster data edges; `None` below RecMII.
/// `extend_core` inlines this (one `time_bounds` per round shares slacks
/// with the zero-slack filter); the tests keep it as the oracle.
#[cfg_attr(not(test), allow(dead_code))]
fn estimated_length(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    assignment: &Assignment,
    base_lat: &impl Fn(NodeId) -> u32,
) -> Option<i64> {
    let lat = comm_lat(machine, assignment, base_lat);
    time_bounds(ddg, ii, lat).map(|tb| tb.length)
}

/// Applies the §5.1 extension: repeatedly pick a zero-slack cross-cluster
/// data edge, replicate the producer into that one consumer cluster, and
/// keep the change only if the estimated schedule length shrinks.
#[must_use]
pub fn extend_for_length(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    assignment: Assignment,
) -> Assignment {
    let base = |n: NodeId| machine.latency(ddg.kind(n));
    extend_core(ddg, machine, ii, assignment, &base)
}

/// [`extend_for_length`] on a cached [`LoopAnalysis`] (bit-identical; the
/// producer latencies are read from the cached vector).
#[must_use]
pub fn extend_for_length_with(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    assignment: Assignment,
    analysis: &LoopAnalysis,
) -> Assignment {
    let base = |n: NodeId| analysis.node_lat()[n.index()];
    extend_core(ddg, machine, ii, assignment, &base)
}

fn extend_core(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    mut assignment: Assignment,
    base_lat: &impl Fn(NodeId) -> u32,
) -> Assignment {
    let n = ddg.node_count();
    // Buffers reused across rounds and candidates: the Figure-4 walk, the
    // Figure-5 liveness query, the censuses and the span estimate.
    let mut cand_lat: Vec<u32> = Vec::new();
    let mut asap: Vec<i64> = Vec::new();
    let mut coms: Vec<NodeId> = Vec::new();
    let mut is_com = vec![false; n];
    let mut visited = vec![0u32; n];
    let mut added_mark = vec![0u32; n];
    let mut epoch = 0u32;
    let mut stack: Vec<NodeId> = Vec::new();
    let mut adds: Vec<NodeId> = Vec::new();
    let mut usage: Vec<[u32; 3]> = Vec::new();
    let mut coms_buf: Vec<NodeId> = Vec::new();
    let mut com_src: Vec<u8> = Vec::new();
    let mut live: Vec<ClusterSet> = Vec::new();
    let mut worklist: Vec<(NodeId, u8)> = Vec::new();
    let mut dead: Vec<(NodeId, u8)> = Vec::new();
    let mut removable: Vec<(NodeId, u8)> = Vec::new();
    let mut on_cycle = Vec::new();
    on_cycle_into(ddg, &mut on_cycle);
    let mut always_anchor = Vec::new();
    always_anchor_into(ddg, &on_cycle, &mut always_anchor);

    for _ in 0..MAX_ROUNDS {
        // One full ASAP/ALAP pass per round gives both the current length
        // and the slacks (`estimated_length` is `time_bounds(..).length`).
        let Some(tb) = time_bounds(ddg, ii, comm_lat(machine, &assignment, base_lat)) else {
            return assignment;
        };
        let current_len = tb.length;
        assignment.communicated_into(ddg, &mut coms);
        for &v in &coms {
            is_com[v.index()] = true;
        }
        assignment.class_usage_into(ddg, machine.clusters(), &mut usage);

        // Zero-slack cross edges: slacks are materialized up front so the
        // assignment can be mutated while iterating.
        let edge_lat: Vec<u32> = {
            let lat = comm_lat(machine, &assignment, base_lat);
            ddg.edges().map(&lat).collect()
        };

        let edges: Vec<cvliw_ddg::Edge> = ddg.edges().copied().collect();
        let mut committed = false;
        'edges: for (idx, e) in edges.iter().enumerate() {
            if !e.is_data() {
                continue;
            }
            let missing = assignment
                .instances(e.dst)
                .difference(assignment.instances(e.src));
            if missing.is_empty() {
                continue;
            }
            let slack = tb.alap[e.dst.index()] - tb.asap[e.src.index()] - i64::from(edge_lat[idx])
                + i64::from(ii) * i64::from(e.distance);
            if slack != 0 {
                continue; // not on the critical path
            }
            // Replicate the producer into each consumer cluster that needs
            // it, one cluster at a time (Figure 11 replicates A into
            // cluster 1 only). Candidates are evaluated by applying the
            // single-target Figure-4 subgraph in place and undoing it on
            // rejection — exact, because the walk only records instances
            // absent from the target cluster.
            let com = e.src;
            for target in missing.iter() {
                epoch += 1;
                adds.clear();
                stack.clear();
                stack.push(com);
                while let Some(u) = stack.pop() {
                    if visited[u.index()] == epoch {
                        continue;
                    }
                    visited[u.index()] = epoch;
                    if assignment.instances(u).contains(target) {
                        continue; // already available locally
                    }
                    added_mark[u.index()] = epoch;
                    adds.push(u);
                    for &p in ddg.data_preds(u) {
                        if is_com[p.index()] && p != com {
                            continue; // broadcast value: available everywhere
                        }
                        stack.push(p);
                    }
                }
                adds.sort_unstable();

                for &u in &adds {
                    assignment.add_instance(u, target);
                }
                // Anticipated removals: Figure-5 liveness over the applied
                // state (== the hypothetical state), existing instances
                // only — an added pair is not a removal.
                assignment.communicated_into(ddg, &mut coms_buf);
                com_src.clear();
                com_src.extend(coms_buf.iter().map(|&v| assignment.copy_source(v)));
                dead_instances_dense(
                    ddg,
                    DenseViewRef {
                        instances: assignment.instance_sets(),
                        coms: &coms_buf,
                        com_src: &com_src,
                    },
                    &always_anchor,
                    &mut live,
                    &mut worklist,
                    &mut dead,
                );
                removable.clear();
                removable.extend(
                    dead.iter()
                        .filter(|&&(u, c)| !(c == target && added_mark[u.index()] == epoch)),
                );

                // The §3.3 feasibility rule on the round's usage census:
                // the target cluster must absorb the new instances, freed
                // slots credited.
                let fits = {
                    let mut ok = true;
                    'cap: for c in 0..machine.clusters() {
                        for class in OpClass::ALL {
                            let extra: u32 = if c == target {
                                adds.iter()
                                    .filter(|&&u| ddg.kind(u).class() == class)
                                    .count() as u32
                            } else {
                                0
                            };
                            let freed = removable
                                .iter()
                                .filter(|&&(u, rc)| rc == c && ddg.kind(u).class() == class)
                                .count() as u32;
                            let cap = u32::from(machine.fu_count_in(c, class)) * ii;
                            if usage[c as usize][class.index()] + extra > cap + freed {
                                ok = false;
                                break 'cap;
                            }
                        }
                    }
                    ok
                };
                #[cfg(debug_assertions)]
                {
                    // Differential guard against the map-based oracle.
                    for &u in &adds {
                        assignment.remove_instance(u, target);
                    }
                    let oracle_coms = assignment.communicated(ddg).into_iter().collect();
                    let oracle = crate::plan::replication_plan_into(
                        ddg,
                        &assignment,
                        &oracle_coms,
                        com,
                        ClusterSet::single(target),
                    );
                    debug_assert_eq!(oracle.subgraph(), adds);
                    debug_assert_eq!(oracle.removable, removable);
                    debug_assert_eq!(oracle.fits(ddg, machine, ii, &assignment), fits);
                    for &u in &adds {
                        assignment.add_instance(u, target);
                    }
                }
                if !fits {
                    for &u in &adds {
                        assignment.remove_instance(u, target);
                    }
                    continue;
                }
                // Bus bandwidth must keep fitting (replication can only
                // reduce the communication count, but be defensive); then
                // the candidate length needs the ASAP sweep only.
                let shorter = coms_buf.len() as u32 <= machine.coms_capacity_per_ii(ii) && {
                    let lat = comm_lat(machine, &assignment, base_lat);
                    cand_lat.clear();
                    cand_lat.extend(ddg.edges().map(&lat));
                    matches!(
                        cvliw_ddg::asap_times_into(ddg, ii, &cand_lat, &mut asap),
                        Some(new_len) if new_len < current_len
                    )
                };
                if shorter {
                    committed = true;
                    break 'edges;
                }
                for &u in &adds {
                    assignment.remove_instance(u, target);
                }
            }
        }
        for &v in &coms {
            is_com[v.index()] = false;
        }
        if !committed {
            break;
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvliw_ddg::OpKind;

    /// The Figure-11 situation: A feeds B (local), D (cluster 1) and F
    /// (cluster 3); the A→D edge is on the critical path.
    fn fig11() -> (Ddg, Assignment) {
        let mut bld = Ddg::builder();
        let a = bld.add_labeled(OpKind::IntAdd, "A");
        let b = bld.add_labeled(OpKind::IntAdd, "B");
        let c = bld.add_labeled(OpKind::IntAdd, "C");
        let d = bld.add_labeled(OpKind::IntAdd, "D");
        let e = bld.add_labeled(OpKind::IntAdd, "E");
        let f = bld.add_labeled(OpKind::IntAdd, "F");
        bld.data(a, b).data(b, c); // cluster 2 chain
        bld.data(a, d).data(d, e); // cluster 1 chain (critical: depth 3)
        bld.data(a, f); // cluster 3 single consumer
        let ddg = bld.build().unwrap();
        // clusters: A,B,C → 1 (index 1); D,E → 0; F → 2.
        let asg = Assignment::from_partition(&[1, 1, 1, 0, 0, 2]);
        (ddg, asg)
    }

    fn machine() -> MachineConfig {
        cvliw_machine::MachineConfig::new(
            4,
            2,
            1,
            64,
            cvliw_machine::FuCounts {
                int: 4,
                fp: 4,
                mem: 4,
            },
            cvliw_machine::LatencyTable::UNIT,
        )
        .unwrap()
    }

    #[test]
    fn replicates_onto_the_critical_path_only() {
        let (ddg, asg) = fig11();
        let m = machine();
        let ii = 3;
        let base = |n: NodeId| m.latency(ddg.kind(n));
        let before = estimated_length(&ddg, &m, ii, &asg, &base).unwrap();
        let extended = extend_for_length(&ddg, &m, ii, asg);
        let after = estimated_length(&ddg, &m, ii, &extended, &base).unwrap();
        assert!(after < before, "length must shrink: {after} vs {before}");
        // A was copied into cluster 0 (the critical consumer D's cluster)…
        let a = ddg.find_by_label("A").unwrap();
        assert!(extended.instances(a).contains(0));
        // …but the communication of A itself may remain for F's cluster.
        assert!(extended.instances(a).len() >= 2);
    }

    #[test]
    fn no_op_when_nothing_is_critical_across_clusters() {
        // Everything in one cluster: nothing to do.
        let mut bld = Ddg::builder();
        let a = bld.add_node(OpKind::IntAdd);
        let b = bld.add_node(OpKind::IntAdd);
        bld.data(a, b);
        let ddg = bld.build().unwrap();
        let asg = Assignment::from_partition(&[0, 0]);
        let m = machine();
        let out = extend_for_length(&ddg, &m, 2, asg.clone());
        assert_eq!(out, asg);
    }
}
