//! §5.1: replicate to reduce the schedule length.
//!
//! For loops with small trip counts the prolog/epilog dominates execution
//! time, so shaving the schedule length matters more than the II. The
//! extension finds communication edges on the critical path of one
//! iteration and copies the producer's subgraph into just the consumer's
//! cluster (Figure 11) — without necessarily removing the communication —
//! whenever that shortens the estimated schedule and fits the resources.

use std::collections::BTreeSet;

use cvliw_ddg::{time_bounds, Ddg, NodeId};
use cvliw_machine::MachineConfig;
use cvliw_sched::{Assignment, ClusterSet, LoopAnalysis};

use crate::plan::replication_plan_into;

/// Upper bound on extension rounds; each round commits one replication.
const MAX_ROUNDS: usize = 8;

/// The assignment-adjusted edge latency: the producer's base latency, plus
/// the transfer cost when some consumer instance lives in a cluster
/// without the producer (pair-dependent on point-to-point fabrics, the
/// flat bus latency on shared buses). `base_lat` is either a machine
/// lookup or the cached vector.
fn comm_lat<'a>(
    machine: &'a MachineConfig,
    assignment: &'a Assignment,
    base_lat: &'a impl Fn(NodeId) -> u32,
) -> impl Fn(&cvliw_ddg::Edge) -> u32 + 'a {
    let uniform = machine.uniform_transfer_latency();
    move |e: &cvliw_ddg::Edge| {
        let base = base_lat(e.src);
        if !e.is_data() {
            return base;
        }
        let missing = assignment
            .instances(e.dst)
            .difference(assignment.instances(e.src));
        if missing.is_empty() {
            base
        } else {
            base + cvliw_sched::comm_penalty(machine, assignment, e.src, missing, uniform)
        }
    }
}

/// Estimated critical-path length of one iteration (issue span) with bus
/// latency charged on cross-cluster data edges; `None` below RecMII.
fn estimated_length(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    assignment: &Assignment,
    base_lat: &impl Fn(NodeId) -> u32,
) -> Option<i64> {
    let lat = comm_lat(machine, assignment, base_lat);
    time_bounds(ddg, ii, lat).map(|tb| tb.length)
}

/// Applies the §5.1 extension: repeatedly pick a zero-slack cross-cluster
/// data edge, replicate the producer into that one consumer cluster, and
/// keep the change only if the estimated schedule length shrinks.
#[must_use]
pub fn extend_for_length(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    assignment: Assignment,
) -> Assignment {
    let base = |n: NodeId| machine.latency(ddg.kind(n));
    extend_core(ddg, machine, ii, assignment, &base)
}

/// [`extend_for_length`] on a cached [`LoopAnalysis`] (bit-identical; the
/// producer latencies are read from the cached vector).
#[must_use]
pub fn extend_for_length_with(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    assignment: Assignment,
    analysis: &LoopAnalysis,
) -> Assignment {
    let base = |n: NodeId| analysis.node_lat()[n.index()];
    extend_core(ddg, machine, ii, assignment, &base)
}

fn extend_core(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii: u32,
    mut assignment: Assignment,
    base_lat: &impl Fn(NodeId) -> u32,
) -> Assignment {
    for _ in 0..MAX_ROUNDS {
        let Some(current_len) = estimated_length(ddg, machine, ii, &assignment, base_lat) else {
            return assignment;
        };
        let coms: BTreeSet<NodeId> = assignment.communicated(ddg).into_iter().collect();

        // Zero-slack cross edges: slacks are materialized up front so the
        // assignment can be replaced while iterating.
        let edge_lat: Vec<u32> = {
            let lat = comm_lat(machine, &assignment, base_lat);
            ddg.edges().map(&lat).collect()
        };
        let Some(tb) = time_bounds(ddg, ii, comm_lat(machine, &assignment, base_lat)) else {
            return assignment;
        };

        let edges: Vec<cvliw_ddg::Edge> = ddg.edges().copied().collect();
        let mut committed = false;
        for (idx, e) in edges.iter().enumerate() {
            if !e.is_data() {
                continue;
            }
            let missing = assignment
                .instances(e.dst)
                .difference(assignment.instances(e.src));
            if missing.is_empty() {
                continue;
            }
            let slack = tb.alap[e.dst.index()] - tb.asap[e.src.index()] - i64::from(edge_lat[idx])
                + i64::from(ii) * i64::from(e.distance);
            if slack != 0 {
                continue; // not on the critical path
            }
            // Replicate the producer into each consumer cluster that needs
            // it, one cluster at a time (Figure 11 replicates A into
            // cluster 1 only).
            for target in missing.iter() {
                let plan = replication_plan_into(
                    ddg,
                    &assignment,
                    &coms,
                    e.src,
                    ClusterSet::single(target),
                );
                if !plan.fits(ddg, machine, ii, &assignment) {
                    continue;
                }
                let mut candidate = assignment.clone();
                for (&n, &set) in &plan.adds {
                    for c in set.iter() {
                        candidate.add_instance(n, c);
                    }
                }
                // Bus bandwidth must keep fitting (replication can only
                // reduce the communication count, but be defensive).
                let ncoms = candidate.comm_count(ddg);
                if ncoms > machine.coms_capacity_per_ii(ii) {
                    continue;
                }
                match estimated_length(ddg, machine, ii, &candidate, base_lat) {
                    Some(new_len) if new_len < current_len => {
                        assignment = candidate;
                        committed = true;
                        break;
                    }
                    _ => {}
                }
            }
            if committed {
                break;
            }
        }
        if !committed {
            break;
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvliw_ddg::OpKind;

    /// The Figure-11 situation: A feeds B (local), D (cluster 1) and F
    /// (cluster 3); the A→D edge is on the critical path.
    fn fig11() -> (Ddg, Assignment) {
        let mut bld = Ddg::builder();
        let a = bld.add_labeled(OpKind::IntAdd, "A");
        let b = bld.add_labeled(OpKind::IntAdd, "B");
        let c = bld.add_labeled(OpKind::IntAdd, "C");
        let d = bld.add_labeled(OpKind::IntAdd, "D");
        let e = bld.add_labeled(OpKind::IntAdd, "E");
        let f = bld.add_labeled(OpKind::IntAdd, "F");
        bld.data(a, b).data(b, c); // cluster 2 chain
        bld.data(a, d).data(d, e); // cluster 1 chain (critical: depth 3)
        bld.data(a, f); // cluster 3 single consumer
        let ddg = bld.build().unwrap();
        // clusters: A,B,C → 1 (index 1); D,E → 0; F → 2.
        let asg = Assignment::from_partition(&[1, 1, 1, 0, 0, 2]);
        (ddg, asg)
    }

    fn machine() -> MachineConfig {
        cvliw_machine::MachineConfig::new(
            4,
            2,
            1,
            64,
            cvliw_machine::FuCounts {
                int: 4,
                fp: 4,
                mem: 4,
            },
            cvliw_machine::LatencyTable::UNIT,
        )
        .unwrap()
    }

    #[test]
    fn replicates_onto_the_critical_path_only() {
        let (ddg, asg) = fig11();
        let m = machine();
        let ii = 3;
        let base = |n: NodeId| m.latency(ddg.kind(n));
        let before = estimated_length(&ddg, &m, ii, &asg, &base).unwrap();
        let extended = extend_for_length(&ddg, &m, ii, asg);
        let after = estimated_length(&ddg, &m, ii, &extended, &base).unwrap();
        assert!(after < before, "length must shrink: {after} vs {before}");
        // A was copied into cluster 0 (the critical consumer D's cluster)…
        let a = ddg.find_by_label("A").unwrap();
        assert!(extended.instances(a).contains(0));
        // …but the communication of A itself may remain for F's cluster.
        assert!(extended.instances(a).len() >= 2);
    }

    #[test]
    fn no_op_when_nothing_is_critical_across_clusters() {
        // Everything in one cluster: nothing to do.
        let mut bld = Ddg::builder();
        let a = bld.add_node(OpKind::IntAdd);
        let b = bld.add_node(OpKind::IntAdd);
        bld.data(a, b);
        let ddg = bld.build().unwrap();
        let asg = Assignment::from_partition(&[0, 0]);
        let m = machine();
        let out = extend_for_length(&ddg, &m, 2, asg.clone());
        assert_eq!(out, asg);
    }
}
