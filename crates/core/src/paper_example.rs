//! The worked example of the paper's Figures 3 and 6, reconstructed as a
//! real DDG with its partition.
//!
//! Fourteen instructions `A…N` are partitioned onto four clusters:
//!
//! * cluster 1: `{L, M, N}`   (`J` feeds `L`; `L → M → N` internally)
//! * cluster 2: `{I, J, K}`   (`I → J → K`; `E` feeds `J`)
//! * cluster 3: `{A, B, C, D, E}` (`A → B,C → D → E`, `A → E`)
//! * cluster 4: `{F, G, H}`   (`D → F`, `E → G`, `J → H`, `F,G → H`)
//!
//! Three values cross clusters: `D` (to 4), `E` (to 2 and 4) and `J` (to 1
//! and 4). With `II = 2`, four universal FUs per cluster and one 1-cycle
//! bus, `extra_coms = 1` and the replication weights come out as in the
//! paper: `weight(S_D) = 49/16`, `weight(S_J) = 40/16`, and `S_E` is the
//! lightest, so it is replicated first. After that commit the updates of
//! Figure 6 hold exactly (`S_D = {D,B,C}` into clusters 2 *and* 4 with
//! `{D,C,B,A}` removable and weight `44/8`; `S_J = {J,I,E,A}` into cluster
//! 1 but only `{J,I}` into cluster 4, weight `42/8`).
//!
//! The only constant the paper leaves ambiguous (the credit for removable
//! instructions; its two worked figures disagree) is pinned in `DESIGN.md`;
//! under our reading `weight(S_E) = 33/16` instead of the printed `31/16`,
//! preserving the selection order.

use cvliw_ddg::{Ddg, NodeId, OpKind};
use cvliw_sched::Assignment;

/// The node ids of the example, by letter.
#[derive(Clone, Copy, Debug)]
#[allow(missing_docs)]
pub struct Fig3Nodes {
    pub a: NodeId,
    pub b: NodeId,
    pub c: NodeId,
    pub d: NodeId,
    pub e: NodeId,
    pub f: NodeId,
    pub g: NodeId,
    pub h: NodeId,
    pub i: NodeId,
    pub j: NodeId,
    pub k: NodeId,
    pub l: NodeId,
    pub m: NodeId,
    pub n: NodeId,
}

/// Builds the Figure-3 graph, its four-cluster partition and the node map.
///
/// All operations are integer adds so that, as in the paper's example,
/// "every FU can execute all types of instructions".
#[must_use]
pub fn fig3_example() -> (Ddg, Assignment, Fig3Nodes) {
    let mut bld = Ddg::builder();
    let mut node = |name: &str| bld.add_labeled(OpKind::IntAdd, name);
    let a = node("A");
    let b = node("B");
    let c = node("C");
    let d = node("D");
    let e = node("E");
    let f = node("F");
    let g = node("G");
    let h = node("H");
    let i = node("I");
    let j = node("J");
    let k = node("K");
    let l = node("L");
    let m = node("M");
    let n = node("N");

    // Cluster 3 internals: S_D = {D,B,C,A}, S_E = {E,A} with D a parent of
    // E that is excluded because D's value is itself communicated.
    bld.data(a, b)
        .data(a, c)
        .data(b, d)
        .data(c, d)
        .data(a, e)
        .data(d, e);
    // Communications: D → F (cluster 4); E → J (cluster 2) and E → G
    // (cluster 4); J → L (cluster 1) and J → H (cluster 4).
    bld.data(d, f).data(e, g).data(e, j).data(j, l).data(j, h);
    // Cluster 2 internals: I → J → K (K keeps J's home instance alive).
    bld.data(i, j).data(j, k);
    // Cluster 1 internals.
    bld.data(l, m).data(m, n);
    // Cluster 4 internals.
    bld.data(f, h).data(g, h);

    let ddg = bld.build().expect("figure-3 graph is valid");

    // Paper clusters are 1-based; ours 0-based: cluster1→0 … cluster4→3.
    let mut part = vec![0u8; 14];
    for (nodes, cluster) in [
        (vec![l, m, n], 0u8),
        (vec![i, j, k], 1),
        (vec![a, b, c, d, e], 2),
        (vec![f, g, h], 3),
    ] {
        for nd in nodes {
            part[nd.index()] = cluster;
        }
    }
    let assignment = Assignment::from_partition(&part);
    (
        ddg,
        assignment,
        Fig3Nodes {
            a,
            b,
            c,
            d,
            e,
            f,
            g,
            h,
            i,
            j,
            k,
            l,
            m,
            n,
        },
    )
}

/// The machine of the worked example: four clusters of four universal FUs
/// and one 1-cycle bus. Universal units are approximated by giving every
/// node the same class (integer) and four integer units per cluster, which
/// is exactly how the paper's arithmetic uses them (`available = 4`,
/// `II = 2`).
#[must_use]
pub fn fig3_machine() -> cvliw_machine::MachineConfig {
    cvliw_machine::MachineConfig::new(
        4,
        1,
        1,
        64,
        cvliw_machine::FuCounts {
            int: 4,
            fp: 4,
            mem: 4,
        },
        cvliw_machine::LatencyTable::UNIT,
    )
    .expect("valid example machine")
}

/// The example's initiation interval.
pub const FIG3_II: u32 = 2;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ReplicationEngine;
    use cvliw_sched::ClusterSet;
    use std::collections::BTreeSet;

    fn set(clusters: &[u8]) -> ClusterSet {
        clusters.iter().copied().collect()
    }

    #[test]
    fn three_values_are_communicated() {
        let (ddg, asg, nd) = fig3_example();
        let coms = asg.communicated(&ddg);
        assert_eq!(coms, vec![nd.d, nd.e, nd.j]);
    }

    #[test]
    fn extra_coms_is_one() {
        let (ddg, asg, _) = fig3_example();
        let machine = fig3_machine();
        let engine = ReplicationEngine::new(&ddg, &machine, FIG3_II, asg);
        assert_eq!(engine.extra_coms(), 1);
    }

    #[test]
    fn subgraphs_match_the_paper() {
        let (ddg, asg, nd) = fig3_example();
        let coms: BTreeSet<_> = asg.communicated(&ddg).into_iter().collect();
        let s_d = crate::plan::replication_plan(&ddg, &asg, &coms, nd.d);
        assert_eq!(s_d.subgraph(), vec![nd.a, nd.b, nd.c, nd.d]);
        assert_eq!(s_d.targets, set(&[3]), "S_D goes to cluster 4 only");
        assert!(
            s_d.removable.is_empty(),
            "D's copy child keeps the chain alive"
        );

        let s_e = crate::plan::replication_plan(&ddg, &asg, &coms, nd.e);
        assert_eq!(s_e.subgraph(), vec![nd.a, nd.e], "D is excluded from S_E");
        assert_eq!(s_e.targets, set(&[1, 3]));
        assert_eq!(
            s_e.removable,
            vec![(nd.e, 2)],
            "only E itself dies in cluster 3"
        );

        let s_j = crate::plan::replication_plan(&ddg, &asg, &coms, nd.j);
        assert_eq!(s_j.subgraph(), vec![nd.i, nd.j]);
        assert_eq!(s_j.targets, set(&[0, 3]));
        assert!(s_j.removable.is_empty(), "K keeps J's home instance alive");
    }

    #[test]
    fn weights_match_figure_3() {
        let (ddg, asg, nd) = fig3_example();
        let machine = fig3_machine();
        let mut engine = ReplicationEngine::new(&ddg, &machine, FIG3_II, asg);
        let w_d = engine.weight_of(nd.d).unwrap();
        let w_j = engine.weight_of(nd.j).unwrap();
        let w_e = engine.weight_of(nd.e).unwrap();
        assert_eq!(w_d, 49.0 / 16.0, "weight(S_D)");
        assert_eq!(w_j, 40.0 / 16.0, "weight(S_J)");
        // Paper prints 31/16 for S_E; its own Figure-6 removal credit rule
        // (1/(avail·II) per removed node) gives 35/16 − 2/16 = 33/16. Either
        // way S_E is the minimum.
        assert_eq!(w_e, 33.0 / 16.0, "weight(S_E)");
        assert!(w_e < w_j && w_j < w_d);
    }

    #[test]
    fn engine_replicates_s_e_first() {
        let (ddg, asg, nd) = fig3_example();
        let machine = fig3_machine();
        let mut engine = ReplicationEngine::new(&ddg, &machine, FIG3_II, asg);
        let outcome = engine.run();
        assert_eq!(outcome, crate::engine::ReplicationOutcome::Fits);
        let (asg, stats) = engine.into_parts();
        assert_eq!(
            stats.removed_coms(),
            1,
            "exactly extra_coms subgraphs replicated"
        );
        // E now lives in clusters 2 and 4 (paper numbering), not 3.
        assert_eq!(asg.instances(nd.e), set(&[1, 3]));
        assert_eq!(
            asg.instances(nd.a),
            set(&[1, 2, 3]),
            "A replicated, original kept"
        );
        assert_eq!(stats.added_by_class, [4, 0, 0]); // E and A into two clusters
        assert_eq!(stats.removed_instances, 1); // old E in cluster 3
    }

    #[test]
    fn figure_6_updates_hold_after_replicating_s_e() {
        let (ddg, asg, nd) = fig3_example();
        let machine = fig3_machine();
        let mut engine = ReplicationEngine::new(&ddg, &machine, FIG3_II, asg);
        let plan_e = engine.plan_of(nd.e).unwrap().to_plan();
        engine.commit(&plan_e);

        // S_D loses A (already replicated) and must now go to clusters 2
        // and 4 (E's replicas are new children of D).
        let s_d = engine.plan_of(nd.d).unwrap().to_plan();
        assert_eq!(s_d.subgraph(), vec![nd.b, nd.c, nd.d]);
        assert_eq!(s_d.targets, set(&[1, 3]));
        let mut removable = s_d.removable.clone();
        removable.sort_unstable();
        assert_eq!(
            removable,
            vec![(nd.a, 2), (nd.b, 2), (nd.c, 2), (nd.d, 2)],
            "A, B, C, D all die in cluster 3 once S_D is replicated"
        );

        // S_J grows to {J,I,E,A} for cluster 1 but only {J,I} for cluster 4.
        let s_j = engine.plan_of(nd.j).unwrap().to_plan();
        assert_eq!(s_j.subgraph(), vec![nd.a, nd.e, nd.i, nd.j]);
        assert_eq!(s_j.adds[&nd.j], set(&[0, 3]));
        assert_eq!(s_j.adds[&nd.i], set(&[0, 3]));
        assert_eq!(s_j.adds[&nd.e], set(&[0]), "E already lives in cluster 4");
        assert_eq!(s_j.adds[&nd.a], set(&[0]));
        assert!(s_j.removable.is_empty());

        // Weights of Figure 6: 44/8 and 42/8.
        let w_d = engine.weight_of(nd.d).unwrap();
        let w_j = engine.weight_of(nd.j).unwrap();
        assert_eq!(w_d, 44.0 / 8.0, "weight(S_D) after update");
        assert_eq!(w_j, 42.0 / 8.0, "weight(S_J) after update");
    }

    #[test]
    fn full_pipeline_schedules_the_example() {
        let (ddg, asg, _) = fig3_example();
        let machine = fig3_machine();
        let mut engine = ReplicationEngine::new(&ddg, &machine, FIG3_II, asg);
        engine.run();
        let (asg, _) = engine.into_parts();
        let sched = cvliw_sched::schedule(&cvliw_sched::ScheduleRequest {
            ddg: &ddg,
            machine: &machine,
            assignment: &asg,
            ii: FIG3_II,
            zero_bus_dep_latency: false,
        })
        .expect("the example schedules at II=2 after replication");
        sched.verify(&ddg, &machine).unwrap();
        assert_eq!(
            sched.copy_count(),
            2,
            "two communications remain on the bus"
        );
    }
}
