//! **Instruction replication for clustered microarchitectures** — the core
//! algorithm of Aletà, Codina, González and Kaeli (MICRO-36, 2003),
//! implemented on top of the `cvliw` scheduling substrate.
//!
//! On a clustered VLIW, a value consumed in a cluster other than its
//! producer's must travel over a shared register bus; when the bus is
//! oversubscribed the initiation interval (II) of a software-pipelined loop
//! grows and performance drops. This crate removes communications by
//! **selectively recomputing values where they are needed**:
//!
//! 1. For every communicated value, compute its **replication subgraph**
//!    ([`replication_plan`], Figure 4): the minimum set of instructions to
//!    copy into the consuming clusters, stopping at other communicated
//!    values (already available everywhere) and at existing replicas.
//! 2. Anticipate the **removable instructions** ([`dead_instances`],
//!    Figure 5): instances that become useless once a communication
//!    disappears.
//! 3. **Weigh** each subgraph by the resource pressure it adds, shared
//!    replicas discounted, removable instructions credited
//!    ([`plan_weight`], §3.3).
//! 4. Greedily replicate the lightest subgraphs until the bus fits
//!    ([`ReplicationEngine`], §3.3–3.4) — never more than `extra_coms`
//!    of them.
//!
//! [`compile_loop`] wires this into the full Figure-2 driver (partition →
//! replicate → schedule, bumping the II on failure) and also provides the
//! paper's §5 alternatives: the schedule-length extension
//! ([`extend_for_length`]), the zero-bus-latency upper bound
//! ([`Mode::ZeroBusLatency`]) and macro-node replication
//! ([`macro_replicate`]).
//!
//! The worked example of the paper's Figures 3 and 6 ships as
//! [`paper_example`] and is reproduced number-for-number in this crate's
//! tests.
//!
//! # Example
//!
//! ```
//! use cvliw_ddg::{Ddg, OpKind};
//! use cvliw_machine::MachineConfig;
//! use cvliw_replicate::{compile_loop, CompileOptions};
//!
//! // One shared address computation feeding two fp chains.
//! let mut b = Ddg::builder();
//! let addr = b.add_node(OpKind::IntAdd);
//! b.data_dist(addr, addr, 1);
//! for _ in 0..2 {
//!     let ld = b.add_node(OpKind::Load);
//!     let mul = b.add_node(OpKind::FpMul);
//!     let st = b.add_node(OpKind::Store);
//!     b.data(addr, ld).data(ld, mul).data(mul, st).data(addr, st);
//! }
//! let ddg = b.build()?;
//! let machine = MachineConfig::from_spec("4c1b2l64r")?;
//!
//! let baseline = compile_loop(&ddg, &machine, &CompileOptions::baseline())?;
//! let replicated = compile_loop(&ddg, &machine, &CompileOptions::replicate())?;
//! assert!(replicated.stats.ii <= baseline.stats.ii);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acyclic;
mod driver;
mod engine;
mod fingerprint;
mod liveness;
mod macro_rep;
pub mod paper_example;
mod plan;
mod sched_len;
mod value_clone;

pub use acyclic::{replicate_for_acyclic_length, schedule_acyclic, AcyclicError, AcyclicSchedule};
pub use cvliw_sched::LoopAnalysis;
pub use driver::{
    compile_loop, compile_loop_ctx, compile_loop_with, compile_stats, compile_stats_ctx,
    compile_stats_with, CancelToken, CauseCounts, CompileContext, CompileError, CompileOptions,
    CompileScratch, CompiledLoop, LoopStats, Mode, Stage,
};
pub use engine::{EngineScratch, ReplicationEngine, ReplicationOutcome, ReplicationStats};
pub use fingerprint::{fnv1a_64, loop_fingerprint};
pub use liveness::{dead_instances, live_instances, InstanceView};
pub use macro_rep::macro_replicate;
pub use plan::{
    plan_weight, replication_plan, replication_plan_into, share_counts, PlanArena, PlanRef,
    ReplicationPlan,
};
pub use sched_len::{extend_for_length, extend_for_length_with};
pub use value_clone::{is_cloneable_value, uncloneable_coms, value_clone};
